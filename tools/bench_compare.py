#!/usr/bin/env python3
"""Compare two ``BENCH_sweep.json`` records; gate perf regressions.

Diffs per-cell ``events_per_second`` between a baseline record (the
committed repo-root ``BENCH_sweep.json``) and a freshly measured one:

* a cell regressing by more than ``--threshold`` (default 15%) fails
  the gate (exit 1) — a real hot-path regression;
* smaller regressions print a non-blocking warning (runner noise);
* records with a missing or different ``schema_version``, or from a
  different bench suite, are refused outright (exit 2);
* a backend section diffs per-backend sweep throughput (serial, warm
  pool, tcp) between the records and gates the current record's tcp
  backend against its warm pool (``--backend-floor``, default 0.9x) —
  skipped with a note when either record predates the backend axis;
* with ``--attrib-delta``, a failed gate additionally prints the top
  attribution movers (lifecycle segments, stall causes, compute) so
  the failure names *which* part of the simulated work changed — or
  reports the profiles identical, pinning the trip on runner noise.

Run:  python tools/bench_compare.py BASELINE CURRENT [--threshold 0.15]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import (
    COMPILED_SPEEDUP_FLOOR, REGRESSION_THRESHOLD, TCP_BACKEND_FLOOR,
    WHEEL_SPEEDUP_FLOOR, RecordMismatch, attrib_delta,
    check_backend_floor, check_engine_floor, check_scheduler_floor,
    compare_records, load_record)


def _backend_cps(record: dict) -> dict:
    """{backend: cells_per_second} from a record, {} when pre-v6."""
    backends = (record.get("sweep_throughput") or {}).get("backends")
    if not backends:
        return {}
    return {
        "serial": backends["serial"].get("cells_per_second", 0.0),
        "pool(warm)": backends["pool"].get("warm_cells_per_second", 0.0),
        "tcp": backends["tcp"].get("cells_per_second", 0.0),
    }


def backend_section(baseline: dict, current: dict) -> list:
    """Per-backend sweep-throughput deltas between the two records."""
    base_cps, cur_cps = _backend_cps(baseline), _backend_cps(current)
    if not base_cps or not cur_cps:
        return ["note backend throughput delta skipped (a record "
                "predates the backend axis)"]
    lines = ["backend sweep throughput (cells/s, baseline -> current):"]
    for name, cur in cur_cps.items():
        base = base_cps.get(name, 0.0)
        ratio = cur / base if base else 0.0
        lines.append(f"  {name:<10s} {base:8.2f} -> {cur:8.2f} "
                     f"({ratio:.2f}x)")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline BENCH_sweep.json")
    parser.add_argument("current", help="freshly measured BENCH_sweep.json")
    parser.add_argument("--threshold", type=float,
                        default=REGRESSION_THRESHOLD,
                        help="hard-fail events/second regression fraction "
                             f"(default: {REGRESSION_THRESHOLD})")
    parser.add_argument("--engine-floor", type=float,
                        default=COMPILED_SPEEDUP_FLOOR,
                        help="minimum compiled/reference speedup per cell "
                             f"(default: {COMPILED_SPEEDUP_FLOOR})")
    parser.add_argument("--scheduler-floor", type=float,
                        default=WHEEL_SPEEDUP_FLOOR,
                        help="minimum wheel/heap speedup per cell "
                             f"(default: {WHEEL_SPEEDUP_FLOOR})")
    parser.add_argument("--backend-floor", type=float,
                        default=TCP_BACKEND_FLOOR,
                        help="minimum tcp/warm-pool sweep throughput "
                             f"ratio (default: {TCP_BACKEND_FLOOR})")
    parser.add_argument("--attrib-delta", action="store_true",
                        help="when a gate fails, diff the records' "
                             "attribution profiles and print the top "
                             "segment/stall movers (names whether the "
                             "simulated work changed or the host did)")
    ns = parser.parse_args(argv)
    try:
        baseline = load_record(ns.baseline)
        current = load_record(ns.current)
        outcome = compare_records(baseline, current,
                                  threshold=ns.threshold)
    except RecordMismatch as exc:
        print(f"bench_compare: refusing to compare: {exc}",
              file=sys.stderr)
        return 2
    for line in outcome["lines"]:
        print(line)
    # Engine gate: the compiled engine must stay faster than the
    # reference in the *current* record, independent of the baseline.
    engine_gate = check_engine_floor(current, floor=ns.engine_floor)
    for line in engine_gate["lines"]:
        print(line)
    # Scheduler gate: the default wheel scheduler must never fall
    # meaningfully behind the heap it replaced.
    scheduler_gate = check_scheduler_floor(current,
                                           floor=ns.scheduler_floor)
    for line in scheduler_gate["lines"]:
        print(line)
    # Backend section: per-backend throughput deltas, plus the tcp
    # vs warm-pool floor on the current record.
    for line in backend_section(baseline, current):
        print(line)
    backend_gate = check_backend_floor(current, floor=ns.backend_floor)
    for line in backend_gate["lines"]:
        print(line)
    failed = False
    if not outcome["ok"]:
        print(f"bench_compare: events_per_second regressed by more than "
              f"{ns.threshold:.0%}", file=sys.stderr)
        failed = True
    if not engine_gate["ok"]:
        print(f"bench_compare: compiled engine fell below "
              f"{ns.engine_floor:.2f}x the reference", file=sys.stderr)
        failed = True
    if not scheduler_gate["ok"]:
        print(f"bench_compare: wheel scheduler fell below "
              f"{ns.scheduler_floor:.2f}x the heap", file=sys.stderr)
        failed = True
    if not backend_gate["ok"]:
        print(f"bench_compare: tcp backend fell below "
              f"{ns.backend_floor:.2f}x the warm pool", file=sys.stderr)
        failed = True
    if ns.attrib_delta and failed:
        # Attribute the failure: did the simulated work move, or is
        # the host to blame?  (Profiles are deterministic per commit.)
        print("attribution delta (baseline -> current):")
        for line in attrib_delta(baseline, current)["lines"]:
            print(f"  {line}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

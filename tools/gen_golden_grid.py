#!/usr/bin/env python3
"""Regenerate the golden tiny-scale paper grid (tests/golden/grid_tiny.json).

Runs every (workload, protocol) cell of the paper grid at ``tiny`` scale,
in-process and without any result cache, and snapshots the serialized
``RunResult`` of each cell.  ``tests/test_golden_grid.py`` asserts that
the current code reproduces these snapshots bit-for-bit, so regenerate
the file only when a change is *supposed* to alter simulation results
(and say so in the commit message).

Run:  PYTHONPATH=src python tools/gen_golden_grid.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.common.config import PROTOCOL_ORDER, ScaleConfig, scaled_system
from repro.core.simulator import simulate
from repro.runner.store import result_to_dict
from repro.workloads import WORKLOAD_ORDER, build_workload

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "golden" / "grid_tiny.json"


def build_grid() -> dict:
    scale = ScaleConfig.tiny()
    config = scaled_system(scale)
    grid: dict = {}
    for workload_name in WORKLOAD_ORDER:
        workload = build_workload(workload_name, scale)
        for proto in PROTOCOL_ORDER:
            result = simulate(workload, proto, config)
            grid.setdefault(workload_name, {})[proto] = result_to_dict(result)
            print(f"  {workload_name:<14s} {proto:<12s} "
                  f"exec={result.exec_cycles} events={result.events}",
                  file=sys.stderr)
    return grid


def main() -> int:
    payload = {
        "description": "tiny-scale paper grid goldens (bit-identity regression)",
        "scale": "tiny",
        "grid": build_grid(),
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

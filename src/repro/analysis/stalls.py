"""Stacked per-rung latency & stall breakdown from attribution profiles.

Renders the :class:`~repro.obs.attrib.AttribCollector` profiles of a
protocol ladder as (a) one stacked cycle-accounting bar per rung —
compute plus the six stall causes, bar length proportional to the
rung's total core cycles so the paper's Figure 5.2 story (where does
DeNovo gain its time back?) is visible at a glance — and (b) a
per-rung miss-latency segment table showing which lifecycle segment
(request NoC, home occupancy, DRAM, fill return) each rung spends its
miss cycles in.

Profiles come from observed runs (``obs=ObsSession()``); use
:func:`collect_stall_profiles` or ``python -m repro stalls``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.attrib import SEGMENTS, STALL_CAUSES

#: One bar character per cycle bucket, compute first.
BUCKET_CHARS = {
    "compute": "#",
    "l1_wait": ".",
    "l2_home": "o",
    "remote_l1": "r",
    "dram": "M",
    "write_buffer": "w",
    "barrier": "=",
}

BUCKET_ORDER = ("compute",) + STALL_CAUSES


def _bucket_cycles(profile: dict) -> Dict[str, int]:
    out = {"compute": int(profile["compute_cycles"])}
    totals = profile["stalls"]["total"]
    for cause in STALL_CAUSES:
        out[cause] = int(totals.get(cause, 0))
    return out


def _segment_cycles(profile: dict) -> Dict[str, int]:
    """Load+store segment cycles merged per segment name."""
    merged = dict.fromkeys(SEGMENTS, 0)
    for per_op in profile["segments"].values():
        for name, entry in per_op.items():
            merged[name] += int(entry["cycles"])
    return merged


@dataclass
class StallsFigure:
    """Stacked cycle bars + segment shares, one row per rung."""

    workload: str
    num_tiles: int
    profiles: List[dict]
    width: int = 48

    def render(self) -> str:
        legend = "  ".join(f"{BUCKET_CHARS[b]}={b}" for b in BUCKET_ORDER)
        lines = [f"=== stall attribution: {self.workload} "
                 f"({self.num_tiles} tiles) ===",
                 f"bar length ~ total core cycles; {legend}"]
        buckets = [(_p["protocol"], _bucket_cycles(_p))
                   for _p in self.profiles]
        peak = max((sum(b.values()) for _, b in buckets), default=0)
        for protocol, per in buckets:
            total = sum(per.values())
            bar_len = (round(self.width * total / peak) if peak else 0)
            chars = []
            for bucket in BUCKET_ORDER:
                if total:
                    chars.append(BUCKET_CHARS[bucket]
                                 * round(bar_len * per[bucket] / total))
            bar = "".join(chars)[:self.width]
            stalled = total - per["compute"]
            share = stalled / total if total else 0.0
            lines.append(f"{protocol:<12s} |{bar:<{self.width}s}| "
                         f"stalled {share:6.1%}")
        lines.append("")
        lines.append("miss-latency segment shares "
                     "(percent of attributed miss cycles):")
        header = "rung          " + "".join(f"{s:>11s}" for s in SEGMENTS)
        lines.append(header)
        for profile in self.profiles:
            segs = _segment_cycles(profile)
            total = sum(segs.values())
            cells = "".join(
                f"{(segs[s] / total if total else 0.0):>10.1%} "
                for s in SEGMENTS)
            lines.append(f"{profile['protocol']:<14s}{cells}")
        return "\n".join(lines)


def figure_stalls(profiles: List[dict], num_tiles: int,
                  width: int = 48) -> StallsFigure:
    workload = profiles[0]["workload"] if profiles else "?"
    return StallsFigure(workload=workload, num_tiles=num_tiles,
                        profiles=list(profiles), width=width)


def collect_stall_profiles(workload: str, scale, protocols, config,
                           seed: Optional[int] = None) -> List[dict]:
    """One attribution profile per protocol rung (observed runs).

    Observed runs are never cached (the result store holds plain
    ``RunResult`` cells), so this simulates each rung; use the tiny
    scale for interactive turnaround.
    """
    from repro.core.simulator import simulate
    from repro.obs import ObsSession
    from repro.workloads import build_workload

    profiles = []
    for protocol in protocols:
        kwargs = {"num_cores": config.num_tiles}
        if seed is not None:
            kwargs["seed"] = seed
        built = build_workload(workload, scale, **kwargs)
        obs = ObsSession(trace=False)
        simulate(built, protocol, config, obs=obs)
        profiles.append(obs.attrib.report())
    return profiles


def report_section(profiles: List[dict], num_tiles: int) -> str:
    """Markdown report section around the figure (for EXPERIMENTS.md)."""
    audits_ok = all(p["audits"]["ok"] for p in profiles)
    parts = ["## Latency & stall attribution (beyond the paper)\n",
             "Per-core cycle accounting and per-request miss-latency "
             "segments from an observed run of each rung "
             "(`python -m repro stalls`).  Conservation audits "
             f"{'pass' if audits_ok else 'FAIL'}: segments sum to "
             "end-to-end latency, compute + stalls equal total cycles, "
             "DRAM segments reconcile with `dram_stats`.\n",
             "```\n" + figure_stalls(profiles, num_tiles).render()
             + "\n```"]
    return "\n".join(parts)

"""Energy & EDP figures over a swept grid (beyond the paper).

The paper quantifies protocol efficiency through network traffic and
word-level waste because both proxy *energy*; this module completes the
chain: it derives a per-component energy breakdown for every swept
(workload, protocol) cell under a named technology preset and renders

* :func:`figure_energy` — a stacked per-rung energy-breakdown figure
  (core / L1 / L2 / NoC / MC / DRAM, normalized per workload to the
  MESI bar) mirroring the paper's traffic figures;
* :func:`edp_table` — absolute totals plus the delay-weighted metrics
  (EDP, ED2P) and energy per useful word;
* :func:`report_section` — the markdown section
  ``repro.analysis.report`` embeds, rendered for every preset so the
  process-node sensitivity is visible at a glance.

Everything here is post-hoc arithmetic over stored results — deriving
energy never re-runs a simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.figures import FigureTable, _normalize_grid
from repro.common.config import (
    EnergyModelConfig, SystemConfig, registered_energy_models)
from repro.core.stats import RunResult
from repro.energy import (
    COMPONENT_LABELS, COMPONENTS, EnergyStats, compute_energy,
    resolve_model)

Grid = Dict[str, Dict[str, RunResult]]
ModelLike = Union[str, EnergyModelConfig, None]


def energy_grid(grid: Grid, model: ModelLike = None,
                config: Optional[SystemConfig] = None,
                ) -> Dict[str, Dict[str, EnergyStats]]:
    """Per-cell :class:`EnergyStats` for a swept grid (validated)."""
    return {workload: {proto: compute_energy(result, model, config)
                       for proto, result in protos.items()}
            for workload, protos in grid.items()}


def figure_energy(grid: Grid, model: ModelLike = None,
                  config: Optional[SystemConfig] = None,
                  stats: Optional[Dict[str, Dict[str, EnergyStats]]] = None,
                  ) -> FigureTable:
    """Stacked per-rung energy breakdown, MESI-normalized per workload.

    ``stats``, when given, is a precomputed :func:`energy_grid` result
    for the same (grid, model, config) — callers rendering several
    views (figure + table + summary) derive once and share it.
    """
    em = resolve_model(model)
    labels = tuple(COMPONENT_LABELS[c] for c in COMPONENTS)
    stats = stats if stats is not None else energy_grid(grid, em, config)

    def values(result: RunResult) -> Dict[str, float]:
        cell = stats[result.workload][result.protocol]
        return {COMPONENT_LABELS[c]: cell.component(c) for c in COMPONENTS}

    return FigureTable(
        f"Figure E.1 [{em.name}]",
        f"Total energy by component ({em.name} preset)",
        labels, _normalize_grid(grid, values, labels))


def edp_table(grid: Grid, model: ModelLike = None,
              config: Optional[SystemConfig] = None,
              stats: Optional[Dict[str, Dict[str, EnergyStats]]] = None,
              ) -> str:
    """Absolute energy / EDP / ED2P / energy-per-useful-word table."""
    em = resolve_model(model)
    stats = stats if stats is not None else energy_grid(grid, em, config)
    lines = [f"=== Energy & EDP ({em.name} preset) ===",
             "(absolute values; relative-fidelity estimates, not "
             "silicon-validated)"]
    header = ("  protocol".ljust(14)
              + "total(uJ)".rjust(12) + "EDP(J*s)".rjust(13)
              + "ED2P(J*s^2)".rjust(13) + "E/used-word(nJ)".rjust(17))
    for workload, protos in stats.items():
        lines.append(f"-- {workload}")
        lines.append(header)
        for proto, cell in protos.items():
            lines.append(
                f"  {proto:<12s}"
                f"{cell.total * 1e6:12.2f}"
                f"{cell.edp:13.3e}"
                f"{cell.ed2p:13.3e}"
                f"{cell.energy_per_useful_word * 1e9:17.2f}")
    return "\n".join(lines)


def energy_summary(grid: Grid, model: ModelLike = None,
                   config: Optional[SystemConfig] = None,
                   stats: Optional[Dict[str, Dict[str, EnergyStats]]] = None,
                   ) -> str:
    """One line per workload: DBypFull's energy/EDP saving vs MESI."""
    stats = stats if stats is not None else energy_grid(grid, model, config)
    lines: List[str] = []
    for workload, protos in stats.items():
        if "MESI" not in protos or "DBypFull" not in protos:
            continue
        base, best = protos["MESI"], protos["DBypFull"]
        if not base.total or not base.edp:
            continue
        lines.append(
            f"- {workload}: DBypFull vs MESI — "
            f"{1.0 - best.total / base.total:+.1%} energy, "
            f"{1.0 - best.edp / base.edp:+.1%} EDP")
    return "\n".join(lines)


def report_section(grid: Grid,
                   models: Optional[Sequence[ModelLike]] = None,
                   config: Optional[SystemConfig] = None) -> str:
    """The markdown report section, rendered for every preset."""
    names = list(models) if models else list(registered_energy_models())
    parts = ["## Energy and EDP (beyond the paper)\n",
             "Counter-driven post-hoc energy model "
             "(`repro.energy`): per-event CACTI/McPAT-style costs over "
             "each run's recorded cache, Bloom, NoC, MC and DRAM event "
             "counters, plus leakage scaled by execution time.  Costs "
             "are relative-fidelity estimates — compare rungs and "
             "presets, don't quote absolute joules.\n"]
    for model in names:
        stats = energy_grid(grid, model, config)
        summary = energy_summary(grid, model, config, stats=stats)
        if summary:
            parts.append(summary + "\n")
        parts.append("```\n"
                     + figure_energy(grid, model, config,
                                     stats=stats).render()
                     + "\n```\n")
        parts.append("```\n" + edp_table(grid, model, config, stats=stats)
                     + "\n```")
    return "\n".join(parts)

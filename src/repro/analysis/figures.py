"""Figure and table regeneration (paper Section 5).

Every renderer takes the ``{workload: {protocol: RunResult}}`` grid
produced by :func:`repro.analysis.experiments.run_grid` and returns both a
structured table (rows of floats, suitable for assertions and plotting)
and a formatted text rendition mirroring the paper's figure.

All figures are normalized per-workload to the MESI bar, exactly as the
paper normalizes (Figures 5.1-5.3: "All bars are normalized to MESI").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.stats import RunResult, TIME_BUCKETS, TIME_LABELS
from repro.network import traffic as T
from repro.waste.profiler import Category

Grid = Dict[str, Dict[str, RunResult]]

#: Figure 5.1a stack order.
MAJOR_LABELS = ((T.LD, "LD"), (T.ST, "ST"), (T.WB, "WB"),
                (T.OVH, "Overhead"))

#: Figure 5.1b/c stack order (bottom to top).
LDST_STACK = (
    (T.REQ_CTL, "Req Ctl"),
    (T.RESP_CTL, "Resp Ctl"),
    (T.RESP_L1_USED, "Resp L1 Used"),
    (T.RESP_L1_WASTE, "Resp L1 Waste"),
    (T.RESP_L2_USED, "Resp L2 Used"),
    (T.RESP_L2_WASTE, "Resp L2 Waste"),
)

#: Figure 5.1d stack order.
WB_STACK = (
    (T.WB_CONTROL, "Control"),
    (T.WB_L2_USED, "L2 Used"),
    (T.WB_L2_WASTE, "L2 Waste"),
    (T.WB_MEM_USED, "Mem Used"),
    (T.WB_MEM_WASTE, "Mem Waste"),
)

#: Figure 5.3 category order (bottom to top).
WASTE_STACK = (
    (Category.USED, "Used Words"),
    (Category.FETCH, "Fetch Waste"),
    (Category.WRITE, "Write Waste"),
    (Category.INVALIDATE, "Invalidate Waste"),
    (Category.EVICT, "Evict Waste"),
    (Category.UNEVICTED, "Unevicted Waste"),
    (Category.EXCESS, "Excess Waste"),
)


@dataclass
class FigureTable:
    """One reproduced figure: stacked, MESI-normalized percentages.

    ``rows[workload][protocol][segment_label]`` is the segment's height in
    percent of the workload's MESI total.
    """

    figure_id: str
    title: str
    segment_labels: Tuple[str, ...]
    rows: Dict[str, Dict[str, Dict[str, float]]]

    def bar_total(self, workload: str, protocol: str) -> float:
        return sum(self.rows[workload][protocol].values())

    def segment(self, workload: str, protocol: str, label: str) -> float:
        return self.rows[workload][protocol][label]

    def average_total(self, protocol: str) -> float:
        """Mean normalized bar height for one protocol across workloads."""
        totals = [self.bar_total(w, protocol) for w in self.rows]
        return sum(totals) / len(totals) if totals else 0.0

    def render(self, width: int = 9) -> str:
        """Text rendition: one table per workload, protocols as rows."""
        lines = [f"=== {self.figure_id}: {self.title} ===",
                 "(percent of each workload's MESI total)"]
        header = "  protocol".ljust(14) + "".join(
            lbl[:width].rjust(width + 1) for lbl in self.segment_labels
        ) + "   TOTAL"
        for workload, protos in self.rows.items():
            lines.append(f"-- {workload}")
            lines.append(header)
            for proto in protos:
                segs = protos[proto]
                cells = "".join(
                    f"{segs[lbl]:{width + 1}.1f}"
                    for lbl in self.segment_labels)
                lines.append(
                    f"  {proto:<12s}{cells}{self.bar_total(workload, proto):8.1f}")
        avg = ", ".join(
            f"{p}={self.average_total(p):.1f}%"
            for p in next(iter(self.rows.values())))
        lines.append(f"average totals: {avg}")
        return "\n".join(lines)


def _normalize_grid(grid: Grid, value_fn, segment_labels) -> Dict:
    rows: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload, protos in grid.items():
        baseline = sum(value_fn(protos["MESI"]).values())
        if baseline <= 0:
            baseline = 1.0
        rows[workload] = {}
        for proto in protos:
            values = value_fn(protos[proto])
            rows[workload][proto] = {
                label: 100.0 * values.get(label, 0.0) / baseline
                for label in segment_labels}
    return rows


# ----------------------------------------------------------------------
# Figure 5.1a — overall network traffic
# ----------------------------------------------------------------------

def figure_5_1a(grid: Grid) -> FigureTable:
    labels = tuple(lbl for _key, lbl in MAJOR_LABELS)

    def values(result: RunResult) -> Dict[str, float]:
        return {lbl: result.traffic_major(key) for key, lbl in MAJOR_LABELS}

    return FigureTable(
        "Figure 5.1a", "Overall network traffic (flit-hops)",
        labels, _normalize_grid(grid, values, labels))


# ----------------------------------------------------------------------
# Figures 5.1b / 5.1c — LD and ST breakdowns
# ----------------------------------------------------------------------

def _ldst_figure(grid: Grid, major: str, figure_id: str,
                 title: str) -> FigureTable:
    labels = tuple(lbl for _key, lbl in LDST_STACK)

    def values(result: RunResult) -> Dict[str, float]:
        return {lbl: result.traffic_bucket(major, key)
                for key, lbl in LDST_STACK}

    return FigureTable(figure_id, title, labels,
                       _normalize_grid(grid, values, labels))


def figure_5_1b(grid: Grid) -> FigureTable:
    return _ldst_figure(grid, T.LD, "Figure 5.1b",
                        "LD network traffic breakdown")


def figure_5_1c(grid: Grid) -> FigureTable:
    return _ldst_figure(grid, T.ST, "Figure 5.1c",
                        "ST network traffic breakdown")


# ----------------------------------------------------------------------
# Figure 5.1d — WB breakdown
# ----------------------------------------------------------------------

def figure_5_1d(grid: Grid) -> FigureTable:
    labels = tuple(lbl for _key, lbl in WB_STACK)

    def values(result: RunResult) -> Dict[str, float]:
        return {lbl: result.traffic_bucket(T.WB, key)
                for key, lbl in WB_STACK}

    return FigureTable("Figure 5.1d", "WB network traffic breakdown",
                       labels, _normalize_grid(grid, values, labels))


# ----------------------------------------------------------------------
# Figure 5.2 — execution time
# ----------------------------------------------------------------------

def figure_5_2(grid: Grid) -> FigureTable:
    """Execution time normalized to MESI, stacked by stall category.

    The bar height is the workload's execution time (max core finish),
    and the stack splits it in proportion to the aggregated per-core
    cycle attribution, mirroring the paper's Figure 5.2.
    """
    labels = tuple(TIME_LABELS[b] for b in TIME_BUCKETS)
    rows: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload, protos in grid.items():
        baseline = protos["MESI"].exec_cycles or 1
        rows[workload] = {}
        for proto, result in protos.items():
            attributed = sum(result.time.values()) or 1.0
            height = 100.0 * result.exec_cycles / baseline
            rows[workload][proto] = {
                TIME_LABELS[b]: height * result.time[b] / attributed
                for b in TIME_BUCKETS}
    return FigureTable("Figure 5.2", "Execution time", labels, rows)


# ----------------------------------------------------------------------
# Figures 5.3a/b/c — words fetched, by waste category
# ----------------------------------------------------------------------

def _waste_figure(grid: Grid, level: str, figure_id: str,
                  title: str) -> FigureTable:
    labels = tuple(lbl for _cat, lbl in WASTE_STACK)
    attr = {"l1": "l1_waste", "l2": "l2_waste", "mem": "mem_waste"}[level]

    def values(result: RunResult) -> Dict[str, float]:
        counts = getattr(result, attr)
        return {lbl: float(counts.get(cat, 0)) for cat, lbl in WASTE_STACK}

    return FigureTable(figure_id, title, labels,
                       _normalize_grid(grid, values, labels))


def figure_5_3a(grid: Grid) -> FigureTable:
    return _waste_figure(grid, "l1", "Figure 5.3a",
                         "L1 fetch waste (words into L1)")


def figure_5_3b(grid: Grid) -> FigureTable:
    return _waste_figure(grid, "l2", "Figure 5.3b",
                         "L2 fetch waste (words into L2 from memory)")


def figure_5_3c(grid: Grid) -> FigureTable:
    return _waste_figure(grid, "mem", "Figure 5.3c",
                         "Memory fetch waste (words fetched from memory)")


ALL_FIGURES = {
    "5.1a": figure_5_1a,
    "5.1b": figure_5_1b,
    "5.1c": figure_5_1c,
    "5.1d": figure_5_1d,
    "5.2": figure_5_2,
    "5.3a": figure_5_3a,
    "5.3b": figure_5_3b,
    "5.3c": figure_5_3c,
}


def figures_from_store(which: Optional[Sequence[str]] = None,
                       jobs: int = 1, **grid_kwargs) -> List[FigureTable]:
    """Render figures from the runner's durable result store.

    Missing grid cells are simulated first (sharded across ``jobs``
    worker processes); ``grid_kwargs`` are forwarded to
    :func:`repro.runner.sweep_grid` (workloads, protocols, scale, ...).
    When no protocols are named, the sweep defaults to the registry's
    paper ladder (see ``repro.runner.jobs.expand_grid``), so figures
    keep the paper's x-axis even when extra rungs are registered.
    """
    from repro.runner import sweep_grid
    grid = sweep_grid(jobs=jobs, **grid_kwargs)
    ids = list(which) if which else list(ALL_FIGURES)
    return [ALL_FIGURES[fig_id](grid) for fig_id in ids]


# ----------------------------------------------------------------------
# Tables 4.1 / 4.2 — configuration tables
# ----------------------------------------------------------------------

def table_4_1(config=None) -> str:
    """Render the simulated-system parameter table (paper Table 4.1)."""
    from repro.common.config import SystemConfig
    cfg = config if config is not None else SystemConfig()
    rows = [
        ("Core", f"{cfg.core_ghz:g}GHz, in-order"),
        ("L1D Cache (private)",
         f"{cfg.l1_kb}KB, {cfg.l1_assoc}-way set associative, "
         f"{cfg.line_bytes} byte cache lines"),
        ("L2 Cache (shared)",
         f"{cfg.l2_slice_kb}KB slices "
         f"({cfg.l2_slice_kb * cfg.num_tiles // 1024}MB total), "
         f"{cfg.l2_assoc}-way set associative, "
         f"{cfg.line_bytes} byte cache lines"),
        ("Network",
         f"Mesh network, {cfg.link_bytes} byte links, "
         f"{cfg.link_latency} cycle link latency"),
        ("Memory Controller", "FR-FCFS scheduling, open page policy"),
        ("DRAM", f"DDR3-1066, {cfg.dram_banks} banks, "
                 f"{cfg.dram_ranks} ranks"),
    ]
    width = max(len(name) for name, _ in rows)
    lines = ["=== Table 4.1: Simulated system parameters ==="]
    lines += [f"{name:<{width}}  {value}" for name, value in rows]
    return "\n".join(lines)


def table_4_2(scale=None) -> str:
    """Render the application input-size table (paper Table 4.2)."""
    from repro.common.config import DEFAULT_SCALE
    sc = scale if scale is not None else DEFAULT_SCALE
    rows = [
        ("fluidanimate", f"{sc.fluid_cells} cells "
                         f"(paper: simmedium)"),
        ("LU", f"{sc.lu_matrix}x{sc.lu_matrix} matrix, "
               f"{sc.lu_block}x{sc.lu_block} blocks (paper: 512x512)"),
        ("FFT", f"{sc.fft_points} points (paper: 256K)"),
        ("radix", f"{sc.radix_keys} keys, {sc.radix_buckets} radix "
                  f"(paper: 4M keys, 1024 radix)"),
        ("Barnes-Hut", f"{sc.barnes_bodies} bodies (paper: 16K)"),
        ("kD-Tree", f"{sc.kdtree_triangles} triangles (paper: bunny)"),
    ]
    width = max(len(name) for name, _ in rows)
    lines = [f"=== Table 4.2: Application input sizes "
             f"(scale={sc.name}) ==="]
    lines += [f"{name:<{width}}  {value}" for name, value in rows]
    return "\n".join(lines)

"""Deprecated backward-compatible facade over :mod:`repro.runner.store`.

The durable result cache now lives in the runner subsystem
(:class:`repro.runner.store.ResultStore`): atomic writes, corrupt-file
tolerance and a versioned schema.  This module keeps the original
function-style API for callers that predate the runner.  Note the
runner's cell file names are the *store* keys of
:class:`repro.runner.jobs.JobSpec` — the :func:`config_key` here plus a
``-tN`` machine-shape tag (and a seed suffix when non-default) — so
derive keys through ``JobSpec.store_key()`` when reading cells the
sweep runner wrote.

.. deprecated::
   Import :class:`~repro.runner.store.ResultStore` (and the
   serialization helpers) from :mod:`repro.runner.store` directly; this
   shim emits :class:`DeprecationWarning` on import and will be removed
   in a later release.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Optional

warnings.warn(
    "repro.analysis.persist is deprecated; use repro.runner.store "
    "(ResultStore, result_to_dict, result_from_dict) and "
    "repro.runner.jobs (config_key, JobSpec.store_key) instead",
    DeprecationWarning, stacklevel=2)

from repro.core.stats import RunResult
from repro.runner.jobs import GRID_VERSION, config_key
from repro.runner.store import (
    ResultStore, default_cache_dir, result_from_dict, result_to_dict)

__all__ = [
    "GRID_VERSION", "cache_dir", "config_key", "load_result",
    "result_from_dict", "result_to_dict", "save_result",
]


def cache_dir() -> Path:
    return default_cache_dir()


def save_result(result: RunResult, key: str,
                directory: Optional[Path] = None) -> Path:
    return ResultStore(directory).save(result, key)


def load_result(workload: str, protocol: str, key: str,
                directory: Optional[Path] = None) -> Optional[RunResult]:
    return ResultStore(directory).load(workload, protocol, key)

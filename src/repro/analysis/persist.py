"""Serialization and disk caching of simulation results.

A full (6 workloads x 9 protocols) sweep takes minutes of pure-Python
simulation; the benchmark harness and examples therefore cache
``RunResult`` grids as JSON keyed by a hash of the scale and system
configuration.  Delete the cache directory (default ``.repro_cache/`` at
the repo root, or ``$REPRO_CACHE_DIR``) to force re-simulation.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

from repro.common.config import ScaleConfig, SystemConfig
from repro.core.stats import RunResult
from repro.waste.profiler import Category


def cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.cwd() / ".repro_cache"


#: Bump when workload generators or protocol semantics change, so stale
#: cached results are never reused.
GRID_VERSION = 3


def config_key(scale: ScaleConfig, config: SystemConfig) -> str:
    """Stable short hash of the (scale, system) configuration."""
    payload = json.dumps([GRID_VERSION, sorted(asdict(scale).items()),
                          sorted(asdict(config).items())])
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def result_to_dict(result: RunResult) -> dict:
    return {
        "workload": result.workload,
        "protocol": result.protocol,
        "traffic": result.traffic,
        "l1_waste": {c.value: n for c, n in result.l1_waste.items()},
        "l2_waste": {c.value: n for c, n in result.l2_waste.items()},
        "mem_waste": {c.value: n for c, n in result.mem_waste.items()},
        "time": result.time,
        "exec_cycles": result.exec_cycles,
        "events": result.events,
        "protocol_stats": result.protocol_stats,
        "dram_stats": result.dram_stats,
    }


def result_from_dict(data: dict) -> RunResult:
    def cats(d):
        return {Category(k): v for k, v in d.items()}

    return RunResult(
        workload=data["workload"],
        protocol=data["protocol"],
        traffic=data["traffic"],
        l1_waste=cats(data["l1_waste"]),
        l2_waste=cats(data["l2_waste"]),
        mem_waste=cats(data["mem_waste"]),
        time=data["time"],
        exec_cycles=data["exec_cycles"],
        events=data["events"],
        protocol_stats=data.get("protocol_stats", {}),
        dram_stats=data.get("dram_stats", {}),
    )


def save_result(result: RunResult, key: str,
                directory: Optional[Path] = None) -> Path:
    base = directory if directory is not None else cache_dir()
    base.mkdir(parents=True, exist_ok=True)
    path = base / f"{result.workload}_{result.protocol}_{key}.json"
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(result_to_dict(result)))
    tmp.replace(path)
    return path


def load_result(workload: str, protocol: str, key: str,
                directory: Optional[Path] = None) -> Optional[RunResult]:
    base = directory if directory is not None else cache_dir()
    path = base / f"{workload}_{protocol}_{key}.json"
    if not path.exists():
        return None
    try:
        return result_from_dict(json.loads(path.read_text()))
    except (json.JSONDecodeError, KeyError, ValueError):
        return None

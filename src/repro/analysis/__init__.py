"""Figure/table regeneration and experiment aggregation."""

from repro.analysis.experiments import (
    average_exec_time_reduction,
    average_overhead_fraction,
    average_traffic_reduction,
    average_waste_fraction,
    clear_cache,
    exec_time_reduction,
    run_grid,
    traffic_reduction,
)
from repro.analysis.figures import (
    ALL_FIGURES,
    FigureTable,
    figure_5_1a,
    figure_5_1b,
    figure_5_1c,
    figure_5_1d,
    figure_5_2,
    figure_5_3a,
    figure_5_3b,
    figure_5_3c,
    table_4_1,
    table_4_2,
)
from repro.analysis.energy import (
    edp_table,
    energy_grid,
    figure_energy,
)
from repro.analysis.scaling import (
    ScalingFigure,
    figure_scaling,
    run_scaling,
)

__all__ = [
    "ALL_FIGURES", "FigureTable", "ScalingFigure",
    "figure_5_1a", "figure_5_1b", "figure_5_1c", "figure_5_1d",
    "figure_5_2", "figure_5_3a", "figure_5_3b", "figure_5_3c",
    "figure_energy", "edp_table", "energy_grid",
    "figure_scaling", "run_scaling",
    "table_4_1", "table_4_2",
    "run_grid", "clear_cache",
    "traffic_reduction", "average_traffic_reduction",
    "exec_time_reduction", "average_exec_time_reduction",
    "average_overhead_fraction", "average_waste_fraction",
]

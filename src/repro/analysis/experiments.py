"""Experiment runner: build the full (workload x protocol) result grid.

The grid drives every figure of the paper's evaluation.  Results are
cached in-process so benchmarks regenerating several figures reuse one
simulation sweep.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.common.config import (
    DEFAULT_SCALE, PROTOCOL_ORDER, ScaleConfig, SystemConfig, scaled_system)
from repro.core.simulator import simulate
from repro.core.stats import RunResult
from repro.workloads import WORKLOAD_ORDER, build_workload

Grid = Dict[str, Dict[str, RunResult]]

_GRID_CACHE: Dict[Tuple, Grid] = {}


def run_grid(workloads: Optional[Sequence[str]] = None,
             protocols: Optional[Sequence[str]] = None,
             scale: Optional[ScaleConfig] = None,
             config: Optional[SystemConfig] = None,
             use_cache: bool = True) -> Grid:
    """Simulate every (workload, protocol) pair.

    Returns ``grid[workload][protocol] -> RunResult`` in paper order.
    ``scale`` defaults to the fast ``small`` inputs with proportionally
    shrunk caches (see ``repro.common.config.scaled_system``).
    """
    workloads = tuple(workloads) if workloads else WORKLOAD_ORDER
    protocols = tuple(protocols) if protocols else PROTOCOL_ORDER
    scale = scale if scale is not None else DEFAULT_SCALE
    config = config if config is not None else scaled_system(scale)

    key = (workloads, protocols, scale, config)
    if use_cache and key in _GRID_CACHE:
        return _GRID_CACHE[key]

    from repro.analysis import persist
    disk_key = persist.config_key(scale, config)
    grid: Grid = {}
    for name in workloads:
        workload = None
        grid[name] = {}
        for proto in protocols:
            result = (persist.load_result(name, proto, disk_key)
                      if use_cache else None)
            if result is None:
                if workload is None:
                    workload = build_workload(name, scale)
                result = simulate(workload, proto, config)
                if use_cache:
                    persist.save_result(result, disk_key)
            grid[name][proto] = result
    if use_cache:
        _GRID_CACHE[key] = grid
    return grid


def clear_cache() -> None:
    _GRID_CACHE.clear()


# ----------------------------------------------------------------------
# Headline aggregates (paper Section 5.1)
# ----------------------------------------------------------------------

def traffic_reduction(grid: Grid, proto: str, baseline: str) -> Dict[str, float]:
    """Per-workload traffic reduction of ``proto`` relative to ``baseline``.

    Positive = less traffic than the baseline (the paper reports e.g.
    DBypFull at an average of 39.5% below MESI).
    """
    out = {}
    for workload, protos in grid.items():
        base = protos[baseline].traffic_total()
        new = protos[proto].traffic_total()
        out[workload] = 1.0 - new / base if base else 0.0
    return out


def average_traffic_reduction(grid: Grid, proto: str,
                              baseline: str) -> float:
    values = traffic_reduction(grid, proto, baseline)
    return sum(values.values()) / len(values) if values else 0.0


def exec_time_reduction(grid: Grid, proto: str,
                        baseline: str) -> Dict[str, float]:
    out = {}
    for workload, protos in grid.items():
        base = protos[baseline].exec_cycles
        new = protos[proto].exec_cycles
        out[workload] = 1.0 - new / base if base else 0.0
    return out


def average_exec_time_reduction(grid: Grid, proto: str,
                                baseline: str) -> float:
    values = exec_time_reduction(grid, proto, baseline)
    return sum(values.values()) / len(values) if values else 0.0


def average_overhead_fraction(grid: Grid, proto: str) -> float:
    """Average fraction of a protocol's traffic that is overhead."""
    values = [protos[proto].overhead_fraction() for protos in grid.values()]
    return sum(values) / len(values) if values else 0.0


def average_waste_fraction(grid: Grid, proto: str) -> float:
    """Average fraction of a protocol's traffic moving wasted words."""
    values = [protos[proto].waste_fraction_of_traffic()
              for protos in grid.values()]
    return sum(values) / len(values) if values else 0.0

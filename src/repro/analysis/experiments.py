"""Experiment runner: build the full (workload x protocol) result grid.

The grid drives every figure of the paper's evaluation.  Execution is
delegated to the :mod:`repro.runner` subsystem — durable on-disk result
store plus optional process-pool sharding (``jobs > 1``) — and grids are
additionally memoized in-process (bounded LRU) so benchmarks
regenerating several figures reuse one sweep.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Sequence

from repro.common.config import ScaleConfig, SystemConfig
from repro.common.hashing import stable_hash
from repro.core.stats import RunResult
from repro.runner import expand_grid, sweep

Grid = Dict[str, Dict[str, RunResult]]

#: In-process grid memo, keyed on the sweep's job keys.  LRU-bounded:
#: a long interactive session sweeping many configurations must not
#: grow memory without limit.
_GRID_CACHE: "OrderedDict[str, Grid]" = OrderedDict()
GRID_CACHE_MAX_ENTRIES = 8


def run_grid(workloads: Optional[Sequence[str]] = None,
             protocols: Optional[Sequence[str]] = None,
             scale: Optional[ScaleConfig] = None,
             config: Optional[SystemConfig] = None,
             use_cache: bool = True,
             jobs: int = 1,
             num_tiles: Optional[int] = None) -> Grid:
    """Simulate every (workload, protocol) pair.

    Returns ``grid[workload][protocol] -> RunResult`` in paper order.
    ``protocols`` defaults to the registry's paper ladder (beyond-paper
    rungs run when named explicitly).  ``scale`` defaults to the fast
    ``small`` inputs with proportionally shrunk caches (see
    ``repro.common.config.scaled_system``).  ``num_tiles`` re-shapes
    the machine (tile count/mesh/MC placement, total L2 preserved) —
    one shape per grid; sweep a shape axis with
    :func:`repro.runner.sweep_shapes`.  ``jobs`` shards the missing
    cells across that many worker processes; the serial ``jobs=1`` path
    simulates in-process exactly as before.
    """
    specs = expand_grid(workloads, protocols, scale, config,
                        tiles=(num_tiles,) if num_tiles else None)
    key = stable_hash([spec.job_key() for spec in specs])
    if use_cache and key in _GRID_CACHE:
        _GRID_CACHE.move_to_end(key)
        return _GRID_CACHE[key]

    grid: Grid = {}
    for outcome in sweep(specs, jobs=jobs, use_cache=use_cache):
        grid.setdefault(outcome.spec.workload, {})[
            outcome.spec.protocol] = outcome.result
    if use_cache:
        _GRID_CACHE[key] = grid
        while len(_GRID_CACHE) > GRID_CACHE_MAX_ENTRIES:
            _GRID_CACHE.popitem(last=False)
    return grid


def clear_cache() -> None:
    _GRID_CACHE.clear()


# ----------------------------------------------------------------------
# Headline aggregates (paper Section 5.1)
# ----------------------------------------------------------------------

def traffic_reduction(grid: Grid, proto: str, baseline: str) -> Dict[str, float]:
    """Per-workload traffic reduction of ``proto`` relative to ``baseline``.

    Positive = less traffic than the baseline (the paper reports e.g.
    DBypFull at an average of 39.5% below MESI).
    """
    out = {}
    for workload, protos in grid.items():
        base = protos[baseline].traffic_total()
        new = protos[proto].traffic_total()
        out[workload] = 1.0 - new / base if base else 0.0
    return out


def average_traffic_reduction(grid: Grid, proto: str,
                              baseline: str) -> float:
    values = traffic_reduction(grid, proto, baseline)
    return sum(values.values()) / len(values) if values else 0.0


def exec_time_reduction(grid: Grid, proto: str,
                        baseline: str) -> Dict[str, float]:
    out = {}
    for workload, protos in grid.items():
        base = protos[baseline].exec_cycles
        new = protos[proto].exec_cycles
        out[workload] = 1.0 - new / base if base else 0.0
    return out


def average_exec_time_reduction(grid: Grid, proto: str,
                                baseline: str) -> float:
    values = exec_time_reduction(grid, proto, baseline)
    return sum(values.values()) / len(values) if values else 0.0


def average_overhead_fraction(grid: Grid, proto: str) -> float:
    """Average fraction of a protocol's traffic that is overhead."""
    values = [protos[proto].overhead_fraction() for protos in grid.values()]
    return sum(values) / len(values) if values else 0.0


def average_waste_fraction(grid: Grid, proto: str) -> float:
    """Average fraction of a protocol's traffic moving wasted words."""
    values = [protos[proto].waste_fraction_of_traffic()
              for protos in grid.values()]
    return sum(values) / len(values) if values else 0.0

"""Per-tile mesh utilization timeline from an observed run.

Renders the :class:`~repro.obs.session.ObsSession` phase-sampler time
series as one heat strip per tile: each column is a slice of simulated
time, each cell's shade is the number of flits the tile's router
forwarded in that slice (link-source attribution, the same counter the
Chrome trace exports as ``tile link flits/interval``).  Hot tiles —
memory-controller corners, the barrier home — stand out immediately,
which is the figure's whole job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Shade ramp, cold to hot.
SHADES = " .:-=+*#%@"


@dataclass
class TimelineFigure:
    """Heat-strip timeline: ``strips[tile][column]`` = flits forwarded."""

    workload: str
    protocol: str
    num_tiles: int
    cycles: Tuple[int, int]          # (first, last) sampled cycle
    columns: int
    strips: Dict[int, List[float]]
    phases: int

    def render(self) -> str:
        lines = [f"=== timeline: {self.workload} / {self.protocol} "
                 f"({self.num_tiles} tiles) ===",
                 f"cycles {self.cycles[0]}..{self.cycles[1]}, "
                 f"{self.columns} columns, {self.phases} barrier phase(s); "
                 f"shade = flits forwarded per tile router "
                 f"(scale '{SHADES}')"]
        peak = max((max(strip) for strip in self.strips.values()
                    if strip), default=0.0)
        for tile in sorted(self.strips):
            strip = self.strips[tile]
            chars = []
            for value in strip:
                if peak <= 0:
                    chars.append(SHADES[0])
                else:
                    idx = int(value / peak * (len(SHADES) - 1) + 0.5)
                    chars.append(SHADES[idx])
            lines.append(f"tile {tile:3d} |{''.join(chars)}|")
        if peak > 0:
            lines.append(f"peak: {peak:.0f} flits/column")
        return "\n".join(lines)


def figure_timeline(session, width: int = 64) -> TimelineFigure:
    """Build the per-tile utilization timeline from an ``ObsSession``.

    Degrades gracefully: a run too short to produce sampler ticks (or a
    session created before the run) renders a single empty column per
    tile instead of raising.
    """
    num_tiles = int(session.meta.get("num_tiles", len(session.tile_flits)))
    samples = session.samples
    first = samples[0]["cycle"] if samples else 0
    last = samples[-1]["cycle"] if samples else 0
    span = last - first
    columns = min(width, len(samples)) if span > 0 else 1
    strips: Dict[int, List[float]] = {
        tile: [0.0] * columns for tile in range(num_tiles)}
    if span > 0:
        for tile in range(num_tiles):
            label = f"tile={tile}"
            prev = 0.0
            for sample in samples:
                values = sample["metrics"].get("tile_link_flits", {})
                if label not in values:
                    continue
                value = values[label]
                col = int((sample["cycle"] - first) / span * (columns - 1))
                strips[tile][col] += value - prev
                prev = value
    return TimelineFigure(
        workload=str(session.meta.get("workload", "?")),
        protocol=str(session.meta.get("protocol", "?")),
        num_tiles=num_tiles,
        cycles=(first, last),
        columns=columns,
        strips=strips,
        phases=session.phases,
    )

"""Generate the paper-vs-measured experiment report.

``python -m repro report`` (or the legacy
``python -m repro.analysis.report``) prints the full EXPERIMENTS.md
content: every figure's regenerated table plus the headline
paper-vs-measured comparison.  The grid comes from the runner
subsystem's durable result store, simulating missing cells first —
shard that across cores with ``python -m repro report --jobs 8``.
"""

from __future__ import annotations

from typing import List

from repro.analysis.experiments import (
    average_exec_time_reduction, average_overhead_fraction,
    average_traffic_reduction, average_waste_fraction,
    traffic_reduction)
from repro.analysis.figures import ALL_FIGURES, table_4_1, table_4_2
from repro.common.config import DEFAULT_SCALE
from repro.workloads import WORKLOAD_ORDER

#: (label, paper value, metric function) for the headline table.
HEADLINES = (
    ("Avg traffic reduction, DBypFull vs MESI", "39.5%",
     lambda g: average_traffic_reduction(g, "DBypFull", "MESI")),
    ("Avg traffic reduction, DBypFull vs MMemL1", "35.2%",
     lambda g: average_traffic_reduction(g, "DBypFull", "MMemL1")),
    ("Avg traffic reduction, DBypFull vs DFlexL1", "18.9%",
     lambda g: average_traffic_reduction(g, "DBypFull", "DFlexL1")),
    ("Avg traffic reduction, DeNovo vs MESI", "13.9%",
     lambda g: average_traffic_reduction(g, "DeNovo", "MESI")),
    ("Avg traffic reduction, MMemL1 vs MESI", "6.2%",
     lambda g: average_traffic_reduction(g, "MMemL1", "MESI")),
    ("Avg exec-time reduction, DBypFull vs MESI", "10.5%",
     lambda g: average_exec_time_reduction(g, "DBypFull", "MESI")),
    ("Avg exec-time reduction, MMemL1 vs MESI", "3.8%",
     lambda g: average_exec_time_reduction(g, "MMemL1", "MESI")),
    ("MESI overhead share of traffic", "13.6%",
     lambda g: average_overhead_fraction(g, "MESI")),
    ("MMemL1 overhead share of traffic", "12.1%",
     lambda g: average_overhead_fraction(g, "MMemL1")),
    ("DBypFull residual waste share", "8.8%",
     lambda g: average_waste_fraction(g, "DBypFull")),
)


def headline_table(grid) -> str:
    lines = ["| Metric | Paper | Measured |", "|---|---|---|"]
    for label, paper, metric in HEADLINES:
        lines.append(f"| {label} | {paper} | {metric(grid):.1%} |")
    return "\n".join(lines)


def per_app_table(grid) -> str:
    red = traffic_reduction(grid, "DBypFull", "MESI")
    lines = ["| Workload | DBypFull traffic vs MESI |", "|---|---|"]
    for workload in WORKLOAD_ORDER:
        lines.append(f"| {workload} | -{red[workload]:.1%} |")
    lines.append("| *paper range* | *-22.9% .. -64.2%* |")
    return "\n".join(lines)


def generate(grid=None, jobs: int = 1, scaling=None, energy: bool = True,
             energy_config=None, stalls=None, stalls_tiles: int = 16) -> str:
    """Full report text (the body of EXPERIMENTS.md).

    ``scaling``, when given, is a swept shape grid
    (``repro.analysis.scaling.run_scaling`` output); its core-count
    scaling figure is appended as a beyond-the-paper section.

    ``energy`` (default on) appends the counter-driven energy/EDP
    section, rendered for every registered technology preset;
    ``energy_config`` supplies the machine shape when the grid was swept
    on a non-default one (it defaults to the paper's 16-tile machine).

    ``stalls``, when given, is a list of attribution profiles
    (``repro.analysis.stalls.collect_stall_profiles`` output); the
    latency & stall attribution section is appended for the
    ``stalls_tiles``-tile shape they were collected on.
    """
    if grid is None:
        from repro.runner import sweep_grid
        grid = sweep_grid(jobs=jobs)
    parts: List[str] = []
    parts.append("## Headline comparison (paper Section 5.1)\n")
    parts.append(headline_table(grid))
    parts.append("\n## Per-workload DBypFull traffic reduction\n")
    parts.append(per_app_table(grid))
    parts.append("\n## Configuration tables\n")
    parts.append("```\n" + table_4_1() + "\n\n"
                 + table_4_2(DEFAULT_SCALE) + "\n```")
    for fig_id, builder in ALL_FIGURES.items():
        fig = builder(grid)
        parts.append(f"\n## {fig.figure_id}: {fig.title}\n")
        parts.append("```\n" + fig.render() + "\n```")
    if energy:
        from repro.analysis.energy import report_section as energy_section
        parts.append("\n" + energy_section(grid, config=energy_config))
    if scaling:
        from repro.analysis.scaling import report_section
        parts.append("\n" + report_section(scaling))
    if stalls:
        from repro.analysis.stalls import report_section as stalls_section
        parts.append("\n" + stalls_section(stalls, stalls_tiles))
    return "\n".join(parts)


if __name__ == "__main__":
    print(generate())

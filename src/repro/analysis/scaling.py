"""Core-count scaling experiment (beyond the paper's single data point).

The paper evaluates every protocol rung on exactly one machine — a
16-tile 4x4 mesh.  With the machine shape a first-class sweep axis,
this module asks the natural follow-up question: how does the nine-rung
coherence ladder behave as the core count grows?

:func:`run_scaling` sweeps a (workload x shape x protocol) grid through
the runner subsystem; :func:`figure_scaling` turns the swept results
into the scaling figure — execution time and flit-hop network traffic
vs. tile count, one line per protocol rung — and
:func:`report_section` renders the markdown section
``repro.analysis.report`` embeds.

>>> from repro.analysis.scaling import run_scaling, figure_scaling
>>> shapes = run_scaling(workloads=("radix",), tiles=(4, 16), jobs=4)
>>> print(figure_scaling(shapes).render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import ScaleConfig
from repro.core.stats import RunResult

#: ``shapes[num_tiles][workload][protocol] -> RunResult``.
ShapeGrid = Dict[int, Dict[str, Dict[str, RunResult]]]

#: Default machine-shape axis: quarter, paper, and 4x the paper machine.
DEFAULT_TILES = (4, 16, 64)


def run_scaling(workloads: Sequence[str] = ("radix",),
                protocols: Optional[Sequence[str]] = None,
                tiles: Sequence[int] = DEFAULT_TILES,
                scale: Optional[ScaleConfig] = None,
                jobs: int = 1,
                store=None,
                use_cache: bool = True,
                progress=None) -> ShapeGrid:
    """Sweep the scaling grid; returns ``shapes[tiles][workload][proto]``.

    Thin veneer over :func:`repro.runner.sweep_shapes` with
    scaling-experiment defaults (one workload, the paper protocol
    ladder, the {4, 16, 64}-tile axis).
    """
    from repro.runner import sweep_shapes
    return sweep_shapes(tiles, workloads=workloads, protocols=protocols,
                        scale=scale, jobs=jobs, store=store,
                        use_cache=use_cache, progress=progress)


@dataclass
class ScalingFigure:
    """The core-count scaling figure as structured data.

    ``rows[workload][protocol][num_tiles]`` holds the two plotted
    metrics for one cell: ``exec_cycles`` (workload execution time) and
    ``traffic`` (total network flit-hops).  ``render()`` produces the
    text rendition: per workload, one block per metric, one line per
    protocol rung, one column per tile count, with each cell also shown
    relative to the protocol's smallest-machine point (``xN.NN``) so
    the scaling trend reads directly.
    """

    title: str
    tiles: Tuple[int, ...]
    rows: Dict[str, Dict[str, Dict[int, Dict[str, float]]]]

    #: Per-instance when the energy preset differs from the default —
    #: :func:`figure_scaling` overrides the energy label with the
    #: resolved preset name.
    METRICS = (("exec_cycles", "Execution time (cycles)"),
               ("traffic", "Network traffic (flit-hops)"),
               ("energy", "Total energy (nJ, 45nm preset)"))

    def metric(self, workload: str, protocol: str, num_tiles: int,
               name: str) -> float:
        return self.rows[workload][protocol][num_tiles][name]

    #: Width of one (value, relative) column in the text rendition.
    _CELL_WIDTH = 20

    def _render_metric(self, workload: str, key: str, label: str,
                       lines: List[str]) -> None:
        lines.append(f"-- {workload}: {label}")
        header = "  protocol".ljust(14) + "".join(
            f"{t}t (vs {self.tiles[0]}t)".rjust(self._CELL_WIDTH)
            for t in self.tiles)
        lines.append(header)
        for proto, cells in self.rows[workload].items():
            base = cells[self.tiles[0]][key] or 1.0
            row = f"  {proto:<12s}"
            for t in self.tiles:
                value = cells[t][key]
                cell = f"{value:.0f} (x{value / base:.2f})"
                row += cell.rjust(self._CELL_WIDTH)
            lines.append(row)

    def render(self) -> str:
        lines = [f"=== {self.title} ===",
                 "(absolute values; xN.NN = relative to the smallest "
                 "machine)"]
        for workload in self.rows:
            for key, label in self.METRICS:
                self._render_metric(workload, key, label, lines)
        return "\n".join(lines)


def figure_scaling(shapes: ShapeGrid,
                   title: str = "Core-count scaling",
                   energy_model=None) -> ScalingFigure:
    """Build the scaling figure from :func:`run_scaling` results.

    The energy line derives post hoc from each cell's recorded counters
    under ``energy_model`` (a preset name or config; default preset when
    omitted), with the machine's unit counts re-shaped to the cell's
    tile count — how the coherence ladder's *energy* cost moves with the
    machine size is exactly the question the shape axis opens up.
    """
    from repro.energy import compute_energy, resolve_model, shaped_config
    if not shapes:
        raise ValueError("no swept shapes to render")
    em = resolve_model(energy_model)
    tiles = tuple(sorted(shapes))
    rows: Dict[str, Dict[str, Dict[int, Dict[str, float]]]] = {}
    for num_tiles in tiles:
        config = shaped_config(num_tiles)
        for workload, protos in shapes[num_tiles].items():
            for proto, result in protos.items():
                energy = compute_energy(result, em, config)
                rows.setdefault(workload, {}).setdefault(proto, {})[
                    num_tiles] = {
                        "exec_cycles": float(result.exec_cycles),
                        "traffic": float(result.traffic_total()),
                        "energy": energy.total * 1e9,
                }
    # Every (workload, protocol) line needs a point at every tile count,
    # otherwise the relative columns would silently compare different
    # protocol sets across shapes.
    for workload, protos in rows.items():
        for proto, cells in protos.items():
            missing = [t for t in tiles if t not in cells]
            if missing:
                raise ValueError(
                    f"{workload} x {proto} missing tile counts {missing}; "
                    f"sweep every shape before rendering")
    figure = ScalingFigure(title=title, tiles=tiles, rows=rows)
    figure.METRICS = (
        ("exec_cycles", "Execution time (cycles)"),
        ("traffic", "Network traffic (flit-hops)"),
        ("energy", f"Total energy (nJ, {em.name} preset)"))
    return figure


def scaling_summary(shapes: ShapeGrid) -> str:
    """One-line-per-workload summary: DBypFull's advantage vs tiles.

    Reports how the best rung's traffic saving over MESI moves as the
    machine grows (when both rungs are in the sweep).
    """
    tiles = tuple(sorted(shapes))
    lines = []
    for workload in next(iter(shapes.values())):
        points = []
        for t in tiles:
            protos = shapes[t].get(workload, {})
            best = "DBypFull" if "DBypFull" in protos else None
            if best is None or "MESI" not in protos:
                continue
            base = protos["MESI"].traffic_total()
            saving = 1.0 - protos[best].traffic_total() / base if base else 0.0
            points.append(f"{t}t: {saving:.1%}")
        if points:
            lines.append(f"- {workload} DBypFull traffic saving vs MESI: "
                         + ", ".join(points))
    return "\n".join(lines)


def report_section(shapes: ShapeGrid) -> str:
    """The markdown report section for swept scaling results."""
    # Build the figure first: its completeness validation turns a
    # ragged sweep into a clear error before any partial rendering.
    figure = figure_scaling(shapes)
    parts = ["## Core-count scaling (beyond the paper)\n",
             "The paper's evaluation is a single 16-tile 4x4 machine; "
             "this section sweeps the same workloads and protocol rungs "
             "across machine shapes (total L2 capacity preserved up to "
             "per-slice KB rounding, see "
             "`repro.common.config.reshape_system`).\n"]
    summary = scaling_summary(shapes)
    if summary:
        parts.append(summary + "\n")
    parts.append("```\n" + figure.render() + "\n```")
    return "\n".join(parts)

"""2D mesh topology with XY (dimension-ordered) routing.

The paper measures traffic in *flit-hops*: every flit of a packet is charged
once per link it crosses.  With deterministic XY routing the hop count is
the Manhattan distance between the source and destination tiles, which lets
traffic accounting be exact without simulating individual routers.

Latency is modelled as ``hops * link_latency + (flits - 1)`` (pipelined
serialization) plus optional per-link queueing captured by a busy-until
table, which adds contention back-pressure without per-flit simulation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.config import SystemConfig


class Mesh:
    """Topology + latency model of the on-chip mesh network."""

    LOCAL_LATENCY = 1  # same-tile "network" latency

    def __init__(self, config: SystemConfig, model_contention: bool = True) -> None:
        self._width = config.mesh_width
        self._link_latency = config.link_latency
        self._model_contention = model_contention
        # busy-until time per directed link, keyed by (tile, direction).
        self._link_free: Dict[Tuple[int, int, int, int], int] = {}
        # route link-lists are small (num_tiles^2 pairs, <= 64x64 for
        # the largest supported mesh) and hot: cache them.
        self._route_links: Dict[Tuple[int, int],
                                Tuple[Tuple[int, int, int, int], ...]] = {}
        # Energy-model event counters (observational only).  Every flit
        # of every packet crossing a link is one flit-hop, matching the
        # ledger's charging rule, so ``stat_flit_hops`` reconciles
        # exactly with ``TrafficLedger`` totals (same-tile packets cross
        # zero links in both accountings).
        self.stat_packets = 0
        self.stat_flit_hops = 0

    def coords(self, tile: int) -> Tuple[int, int]:
        """(x, y) coordinates of ``tile``."""
        return tile % self._width, tile // self._width

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self._width and 0 <= y < self._width):
            raise ValueError(f"({x},{y}) outside {self._width}x{self._width} mesh")
        return y * self._width + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles (0 if the same tile)."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> List[int]:
        """Tiles visited under XY routing, inclusive of both endpoints."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [self.tile_at(sx, sy)]
        x, y = sx, sy
        step = 1 if dx > x else -1
        while x != dx:
            x += step
            path.append(self.tile_at(x, y))
        step = 1 if dy > y else -1
        while y != dy:
            y += step
            path.append(self.tile_at(x, y))
        return path

    def latency(self, src: int, dst: int, total_flits: int, now: int) -> int:
        """Delivery latency of a ``total_flits``-flit packet sent at ``now``.

        When contention modelling is on, each link on the route is occupied
        for ``total_flits`` cycles and a packet arriving at a busy link
        waits for it to drain.
        """
        if total_flits <= 0:
            raise ValueError("a packet has at least one flit")
        self.stat_packets += 1
        if src == dst:
            return self.LOCAL_LATENCY
        if not self._model_contention:
            hops = self.hops(src, dst)
            self.stat_flit_hops += total_flits * hops
            return hops * self._link_latency + total_flits - 1

        links = self._route_links.get((src, dst))
        if links is None:
            path = self.route(src, dst)
            links = tuple(
                self.coords(here) + self.coords(there)
                for here, there in zip(path, path[1:]))
            self._route_links[(src, dst)] = links
        self.stat_flit_hops += total_flits * len(links)
        time = now
        link_free = self._link_free
        for link in links:
            free_at = link_free.get(link, 0)
            start = max(time, free_at)
            link_free[link] = start + total_flits
            time = start + self._link_latency
        # pipelined serialization: trailing flits follow the header.
        time += total_flits - 1
        return time - now

    def reset_contention(self) -> None:
        self._link_free.clear()

    def count_packet(self, hops: int, total_flits: int = 1) -> None:
        """Count a packet whose delivery is not latency-simulated.

        Fire-and-forget messages (e.g. MESI's writeback ack) are charged
        to the traffic ledger but never pass through :meth:`latency`;
        this keeps the energy-model flit-hop counter reconciled with the
        ledger.
        """
        self.stat_packets += 1
        self.stat_flit_hops += total_flits * hops

    def reset_energy_counters(self) -> None:
        """Zero the observational counters (end of measurement warm-up)."""
        self.stat_packets = 0
        self.stat_flit_hops = 0

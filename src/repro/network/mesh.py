"""2D mesh topology with XY (dimension-ordered) routing.

The paper measures traffic in *flit-hops*: every flit of a packet is charged
once per link it crosses.  With deterministic XY routing the hop count is
the Manhattan distance between the source and destination tiles, which lets
traffic accounting be exact without simulating individual routers.

Latency is modelled as ``hops * link_latency + (flits - 1)`` (pipelined
serialization) plus optional per-link queueing captured by a busy-until
table, which adds contention back-pressure without per-flit simulation.

Topology is static, so everything derivable from the mesh width is
precomputed once per width at construction and shared across instances
(every cell of a sweep re-creates a ``Mesh``): the XY route of every
(src, dst) pair, its directed-link list (links flattened to ints:
``here * num_tiles + there``), and the hop-count table.  ``latency``
then does no per-call route building or coordinate math at all.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.config import SystemConfig

#: Per-width shared topology tables, built once and reused by every
#: Mesh instance of that width (route caches were previously grown
#: per-instance on demand).  width -> (routes, links, hops) where each
#: is a flat tuple indexed by ``src * num_tiles + dst``; links entries
#: are tuples of directed-link ints (``here * num_tiles + there``).
_TOPOLOGY_CACHE: Dict[int, Tuple[tuple, tuple, tuple]] = {}


def _build_topology(width: int) -> Tuple[tuple, tuple, tuple]:
    num_tiles = width * width
    routes: List[Tuple[int, ...]] = []
    links: List[Tuple[int, ...]] = []
    hops: List[int] = []
    for src in range(num_tiles):
        sx, sy = src % width, src // width
        for dst in range(num_tiles):
            dx, dy = dst % width, dst // width
            path = [src]
            x, y = sx, sy
            step = 1 if dx > x else -1
            while x != dx:
                x += step
                path.append(y * width + x)
            step = 1 if dy > y else -1
            while y != dy:
                y += step
                path.append(y * width + x)
            routes.append(tuple(path))
            links.append(tuple(here * num_tiles + there
                               for here, there in zip(path, path[1:])))
            hops.append(len(path) - 1)
    return tuple(routes), tuple(links), tuple(hops)


def _topology(width: int) -> Tuple[tuple, tuple, tuple]:
    tables = _TOPOLOGY_CACHE.get(width)
    if tables is None:
        tables = _TOPOLOGY_CACHE[width] = _build_topology(width)
    return tables


class Mesh:
    """Topology + latency model of the on-chip mesh network."""

    LOCAL_LATENCY = 1  # same-tile "network" latency

    def __init__(self, config: SystemConfig, model_contention: bool = True) -> None:
        self._width = config.mesh_width
        self._num_tiles = self._width * self._width
        self._link_latency = config.link_latency
        self._model_contention = model_contention
        self._routes, self._links, self._hops = _topology(self._width)
        # busy-until time per directed link, indexed by the link int
        # (``here * num_tiles + there``).
        self._link_free: List[int] = [0] * (self._num_tiles * self._num_tiles)
        # Energy-model event counters (observational only).  Every flit
        # of every packet crossing a link is one flit-hop, matching the
        # ledger's charging rule, so ``stat_flit_hops`` reconciles
        # exactly with ``TrafficLedger`` totals (same-tile packets cross
        # zero links in both accountings).
        self.stat_packets = 0
        self.stat_flit_hops = 0

    def coords(self, tile: int) -> Tuple[int, int]:
        """(x, y) coordinates of ``tile``."""
        return tile % self._width, tile // self._width

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self._width and 0 <= y < self._width):
            raise ValueError(f"({x},{y}) outside {self._width}x{self._width} mesh")
        return y * self._width + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles (0 if the same tile)."""
        return self._hops[src * self._num_tiles + dst]

    def route(self, src: int, dst: int) -> List[int]:
        """Tiles visited under XY routing, inclusive of both endpoints."""
        return list(self._routes[src * self._num_tiles + dst])

    def latency(self, src: int, dst: int, total_flits: int, now: int) -> int:
        """Delivery latency of a ``total_flits``-flit packet sent at ``now``.

        When contention modelling is on, each link on the route is occupied
        for ``total_flits`` cycles and a packet arriving at a busy link
        waits for it to drain.
        """
        return self.traverse(src, dst, total_flits, now)[1]

    def traverse(self, src: int, dst: int, total_flits: int,
                 now: int) -> Tuple[int, int]:
        """``(hops, latency)`` of one packet — one call on the send path.

        Every sender needs the hop count (traffic accounting) *and* the
        delivery latency; fusing them saves a table access and a call
        per message on the hottest layer of the simulator.
        """
        if total_flits <= 0:
            raise ValueError("a packet has at least one flit")
        self.stat_packets += 1
        if src == dst:
            return 0, self.LOCAL_LATENCY
        links = self._links[src * self._num_tiles + dst]
        hops = len(links)
        self.stat_flit_hops += total_flits * hops
        if not self._model_contention:
            return hops, hops * self._link_latency + total_flits - 1
        time = now
        link_free = self._link_free
        link_latency = self._link_latency
        for link in links:
            free_at = link_free[link]
            start = time if time >= free_at else free_at
            link_free[link] = start + total_flits
            time = start + link_latency
        # pipelined serialization: trailing flits follow the header.
        time += total_flits - 1
        return hops, time - now

    def reset_contention(self) -> None:
        # In place: the compiled context prebinds this list for its
        # fused send helpers and must observe the reset.
        self._link_free[:] = [0] * (self._num_tiles * self._num_tiles)

    def count_packet(self, hops: int, total_flits: int = 1) -> None:
        """Count a packet whose delivery is not latency-simulated.

        Fire-and-forget messages (e.g. MESI's writeback ack) are charged
        to the traffic ledger but never pass through :meth:`latency`;
        this keeps the energy-model flit-hop counter reconciled with the
        ledger.
        """
        self.stat_packets += 1
        self.stat_flit_hops += total_flits * hops

    def reset_energy_counters(self) -> None:
        """Zero the observational counters (end of measurement warm-up)."""
        self.stat_packets = 0
        self.stat_flit_hops = 0

    def register_metrics(self, hub) -> None:
        """Register the NoC counters into a ``repro.obs`` hub
        (pull-based; called only when observability is enabled)."""
        hub.add_pull("noc_packets", lambda m=self: m.stat_packets,
                     help="packets injected into the mesh")
        hub.add_pull("noc_flit_hops", lambda m=self: m.stat_flit_hops,
                     help="flit-hops crossed (the paper's traffic unit)")

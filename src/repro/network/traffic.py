"""Flit-hop traffic accounting with deferred used/waste attribution.

The paper's Figures 5.1a-d break network traffic into:

* major categories: load (LD), store (ST), writeback (WB), overhead (OVH);
* within LD/ST: request control, response control, and response data split
  by destination (L1 or L2) and usefulness (Used or Waste);
* within WB: control, and data split by destination (L2 or Mem) and
  dirty (Used) vs. unmodified (Waste);
* overhead sub-types (unblock, invalidation, ack, NACK, WB-control, bloom).

Whether a delivered data word was Used or Waste is only known once the
waste profiler classifies it (possibly at end of simulation), so data
flit-hops are recorded against profile entries and resolved by
:meth:`TrafficLedger.finalize`.
"""

from __future__ import annotations

from typing import Dict, List

#: Major traffic categories.
LD = "LD"
ST = "ST"
WB = "WB"
OVH = "OVH"
MAJORS = (LD, ST, WB, OVH)

#: Sub-buckets of LD and ST traffic (paper Figure 5.1b/c legend).
REQ_CTL = "req_ctl"
RESP_CTL = "resp_ctl"
RESP_L1_USED = "resp_l1_used"
RESP_L1_WASTE = "resp_l1_waste"
RESP_L2_USED = "resp_l2_used"
RESP_L2_WASTE = "resp_l2_waste"
LDST_BUCKETS = (REQ_CTL, RESP_CTL, RESP_L1_USED, RESP_L1_WASTE,
                RESP_L2_USED, RESP_L2_WASTE)

#: Sub-buckets of WB traffic (paper Figure 5.1d legend).
WB_CONTROL = "control"
WB_L2_USED = "l2_used"
WB_L2_WASTE = "l2_waste"
WB_MEM_USED = "mem_used"
WB_MEM_WASTE = "mem_waste"
WB_BUCKETS = (WB_CONTROL, WB_L2_USED, WB_L2_WASTE, WB_MEM_USED, WB_MEM_WASTE)

#: Overhead sub-types (paper Section 5.2.4).
OVH_UNBLOCK = "unblock"
OVH_WB_CTL = "wb_ctl"
OVH_INVAL = "inval"
OVH_ACK = "ack"
OVH_NACK = "nack"
OVH_BLOOM = "bloom"
OVH_BUCKETS = (OVH_UNBLOCK, OVH_WB_CTL, OVH_INVAL, OVH_ACK, OVH_NACK,
               OVH_BLOOM)

#: Destinations for data words.
DEST_L1 = "l1"
DEST_L2 = "l2"
DEST_MEM = "mem"

#: Data-carrying sub-buckets per major; every other bucket is control.
#: The energy model charges both at the same per-flit-hop cost (flits
#: are link-width either way) but reports the split, and the
#: conservation audit reconciles the two halves against the NoC total.
DATA_BUCKETS = {
    LD: (RESP_L1_USED, RESP_L1_WASTE, RESP_L2_USED, RESP_L2_WASTE),
    ST: (RESP_L1_USED, RESP_L1_WASTE, RESP_L2_USED, RESP_L2_WASTE),
    WB: (WB_L2_USED, WB_L2_WASTE, WB_MEM_USED, WB_MEM_WASTE),
    OVH: (),
}


def split_flit_hops(breakdown: Dict[str, Dict[str, float]]):
    """``(data, control)`` flit-hop totals of a finalized breakdown.

    ``breakdown`` is the ``{major: {bucket: flit_hops}}`` mapping from
    :meth:`TrafficLedger.breakdown` (or ``RunResult.traffic``).  The two
    halves sum exactly to the ledger's grand total.
    """
    data = control = 0.0
    for major, buckets in breakdown.items():
        data_keys = DATA_BUCKETS.get(major, ())
        for bucket, hops in buckets.items():
            if bucket in data_keys:
                data += hops
            else:
                control += hops
    return data, control


# Deferred data-word deliveries awaiting a used/waste verdict are stored
# as (entries, per_word_flit_hops, major, dest) tuples — one element per
# data *message*, referencing the payload's profile entries, so the
# hot path allocates nothing per word.  finalize() still resolves and
# accumulates word by word, in arrival order, so the floating-point
# bucket totals are bit-identical to the old one-tuple-per-word scheme.


class TrafficLedger:
    """Accumulates flit-hops per (major, bucket) with deferred data verdicts."""

    def __init__(self, words_per_flit: int = 4) -> None:
        self.words_per_flit = words_per_flit
        self._buckets: Dict[str, Dict[str, float]] = {
            LD: {b: 0.0 for b in LDST_BUCKETS},
            ST: {b: 0.0 for b in LDST_BUCKETS},
            WB: {b: 0.0 for b in WB_BUCKETS},
            OVH: {b: 0.0 for b in OVH_BUCKETS},
        }
        self._deferred: List[tuple] = []
        self._finalized = False

    # -- control traffic ------------------------------------------------
    def add_request_ctl(self, major: str, hops: int) -> None:
        """One request control flit crossing ``hops`` links."""
        if major is not LD and major is not ST:
            self._check(major, (LD, ST))
        self._buckets[major][REQ_CTL] += hops

    def add_response_ctl(self, major: str, flit_hops: float) -> None:
        """Response header flit-hops (plus unfilled data-flit remainders)."""
        if major is not LD and major is not ST:
            self._check(major, (LD, ST))
        self._buckets[major][RESP_CTL] += flit_hops

    def add_wb_control(self, flit_hops: float) -> None:
        self._buckets[WB][WB_CONTROL] += flit_hops

    def add_overhead(self, subtype: str, hops: int, flits: int = 1) -> None:
        if subtype not in OVH_BUCKETS:
            raise ValueError(f"unknown overhead subtype {subtype!r}")
        self._buckets[OVH][subtype] += hops * flits

    # -- data traffic ---------------------------------------------------
    def add_data_words(self, major: str, dest: str, hops: int,
                       entries: List[object]) -> float:
        """Record a data payload of ``len(entries)`` words over ``hops``.

        Each word is charged ``hops / words_per_flit`` flit-hops against
        its profile entry; the unfilled remainder of the last flit is
        charged to response control (per paper Section 5.2).  Returns the
        number of data flits in the payload (for latency computation).
        """
        if major is not LD and major is not ST:
            self._check(major, (LD, ST))
        if dest not in (DEST_L1, DEST_L2):
            raise ValueError(f"data destination must be l1/l2, got {dest!r}")
        n_words = len(entries)
        if n_words == 0:
            return 0
        words_per_flit = self.words_per_flit
        data_flits = -(-n_words // words_per_flit)
        per_word = hops / words_per_flit
        # One deferred record per message; the entries list is freshly
        # built by every caller and never mutated afterwards.
        self._deferred.append((entries, per_word, major, dest))
        slack_words = data_flits * words_per_flit - n_words
        if slack_words:
            self._buckets[major][RESP_CTL] += slack_words * per_word
        return data_flits

    def add_wb_data_words(self, dest: str, hops: int, dirty_flags:
                          List[bool]) -> float:
        """Writeback payload; dirty words are Used, clean words Waste."""
        if dest not in (DEST_L2, DEST_MEM):
            raise ValueError(f"writeback destination must be l2/mem")
        n_words = len(dirty_flags)
        if n_words == 0:
            return 0
        words_per_flit = self.words_per_flit
        data_flits = -(-n_words // words_per_flit)
        per_word = hops / words_per_flit
        used_key = WB_L2_USED if dest == DEST_L2 else WB_MEM_USED
        waste_key = WB_L2_WASTE if dest == DEST_L2 else WB_MEM_WASTE
        wb_bucket = self._buckets[WB]
        for dirty in dirty_flags:
            wb_bucket[used_key if dirty else waste_key] += per_word
        slack_words = data_flits * words_per_flit - n_words
        if slack_words:
            wb_bucket[WB_CONTROL] += slack_words * per_word
        return data_flits

    # -- resolution ------------------------------------------------------
    def finalize(self) -> None:
        """Resolve deferred data verdicts from the waste profiler entries."""
        from repro.waste.profiler import Category
        used_cat = Category.USED
        buckets = self._buckets
        for entries, flit_hops, major, dest in self._deferred:
            major_bucket = buckets[major]
            if dest == DEST_L1:
                used_key, waste_key = RESP_L1_USED, RESP_L1_WASTE
            else:
                used_key, waste_key = RESP_L2_USED, RESP_L2_WASTE
            for entry in entries:
                # entry.category is the storage behind ProfileEntry.is_used;
                # the direct check skips a property call per data word.
                key = (used_key if entry.category is used_cat
                       else waste_key)
                major_bucket[key] += flit_hops
        self._deferred.clear()
        self._finalized = True

    # -- queries ---------------------------------------------------------
    def bucket(self, major: str, sub: str) -> float:
        self._require_finalized()
        return self._buckets[major][sub]

    def major_total(self, major: str) -> float:
        self._require_finalized()
        return sum(self._buckets[major].values())

    def total(self) -> float:
        self._require_finalized()
        return sum(self.major_total(m) for m in MAJORS)

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Deep copy of all buckets (finalized)."""
        self._require_finalized()
        return {m: dict(bs) for m, bs in self._buckets.items()}

    # -- helpers -----------------------------------------------------------
    def _check(self, major: str, allowed) -> None:
        if major not in allowed:
            raise ValueError(f"major {major!r} not in {allowed}")

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError("TrafficLedger.finalize() has not been called")

"""Bloom filters for the "L2 Request Bypass" optimization (Section 4.4).

Each L2 slice keeps a bank of 32 *counting* Bloom filters (8-bit counters,
512 entries, one H3 hash) tracking the line addresses with dirty words in
that slice.  Each L1 keeps 1-bit *shadow* copies of all ``32 x 16`` slice
filters: cleared at every barrier, copied from the L2 on the first demand
miss that needs a given filter, and updated locally with the line address
of every L1 writeback.  A negative L1 lookup proves no on-chip cache holds
dirty words for the line, so the request may go straight to memory.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


class H3Hash:
    """An H3 universal hash: XOR of per-bit random rows.

    ``h(x) = XOR of rows[i] for every set bit i of x``, reduced modulo the
    table size.  Deterministic per seed so simulations are reproducible.

    Evaluation is table-driven: the per-bit XOR is precomputed into one
    256-entry table per key byte, so a hash costs six table lookups
    instead of up to 48 bit tests (bit-for-bit identical results).
    """

    KEY_BITS = 48

    def __init__(self, table_size: int, seed: int) -> None:
        if table_size <= 0:
            raise ValueError("table size must be positive")
        self._table_size = table_size
        rng = random.Random(seed)
        self._rows = [rng.getrandbits(32) for _ in range(self.KEY_BITS)]
        # Byte-sliced lookup tables: _byte_tables[b][v] is the XOR of
        # rows for the set bits of value v at byte position b.
        self._byte_tables = []
        for b in range(self.KEY_BITS // 8):
            rows = self._rows[b * 8:(b + 1) * 8]
            table = []
            for value in range(256):
                acc = 0
                for i in range(8):
                    if value >> i & 1:
                        acc ^= rows[i]
                table.append(acc)
            self._byte_tables.append(tuple(table))

    def __call__(self, key: int) -> int:
        t = self._byte_tables
        acc = t[0][key & 255]
        key >>= 8
        b = 1
        while key and b < 6:
            acc ^= t[b][key & 255]
            key >>= 8
            b += 1
        return acc % self._table_size


class BloomFilter:
    """Plain (1 bit per entry) Bloom filter used at the L1s."""

    def __init__(self, entries: int, hashes: Sequence[H3Hash]) -> None:
        self._bits = bytearray(entries)
        self._hashes = list(hashes)

    def insert(self, key: int) -> None:
        for h in self._hashes:
            self._bits[h(key)] = 1

    def may_contain(self, key: int) -> bool:
        return all(self._bits[h(key)] for h in self._hashes)

    def clear(self) -> None:
        for i in range(len(self._bits)):
            self._bits[i] = 0

    def union_bits(self, bits: Sequence[int]) -> None:
        """OR another filter's bit projection into this one."""
        if len(bits) != len(self._bits):
            raise ValueError("filter size mismatch")
        for i, bit in enumerate(bits):
            if bit:
                self._bits[i] = 1

    def popcount(self) -> int:
        return sum(self._bits)

    @property
    def size(self) -> int:
        return len(self._bits)


class CountingBloomFilter:
    """Counting (8-bit saturating) Bloom filter used at the L2 slices."""

    COUNTER_MAX = 255

    def __init__(self, entries: int, hashes: Sequence[H3Hash]) -> None:
        self._counters = [0] * entries
        self._hashes = list(hashes)

    def insert(self, key: int) -> None:
        for h in self._hashes:
            idx = h(key)
            if self._counters[idx] < self.COUNTER_MAX:
                self._counters[idx] += 1

    def remove(self, key: int) -> None:
        for h in self._hashes:
            idx = h(key)
            if self._counters[idx] > 0:
                self._counters[idx] -= 1

    def may_contain(self, key: int) -> bool:
        return all(self._counters[h(key)] for h in self._hashes)

    def bit_projection(self) -> List[int]:
        """1-bit view of the counters, the payload of a filter-copy reply."""
        return [1 if c else 0 for c in self._counters]

    @property
    def size(self) -> int:
        return len(self._counters)


class SliceFilterBank:
    """The bank of counting Bloom filters at one L2 slice.

    The cache line address selects a filter (similar to a cache index) and
    is then hashed again for the Bloom lookup within that filter.
    """

    def __init__(self, num_filters: int, entries: int, num_hashes: int,
                 seed: int) -> None:
        if num_filters <= 0:
            raise ValueError("need at least one filter")
        self._num_filters = num_filters
        hashes = [H3Hash(entries, seed * 1000 + i) for i in range(num_hashes)]
        self._filters = [CountingBloomFilter(entries, hashes)
                         for _ in range(num_filters)]
        self._select = H3Hash(num_filters, seed * 1000 + 997)
        # Energy-model event counters (observational only; consumed by
        # ``repro.energy`` — lookups and counter updates cost energy).
        self.stat_checks = 0      # membership queries against the bank
        self.stat_updates = 0     # counter inserts/removes

    def filter_index(self, line_addr: int) -> int:
        return self._select(line_addr)

    def insert(self, line_addr: int) -> None:
        self.stat_updates += 1
        self._filters[self.filter_index(line_addr)].insert(line_addr)

    def remove(self, line_addr: int) -> None:
        self.stat_updates += 1
        self._filters[self.filter_index(line_addr)].remove(line_addr)

    def may_contain(self, line_addr: int) -> bool:
        self.stat_checks += 1
        return self._filters[self.filter_index(line_addr)].may_contain(line_addr)

    def reset_energy_counters(self) -> None:
        self.stat_checks = 0
        self.stat_updates = 0

    def register_metrics(self, hub, tile: int) -> None:
        """Register this bank's counters into a ``repro.obs`` hub
        (pull-based; called only when observability is enabled)."""
        hub.add_pull("bloom_slice_checks", lambda b=self: b.stat_checks,
                     help="membership queries against L2 slice filter "
                          "banks", tile=tile)
        hub.add_pull("bloom_slice_updates", lambda b=self: b.stat_updates,
                     help="counter inserts/removes at L2 slice filter "
                          "banks", tile=tile)

    def bit_projection(self, filter_index: int) -> List[int]:
        return self._filters[filter_index].bit_projection()

    @property
    def num_filters(self) -> int:
        return self._num_filters


class L1FilterShadow:
    """An L1's shadow copies of every L2 slice's filters.

    ``valid[slice][filter]`` tracks which filters have been copied since the
    last barrier.  Lookups on uncopied filters are not allowed — callers
    must first fetch the projection from the slice (which costs overhead
    traffic) and :meth:`install`.
    """

    def __init__(self, num_slices: int, num_filters: int, entries: int,
                 num_hashes: int, seed: int) -> None:
        hashes = [H3Hash(entries, seed * 1000 + i) for i in range(num_hashes)]
        self._filters = [
            [BloomFilter(entries, hashes) for _ in range(num_filters)]
            for _ in range(num_slices)
        ]
        self._valid = [[False] * num_filters for _ in range(num_slices)]
        self._select = H3Hash(num_filters, seed * 1000 + 997)
        # Energy-model event counters (observational only).
        self.stat_checks = 0      # shadow membership queries
        self.stat_inserts = 0     # writeback-driven shadow inserts
        self.stat_installs = 0    # filter projections copied from an L2

    def filter_index(self, line_addr: int) -> int:
        return self._select(line_addr)

    def has_copy(self, slice_id: int, line_addr: int) -> bool:
        return self._valid[slice_id][self.filter_index(line_addr)]

    def install(self, slice_id: int, filter_index: int,
                bits: Sequence[int]) -> None:
        """Union a slice filter's bit projection into the shadow copy."""
        self.stat_installs += 1
        self._filters[slice_id][filter_index].union_bits(bits)
        self._valid[slice_id][filter_index] = True

    def note_writeback(self, slice_id: int, line_addr: int) -> None:
        """Every L1 writeback inserts its line address into the shadow."""
        self.stat_inserts += 1
        self._filters[slice_id][self.filter_index(line_addr)].insert(line_addr)

    def may_contain(self, slice_id: int, line_addr: int) -> bool:
        if not self.has_copy(slice_id, line_addr):
            raise RuntimeError("querying an uncopied filter; fetch it first")
        self.stat_checks += 1
        return self._filters[slice_id][self.filter_index(line_addr)].may_contain(line_addr)

    def reset_energy_counters(self) -> None:
        self.stat_checks = 0
        self.stat_inserts = 0
        self.stat_installs = 0

    def register_metrics(self, hub, tile: int) -> None:
        """Register this shadow's counters into a ``repro.obs`` hub
        (pull-based; called only when observability is enabled)."""
        for stat, attr in (("checks", "stat_checks"),
                           ("inserts", "stat_inserts"),
                           ("installs", "stat_installs")):
            hub.add_pull(f"bloom_shadow_{stat}",
                         lambda s=self, a=attr: getattr(s, a),
                         help=f"L1 shadow Bloom filter {stat}",
                         tile=tile)

    def clear(self) -> None:
        """Barrier: wipe all shadow copies and validity bits."""
        for slice_filters, slice_valid in zip(self._filters, self._valid):
            for f in slice_filters:
                f.clear()
            for i in range(len(slice_valid)):
                slice_valid[i] = False

"""Bloom filters for the L2 Request Bypass optimization."""

from repro.bloom.filters import (
    BloomFilter,
    CountingBloomFilter,
    H3Hash,
    L1FilterShadow,
    SliceFilterBank,
)

__all__ = [
    "BloomFilter", "CountingBloomFilter", "H3Hash", "L1FilterShadow",
    "SliceFilterBank",
]

"""DDR3 DRAM timing model and FR-FCFS memory controller."""

from repro.dram.model import LINES_PER_ROW, DramChannel

__all__ = ["DramChannel", "LINES_PER_ROW"]

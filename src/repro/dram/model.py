"""DDR3-style DRAM timing model with an FR-FCFS memory controller.

This stands in for DRAMSim2 in the paper's stack.  Each corner-tile memory
controller owns one single-channel DIMM with ``ranks * banks`` banks and an
open-page row-buffer policy.  Requests are scheduled first-ready
first-come-first-served: row-buffer hits are served before older row misses.

Per the paper's assumption (Section 3.1, "Dirty-Words-Only Writeback"), the
model accepts word-masked writes; reads always fetch a full line from the
DRAM array (conventional DDR3), with any Flex filtering happening in the
memory controller after the read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.config import SystemConfig
from repro.engine.events import EventQueue

#: Lines per 8KB DRAM row (64-byte lines).
LINES_PER_ROW = 128


@dataclass(slots=True)
class _Bank:
    open_row: Optional[int] = None
    busy_until: int = 0


@dataclass(slots=True)
class _Request:
    line_addr: int
    is_write: bool
    arrival: int
    callback: Optional[Callable[..., None]]
    args: Tuple
    seq: int


class DramChannel:
    """One memory channel: FR-FCFS queue in front of banked DRAM."""

    def __init__(self, config: SystemConfig, queue: EventQueue) -> None:
        self._config = config
        self._queue = queue
        self._num_banks = config.dram_banks * config.dram_ranks
        self._banks: List[_Bank] = [_Bank() for _ in range(self._num_banks)]
        self._pending: List[_Request] = []
        self._bus_free = 0
        self._dispatch_scheduled = False
        self._seq = 0
        # statistics
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        # Energy-model command counters: every row miss issues an
        # ACTIVATE; misses on a bank with another row open additionally
        # issue a PRECHARGE first.  Observational only.
        self.activates = 0
        self.precharges = 0
        # Measurement-window baseline: the cumulative stats above cover
        # the whole run (warm-up included, the long-standing dram_stats
        # convention), but energy must follow the post-warm-up window
        # like every other component, so the warm-up reset snapshots the
        # counts and window_commands() reports the difference.
        self._window_base = (0, 0, 0, 0)
        # Observability hook: when set (by repro.obs.ObsSession), fired
        # once per serviced request as ``on_service(line_addr, is_write,
        # bank, row_hit, arrival, start, done)``.  ``arrival`` is when
        # the request entered the controller queue, so the hook can split
        # queue wait (start - arrival) from array service (done - start).
        # None by default — the only disabled-path cost is this attribute
        # test per DRAM service, which is orders of magnitude rarer than
        # scheduler events.
        self.on_service: Optional[Callable[..., None]] = None

    # -- address mapping ---------------------------------------------------
    def bank_of(self, line_addr: int) -> int:
        return (line_addr // LINES_PER_ROW) % self._num_banks

    def row_of(self, line_addr: int) -> int:
        return line_addr // (LINES_PER_ROW * self._num_banks)

    def same_row(self, line_a: int, line_b: int) -> bool:
        """True when both lines live in the same row of the same bank.

        The L2-Flex optimization only prefetches extra lines that share the
        critical line's DRAM row, because row activation is expensive.
        """
        return (self.bank_of(line_a) == self.bank_of(line_b)
                and self.row_of(line_a) == self.row_of(line_b))

    # -- public interface ----------------------------------------------------
    def read(self, line_addr: int, callback: Callable[..., None],
             *args) -> None:
        """Read a line; ``callback(*args, completion_time)`` fires when
        the data is out (closure-free: pass a bound method plus its
        state instead of capturing it in a lambda)."""
        self._enqueue(_Request(line_addr, False, self._queue.now, callback,
                               args, self._next_seq()))

    def write(self, line_addr: int,
              callback: Optional[Callable[..., None]] = None,
              *args) -> None:
        """Write a (possibly word-masked) line; fire-and-forget by default."""
        self._enqueue(_Request(line_addr, True, self._queue.now, callback,
                               args, self._next_seq()))

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def reset_energy_counters(self) -> None:
        """Start the measurement window (end of warm-up)."""
        self._window_base = (self.reads, self.writes, self.activates,
                             self.precharges)

    def window_commands(self) -> Dict[str, int]:
        """Command counts since the last :meth:`reset_energy_counters`."""
        reads, writes, activates, precharges = self._window_base
        return {"reads": self.reads - reads,
                "writes": self.writes - writes,
                "activates": self.activates - activates,
                "precharges": self.precharges - precharges}

    def register_metrics(self, hub, tile: int) -> None:
        """Register this channel's counters into a ``repro.obs`` hub.

        The command counters pull :meth:`window_commands` so the hub
        reconciles with ``RunResult.energy_counters``' measurement
        window; row hits/misses keep the whole-run ``dram_stats``
        scope.  Pull-based — called only when observability is enabled.
        """
        for cmd in ("reads", "writes", "activates", "precharges"):
            hub.add_pull(f"dram_{cmd}",
                         lambda d=self, c=cmd: d.window_commands()[c],
                         help=f"DRAM {cmd} in the measurement window",
                         mc=tile)
        hub.add_pull("dram_row_hits", lambda d=self: d.row_hits,
                     help="row-buffer hits (whole run)", mc=tile)
        hub.add_pull("dram_row_misses", lambda d=self: d.row_misses,
                     help="row-buffer misses (whole run)", mc=tile)
        hub.add_pull("dram_queue_depth", lambda d=self: d.queue_depth,
                     kind="gauge", help="pending requests at the memory "
                     "controller", mc=tile)

    # -- internals -----------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _enqueue(self, request: _Request) -> None:
        self._pending.append(request)
        self._schedule_dispatch(self._queue.now)

    def _schedule_dispatch(self, when: int) -> None:
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True
        now = self._queue.now
        self._queue.schedule_call(when if when >= now else now,
                                  self._dispatch)

    def _dispatch(self) -> None:
        self._dispatch_scheduled = False
        pending = self._pending
        if not pending:
            return
        now = self._queue.now
        request = self._select(now)
        if request is None:
            # All needed banks busy; retry when the earliest one frees up.
            banks = self._banks
            num_banks = self._num_banks
            wake = min(
                banks[(r.line_addr // LINES_PER_ROW) % num_banks].busy_until
                for r in pending)
            self._schedule_dispatch(max(wake, now + 1))
            return
        pending.remove(request)
        done = self._service(request, now)
        if pending:
            # The next request cannot start before the shared data bus
            # frees (polling sooner only burns events), which is exactly
            # ``done`` — so the completion callback and the follow-on
            # dispatch fuse into a single wakeup.  The two used to be
            # back-to-back heap entries at the same cycle (consecutive
            # seqs, nothing can interleave), so running them in sequence
            # from one event preserves the global firing order exactly.
            wake = now + 1
            if self._bus_free > wake:
                wake = self._bus_free
            if wake == done:
                self._dispatch_scheduled = True
                self._queue.schedule_call(done, self._serviced,
                                          request.callback, request.args)
            else:
                # Degenerate timing configs (zero-latency DRAM) can pull
                # the bus-free poll off the completion cycle; keep the
                # pre-fusion two-event shape for those.
                if request.callback is not None:
                    self._queue.schedule_call(done, request.callback,
                                              *request.args, done)
                self._schedule_dispatch(wake)
        elif request.callback is not None:
            self._queue.schedule_call(done, request.callback,
                                      *request.args, done)

    def _serviced(self, callback: Optional[Callable[..., None]],
                  args: Tuple) -> None:
        """Fused completion: deliver the data, then dispatch the next
        request.  ``_dispatch_scheduled`` stays True through the
        callback — mirroring the pre-fusion state where the follow-on
        dispatch event was already in the queue — so a re-entrant
        enqueue from the callback cannot double-schedule."""
        if callback is not None:
            callback(*args, self._queue.now)
        self._dispatch()

    #: FR-FCFS scheduling window: real controllers reorder over a bounded
    #: queue prefix, which also keeps selection O(window) however deep
    #: the backlog grows.
    SCHED_WINDOW = 32

    def _select(self, now: int) -> Optional[_Request]:
        """FR-FCFS: oldest row-buffer hit on a ready bank, else oldest ready."""
        oldest_ready = None
        scanned = 0
        banks = self._banks
        num_banks = self._num_banks
        window = self.SCHED_WINDOW
        row_span = LINES_PER_ROW * num_banks
        for request in self._pending:   # queue order == age order
            line_addr = request.line_addr
            bank = banks[(line_addr // LINES_PER_ROW) % num_banks]
            if bank.busy_until > now:
                continue
            if bank.open_row == line_addr // row_span:
                return request
            if oldest_ready is None:
                oldest_ready = request
            scanned += 1
            if scanned >= window:
                break
        return oldest_ready

    def _service(self, request: _Request, now: int) -> int:
        cfg = self._config
        bank_index = self.bank_of(request.line_addr)
        bank = self._banks[bank_index]
        row = self.row_of(request.line_addr)
        ready = max(now, bank.busy_until)
        row_hit = bank.open_row == row
        if row_hit:
            self.row_hits += 1
            access = cfg.dram_t_cl
        elif bank.open_row is None:
            self.row_misses += 1
            self.activates += 1
            access = cfg.dram_t_rcd + cfg.dram_t_cl
        else:
            self.row_misses += 1
            self.activates += 1
            self.precharges += 1
            access = cfg.dram_t_rp + cfg.dram_t_rcd + cfg.dram_t_cl
        bank.open_row = row
        # Bank access latencies overlap across banks; only the data burst
        # serializes on the shared channel bus.
        data_start = max(ready + access, self._bus_free)
        done = data_start + cfg.dram_t_burst
        bank.busy_until = done
        self._bus_free = done
        if request.is_write:
            self.writes += 1
        else:
            self.reads += 1
        if self.on_service is not None:
            self.on_service(request.line_addr, request.is_write, bank_index,
                            row_hit, request.arrival, now, done)
        return done

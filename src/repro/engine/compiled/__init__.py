"""Table-compiled execution engine (``SystemConfig.engine = "compiled"``).

Compiles each protocol's policy stack into flat transition tables at
system-construction time and executes them with one generic
array-driven interpreter over pooled (array-backed) accounting state.
Bit-identical to the reference engine — the golden grid pins every
timing, traffic, waste and energy counter under both — just faster.

Layout:

* :mod:`~repro.engine.compiled.tables` — policy-stack -> table compiler;
* :mod:`~repro.engine.compiled.pools` — integer-handle waste profilers
  and traffic ledger over run-lifetime pools;
* :mod:`~repro.engine.compiled.interp` — the interpreter core and the
  pooled simulation context;
* :mod:`~repro.engine.compiled.protocols` — fused protocol cores that
  inline the hot handler paths over the pooled state.
"""

from repro.engine.compiled.interp import (
    CompiledCore, CompiledSimContext, core_class)
from repro.engine.compiled.pools import (
    PooledCacheLevelProfiler, PooledMemoryProfiler, PooledTrafficLedger,
    WastePools)
from repro.engine.compiled.protocols import (
    COMPILED_PROTOCOL_CORES, CompiledDenovoSystem, CompiledMesiSystem,
    build_compiled_protocol_system)
from repro.engine.compiled.tables import (
    ACTION_LISTS, CompiledProgram, compile_protocol, compile_status)

__all__ = [
    "ACTION_LISTS", "COMPILED_PROTOCOL_CORES", "CompiledCore",
    "CompiledDenovoSystem", "CompiledMesiSystem", "CompiledProgram",
    "CompiledSimContext", "PooledCacheLevelProfiler",
    "PooledMemoryProfiler", "PooledTrafficLedger", "WastePools",
    "build_compiled_protocol_system", "compile_protocol",
    "compile_status", "core_class",
]

"""Fused protocol cores for the compiled engine.

The reference protocol handlers are written as small composable methods
(`lookup` -> `_profile_load_hit` -> `send_*` -> ledger), which is the
right shape for the golden reference but costs a Python call per layer
on every simulated message.  This module subclasses each protocol core
with **fused** versions of its hottest handlers: the same state
transitions, probe charges, LRU touches, profiler FSM events, ledger
float-adds and schedule calls, executed inline against the compiled
context's array pools (:mod:`repro.engine.compiled.pools`) and prebound
ledger buckets (:class:`~repro.engine.compiled.interp.CompiledSimContext`).

Correctness contract (checked by ``tests/test_engine_parity.py``): for
every handler fused here, the sequence of observable effects is
reproduced exactly —

* one ``stat_probes`` increment per reference ``lookup()`` call,
  including the deliberately redundant re-probes of the reference
  (``_can_reserve`` after ``load``'s lookup, ``_complete_load`` with
  ``touch=False``);
* LRU touches only where the reference touches (``lookup(touch=True)``);
* waste-profiler FSM transitions in reference order (first event wins);
* ledger bucket additions in reference float-accumulation order;
* ``schedule_call`` invocations in reference order (the event queue
  breaks time ties by insertion sequence).

Handlers *not* fused (forwarding, NACK/heal, Flex gathers, L2
eviction/recall, memory path) run the inherited reference bodies — on a
compiled context those still benefit from the fused ``ctx.send_*``
helpers, which ``CoherenceKernel.__init__`` binds by name.
"""

from __future__ import annotations

from repro.cache.writebuffer import WriteCombineEntry
from repro.coherence import build_protocol_system
from repro.coherence.denovo import (
    DenovoSystem, L2W_INVALID, L2W_REG, L2W_VALID, W_INVALID, W_REG,
    W_VALID)
from repro.coherence.mesi import (
    DIR_EXCL, L1_E, L1_M, L1_PENDING, L1_S, MesiSystem)
from repro.common.addressing import WORDS_PER_LINE
from repro.core.context import (
    L2_ACCESS_LATENCY, L2_OCCUPANCY, SERVED_L2, LoadRequest, StoreRequest)
from repro.engine.compiled.pools import (
    C_EVICT, C_FETCH, C_INVALIDATE, C_USED, C_WRITE, _LINE_ZEROS)
from repro.network.traffic import (
    DEST_L1, DEST_L2, LD, OVH, OVH_ACK, OVH_INVAL, OVH_UNBLOCK,
    OVH_WB_CTL, REQ_CTL, RESP_CTL, ST)
from repro.waste.profiler import (
    _EVICT_I, _FETCH_I, _INVALIDATE_I, _USED_I, _WRITE_I)

_FULL_MASK = (1 << WORDS_PER_LINE) - 1


class _FusedHierarchyMixin:
    """Fused kernel-layer primitives shared by both protocol cores.

    These override :class:`~repro.coherence.kernel.CoherenceKernel`
    methods, so every caller — fused or inherited reference handler —
    gets the flattened bodies.
    """

    def _can_reserve(self, core, line_addr):
        # Reference: lookup(touch=False), then one lookup(touch=False)
        # per protected line mapping to the same set.
        cache = self.l1[core]
        cache.stat_probes += 1
        lines = cache._lines
        if line_addr in lines:
            return True
        shift = cache._index_shift
        nsets = cache._num_sets
        idx = (line_addr >> shift) % nsets
        protected_in_set = 0
        for la in self._protected[core]:
            if (la >> shift) % nsets == idx:
                cache.stat_probes += 1
                if la in lines:
                    protected_in_set += 1
        return protected_in_set < cache._assoc

    def _allocate_l1(self, core, line_addr):
        cache = self.l1[core]
        cache.stat_probes += 1              # the reference lookup(touch)
        lines = cache._lines
        line = lines.get(line_addr)
        idx = (line_addr >> cache._index_shift) % cache._num_sets
        order = cache._lru[idx]
        if line is not None:
            if order[0] != line_addr:
                order.remove(line_addr)
                order.insert(0, line_addr)
            return line
        tags = cache._tags[idx]
        if len(tags) >= cache._assoc:
            victim = tags[order[-1]]        # victim_for: no probe
            if victim.line_addr in self._protected[core]:
                # One probe, on the selected candidate only.
                victim = self._find_unprotected_victim(core, line_addr)
            va = victim.line_addr           # cache.remove(va)
            del tags[va]
            del lines[va]
            order.remove(va)
            cache.stat_evictions += 1
            self._evict_l1_line(core, victim)
        line = cache._line_factory(line_addr)   # cache.allocate: no probe
        tags[line_addr] = line
        lines[line_addr] = line
        order.insert(0, line_addr)
        cache.stat_installs += 1
        return line

    def _profile_load_hit(self, core, line, addr):
        ctx = self.ctx
        prof = ctx.l1_prof
        row = prof._active.get(((addr >> 4) << 6) | core)
        if row is not None:
            handle = row[addr & 15]
            if handle is not None and prof._pool[handle] == 0:
                prof._pool[handle] = C_USED
                prof._counts[_USED_I] += 1
        inst = line.mem_inst[addr & 15]
        if inst is not None:
            mem = ctx.mem_prof
            if mem._cat[inst] == 0:
                mem._settle_pending(inst, C_USED, _USED_I)

    # -- shared inline fragments (bound as plain methods) ---------------

    def _pool_evict_line(self, prof, key):
        """Inline ``CacheLevelProfiler.on_evict_line`` on a pooled row."""
        row = prof._active.pop(key, None)
        if row is None:
            return
        pool = prof._pool
        counts = prof._counts
        for handle in row:
            if handle is not None and pool[handle] == 0:
                pool[handle] = C_EVICT
                counts[_EVICT_I] += 1

    def _mem_drop_copies(self, mem, handles):
        """Inline ``MemoryProfiler.drop_copies(..., invalidated=False)``."""
        cat = mem._cat
        refs = mem._refs
        settle = mem._settle_pending
        for handle in handles:
            if handle is None:
                continue
            refs[handle] -= 1
            if refs[handle] <= 0 and cat[handle] == 0:
                settle(handle, C_EVICT, _EVICT_I)

    def _invalidate_l1_inline(self, core, line):
        """Inline ``_invalidate_l1_copy`` + ``l1.remove(line_addr)``."""
        ctx = self.ctx
        line_addr = line.line_addr
        prof = ctx.l1_prof
        row = prof._active.pop((line_addr << 6) | core, None)
        if row is not None:
            pool = prof._pool
            counts = prof._counts
            for handle in row:
                if handle is not None and pool[handle] == 0:
                    pool[handle] = C_INVALIDATE
                    counts[_INVALIDATE_I] += 1
        mem = ctx.mem_prof
        cat = mem._cat
        refs = mem._refs
        settle = mem._settle_pending
        for handle in line.mem_inst:
            if handle is None:
                continue
            refs[handle] -= 1
            if refs[handle] <= 0 and cat[handle] == 0:
                settle(handle, C_INVALIDATE, _INVALIDATE_I)
        cache = self.l1[core]
        idx = (line_addr >> cache._index_shift) % cache._num_sets
        del cache._tags[idx][line_addr]
        del cache._lines[line_addr]
        cache._lru[idx].remove(line_addr)
        cache.stat_evictions += 1


class CompiledMesiSystem(_FusedHierarchyMixin, MesiSystem):
    """MESI core with the request/fill/grant path fused."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self._nt = ctx.config.num_tiles
        program = ctx.program
        assert program.owned_state == L1_M
        self._line_flits = -(-WORDS_PER_LINE // ctx._wpf)
        self._line_slack = self._line_flits * ctx._wpf - WORDS_PER_LINE

    # -- core-facing -----------------------------------------------------

    def load(self, core, addr, at, on_done):
        line_addr = addr >> 4
        cache = self.l1[core]
        cache.stat_probes += 1
        line = cache._lines.get(line_addr)
        if line is not None:
            idx = (line_addr >> cache._index_shift) % cache._num_sets
            order = cache._lru[idx]
            if order[0] != line_addr:
                order.remove(line_addr)
                order.insert(0, line_addr)
            if line.state != L1_PENDING:
                if line_addr in self.sbuf[core]._pending:
                    self._wait_on_line(core, line_addr, addr, at, on_done)
                    return None
                self._profile_load_hit(core, line, addr)
                return at + 1
            self._wait_on_line(core, line_addr, addr, at, on_done)
            return None
        if not self._can_reserve(core, line_addr):
            self._retire_hooks[core].append(
                lambda t: self._retry_load(core, addr, t, on_done))
            return None
        request = LoadRequest(core=core, addr=addr, t_issue=at,
                              on_done=on_done)
        # _reserve_line inline
        self._protected[core].add(line_addr)
        line = self._allocate_l1(core, line_addr)
        line.state = L1_PENDING
        # send_req_ctl inline
        ctx = self.ctx
        home = line_addr % self._nt
        hops, delay = ctx._traverse(core, home, 1, at)
        ctx._lbuckets[LD][REQ_CTL] += hops
        arrive = at + delay
        ctx._schedule_call(arrive, self._dir_gets, request, arrive)
        return None

    def store(self, core, addr, at):
        line_addr = addr >> 4
        sbuf = self.sbuf[core]
        cache = self.l1[core]
        cache.stat_probes += 1
        line = cache._lines.get(line_addr)
        if line is not None:
            idx = (line_addr >> cache._index_shift) % cache._num_sets
            order = cache._lru[idx]
            if order[0] != line_addr:
                order.remove(line_addr)
                order.insert(0, line_addr)
        if line_addr in sbuf._pending:
            self._pending_words[core][line_addr].add(addr & 15)
            return True
        if line is not None and (line.state == L1_E or line.state == L1_M):
            line.state = L1_M   # silent E->M upgrade
            self._apply_store_word(core, line, addr)
            return True
        if len(sbuf._pending) >= sbuf._capacity:
            return False
        if line is None and not self._can_reserve(core, line_addr):
            return False
        is_upgrade = line is not None and line.state == L1_S
        sbuf._pending.add(line_addr)
        self._pending_words[core][line_addr] = {addr & 15}
        request = StoreRequest(core=core, line_addr=line_addr, t_issue=at)
        self._store_reqs[core][line_addr] = request
        if line is None:
            self._protected[core].add(line_addr)
            line = self._allocate_l1(core, line_addr)
            line.state = L1_PENDING
        else:
            self._protected[core].add(line_addr)
        if is_upgrade:
            self.stat_upgrades += 1
        ctx = self.ctx
        home = line_addr % self._nt
        hops, delay = ctx._traverse(core, home, 1, at)
        ctx._lbuckets[ST][REQ_CTL] += hops
        arrive = at + delay
        ctx._schedule_call(arrive, self._dir_getx, request, is_upgrade,
                           arrive)
        return True

    # -- L1 helpers ------------------------------------------------------

    def _apply_store_word(self, core, line, addr):
        ctx = self.ctx
        prof = ctx.l1_prof
        row = prof._active.get(((addr >> 4) << 6) | core)
        if row is not None:
            handle = row[addr & 15]
            if handle is not None and prof._pool[handle] == 0:
                prof._pool[handle] = C_WRITE
                prof._counts[_WRITE_I] += 1
        mem = ctx.mem_prof
        pending = mem._pending_by_addr.pop(addr, None)
        if pending:
            cat = mem._cat
            counts = mem._counts
            for handle in pending:
                if cat[handle] == 0:
                    cat[handle] = C_WRITE
                    counts[_WRITE_I] += 1
        line.word_dirty[addr & 15] = True

    def _evict_l1_line(self, core, line):
        ctx = self.ctx
        at = ctx.queue.now
        line_addr = line.line_addr
        self._pool_evict_line(ctx.l1_prof, (line_addr << 6) | core)
        self._mem_drop_copies(ctx.mem_prof, line.mem_inst)
        home = line_addr % self._nt
        if line.state == L1_M:
            written = tuple(i for i, d in enumerate(line.word_dirty) if d)
            self._send_wb(core, home, at,
                          self._wb_l1_flags(line.word_dirty), DEST_L2,
                          self._dir_dirty_wb, line_addr, core, written)
        elif line.state == L1_E:
            hops, delay = ctx._traverse(core, home, 1, at)
            ctx._lbuckets[OVH][OVH_WB_CTL] += hops
            arrive = at + delay
            ctx._schedule_call(arrive, self._dir_clean_wb, line_addr, core,
                               arrive)

    # -- directory: GETS -------------------------------------------------

    def _dir_gets(self, req, arrive):
        ctx = self.ctx
        line_addr = req.addr >> 4
        home = line_addr % self._nt
        if req.t_home_arrive is None:
            req.t_home_arrive = arrive
        # l2_service_time inline
        l2f = ctx._l2_free
        free = l2f[home]
        start = arrive if arrive >= free else free
        l2f[home] = start + L2_OCCUPANCY
        t = start + L2_ACCESS_LATENCY
        cache = self.l2[home]
        cache.stat_probes += 1
        entry = cache._lines.get(line_addr)
        if entry is not None:
            idx = (line_addr >> cache._index_shift) % cache._num_sets
            order = cache._lru[idx]
            if order[0] != line_addr:
                order.remove(line_addr)
                order.insert(0, line_addr)
            if entry.busy:
                entry.waiters.append(lambda tt: self._dir_gets(req, tt))
                return
            if entry.has_data and entry.owner is None:
                # _dir_gets_hit inline
                core = req.core
                grant_e = not entry.sharers
                if grant_e:
                    entry.dir_state = DIR_EXCL
                    entry.owner = core
                    self.stat_e_grants += 1
                entry.sharers.add(core)
                entry.busy = True
                self._l2_use_line(ctx.l2_prof, (line_addr << 6) | home)
                l1_entries = self._l1_arrivals_line(
                    ctx.l1_prof, (line_addr << 6) | core)
                insts = list(entry.mem_inst)
                state = L1_E if grant_e else L1_S
                req.served_by = SERVED_L2
                req.t_fill_send = t
                self._send_line_data(ctx, LD, home, core, t, l1_entries,
                                     self._l1_load_fill, req, state, insts,
                                     home, False)
                return
            if entry.owner is not None:
                self._dir_gets_fwd(req, entry, home, t)
                return
        self._dir_miss_to_memory(req, line_addr, home, t, major=LD)

    # -- directory: GETX -------------------------------------------------

    def _dir_getx(self, req, upgrade, arrive):
        ctx = self.ctx
        line_addr = req.line_addr
        home = line_addr % self._nt
        if req.t_home_arrive is None:
            req.t_home_arrive = arrive
        l2f = ctx._l2_free
        free = l2f[home]
        start = arrive if arrive >= free else free
        l2f[home] = start + L2_OCCUPANCY
        t = start + L2_ACCESS_LATENCY
        cache = self.l2[home]
        cache.stat_probes += 1
        entry = cache._lines.get(line_addr)
        if entry is not None:
            idx = (line_addr >> cache._index_shift) % cache._num_sets
            order = cache._lru[idx]
            if order[0] != line_addr:
                order.remove(line_addr)
                order.insert(0, line_addr)
            if entry.busy:
                entry.waiters.append(
                    lambda tt: self._dir_getx(req, upgrade, tt))
                return
        if entry is None or not entry.has_data and entry.owner is None:
            self._dir_miss_to_memory_store(req, line_addr, home, t)
            return
        core = req.core
        if entry.owner is not None and entry.owner != core:
            self._dir_getx_fwd(req, entry, home, t)
            return
        entry.busy = True
        sharers = [s for s in entry.sharers if s != core]
        acks_needed = len(sharers)
        still_sharer = core in entry.sharers
        for s in sharers:
            self._send_invalidation_for(line_addr, home, s, core, t)
        entry.sharers = {core}
        entry.dir_state = DIR_EXCL
        entry.owner = core
        if upgrade and still_sharer:
            # send_resp_ctl inline (data-less grant)
            hops, delay = ctx._traverse(home, core, 1, t)
            ctx._lbuckets[ST][RESP_CTL] += hops
            arrive2 = t + delay
            ctx._schedule_call(arrive2, self._l1_store_grant, req, home,
                               acks_needed, None, None, False, arrive2)
        else:
            self._l2_use_line(ctx.l2_prof, (line_addr << 6) | home)
            l1_entries = self._l1_arrivals_line(
                ctx.l1_prof, (line_addr << 6) | core)
            insts = list(entry.mem_inst)
            self._send_line_data(ctx, ST, home, core, t, l1_entries,
                                 self._l1_store_grant, req, home,
                                 acks_needed, l1_entries, insts, False)

    # -- L1 fill / completion --------------------------------------------

    def _l1_load_fill(self, req, state, insts, home, from_memory, t):
        ctx = self.ctx
        core = req.core
        line_addr = req.addr >> 4
        # _install_l1_fill inline
        line = self._allocate_l1(core, line_addr)
        line.reset_words()
        line.state = state
        line.mem_inst[:] = insts
        refs = ctx.mem_prof._refs
        for inst in insts:
            if inst is not None:
                refs[inst] += 1
        self._complete_load(req, t)
        # directory unblock (send_overhead inline)
        hops, delay = ctx._traverse(core, home, 1, t)
        ctx._lbuckets[OVH][OVH_UNBLOCK] += hops
        arrive = t + delay
        ctx._schedule_call(arrive, self._dir_unblock, home, line_addr,
                           arrive)

    def _complete_load(self, req, t):
        core = req.core
        line_addr = req.addr >> 4
        self._protected[core].discard(line_addr)
        cache = self.l1[core]
        cache.stat_probes += 1              # lookup(touch=False)
        line = cache._lines.get(line_addr)
        if line is not None:
            self._profile_load_hit(core, line, req.addr)
        req.on_done(t + 1, req)
        self._wake_line_waiters(core, line_addr, t + 1)

    def _l1_store_grant(self, req, home, acks_needed, data_entries, insts,
                        unblock_ctl_only, t):
        ctx = self.ctx
        core = req.core
        line_addr = req.line_addr
        cache = self.l1[core]
        if insts is not None:
            line = self._allocate_l1(core, line_addr)
            line.reset_words()
            line.state = L1_M
            line.mem_inst[:] = insts
            refs = ctx.mem_prof._refs
            for inst in insts:
                if inst is not None:
                    refs[inst] += 1
        else:
            cache.stat_probes += 1          # lookup(touch=False)
            line = cache._lines.get(line_addr)
            if line is not None:
                line.state = L1_M
        cache.stat_probes += 1              # reference re-lookup
        line = cache._lines.get(line_addr)
        offsets = self._pending_words[core].pop(line_addr, None)
        if offsets and line is not None:
            # _apply_store_word per offset; the profiler row is stable
            # across the loop (on_write/on_store_addr never swap rows).
            base = line_addr << 4
            prof = ctx.l1_prof
            row = prof._active.get((line_addr << 6) | core)
            pool = prof._pool
            counts = prof._counts
            mem = ctx.mem_prof
            by_addr = mem._pending_by_addr
            cat = mem._cat
            mcounts = mem._counts
            word_dirty = line.word_dirty
            for off in sorted(offsets):
                if row is not None:
                    handle = row[off]
                    if handle is not None and pool[handle] == 0:
                        pool[handle] = C_WRITE
                        counts[_WRITE_I] += 1
                pending = by_addr.pop(base + off, None)
                if pending:
                    for h in pending:
                        if cat[h] == 0:
                            cat[h] = C_WRITE
                            mcounts[_WRITE_I] += 1
                word_dirty[off] = True
        self._store_reqs[core].pop(line_addr, None)
        self._last_retire_mem[core] = req.went_to_memory
        self.sbuf[core]._pending.discard(line_addr)
        self._protected[core].discard(line_addr)
        # directory unblock (send_overhead inline)
        hops, delay = ctx._traverse(core, home, 1, t)
        ctx._lbuckets[OVH][OVH_UNBLOCK] += hops
        arrive = t + delay
        ctx._schedule_call(arrive, self._dir_unblock, home, line_addr,
                           arrive)
        self._wake_line_waiters(core, line_addr, t + 1)
        self._fire_retire_hooks(core, t + 1)

    def _getx_at_owner(self, req, entry, owner, home, tt):
        ctx = self.ctx
        line_addr = entry.line_addr
        l1 = self.l1[owner]
        l1.stat_probes += 1                 # lookup(touch=False)
        oline = l1._lines.get(line_addr)
        if oline is None or (oline.state != L1_E and oline.state != L1_M):
            self._nack(ST, owner, req.core, tt, self._retry_getx, req,
                       False)
            self._clear_busy(entry)
            return
        core = req.core
        l1_entries = self._l1_arrivals_line(
            ctx.l1_prof, (line_addr << 6) | core)
        insts = list(oline.mem_inst)
        self._invalidate_l1_inline(owner, oline)
        entry.owner = core
        entry.sharers = {core}
        entry.dir_state = DIR_EXCL
        self._send_line_data(ctx, ST, owner, core, tt, l1_entries,
                             self._l1_store_grant, req, home, 0,
                             l1_entries, insts, False)

    def _send_invalidation_for(self, line_addr, home, sharer, requestor,
                               t):
        # send_overhead inline
        ctx = self.ctx
        hops, delay = ctx._traverse(home, sharer, 1, t)
        ctx._lbuckets[OVH][OVH_INVAL] += hops
        arrive = t + delay
        ctx._schedule_call(arrive, self._invalidate_at_sharer, line_addr,
                           sharer, requestor, arrive)

    def _invalidate_at_sharer(self, line_addr, sharer, requestor, tt):
        l1 = self.l1[sharer]
        l1.stat_probes += 1                 # lookup(touch=False)
        line = l1._lines.get(line_addr)
        if line is not None and line.state != L1_PENDING:
            self._invalidate_l1_inline(sharer, line)
        # fire-and-forget ack (send_overhead inline, no handler)
        ctx = self.ctx
        hops, _delay = ctx._traverse(sharer, requestor, 1, tt)
        ctx._lbuckets[OVH][OVH_ACK] += hops

    def _dir_unblock(self, home, line_addr, _t=0):
        cache = self.l2[home]
        cache.stat_probes += 1              # lookup(touch=False)
        entry = cache._lines.get(line_addr)
        if entry is not None:
            # _clear_busy inline
            entry.busy = False
            if entry.waiters:
                waiter = entry.waiters.pop(0)
                now = self._queue.now
                self._schedule_call(now + 1, waiter, now + 1)

    # -- inline fragments ------------------------------------------------

    def _l2_use_line(self, prof, key):
        """Inline ``l2_prof.on_use_line`` on a pooled row."""
        row = prof._active.get(key)
        if row is None:
            return
        pool = prof._pool
        counts = prof._counts
        for handle in row:
            if handle is not None and pool[handle] == 0:
                pool[handle] = C_USED
                counts[_USED_I] += 1

    def _l1_arrivals_line(self, prof, key):
        """Inline ``l1_prof.arrivals_line`` on the pooled profiler."""
        pool = prof._pool
        prof._total += WORDS_PER_LINE
        h0 = len(pool)
        pool.extend(_LINE_ZEROS)
        handles = list(range(h0, h0 + WORDS_PER_LINE))
        old_row = prof._active.get(key)
        if old_row is not None:
            counts = prof._counts
            for old in old_row:
                if old is not None and pool[old] == 0:
                    pool[old] = C_FETCH
                    counts[_FETCH_I] += 1
        prof._active[key] = list(handles)
        return handles

    def _send_line_data(self, ctx, major, src, dst, at, l1_entries,
                        handler, *args):
        """Inline ``send_data`` for a full-line payload to an L1."""
        hops = ctx.mesh._hops[src * self._nt + dst]
        bucket = ctx._lbuckets[major]
        bucket[RESP_CTL] += hops
        per_word = hops / ctx._wpf
        ctx._ldeferred.append((l1_entries, per_word, major, DEST_L1))
        slack = self._line_slack
        if slack:
            bucket[RESP_CTL] += slack * per_word
        _hops, delay = ctx._traverse(src, dst, 1 + self._line_flits, at)
        arrive = at + delay
        ctx._schedule_call(arrive, handler, *args, arrive)
        return arrive


class CompiledDenovoSystem(_FusedHierarchyMixin, DenovoSystem):
    """DeNovo core with the load/store/registration fast paths fused.

    Flex rungs (``flex_l1``/``flex_l2``) fall back to the inherited
    reference bodies for the multi-line gather/fill paths; the compiled
    tables record the same split (``CompiledProgram.line_granular``).
    """

    def __init__(self, ctx):
        super().__init__(ctx)
        self._nt = ctx.config.num_tiles
        program = ctx.program
        assert bool(program.line_granular) == self._line_granular
        assert program.owned_state == W_REG

    # -- core-facing -----------------------------------------------------

    def load(self, core, addr, at, on_done):
        line_addr = addr >> 4
        cache = self.l1[core]
        cache.stat_probes += 1
        line = cache._lines.get(line_addr)
        if line is not None:
            idx = (line_addr >> cache._index_shift) % cache._num_sets
            order = cache._lru[idx]
            if order[0] != line_addr:
                order.remove(line_addr)
                order.insert(0, line_addr)
            if line.word_state[addr & 15] != W_INVALID:
                self._profile_load_hit(core, line, addr)
                return at + 1
        waiters = self._inflight_fills[core].get(line_addr)
        if waiters is not None:
            waiters.append(
                lambda t: self._retry_load(core, addr, t, on_done))
            return None
        if line is None and not self._can_reserve(core, line_addr):
            self._retire_hooks[core].append(
                lambda t: self._retry_load(core, addr, t, on_done))
            return None
        request = LoadRequest(core=core, addr=addr, t_issue=at,
                              on_done=on_done)
        if line is None:
            self._protected[core].add(line_addr)
        bypassed = (self._bypass_response
                    and self.policies.bypass.bypasses(
                        self.ctx.regions.find(addr)))
        if bypassed and self.policies.bypass.request_enabled:
            self._bypass_request_path(request, at)
        else:
            # send_req_ctl inline
            ctx = self.ctx
            home = line_addr % self._nt
            hops, delay = ctx._traverse(core, home, 1, at)
            ctx._lbuckets[LD][REQ_CTL] += hops
            arrive = at + delay
            ctx._schedule_call(arrive, self._l2_gets, request, arrive)
        return None

    def store(self, core, addr, at):
        line_addr = addr >> 4
        cache = self.l1[core]
        cache.stat_probes += 1
        line = cache._lines.get(line_addr)
        if line is not None:
            idx = (line_addr >> cache._index_shift) % cache._num_sets
            order = cache._lru[idx]
            if order[0] != line_addr:
                order.remove(line_addr)
                order.insert(0, line_addr)
        else:
            # Write-validate: allocate without fetching.
            line = self._allocate_l1(core, line_addr)
        off = addr & 15
        already_owned = line.word_state[off] == W_REG
        self._apply_store_word(core, line, addr)
        if already_owned:
            return True
        wct = self.wct[core]
        entries = wct._entries
        entry = entries.get(line_addr)
        if entry is None:
            if len(entries) >= wct._capacity:
                oldest = wct.oldest()
                del entries[oldest.line_addr]
                self._send_registration(core, oldest, at)
            entry = WriteCombineEntry(line_addr=line_addr, created_at=at)
            entries[line_addr] = entry
        entry.word_mask |= 1 << off
        if entry.word_mask == _FULL_MASK:
            del entries[line_addr]
            self._send_registration(core, entry, at)
        elif not self._wct_timer_armed[core]:
            self._arm_wct_timer(core)
        return True

    # -- L1 basics -------------------------------------------------------

    def _apply_store_word(self, core, line, addr):
        off = addr & 15
        ctx = self.ctx
        prof = ctx.l1_prof
        row = prof._active.get(((addr >> 4) << 6) | core)
        if row is not None:
            handle = row[off]
            if handle is not None and prof._pool[handle] == 0:
                prof._pool[handle] = C_WRITE
                prof._counts[_WRITE_I] += 1
        mem = ctx.mem_prof
        pending = mem._pending_by_addr.pop(addr, None)
        if pending:
            cat = mem._cat
            counts = mem._counts
            for handle in pending:
                if cat[handle] == 0:
                    cat[handle] = C_WRITE
                    counts[_WRITE_I] += 1
        inst = line.mem_inst[off]
        if inst is not None:
            # drop_copy(invalidated=False) inline
            refs = mem._refs
            refs[inst] -= 1
            if refs[inst] <= 0 and mem._cat[inst] == 0:
                mem._settle_pending(inst, C_EVICT, _EVICT_I)
            line.mem_inst[off] = None
        line.word_state[off] = W_REG
        line.word_dirty[off] = True

    def _evict_l1_line(self, core, line):
        ctx = self.ctx
        at = ctx.queue.now
        line_addr = line.line_addr
        self._pool_evict_line(ctx.l1_prof, (line_addr << 6) | core)
        self._mem_drop_copies(ctx.mem_prof, line.mem_inst)
        pending = self.wct[core]._entries.pop(line_addr, None)
        word_dirty = line.word_dirty
        dirty_offsets = [i for i, d in enumerate(word_dirty) if d]
        if not dirty_offsets:
            return
        home = line_addr % self._nt
        pending_mask = pending.word_mask if pending is not None else 0
        plain = [o for o in dirty_offsets if not pending_mask >> o & 1]
        combined = [o for o in dirty_offsets if pending_mask >> o & 1]
        for offsets in (plain, combined):
            if not offsets:
                continue
            self._send_wb(
                core, home, at, [True] * len(offsets), DEST_L2,
                self._l2_accept_wb, core, line_addr, tuple(offsets))
        if self.l1_blooms:
            self.l1_blooms[core].note_writeback(home, line_addr)

    # -- load path: L2 ---------------------------------------------------

    def _l2_gets(self, req, arrive):
        ctx = self.ctx
        addr = req.addr
        line_addr = addr >> 4
        off = addr & 15
        home = line_addr % self._nt
        if req.t_home_arrive is None:
            req.t_home_arrive = arrive
        # l2_service_time inline
        l2f = ctx._l2_free
        free = l2f[home]
        start = arrive if arrive >= free else free
        l2f[home] = start + L2_OCCUPANCY
        t = start + L2_ACCESS_LATENCY
        cache = self.l2[home]
        cache.stat_probes += 1
        entry = cache._lines.get(line_addr)
        if entry is not None:
            idx = (line_addr >> cache._index_shift) % cache._num_sets
            order = cache._lru[idx]
            if order[0] != line_addr:
                order.remove(line_addr)
                order.insert(0, line_addr)
            word_state = entry.word_state
            if word_state[off] == L2W_REG:
                owner = entry.owners[off]
                if owner is not None and owner != req.core:
                    self._forward_to_owner(req, entry, home, t)
                    return
                if owner == req.core:
                    # Self-heal a registration raced by our own eviction.
                    if entry.word_dirty[off]:
                        word_state[off] = L2W_VALID
                    else:
                        word_state[off] = L2W_INVALID
                    entry.owners[off] = None
            if word_state[off] == L2W_VALID:
                self._respond_from_l2(req, entry, home, t)
                return
        self._load_miss_to_memory(req, entry, home, t)

    def _respond_from_l2(self, req, entry, home, t):
        if not self._line_granular:
            super()._respond_from_l2(req, entry, home, t)
            return
        ctx = self.ctx
        line_addr = req.addr >> 4
        core = req.core
        l1 = self.l1[core]
        l2 = self.l2[home]
        # _gather_l2_words, line-granular: one probe + batch charge; the
        # gathered line is ``entry`` itself (same slice, same address).
        l2.stat_probes += WORDS_PER_LINE
        base = line_addr << 4
        entry_state = entry.word_state
        words = [base + o for o in range(WORDS_PER_LINE)
                 if entry_state[o] == L2W_VALID]
        n = len(words)           # >= 1: the requested word is L2W_VALID
        l1.stat_probes += n      # lookup + (n - 1) batch charge
        l2.stat_probes += n
        l1_line = l1._lines.get(line_addr)
        if l1_line is None:
            flags = [False] * n
        else:
            state = l1_line.word_state
            flags = [state[w & 15] != W_INVALID for w in words]
        mem_inst = entry.mem_inst
        insts = [mem_inst[w & 15] for w in words]
        # l2_prof.on_use_words inline (single line -> one row get)
        l2p = ctx.l2_prof
        row = l2p._active.get((line_addr << 6) | home)
        if row is not None:
            pool = l2p._pool
            counts = l2p._counts
            for w in words:
                handle = row[w & 15]
                if handle is not None and pool[handle] == 0:
                    pool[handle] = C_USED
                    counts[_USED_I] += 1
        # l1_prof.arrivals_words inline (single line -> one row resolve)
        l1p = ctx.l1_prof
        pool1 = l1p._pool
        counts1 = l1p._counts
        l1p._total += n
        l1_entries = []
        append = l1_entries.append
        lkey = (line_addr << 6) | core
        row1 = None
        row1_resolved = False
        for w, present in zip(words, flags):
            handle = len(pool1)
            if present:
                pool1.append(C_FETCH)
                counts1[_FETCH_I] += 1
            else:
                pool1.append(0)
                if not row1_resolved:
                    row1 = l1p._active.get(lkey)
                    if row1 is None:
                        row1 = l1p._active[lkey] = [None] * WORDS_PER_LINE
                    row1_resolved = True
                slot = w & 15
                old = row1[slot]
                if old is not None and pool1[old] == 0:
                    pool1[old] = C_FETCH
                    counts1[_FETCH_I] += 1
                row1[slot] = handle
            append(handle)
        payload = list(zip(words, l1_entries, insts))
        req.served_by = SERVED_L2
        req.t_fill_send = t
        # send_data inline
        hops = ctx.mesh._hops[home * self._nt + core]
        bucket = ctx._lbuckets[LD]
        bucket[RESP_CTL] += hops
        wpf = ctx._wpf
        data_flits = -(-n // wpf)
        per_word = hops / wpf
        ctx._ldeferred.append((l1_entries, per_word, LD, DEST_L1))
        slack = data_flits * wpf - n
        if slack:
            bucket[RESP_CTL] += slack * per_word
        _hops, delay = ctx._traverse(home, core, 1 + data_flits, t)
        arrive = t + delay
        ctx._schedule_call(arrive, self._l1_load_fill, req, payload, True,
                           arrive)

    # -- L1 fill and completion ------------------------------------------

    def _l1_load_fill(self, req, payload, completes, t):
        if not self._line_granular:
            super()._l1_load_fill(req, payload, completes, t)
            return
        ctx = self.ctx
        core = req.core
        l1 = self.l1[core]
        req_line = req.addr >> 4
        if payload:
            # lookup + (len - 1) batch charge
            l1.stat_probes += len(payload)
            line = l1._lines.get(req_line)
            if line is None:
                line = self._allocate_l1(core, req_line)
            word_state = line.word_state
            mem_inst = line.mem_inst
            refs = ctx.mem_prof._refs
            for word, _entry, inst in payload:
                off = word & 15
                if word_state[off] == W_INVALID:
                    word_state[off] = W_VALID
                    mem_inst[off] = inst
                    if inst is not None:
                        refs[inst] += 1
        if not completes:
            return
        self._protected[core].discard(req_line)
        l1.stat_probes += 1                 # lookup(touch=False)
        line = l1._lines.get(req_line)
        if line is None or line.word_state[req.addr & 15] == W_INVALID:
            self._retry_gets(req, t)
            return
        self._profile_load_hit(core, line, req.addr)
        req.on_done(t + 1, req)

    # -- L2 writeback acceptance -----------------------------------------

    def _l2_accept_wb(self, core, line_addr, offsets, t):
        ctx = self.ctx
        home = line_addr % self._nt
        cache = self.l2[home]
        cache.stat_probes += 1
        entry = cache._lines.get(line_addr)
        if entry is not None:
            idx = (line_addr >> cache._index_shift) % cache._num_sets
            order = cache._lru[idx]
            if order[0] != line_addr:
                order.remove(line_addr)
                order.insert(0, line_addr)
        else:
            entry = self._reserve_l2(home, line_addr)
            if self.policies.granularity.l2_fetch_on_write:
                self._fetch_line_for_write(entry, home, t)
        word_state = entry.word_state
        word_dirty = entry.word_dirty
        owners = entry.owners
        mem_inst = entry.mem_inst
        l2p = ctx.l2_prof
        row = l2p._active.get((line_addr << 6) | home)
        pool = l2p._pool
        counts = l2p._counts
        mem = ctx.mem_prof
        refs = mem._refs
        cat = mem._cat
        settle = mem._settle_pending
        for off in offsets:
            if word_state[off] == L2W_VALID and not word_dirty[off]:
                # l2_prof.on_write inline
                if row is not None:
                    handle = row[off]
                    if handle is not None and pool[handle] == 0:
                        pool[handle] = C_WRITE
                        counts[_WRITE_I] += 1
            word_state[off] = L2W_VALID
            word_dirty[off] = True
            owners[off] = None
            inst = mem_inst[off]
            if inst is not None:
                refs[inst] -= 1
                if refs[inst] <= 0 and cat[inst] == 0:
                    settle(inst, C_EVICT, _EVICT_I)
                mem_inst[off] = None
        if self.slice_blooms and not entry.in_bloom:
            self.slice_blooms[home].insert(line_addr)
            entry.in_bloom = True


#: ProtocolConfig.kind -> fused compiled core class.
COMPILED_PROTOCOL_CORES = {
    "mesi": CompiledMesiSystem,
    "denovo": CompiledDenovoSystem,
}


def build_compiled_protocol_system(ctx):
    """Fused protocol core for a compiled context, or the reference one.

    Falls back to :func:`repro.coherence.build_protocol_system` when the
    context carries no compiled program (unknown protocol family) or the
    family has no fused core registered — those runs still execute, on
    the reference handlers over the pooled accounting.
    """
    if getattr(ctx, "program", None) is not None:
        core_cls = COMPILED_PROTOCOL_CORES.get(ctx.proto.kind)
        if core_cls is not None:
            return core_cls(ctx)
    return build_protocol_system(ctx)

"""Array-backed waste-profiler and ledger state for the compiled engine.

The reference profilers (:mod:`repro.waste.profiler`) allocate one
slotted ``ProfileEntry``/``MemInstance`` object per delivered word —
over a hundred thousand allocations in a tiny-grid MESI cell.  The
compiled engine replaces every entry object with an **integer handle**
into pools of parallel Python lists owned by the simulation context:

* the cache pool is one flat ``cat`` list shared by the L1 and L2
  profilers (0 = pending, otherwise category index + 1);
* the memory pool adds parallel ``refs``/``addr`` lists for the
  reference-counted instance FSM of Figure 4.3.

The pools belong to the *context* and survive ``reset_stats()`` — a
handle allocated during warm-up stays resolvable afterwards, exactly
like an object reference — while the per-profiler state (``_active``
rows, counters, pending-by-address sets) is swapped, so a post-warm-up
verdict on a warm-up word lands in the live profiler's counters just
as in the reference implementation.

Every FSM below mirrors its reference method line for line (same
first-event-wins transitions, same traversal order), so the category
counters, ledger bucket floats and entry verdicts are bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.common.addressing import WORDS_PER_LINE
from repro.network.traffic import (
    DEST_L1, RESP_L1_USED, RESP_L1_WASTE, RESP_L2_USED, RESP_L2_WASTE,
    TrafficLedger)
from repro.waste.profiler import (
    _EVICT_I, _EXCESS_I, _FETCH_I, _INVALIDATE_I, _UNEVICTED_I, _USED_I,
    _WRITE_I, CacheLevelProfiler, MemoryProfiler)

# Pool category codes: 0 is pending, otherwise dense category index + 1
# (same index space as the reference profilers' ``_counts`` lists).
C_USED = _USED_I + 1
C_WRITE = _WRITE_I + 1
C_FETCH = _FETCH_I + 1
C_INVALIDATE = _INVALIDATE_I + 1
C_EVICT = _EVICT_I + 1
C_UNEVICTED = _UNEVICTED_I + 1
C_EXCESS = _EXCESS_I + 1

_LINE_ZEROS = (0,) * WORDS_PER_LINE


class WastePools:
    """Run-lifetime handle pools, owned by the compiled context."""

    __slots__ = ("cache_cat", "mem_cat", "mem_refs", "mem_addr")

    def __init__(self) -> None:
        self.cache_cat: List[int] = []
        self.mem_cat: List[int] = []
        self.mem_refs: List[int] = []
        self.mem_addr: List[int] = []


class PooledCacheLevelProfiler(CacheLevelProfiler):
    """Cache-level waste FSM over integer handles into a shared pool.

    Drop-in replacement: callers receive int handles where the
    reference returns ``ProfileEntry`` objects; all query methods
    (``counts``/``total_words``/...) are inherited unchanged.
    """

    def __init__(self, level: str, pool: List[int]) -> None:
        super().__init__(level)
        self._pool = pool
        # _active rows now hold Optional[int] handles.
        self._active: Dict[int, List[Optional[int]]] = {}

    # -- FSM events ------------------------------------------------------
    def on_arrival(self, unit: int, word: int, already_present: bool) -> int:
        pool = self._pool
        handle = len(pool)
        self._total += 1
        if already_present:
            pool.append(C_FETCH)
            self._counts[_FETCH_I] += 1
            return handle
        pool.append(0)
        row = self._row_for(((word >> 4) << 6) | unit)
        slot = word & 15
        old = row[slot]
        if old is not None and pool[old] == 0:
            pool[old] = C_FETCH
            self._counts[_FETCH_I] += 1
        row[slot] = handle
        return handle

    def on_use(self, unit: int, word: int) -> None:
        row = self._active.get(((word >> 4) << 6) | unit)
        if row is None:
            return
        handle = row[word & 15]
        if handle is not None and self._pool[handle] == 0:
            self._pool[handle] = C_USED
            self._counts[_USED_I] += 1

    def on_write(self, unit: int, word: int) -> None:
        row = self._active.get(((word >> 4) << 6) | unit)
        if row is None:
            return
        handle = row[word & 15]
        if handle is not None and self._pool[handle] == 0:
            self._pool[handle] = C_WRITE
            self._counts[_WRITE_I] += 1

    def on_evict(self, unit: int, word: int) -> None:
        row = self._active.get(((word >> 4) << 6) | unit)
        if row is None:
            return
        slot = word & 15
        handle = row[slot]
        if handle is None:
            return
        if self._pool[handle] == 0:
            self._pool[handle] = C_EVICT
            self._counts[_EVICT_I] += 1
        row[slot] = None

    def on_invalidate(self, unit: int, word: int) -> None:
        if self.level == "L2":
            raise RuntimeError("the L2 FSM has no invalidate transition")
        row = self._active.get(((word >> 4) << 6) | unit)
        if row is None:
            return
        slot = word & 15
        handle = row[slot]
        if handle is None:
            return
        if self._pool[handle] == 0:
            self._pool[handle] = C_INVALIDATE
            self._counts[_INVALIDATE_I] += 1
        row[slot] = None

    # -- bulk line-granular events ---------------------------------------
    def arrivals_line(self, unit: int, base: int) -> List[int]:
        pool = self._pool
        counts = self._counts
        self._total += WORDS_PER_LINE
        h0 = len(pool)
        pool.extend(_LINE_ZEROS)
        handles = list(range(h0, h0 + WORDS_PER_LINE))
        line_key = (base << 2) | unit
        old_row = self._active.get(line_key)
        if old_row is not None:
            for old in old_row:
                if old is not None and pool[old] == 0:
                    pool[old] = C_FETCH
                    counts[_FETCH_I] += 1
        # The active row is a copy so later slot clearing never mutates
        # the list handed to traffic accounting.
        self._active[line_key] = list(handles)
        return handles

    def arrivals_words(self, unit: int, words, present_flags) -> List[int]:
        pool = self._pool
        counts = self._counts
        active = self._active
        handles = []
        append = handles.append
        self._total += len(words)
        last_key = -1
        row = None
        for word, present in zip(words, present_flags):
            handle = len(pool)
            if present:
                pool.append(C_FETCH)
                counts[_FETCH_I] += 1
            else:
                pool.append(0)
                line_key = ((word >> 4) << 6) | unit
                if line_key != last_key:
                    row = active.get(line_key)
                    if row is None:
                        row = active[line_key] = [None] * WORDS_PER_LINE
                    last_key = line_key
                slot = word & 15
                old = row[slot]
                if old is not None and pool[old] == 0:
                    pool[old] = C_FETCH
                    counts[_FETCH_I] += 1
                row[slot] = handle
            append(handle)
        return handles

    def on_use_words(self, unit: int, words) -> None:
        pool = self._pool
        active = self._active
        counts = self._counts
        last_key = -1
        row = None
        for word in words:
            line_key = ((word >> 4) << 6) | unit
            if line_key != last_key:
                row = active.get(line_key)
                last_key = line_key
            if row is None:
                continue
            handle = row[word & 15]
            if handle is not None and pool[handle] == 0:
                pool[handle] = C_USED
                counts[_USED_I] += 1

    def on_use_line(self, unit: int, base: int) -> None:
        row = self._active.get((base << 2) | unit)
        if row is None:
            return
        pool = self._pool
        counts = self._counts
        for handle in row:
            if handle is not None and pool[handle] == 0:
                pool[handle] = C_USED
                counts[_USED_I] += 1

    def on_evict_line(self, unit: int, base: int) -> None:
        row = self._active.pop((base << 2) | unit, None)
        if row is None:
            return
        pool = self._pool
        counts = self._counts
        for handle in row:
            if handle is not None and pool[handle] == 0:
                pool[handle] = C_EVICT
                counts[_EVICT_I] += 1

    def on_invalidate_line(self, unit: int, base: int) -> None:
        if self.level == "L2":
            raise RuntimeError("the L2 FSM has no invalidate transition")
        row = self._active.pop((base << 2) | unit, None)
        if row is None:
            return
        pool = self._pool
        counts = self._counts
        for handle in row:
            if handle is not None and pool[handle] == 0:
                pool[handle] = C_INVALIDATE
                counts[_INVALIDATE_I] += 1

    def finalize(self) -> None:
        pool = self._pool
        counts = self._counts
        for row in self._active.values():
            for handle in row:
                if handle is not None and pool[handle] == 0:
                    pool[handle] = C_UNEVICTED
                    counts[_UNEVICTED_I] += 1
        self._active.clear()
        self._finalized = True


class PooledMemoryProfiler(MemoryProfiler):
    """Memory-level instance FSM (Figure 4.3) over pooled handles.

    ``cat``/``refs``/``addr`` live in the shared pools (instance
    identity); the pending-by-address index and counters are per
    profiler instance (measurement window), matching the reference
    object semantics across ``reset_stats()``.
    """

    def __init__(self, pools: WastePools) -> None:
        super().__init__()
        self._cat = pools.mem_cat
        self._refs = pools.mem_refs
        self._addr = pools.mem_addr
        self._pending_by_addr: Dict[int, Set[int]] = {}

    # -- FSM events ------------------------------------------------------
    def fetch(self, addr: int, l2_has_addr: bool) -> int:
        cat = self._cat
        handle = len(cat)
        self._refs.append(0)
        self._addr.append(addr)
        self._total += 1
        if l2_has_addr:
            cat.append(C_FETCH)
            self._counts[_FETCH_I] += 1
            return handle
        cat.append(0)
        by_addr = self._pending_by_addr
        pending = by_addr.get(addr)
        if pending is None:
            by_addr[addr] = pending = set()
        pending.add(handle)
        return handle

    def fetch_excess(self, addr: int) -> int:
        handle = len(self._cat)
        self._cat.append(C_EXCESS)
        self._refs.append(0)
        self._addr.append(addr)
        self._total += 1
        self._counts[_EXCESS_I] += 1
        return handle

    def install_copy(self, handle: int) -> None:
        self._refs[handle] += 1

    def drop_copy(self, handle: int, *, invalidated: bool) -> None:
        refs = self._refs
        refs[handle] -= 1
        if refs[handle] <= 0 and self._cat[handle] == 0:
            if invalidated:
                self._settle_pending(handle, C_INVALIDATE, _INVALIDATE_I)
            else:
                self._settle_pending(handle, C_EVICT, _EVICT_I)

    def on_load(self, handle: int) -> None:
        if self._cat[handle] == 0:
            self._settle_pending(handle, C_USED, _USED_I)

    def on_store_addr(self, addr: int) -> None:
        pending = self._pending_by_addr.pop(addr, None)
        if not pending:
            return
        cat = self._cat
        counts = self._counts
        for handle in pending:
            if cat[handle] == 0:
                cat[handle] = C_WRITE
                counts[_WRITE_I] += 1

    # -- bulk line-granular events ---------------------------------------
    def fetch_line(self, base: int) -> List[int]:
        cat = self._cat
        refs = self._refs
        addrs = self._addr
        by_addr = self._pending_by_addr
        out = []
        append = out.append
        self._total += WORDS_PER_LINE
        for addr in range(base, base + WORDS_PER_LINE):
            handle = len(cat)
            cat.append(0)
            refs.append(0)
            addrs.append(addr)
            pending = by_addr.get(addr)
            if pending is None:
                by_addr[addr] = pending = set()
            pending.add(handle)
            append(handle)
        return out

    def install_copies(self, handles) -> None:
        refs = self._refs
        for handle in handles:
            if handle is not None:
                refs[handle] += 1

    def drop_copies(self, handles, *, invalidated: bool) -> None:
        if invalidated:
            code, idx = C_INVALIDATE, _INVALIDATE_I
        else:
            code, idx = C_EVICT, _EVICT_I
        cat = self._cat
        refs = self._refs
        settle = self._settle_pending
        for handle in handles:
            if handle is None:
                continue
            refs[handle] -= 1
            if refs[handle] <= 0 and cat[handle] == 0:
                settle(handle, code, idx)

    def finalize(self) -> None:
        cat = self._cat
        counts = self._counts
        for pending in self._pending_by_addr.values():
            for handle in pending:
                if cat[handle] == 0:
                    cat[handle] = C_UNEVICTED
                    counts[_UNEVICTED_I] += 1
        self._pending_by_addr.clear()
        self._finalized = True

    # -- internals -------------------------------------------------------
    def _settle_pending(self, handle: int, code: int, cat_index: int) -> None:
        by_addr = self._pending_by_addr
        pending = by_addr.get(self._addr[handle])
        if pending is not None:
            pending.discard(handle)
            if not pending:
                del by_addr[self._addr[handle]]
        self._cat[handle] = code
        self._counts[cat_index] += 1


class PooledTrafficLedger(TrafficLedger):
    """Traffic ledger resolving pooled cache-profiler handles.

    Only :meth:`finalize` differs from the reference: deferred data
    words carry int handles instead of ``ProfileEntry`` objects, so the
    used/waste verdict is one pool read.  Resolution order and float
    accumulation order are identical, keeping bucket totals
    bit-identical.
    """

    def __init__(self, words_per_flit: int, cache_pool: List[int]) -> None:
        super().__init__(words_per_flit)
        self._pool = cache_pool

    def finalize(self) -> None:
        pool = self._pool
        buckets = self._buckets
        for entries, flit_hops, major, dest in self._deferred:
            major_bucket = buckets[major]
            if dest == DEST_L1:
                used_key, waste_key = RESP_L1_USED, RESP_L1_WASTE
            else:
                used_key, waste_key = RESP_L2_USED, RESP_L2_WASTE
            for handle in entries:
                key = (used_key if pool[handle] == C_USED
                       else waste_key)
                major_bucket[key] += flit_hops
        self._deferred.clear()
        self._finalized = True

"""Generic array-driven interpreter for compiled protocol tables.

:class:`CompiledCore` replaces the reference :class:`~repro.core.core.Core`
run loop with a table dispatch: per memory op it reads the line's unified
state index, fetches the action from the protocol's flat dispatch array,
and executes the action's micro-op sequence inline — one tag probe, LRU
refresh, pooled waste-profiler transitions and the retire, with zero
Python calls on the hit path.  Any action it cannot complete locally
(``A_SLOW``, or a guard like the store-buffer check failing) delegates
the *entire* access to the reference protocol controller, which performs
its own probe/touch — so every access charges exactly one L1 tag probe
and one LRU refresh either way, and the scheduled event stream is
bit-identical to the reference engine's.

The interpreter requires the pooled accounting of
:class:`CompiledSimContext` (profiler transitions are inlined against
the integer pools); protocols whose family has no compiled tables fall
back to the reference core on the same pooled context.
"""

from __future__ import annotations

from typing import Type

from repro.common.config import ProtocolConfig, SystemConfig
from repro.common.regions import RegionTable
from repro.core.context import SimContext
from repro.core.core import BATCH_LIMIT, Core
from repro.engine.compiled.pools import (
    C_USED, C_WRITE, PooledCacheLevelProfiler, PooledMemoryProfiler,
    PooledTrafficLedger, WastePools)
from repro.engine.compiled.tables import (
    A_LOAD_HIT, A_STORE_HIT, K_LINE, compile_protocol)
from repro.network.traffic import (
    DEST_L1, DEST_L2, LD, OVH, REQ_CTL, RESP_CTL, ST, WB, WB_CONTROL,
    WB_L2_USED, WB_L2_WASTE, WB_MEM_USED, WB_MEM_WASTE)
from repro.waste.profiler import _USED_I, _WRITE_I
from repro.workloads.trace import OP_BARRIER, OP_COMPUTE, OP_LOAD, OP_STORE


class CompiledSimContext(SimContext):
    """Simulation context with array-backed (pooled) accounting.

    The handle pools live here — one allocation per run — and survive
    ``reset_stats()``, so handles created during warm-up remain
    resolvable afterwards exactly like object references; the factory
    overrides swap only the per-window profiler state.  ``program`` is
    the protocol's compiled table set (None for protocol families
    without a compiler, which run on the reference core).
    """

    def __init__(self, config: SystemConfig, proto: ProtocolConfig,
                 regions: RegionTable, observed: bool = False) -> None:
        self.pools = WastePools()
        self.program = compile_protocol(proto)
        super().__init__(config, proto, regions)
        # Fused network fast path: the class-level send helpers walk the
        # mesh link tables inline (one table read + one bucket append per
        # message, no Mesh.traverse call).  Observability wraps
        # ``ctx._traverse`` to attribute flits per tile, so an observed
        # run rebinds the helpers to the traverse-calling variants —
        # identical results, every packet visible to the wrapper.
        mesh = self.mesh
        self._mesh = mesh
        self._mlinks = mesh._links
        self._mlink_free = mesh._link_free
        self._mlink_lat = mesh._link_latency
        if observed or not mesh._model_contention:
            self.send_req_ctl = self._obs_send_req_ctl
            self.send_resp_ctl = self._obs_send_resp_ctl
            self.send_data = self._obs_send_data
            self.send_wb = self._obs_send_wb
            self.send_overhead = self._obs_send_overhead

    def _make_ledger(self) -> PooledTrafficLedger:
        return PooledTrafficLedger(self.config.words_per_flit,
                                   self.pools.cache_cat)

    def _make_cache_profiler(self, level: str) -> PooledCacheLevelProfiler:
        return PooledCacheLevelProfiler(level, self.pools.cache_cat)

    def _make_memory_profiler(self) -> PooledMemoryProfiler:
        return PooledMemoryProfiler(self.pools)

    def _bind_ledger(self) -> None:
        super()._bind_ledger()
        # The fused send helpers below add straight into the live
        # ledger's bucket dicts; rebinding here (called from __init__
        # and from every reset_stats ledger swap) keeps them pointed at
        # the measurement window's ledger.
        self._lbuckets = self.ledger._buckets
        self._ldeferred = self.ledger._deferred
        self._wpf = self.config.words_per_flit

    # -- fused message helpers ------------------------------------------
    # Observable behaviour (mesh stat counters, bucket float-
    # accumulation order, schedule order, return values) is identical to
    # the reference SimContext helpers; the per-message ledger method
    # calls are flattened to dict arithmetic against the prebound
    # buckets, and the route walk of ``Mesh.traverse`` is inlined
    # against the prebound link tables (the walk bodies mirror
    # ``Mesh.traverse`` exactly — keep them in sync).  CoherenceKernel
    # binds ctx.send_* at construction, so the reference protocol
    # handlers pick these up automatically on this context.

    def send_req_ctl(self, major, src, dst, at, handler, *args):
        if major is not LD and major is not ST:
            self.ledger._check(major, (LD, ST))
        mesh = self._mesh
        mesh.stat_packets += 1
        if src == dst:
            arrive = at + 1                     # Mesh.LOCAL_LATENCY
        else:
            links = self._mlinks[src * self._num_tiles + dst]
            hops = len(links)
            mesh.stat_flit_hops += hops         # one control flit
            self._lbuckets[major][REQ_CTL] += hops
            link_free = self._mlink_free
            lat = self._mlink_lat
            time = at
            for link in links:
                free_at = link_free[link]
                if time < free_at:
                    time = free_at
                link_free[link] = time + 1
                time += lat
            arrive = time
        self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    def send_resp_ctl(self, major, src, dst, at, handler, *args):
        if major is not LD and major is not ST:
            self.ledger._check(major, (LD, ST))
        mesh = self._mesh
        mesh.stat_packets += 1
        if src == dst:
            arrive = at + 1                     # Mesh.LOCAL_LATENCY
        else:
            links = self._mlinks[src * self._num_tiles + dst]
            hops = len(links)
            mesh.stat_flit_hops += hops         # one control flit
            self._lbuckets[major][RESP_CTL] += hops
            link_free = self._mlink_free
            lat = self._mlink_lat
            time = at
            for link in links:
                free_at = link_free[link]
                if time < free_at:
                    time = free_at
                link_free[link] = time + 1
                time += lat
            arrive = time
        self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    def send_data(self, major, dest_level, src, dst, at, entries,
                  handler, *args):
        if major is not LD and major is not ST:
            self.ledger._check(major, (LD, ST))
        if dest_level is not DEST_L1 and dest_level is not DEST_L2 \
                and dest_level not in (DEST_L1, DEST_L2):
            raise ValueError(
                f"data destination must be l1/l2, got {dest_level!r}")
        hops = self.mesh._hops[src * self._num_tiles + dst]
        bucket = self._lbuckets[major]
        bucket[RESP_CTL] += hops            # header flit
        n_words = len(entries)
        if n_words:
            wpf = self._wpf
            data_flits = -(-n_words // wpf)
            per_word = hops / wpf
            self._ldeferred.append((entries, per_word, major, dest_level))
            slack = data_flits * wpf - n_words
            if slack:
                bucket[RESP_CTL] += slack * per_word
        else:
            data_flits = 0
        mesh = self._mesh
        mesh.stat_packets += 1
        if src == dst:
            arrive = at + 1                     # Mesh.LOCAL_LATENCY
        else:
            total_flits = 1 + data_flits
            mesh.stat_flit_hops += total_flits * hops
            links = self._mlinks[src * self._num_tiles + dst]
            link_free = self._mlink_free
            lat = self._mlink_lat
            time = at
            for link in links:
                free_at = link_free[link]
                if time < free_at:
                    time = free_at
                link_free[link] = time + total_flits
                time += lat
            # Pipelined serialization: trailing flits follow the header.
            arrive = time + total_flits - 1
        self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    def send_wb(self, src, dst, at, dirty_flags, dest_level,
                handler, *args):
        hops = self.mesh._hops[src * self._num_tiles + dst]
        wb_bucket = self._lbuckets[WB]
        wb_bucket[WB_CONTROL] += hops       # header flit
        n_words = len(dirty_flags)
        if n_words:
            wpf = self._wpf
            data_flits = -(-n_words // wpf)
            per_word = hops / wpf
            if dest_level == DEST_L2:
                used_key, waste_key = WB_L2_USED, WB_L2_WASTE
            else:
                used_key, waste_key = WB_MEM_USED, WB_MEM_WASTE
            for dirty in dirty_flags:
                wb_bucket[used_key if dirty else waste_key] += per_word
            slack = data_flits * wpf - n_words
            if slack:
                wb_bucket[WB_CONTROL] += slack * per_word
        else:
            data_flits = 0
        mesh = self._mesh
        mesh.stat_packets += 1
        if src == dst:
            arrive = at + 1                     # Mesh.LOCAL_LATENCY
        else:
            total_flits = 1 + data_flits
            mesh.stat_flit_hops += total_flits * hops
            links = self._mlinks[src * self._num_tiles + dst]
            link_free = self._mlink_free
            lat = self._mlink_lat
            time = at
            for link in links:
                free_at = link_free[link]
                if time < free_at:
                    time = free_at
                link_free[link] = time + total_flits
                time += lat
            arrive = time + total_flits - 1
        self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    def send_overhead(self, subtype, src, dst, at, handler=None, *args,
                      flits=1):
        if flits <= 0:
            raise ValueError("a packet has at least one flit")
        mesh = self._mesh
        mesh.stat_packets += 1
        if src == dst:
            arrive = at + 1                     # Mesh.LOCAL_LATENCY
        else:
            links = self._mlinks[src * self._num_tiles + dst]
            hops = len(links)
            mesh.stat_flit_hops += flits * hops
            self._lbuckets[OVH][subtype] += hops * flits
            link_free = self._mlink_free
            lat = self._mlink_lat
            time = at
            for link in links:
                free_at = link_free[link]
                if time < free_at:
                    time = free_at
                link_free[link] = time + flits
                time += lat
            arrive = time + flits - 1
        if handler is not None:
            self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    # -- traverse-calling variants (observed runs) ----------------------
    # Bodies are the pre-fusion helpers: every packet goes through
    # ``self._traverse``, which ``repro.obs`` wraps for per-tile flit
    # attribution.  Bound over the fused versions when the run is
    # observed (or contention modelling is off).

    def _obs_send_req_ctl(self, major, src, dst, at, handler, *args):
        if major is not LD and major is not ST:
            self.ledger._check(major, (LD, ST))
        hops, delay = self._traverse(src, dst, 1, at)
        self._lbuckets[major][REQ_CTL] += hops
        arrive = at + delay
        self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    def _obs_send_resp_ctl(self, major, src, dst, at, handler, *args):
        if major is not LD and major is not ST:
            self.ledger._check(major, (LD, ST))
        hops, delay = self._traverse(src, dst, 1, at)
        self._lbuckets[major][RESP_CTL] += hops
        arrive = at + delay
        self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    def _obs_send_data(self, major, dest_level, src, dst, at, entries,
                       handler, *args):
        if major is not LD and major is not ST:
            self.ledger._check(major, (LD, ST))
        if dest_level is not DEST_L1 and dest_level is not DEST_L2 \
                and dest_level not in (DEST_L1, DEST_L2):
            raise ValueError(
                f"data destination must be l1/l2, got {dest_level!r}")
        hops = self.mesh._hops[src * self._num_tiles + dst]
        bucket = self._lbuckets[major]
        bucket[RESP_CTL] += hops            # header flit
        n_words = len(entries)
        if n_words:
            wpf = self._wpf
            data_flits = -(-n_words // wpf)
            per_word = hops / wpf
            self._ldeferred.append((entries, per_word, major, dest_level))
            slack = data_flits * wpf - n_words
            if slack:
                bucket[RESP_CTL] += slack * per_word
        else:
            data_flits = 0
        _hops, delay = self._traverse(src, dst, 1 + data_flits, at)
        arrive = at + delay
        self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    def _obs_send_wb(self, src, dst, at, dirty_flags, dest_level,
                     handler, *args):
        hops = self.mesh._hops[src * self._num_tiles + dst]
        wb_bucket = self._lbuckets[WB]
        wb_bucket[WB_CONTROL] += hops       # header flit
        n_words = len(dirty_flags)
        if n_words:
            wpf = self._wpf
            data_flits = -(-n_words // wpf)
            per_word = hops / wpf
            if dest_level == DEST_L2:
                used_key, waste_key = WB_L2_USED, WB_L2_WASTE
            else:
                used_key, waste_key = WB_MEM_USED, WB_MEM_WASTE
            for dirty in dirty_flags:
                wb_bucket[used_key if dirty else waste_key] += per_word
            slack = data_flits * wpf - n_words
            if slack:
                wb_bucket[WB_CONTROL] += slack * per_word
        else:
            data_flits = 0
        _hops, delay = self._traverse(src, dst, 1 + data_flits, at)
        arrive = at + delay
        self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    def _obs_send_overhead(self, subtype, src, dst, at, handler=None,
                           *args, flits=1):
        hops, delay = self._traverse(src, dst, flits, at)
        self._lbuckets[OVH][subtype] += hops * flits
        arrive = at + delay
        if handler is not None:
            self._schedule_call(arrive, handler, *args, arrive)
        return arrive


def core_class(ctx: SimContext) -> Type[Core]:
    """Core implementation for ``ctx``: table interpreter or reference."""
    if getattr(ctx, "program", None) is not None:
        return CompiledCore
    return Core


class CompiledCore(Core):
    """In-order core executing its trace through compiled tables."""

    def __init__(self, core_id, trace, protocol_system, ctx,
                 barrier, on_finish) -> None:
        super().__init__(core_id, trace, protocol_system, ctx,
                         barrier, on_finish)
        program = ctx.program
        self._dispatch = program.dispatch
        self._kind_line = program.kind_code == K_LINE
        self._owned_state = program.owned_state
        self._l1 = protocol_system.l1[core_id]
        # MESI guards in-place hits against an in-flight buffered store
        # for the line; DeNovo has no store buffer and its tables never
        # emit a NOSB action, so an empty set keeps the loop uniform.
        sbufs = getattr(protocol_system, "sbuf", None)
        self._sb_pending = (sbufs[core_id]._pending if sbufs is not None
                            else frozenset())

    def _run(self, at: int) -> None:
        # Same structure as the reference Core._run (same op order, same
        # batching, same scheduling), with the protocol's fast actions
        # executed inline from the dispatch table.  Pooled-profiler
        # internals are rebound on every entry because reset_stats()
        # swaps the profiler objects between events.
        queue = self.ctx.queue
        schedule_call = queue.schedule_call
        now = queue.now
        t = at if at >= now else now
        batch = 0
        trace = self.trace
        trace_len = len(trace)
        time = self.time
        core_id = self.core_id
        proto = self.proto
        proto_load = proto.load
        proto_store = proto.store
        ctx = self.ctx
        dispatch = self._dispatch
        kind_line = self._kind_line
        owned = self._owned_state
        sb_pending = self._sb_pending
        a_load_hit = A_LOAD_HIT
        a_store_hit = A_STORE_HIT
        c_used = C_USED
        c_write = C_WRITE
        used_i = _USED_I
        write_i = _WRITE_I
        l1 = self._l1
        lines_get = l1._lines.get
        lru = l1._lru
        num_sets = l1._num_sets
        shift = l1._index_shift
        l1_prof = ctx.l1_prof
        wpool = l1_prof._pool
        l1_active_get = l1_prof._active.get
        l1_counts = l1_prof._counts
        mem_prof = ctx.mem_prof
        mcat = mem_prof._cat
        mem_on_load = mem_prof.on_load
        mem_on_store = mem_prof.on_store_addr
        mem_drop = mem_prof.drop_copy
        mem_pending = mem_prof._pending_by_addr
        pc = self.pc
        while pc < trace_len:
            kind, arg = trace[pc]
            if kind == OP_COMPUTE:
                time.busy += arg
                t += arg
                pc += 1
                batch += 1
                if arg > BATCH_LIMIT:
                    self.pc = pc
                    schedule_call(t, self._run, t)
                    return
            elif kind == OP_LOAD:
                time.busy += 1
                line_addr = arg >> 4
                line = lines_get(line_addr)
                if line is None:
                    action = 0          # row 0 of every table is A_SLOW
                elif kind_line:
                    action = dispatch[(line.state + 1) << 1]
                else:
                    action = dispatch[(line.word_state[arg & 15] + 1) << 1]
                if action and (action == a_load_hit
                               or line_addr not in sb_pending):
                    # U_PROBE: one tag probe + LRU refresh, as lookup().
                    l1.stat_probes += 1
                    order = lru[(line_addr >> shift) % num_sets]
                    if order[0] != line_addr:
                        order.remove(line_addr)
                        order.insert(0, line_addr)
                    # U_PROF_USE: first use settles the word's entry.
                    row = l1_active_get((line_addr << 6) | core_id)
                    if row is not None:
                        handle = row[arg & 15]
                        if handle is not None and wpool[handle] == 0:
                            wpool[handle] = c_used
                            l1_counts[used_i] += 1
                    # U_MEM_LOAD: settle the backing memory instance.
                    inst = line.mem_inst[arg & 15]
                    if inst is not None and mcat[inst] == 0:
                        mem_on_load(inst)
                    # U_RETIRE_1
                    t += 1
                    pc = self.pc = pc + 1
                    batch += 1
                else:
                    # U_DELEGATE: the controller re-resolves the access
                    # (its lookup() charges the probe for this path).
                    self.pc = pc
                    done = proto_load(core_id, arg, t, self._load_done)
                    if done is None:
                        self._wait_start = t
                        return
                    t = done
                    pc = self.pc = pc + 1
                    batch += 1
            elif kind == OP_STORE:
                line_addr = arg >> 4
                line = lines_get(line_addr)
                if line is None:
                    action = 0
                elif kind_line:
                    action = dispatch[((line.state + 1) << 1) | 1]
                else:
                    action = dispatch[
                        ((line.word_state[arg & 15] + 1) << 1) | 1]
                if action and (action == a_store_hit
                               or line_addr not in sb_pending):
                    off = arg & 15
                    # U_PROBE
                    l1.stat_probes += 1
                    order = lru[(line_addr >> shift) % num_sets]
                    if order[0] != line_addr:
                        order.remove(line_addr)
                        order.insert(0, line_addr)
                    # U_PROF_WRITE
                    row = l1_active_get((line_addr << 6) | core_id)
                    if row is not None:
                        handle = row[off]
                        if handle is not None and wpool[handle] == 0:
                            wpool[handle] = c_write
                            l1_counts[write_i] += 1
                    # U_MEM_STORE: a store to the address turns every
                    # pending memory instance of it into Write waste.
                    if arg in mem_pending:
                        mem_on_store(arg)
                    if action == a_store_hit:
                        # U_MEM_DROP + U_SET_OWNED, word-granular: the
                        # local copy stops deriving from memory.
                        inst = line.mem_inst[off]
                        if inst is not None:
                            mem_drop(inst, invalidated=False)
                            line.mem_inst[off] = None
                        line.word_state[off] = owned
                    else:
                        # U_SET_OWNED, line-granular: silent E->M.
                        line.state = owned
                    line.word_dirty[off] = True
                    # U_RETIRE_1
                    time.busy += 1
                    t += 1
                    pc += 1
                    batch += 1
                else:
                    accepted = proto_store(core_id, arg, t)
                    if not accepted:
                        self.pc = pc
                        self._wait_start = t
                        proto.on_retire(core_id, self._store_stall_resume)
                        return
                    time.busy += 1
                    t += 1
                    pc += 1
                    batch += 1
            elif kind == OP_BARRIER:
                self.pc = pc + 1
                self._wait_start = t
                proto.drain_barrier(core_id, t, self._drain_done)
                return
            else:
                raise ValueError(f"unknown op kind {kind}")
            if batch >= BATCH_LIMIT:
                self.pc = pc
                schedule_call(t, self._run, t)
                return
        self.pc = pc
        self.finished = True
        self.finish_time = t
        self.on_finish(core_id, t)

"""Flat transition tables compiled from a protocol's policy stack.

At system-construction time :func:`compile_protocol` folds the
effective policy stack of one registered protocol rung — coherence
granularity, writeback filtering, Flex transfer, L2 bypass, mem-to-L1
routing, dirty-WB — into a :class:`CompiledProgram`:

* a flat integer **dispatch table** ``(state x event) -> action-list
  index`` stored in an ``array('b')``, consumed by the generic
  array-driven interpreter (:mod:`repro.engine.compiled.interp`);
* the **action lists** themselves (tuples of micro-op codes) — the
  interpreter specializes the shipped lists inline and asserts at
  compile time that the table only references lists it knows how to
  execute, so the tables stay the single source of truth;
* small **folded policy integers** (kind, granularity, routing flags)
  the compiled protocol systems consult instead of re-walking the
  policy objects per access.

The unified state encoding lets one table shape serve both protocol
families: index 0 is "line absent"; line-granular kinds (MESI) add
``1 + line.state`` (PENDING/S/E/M), word-granular kinds (DeNovo) add
``1 + word_state`` (INVALID/VALID/REGISTERED).

Dialect: this module is written in the restricted "arrays + ints +
module-level functions" style (no closures, no dynamic attributes, no
per-access object allocation) that mypyc and PyPy compile well — see
the README's "Execution engines" section.
"""

from __future__ import annotations

from array import array
from typing import Dict, Optional, Tuple

from repro.common.config import ProtocolConfig

# -- events the interpreter dispatches on ------------------------------
EV_LOAD = 0
EV_STORE = 1
N_EVENTS = 2

# -- unified per-access state indices ----------------------------------
ST_ABSENT = 0
#: Rows per table: absent + up to 4 protocol states, padded to 8 so the
#: (state, event) flattening is a fixed shift regardless of family.
N_STATES = 8

# -- protocol kind codes -----------------------------------------------
K_LINE = 0     # line-granular coherence state (MESI family)
K_WORD = 1     # word-granular coherence state (DeNovo family)

# -- action-list indices -----------------------------------------------
A_SLOW = 0            # delegate to the protocol's full state machine
A_LOAD_HIT = 1        # profiled L1 load hit, +1 cycle
A_LOAD_HIT_NOSB = 2   # load hit unless the line has a store in flight
A_STORE_HIT = 3       # in-place store to an already-owned word
A_STORE_HIT_NOSB = 4  # in-place store to an owned line unless buffered

# -- micro-op codes (the vocabulary of action lists) -------------------
U_DELEGATE = 0        # hand the access to the reference state machine
U_PROBE = 1           # charge one tag probe + LRU refresh
U_CHECK_SBUF = 2      # fall to U_DELEGATE if the line is store-buffered
U_PROF_USE = 3        # waste profiler: word Used at the L1
U_PROF_WRITE = 4      # waste profiler: word Written at the L1
U_MEM_LOAD = 5        # memory profiler: instance Used
U_MEM_STORE = 6       # memory profiler: address overwritten
U_MEM_DROP = 7        # memory profiler: local copy detaches (DeNovo store)
U_SET_OWNED = 8       # line/word moves to the owned-dirty state
U_RETIRE_1 = 9        # access completes in one cycle

#: What each action executes, in order.  The interpreter inlines these
#: exact sequences; ``compile_protocol`` asserts every table cell
#: references one of them so table and interpreter cannot drift apart.
ACTION_LISTS: Tuple[Tuple[int, ...], ...] = (
    (U_DELEGATE,),                                             # A_SLOW
    (U_PROBE, U_PROF_USE, U_MEM_LOAD, U_RETIRE_1),             # A_LOAD_HIT
    (U_CHECK_SBUF, U_PROBE, U_PROF_USE, U_MEM_LOAD,
     U_RETIRE_1),                                              # A_LOAD_HIT_NOSB
    (U_PROBE, U_PROF_WRITE, U_MEM_STORE, U_MEM_DROP,
     U_SET_OWNED, U_RETIRE_1),                                 # A_STORE_HIT
    (U_CHECK_SBUF, U_PROBE, U_PROF_WRITE, U_MEM_STORE,
     U_SET_OWNED, U_RETIRE_1),                                 # A_STORE_HIT_NOSB
)


class CompiledProgram:
    """One protocol rung compiled to tables + folded policy integers."""

    __slots__ = ("name", "kind_code", "dispatch", "owned_state",
                 "line_granular", "mem_to_l1", "bypass_response",
                 "bypass_request", "l2_fetch_on_write", "l1_wb_dirty_only",
                 "l2_wb_dirty_only", "folded")

    def __init__(self, name: str, kind_code: int, dispatch: array,
                 owned_state: int, line_granular: int, mem_to_l1: int,
                 bypass_response: int, bypass_request: int,
                 l2_fetch_on_write: int, l1_wb_dirty_only: int,
                 l2_wb_dirty_only: int, folded: Tuple[str, ...]) -> None:
        self.name = name
        self.kind_code = kind_code
        self.dispatch = dispatch
        self.owned_state = owned_state
        self.line_granular = line_granular
        self.mem_to_l1 = mem_to_l1
        self.bypass_response = bypass_response
        self.bypass_request = bypass_request
        self.l2_fetch_on_write = l2_fetch_on_write
        self.l1_wb_dirty_only = l1_wb_dirty_only
        self.l2_wb_dirty_only = l2_wb_dirty_only
        self.folded = folded

    def action(self, state: int, event: int) -> int:
        """Table lookup as the interpreter performs it."""
        return self.dispatch[state * N_EVENTS + event]


def _blank_table() -> array:
    return array("b", bytes(N_STATES * N_EVENTS))


def _compile_line_family(proto: ProtocolConfig) -> array:
    """MESI family: states absent/PENDING/S/E/M at indices 0..4."""
    table = _blank_table()
    # Loads hit in S(2)/E(3)/M(4) unless an ownership upgrade for the
    # line is in flight (store buffer), which the NOSB guard re-checks.
    for state in (2, 3, 4):
        table[state * N_EVENTS + EV_LOAD] = A_LOAD_HIT_NOSB
    # Stores complete in place in E(3)/M(4) — the silent E->M upgrade —
    # again guarded against an in-flight buffered store.
    for state in (3, 4):
        table[state * N_EVENTS + EV_STORE] = A_STORE_HIT_NOSB
    return table


def _compile_word_family(proto: ProtocolConfig) -> array:
    """DeNovo family: states absent/INVALID/VALID/REGISTERED at 0..3."""
    table = _blank_table()
    # Loads hit on any non-invalid word: VALID(2) or REGISTERED(3).
    for state in (2, 3):
        table[state * N_EVENTS + EV_LOAD] = A_LOAD_HIT
    # Stores complete in place only on words this core already owns;
    # everything else goes through write-validate + the combining table.
    table[3 * N_EVENTS + EV_STORE] = A_STORE_HIT
    return table


def compile_protocol(proto: ProtocolConfig) -> Optional[CompiledProgram]:
    """Compile one rung's policy stack, or None for unknown families."""
    if proto.kind == "mesi":
        kind_code = K_LINE
        dispatch = _compile_line_family(proto)
        owned_state = 3          # L1_M
        line_granular = 1
    elif proto.kind == "denovo":
        kind_code = K_WORD
        dispatch = _compile_word_family(proto)
        owned_state = 2          # W_REG
        line_granular = 0 if (proto.flex_l1 or proto.flex_l2) else 1
    else:
        # Third-party protocol family: no tables; the engine falls back
        # to the reference core (see compile_status()).
        return None
    for cell in dispatch:
        assert 0 <= cell < len(ACTION_LISTS), cell
    folded = ("granularity", "writeback") + proto.enabled_flags()
    return CompiledProgram(
        name=proto.name,
        kind_code=kind_code,
        dispatch=dispatch,
        owned_state=owned_state,
        line_granular=line_granular,
        mem_to_l1=int(proto.mem_to_l1),
        bypass_response=int(proto.bypass_l2_response),
        bypass_request=int(proto.bypass_l2_request),
        l2_fetch_on_write=int(proto.kind == "denovo"
                              and not proto.l2_write_validate),
        l1_wb_dirty_only=int(proto.dirty_wb_only),
        l2_wb_dirty_only=int(proto.l2_dirty_wb_only or proto.dirty_wb_only),
        folded=folded,
    )


def compile_status(proto: ProtocolConfig) -> Dict[str, object]:
    """Human-facing compile report for one rung (``python -m repro list``).

    Returns ``{"compiled": bool, "detail": str}``: either the table
    shape plus the policy flags folded into it, or the reason the rung
    falls back to the reference engine.
    """
    program = compile_protocol(proto)
    if program is None:
        return {"compiled": False,
                "detail": f"unknown kind {proto.kind!r}: reference fallback"}
    fast = sum(1 for cell in program.dispatch if cell != A_SLOW)
    return {
        "compiled": True,
        "detail": (f"tables {N_STATES}x{N_EVENTS} "
                   f"({fast} fast cells), folds: "
                   + ",".join(program.folded)),
    }

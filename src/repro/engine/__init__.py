"""Discrete-event simulation engine."""

from repro.engine.events import Barrier, EventQueue

__all__ = ["Barrier", "EventQueue"]

"""Discrete-event simulation core.

A single :class:`EventQueue` drives the whole simulated machine.
Components schedule callbacks at absolute cycle times; ties are broken
by insertion order so the simulation is fully deterministic.

The scheduler is allocation-light: the fast path is
:meth:`EventQueue.schedule_call`, which takes a callable plus its
arguments and stores them directly in the heap entry, so hot callers
pass bound methods instead of allocating a closure per event.  The
legacy :meth:`EventQueue.schedule` (zero-argument callback) is the same
entry point with an empty argument tuple.

Determinism contract: events fire in ``(when, seq)`` order, where
``seq`` is the global schedule-call counter — identical streams of
schedule calls produce identical execution orders, whichever of the two
entry points each caller used.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

#: Shared empty argument tuple for legacy zero-argument callbacks.
_NO_ARGS: Tuple = ()


class EventQueue:
    """Deterministic discrete-event scheduler keyed by cycle time."""

    __slots__ = ("_heap", "_seq", "now", "_events_run")

    def __init__(self) -> None:
        # Heap entries are (when, seq, fn, args); comparisons never
        # reach fn/args because seq is unique.
        self._heap: List[tuple] = []
        self._seq = 0
        self.now = 0
        self._events_run = 0

    def schedule_call(self, when: int, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` at absolute cycle ``when`` (>= now).

        The allocation-light fast path: no closure per event, just the
        bound method and its arguments in the heap entry.
        """
        if when < self.now:
            raise ValueError(f"cannot schedule event in the past "
                             f"({when} < {self.now})")
        heapq.heappush(self._heap, (when, self._seq, fn, args))
        self._seq += 1

    def schedule(self, when: int, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at absolute cycle ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"cannot schedule event in the past "
                             f"({when} < {self.now})")
        heapq.heappush(self._heap, (when, self._seq, callback, _NO_ARGS))
        self._seq += 1

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self.now + delay, callback)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; return the final simulation time.

        ``max_events`` bounds the *total* number of callbacks executed
        across all ``run`` calls on this queue and exists purely as a
        safety net against protocol livelock bugs.  The unbounded path
        carries no budget comparison at all; the bounded path counts a
        plain integer down instead of comparing against infinity.
        """
        heap = self._heap
        pop = heapq.heappop
        events_run = self._events_run
        try:
            if max_events is None:
                # Unbounded: no budget check on the hot loop.
                while heap:
                    when, _seq, fn, args = pop(heap)
                    self.now = when
                    events_run += 1
                    fn(*args)
                    # Same-cycle batch drain: events landing on the
                    # current cycle skip the clock update.
                    while heap and heap[0][0] == when:
                        _w, _seq, fn, args = pop(heap)
                        events_run += 1
                        fn(*args)
                return self.now
            remaining = max_events - events_run
            while heap and remaining > 0:
                when, _seq, fn, args = pop(heap)
                self.now = when
                events_run += 1
                remaining -= 1
                fn(*args)
                while remaining > 0 and heap and heap[0][0] == when:
                    _w, _seq, fn, args = pop(heap)
                    events_run += 1
                    remaining -= 1
                    fn(*args)
        finally:
            self._events_run = events_run
        if heap:
            raise RuntimeError(
                f"event budget exhausted after {events_run} events "
                f"at cycle {self.now}; likely a protocol livelock")
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_run(self) -> int:
        return self._events_run

    def register_metrics(self, hub) -> None:
        """Register scheduler counters into a ``repro.obs`` hub
        (pull-based; called only when observability is enabled)."""
        hub.add_pull("engine_events", lambda q=self: q._events_run,
                     help="events executed by the scheduler")
        hub.add_pull("engine_pending", lambda q=self: len(q._heap),
                     kind="gauge", help="events waiting in the heap")


class Barrier:
    """All-core barrier synchronization.

    Cores call :meth:`arrive` with a continuation; once every participant
    has arrived, all continuations are released at the same cycle (plus a
    fixed communication cost — ``System`` threads this in from
    ``SystemConfig.barrier_release_cost``).  ``on_release`` hooks let
    protocols attach barrier-time work (DeNovo self-invalidation,
    Bloom-filter clears).
    """

    def __init__(self, queue: EventQueue, participants: int,
                 release_cost: int = 50) -> None:
        if participants <= 0:
            raise ValueError("need at least one participant")
        self._queue = queue
        self._participants = participants
        self._release_cost = release_cost
        self._waiting: List[Tuple[int, Callable[[int], None]]] = []
        self._on_release: List[Callable[[], None]] = []
        self.barriers_passed = 0

    def on_release(self, hook: Callable[[], None]) -> None:
        """Register a hook run once per barrier, before cores resume."""
        self._on_release.append(hook)

    def arrive(self, core_id: int, resume: Callable[[int], None]) -> None:
        """Core ``core_id`` arrived; ``resume(release_time)`` is called
        once everyone is here."""
        self._waiting.append((core_id, resume))
        if len(self._waiting) < self._participants:
            return
        waiting, self._waiting = self._waiting, []
        self.barriers_passed += 1
        release_time = self._queue.now + self._release_cost
        self._queue.schedule_call(release_time, self._release, waiting,
                                  release_time)

    def _release(self, waiting: List[Tuple[int, Callable[[int], None]]],
                 release_time: int) -> None:
        for hook in self._on_release:
            hook()
        for _cid, resume_fn in waiting:
            resume_fn(release_time)

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)

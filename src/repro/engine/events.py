"""Discrete-event simulation core.

A single event queue drives the whole simulated machine.  Components
schedule callbacks at absolute cycle times; ties are broken by insertion
order so the simulation is fully deterministic.

The scheduler is allocation-light: the fast path is
:meth:`EventQueue.schedule_call`, which takes a callable plus its
arguments and stores them directly in the queue entry, so hot callers
pass bound methods instead of allocating a closure per event.  The
legacy :meth:`EventQueue.schedule` (zero-argument callback) is the same
entry point with an empty argument tuple.

Determinism contract
--------------------

Events fire in ``(when, seq)`` order, where ``seq`` is the global
schedule-call counter — identical streams of schedule calls produce
identical execution orders, whichever of the two entry points each
caller used.  Two interchangeable schedulers honour the contract:

* :class:`EventQueue` — the classic binary heap.  Entries are
  ``(when, seq, fn, args)`` tuples; the contract is enforced by tuple
  comparison.

* :class:`WheelEventQueue` — a two-level bucketed calendar queue
  (time wheel).  Near-future cycles (``when - now < _WHEEL_SIZE``) map
  onto a power-of-two ring of flat per-cycle FIFO buckets: an append
  is O(1) and the bucket's list order *is* seq order, so no per-entry
  seq needs to be stored or compared.  A small min-heap of occupied
  cycle numbers (ints — each pushed exactly once, when its bucket goes
  empty → non-empty) finds the next populated bucket without scanning
  the ring.  Far-future events go to an overflow heap keyed
  ``(when, seq)`` and drain into the wheel as the window slides.

  Why the wheel preserves the contract structurally: the window only
  advances inside :meth:`WheelEventQueue.run`, and every advance first
  drains all overflow entries that the new window covers — in
  ``(when, seq)`` heap order — before any callback at the new ``now``
  can run.  A direct in-window append for cycle ``c`` requires
  ``now > c - W``, which can only happen at or after the advance that
  drained ``c``'s overflow entries; those therefore always precede the
  append in the bucket, and both groups are individually seq-ordered
  (the overflow heap by its stored seq, direct appends because the
  schedule-call stream appends chronologically).  Hence each bucket's
  FIFO order equals global ``(when, seq)`` order.

``make_event_queue`` maps a scheduler name (``SystemConfig.scheduler``,
``--scheduler``) to an implementation; the differential tests in
``tests/test_events.py`` and the golden tiny-grid pin both to identical
firing orders and bit-identical simulation results.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

#: Shared empty argument tuple for legacy zero-argument callbacks.
_NO_ARGS: Tuple = ()

#: Wheel window size (cycles), power of two.  Covers every short-range
#: delay in the model (cache/NoC/DRAM latencies are tens of cycles,
#: barrier release 50, NACK retry 20); only long timers (e.g. the
#: 10k-cycle write-combine timeout) and compute phases overflow.
_WHEEL_BITS = 12
_WHEEL_SIZE = 1 << _WHEEL_BITS
_WHEEL_MASK = _WHEEL_SIZE - 1

#: Scheduler implementations selectable per run (``--scheduler``).
SCHEDULERS = ("heap", "wheel")

#: Default scheduler: the wheel, bit-identical to the heap (pinned by
#: the golden grid under both) and faster on the hot path.
DEFAULT_SCHEDULER = "wheel"


class EventQueue:
    """Deterministic discrete-event scheduler keyed by cycle time.

    The reference binary-heap implementation (``scheduler="heap"``).
    """

    __slots__ = ("_heap", "_seq", "now", "_events_run")

    def __init__(self) -> None:
        # Heap entries are (when, seq, fn, args); comparisons never
        # reach fn/args because seq is unique.
        self._heap: List[tuple] = []
        self._seq = 0
        self.now = 0
        self._events_run = 0

    def schedule_call(self, when: int, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` at absolute cycle ``when`` (>= now).

        The allocation-light fast path: no closure per event, just the
        bound method and its arguments in the heap entry.
        """
        if when < self.now:
            raise ValueError(f"cannot schedule event in the past "
                             f"({when} < {self.now})")
        heapq.heappush(self._heap, (when, self._seq, fn, args))
        self._seq += 1

    def schedule(self, when: int, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at absolute cycle ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"cannot schedule event in the past "
                             f"({when} < {self.now})")
        heapq.heappush(self._heap, (when, self._seq, callback, _NO_ARGS))
        self._seq += 1

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self.now + delay, callback)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; return the final simulation time.

        ``max_events`` bounds the *total* number of callbacks executed
        across all ``run`` calls on this queue and exists purely as a
        safety net against protocol livelock bugs.  The unbounded path
        carries no budget comparison at all; the bounded path counts a
        plain integer down instead of comparing against infinity.
        """
        heap = self._heap
        pop = heapq.heappop
        events_run = self._events_run
        try:
            if max_events is None:
                # Unbounded: no budget check on the hot loop.
                while heap:
                    when, _seq, fn, args = pop(heap)
                    self.now = when
                    events_run += 1
                    fn(*args)
                    # Same-cycle batch drain: events landing on the
                    # current cycle skip the clock update.
                    while heap and heap[0][0] == when:
                        _w, _seq, fn, args = pop(heap)
                        events_run += 1
                        fn(*args)
                return self.now
            remaining = max_events - events_run
            while heap and remaining > 0:
                when, _seq, fn, args = pop(heap)
                self.now = when
                events_run += 1
                remaining -= 1
                fn(*args)
                while remaining > 0 and heap and heap[0][0] == when:
                    _w, _seq, fn, args = pop(heap)
                    events_run += 1
                    remaining -= 1
                    fn(*args)
        finally:
            self._events_run = events_run
        if heap:
            raise RuntimeError(
                f"event budget exhausted after {events_run} events "
                f"at cycle {self.now}; likely a protocol livelock")
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_run(self) -> int:
        return self._events_run

    def register_metrics(self, hub) -> None:
        """Register scheduler counters into a ``repro.obs`` hub
        (pull-based; called only when observability is enabled)."""
        hub.add_pull("engine_events", lambda q=self: q._events_run,
                     help="events executed by the scheduler")
        hub.add_pull("engine_pending", lambda q=self: q.pending,
                     kind="gauge", help="events waiting in the queue")


class WheelEventQueue:
    """Two-level bucketed calendar queue (``scheduler="wheel"``).

    Same API and observable behaviour as :class:`EventQueue` — firing
    order, ``now``/``events_run`` evolution, past-scheduling errors and
    the livelock budget all match the heap bit-for-bit (see the module
    docstring for why the ``(when, seq)`` contract holds structurally).

    Cost model versus the heap: an in-window ``schedule_call`` is a
    list append (no tuple comparison, no sift), a fire is a list index;
    the only heap operations left are one int push/pop per *distinct
    occupied cycle* (events per cycle average well above one on the
    coherence hot phases) and the rare far-future overflow entry.
    """

    __slots__ = ("_wheel", "_cycles", "_overflow", "_seq", "_count",
                 "now", "_events_run")

    def __init__(self) -> None:
        # One FIFO bucket per cycle of the [now, now + _WHEEL_SIZE)
        # window, indexed ``when & _WHEEL_MASK``; entries are (fn, args).
        self._wheel: List[list] = [[] for _ in range(_WHEEL_SIZE)]
        # Min-heap of occupied in-window cycle numbers; each occupied
        # cycle appears exactly once (pushed on empty -> non-empty).
        self._cycles: List[int] = []
        # Far-future events: (when, seq, fn, args), drained into the
        # wheel as the window slides.
        self._overflow: List[tuple] = []
        self._seq = 0          # orders overflow entries only
        self._count = 0        # events resident in the wheel
        self.now = 0
        self._events_run = 0

    def schedule_call(self, when: int, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` at absolute cycle ``when`` (>= now)."""
        if when - self.now < _WHEEL_SIZE:
            if when < self.now:
                raise ValueError(f"cannot schedule event in the past "
                                 f"({when} < {self.now})")
            bucket = self._wheel[when & _WHEEL_MASK]
            if not bucket:
                heapq.heappush(self._cycles, when)
            bucket.append((fn, args))
            self._count += 1
        else:
            heapq.heappush(self._overflow, (when, self._seq, fn, args))
            self._seq += 1

    def schedule(self, when: int, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at absolute cycle ``when`` (>= now)."""
        self.schedule_call(when, callback)

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_call(self.now + delay, callback)

    def _drain_overflow(self, t: int) -> None:
        """Move every overflow entry the window at ``t`` covers into its
        bucket, in ``(when, seq)`` order (the heap's pop order)."""
        overflow = self._overflow
        wheel = self._wheel
        cycles = self._cycles
        pop = heapq.heappop
        push = heapq.heappush
        horizon = t + _WHEEL_SIZE
        moved = 0
        while overflow and overflow[0][0] < horizon:
            when, _seq, fn, args = pop(overflow)
            bucket = wheel[when & _WHEEL_MASK]
            # ``when == t`` is the cycle being fired right now — its
            # slot in the cycles heap was already consumed by run().
            if not bucket and when != t:
                push(cycles, when)
            bucket.append((fn, args))
            moved += 1
        self._count += moved

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; return the final simulation time.

        Semantics match :meth:`EventQueue.run`, including the
        ``max_events`` livelock budget.  Each cycle's bucket is fired
        **in place** by index, so a same-cycle event scheduled *by* one
        of the bucket's callbacks simply extends the live bucket and
        fires in the same pass — it carries a later seq than everything
        already in the bucket, which is exactly the heap's same-cycle
        drain order — and the bucket list object is reused across
        window wraps (``clear()``, never reallocated; the per-cycle
        cost is one int heap pop plus the index walk).  ``_count`` is
        decremented per fired event so ``pending`` observed from inside
        a callback matches the heap's value exactly (the phase sampler
        re-arms off it).  On an exception the raising event counts as
        consumed, like a popped heap entry; the unfired tail (and any
        same-cycle appends behind it) stays in the bucket, which
        re-registers its cycle.
        """
        wheel = self._wheel
        cycles = self._cycles
        overflow = self._overflow
        pop = heapq.heappop
        events_run = self._events_run
        try:
            if max_events is None:
                while True:
                    if cycles:
                        t = pop(cycles)
                    elif overflow:
                        t = overflow[0][0]
                    else:
                        break
                    if overflow and overflow[0][0] < t + _WHEEL_SIZE:
                        self._drain_overflow(t)
                    self.now = t
                    bucket = wheel[t & _WHEEL_MASK]
                    i = 0
                    try:
                        while i < len(bucket):
                            fn, args = bucket[i]
                            i += 1
                            self._count -= 1
                            events_run += 1
                            fn(*args)
                    except BaseException:
                        del bucket[:i]
                        if bucket:
                            heapq.heappush(cycles, t)
                        raise
                    bucket.clear()
                return self.now
            remaining = max_events - events_run
            while remaining > 0:
                if cycles:
                    t = pop(cycles)
                elif overflow:
                    t = overflow[0][0]
                else:
                    break
                if overflow and overflow[0][0] < t + _WHEEL_SIZE:
                    self._drain_overflow(t)
                self.now = t
                bucket = wheel[t & _WHEEL_MASK]
                i = 0
                try:
                    while i < len(bucket) and remaining > 0:
                        fn, args = bucket[i]
                        i += 1
                        self._count -= 1
                        events_run += 1
                        remaining -= 1
                        fn(*args)
                except BaseException:
                    del bucket[:i]
                    if bucket:
                        heapq.heappush(cycles, t)
                    raise
                if i < len(bucket):
                    # Budget exhausted mid-bucket.
                    del bucket[:i]
                    heapq.heappush(cycles, t)
                else:
                    bucket.clear()
        finally:
            self._events_run = events_run
        if self._count or self._overflow:
            raise RuntimeError(
                f"event budget exhausted after {events_run} events "
                f"at cycle {self.now}; likely a protocol livelock")
        return self.now

    @property
    def pending(self) -> int:
        return self._count + len(self._overflow)

    @property
    def events_run(self) -> int:
        return self._events_run

    def register_metrics(self, hub) -> None:
        """Register scheduler counters into a ``repro.obs`` hub
        (pull-based; called only when observability is enabled)."""
        hub.add_pull("engine_events", lambda q=self: q._events_run,
                     help="events executed by the scheduler")
        hub.add_pull("engine_pending", lambda q=self: q.pending,
                     kind="gauge", help="events waiting in the queue")


_SCHEDULER_CLASSES = {"heap": EventQueue, "wheel": WheelEventQueue}


def make_event_queue(scheduler: str = DEFAULT_SCHEDULER):
    """Instantiate the scheduler named by ``scheduler``.

    The name is validated by ``SystemConfig`` before any simulation is
    built, so an unknown name here is an internal error.
    """
    try:
        return _SCHEDULER_CLASSES[scheduler]()
    except KeyError:
        known = ", ".join(SCHEDULERS)
        raise ValueError(f"unknown scheduler {scheduler!r}; "
                         f"known schedulers: {known}") from None


class Barrier:
    """All-core barrier synchronization.

    Cores call :meth:`arrive` with a continuation; once every participant
    has arrived, all continuations are released at the same cycle (plus a
    fixed communication cost — ``System`` threads this in from
    ``SystemConfig.barrier_release_cost``).  ``on_release`` hooks let
    protocols attach barrier-time work (DeNovo self-invalidation,
    Bloom-filter clears).
    """

    def __init__(self, queue: EventQueue, participants: int,
                 release_cost: int = 50) -> None:
        if participants <= 0:
            raise ValueError("need at least one participant")
        self._queue = queue
        self._participants = participants
        self._release_cost = release_cost
        self._waiting: List[Tuple[int, Callable[[int], None]]] = []
        self._on_release: List[Callable[[], None]] = []
        self.barriers_passed = 0

    def on_release(self, hook: Callable[[], None]) -> None:
        """Register a hook run once per barrier, before cores resume."""
        self._on_release.append(hook)

    def arrive(self, core_id: int, resume: Callable[[int], None]) -> None:
        """Core ``core_id`` arrived; ``resume(release_time)`` is called
        once everyone is here."""
        self._waiting.append((core_id, resume))
        if len(self._waiting) < self._participants:
            return
        waiting, self._waiting = self._waiting, []
        self.barriers_passed += 1
        release_time = self._queue.now + self._release_cost
        self._queue.schedule_call(release_time, self._release, waiting,
                                  release_time)

    def _release(self, waiting: List[Tuple[int, Callable[[int], None]]],
                 release_time: int) -> None:
        for hook in self._on_release:
            hook()
        for _cid, resume_fn in waiting:
            resume_fn(release_time)

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)

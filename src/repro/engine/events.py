"""Discrete-event simulation core.

A single :class:`EventQueue` drives the whole simulated machine.  Components
schedule callbacks at absolute cycle times; ties are broken by insertion
order so the simulation is fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class EventQueue:
    """Deterministic discrete-event scheduler keyed by cycle time."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0
        self._events_run = 0

    def schedule(self, when: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute cycle ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"cannot schedule event in the past "
                             f"({when} < {self.now})")
        heapq.heappush(self._heap, (when, self._seq, callback))
        self._seq += 1

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self.now + delay, callback)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; return the final simulation time.

        ``max_events`` bounds the number of callbacks executed and exists
        purely as a safety net against protocol livelock bugs.
        """
        budget = max_events if max_events is not None else float("inf")
        while self._heap and self._events_run < budget:
            when, _seq, callback = heapq.heappop(self._heap)
            self.now = when
            self._events_run += 1
            callback()
        if self._heap:
            raise RuntimeError(
                f"event budget exhausted after {self._events_run} events "
                f"at cycle {self.now}; likely a protocol livelock")
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_run(self) -> int:
        return self._events_run


class Barrier:
    """All-core barrier synchronization.

    Cores call :meth:`arrive` with a continuation; once every participant
    has arrived, all continuations are released at the same cycle (plus a
    fixed communication cost — ``System`` threads this in from
    ``SystemConfig.barrier_release_cost``).  ``on_release`` hooks let
    protocols attach barrier-time work (DeNovo self-invalidation,
    Bloom-filter clears).
    """

    def __init__(self, queue: EventQueue, participants: int,
                 release_cost: int = 50) -> None:
        if participants <= 0:
            raise ValueError("need at least one participant")
        self._queue = queue
        self._participants = participants
        self._release_cost = release_cost
        self._waiting: List[Tuple[int, Callable[[int], None]]] = []
        self._on_release: List[Callable[[], None]] = []
        self.barriers_passed = 0

    def on_release(self, hook: Callable[[], None]) -> None:
        """Register a hook run once per barrier, before cores resume."""
        self._on_release.append(hook)

    def arrive(self, core_id: int, resume: Callable[[int], None]) -> None:
        """Core ``core_id`` arrived; ``resume(release_time)`` is called
        once everyone is here."""
        self._waiting.append((core_id, resume))
        if len(self._waiting) < self._participants:
            return
        waiting, self._waiting = self._waiting, []
        self.barriers_passed += 1
        release_time = self._queue.now + self._release_cost

        def release() -> None:
            for hook in self._on_release:
                hook()
            for _cid, resume_fn in waiting:
                resume_fn(release_time)

        self._queue.schedule(release_time, release)

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)

"""barnes — Barnes-Hut N-body simulation (SPLASH-2).

Pattern features reproduced (paper Sections 5.2.1, 5.3):

* array-of-structs bodies and oct-tree cells whose structs contain
  construction-only fields and compiler padding, and whose stride is
  *not* a multiple of the cache line (28 words = 112 bytes), so useful
  words straddle a varying number of lines — exactly the layout the
  paper says Flex exploits;
* the tree-build phase is sequentialized (the thesis's DeNovo protocols
  lack mutexes), touching the construction-only fields;
* the force phase traverses the tree irregularly, reading only position
  and mass of visited bodies/cells, and conditionally reading extra
  fields for near interactions (the paper's conditional-field Evict
  waste);
* the fields that are useful change from phase to phase, which with
  L2-Flex causes refetching of words dropped earlier (Excess waste).

Flex communication regions follow the phase: the force phase announces
(pos, mass), the update phase announces (pos, vel, acc).
"""

from __future__ import annotations

from repro.common.config import ScaleConfig
from repro.common.regions import FlexPattern
from repro.workloads.base import Generator
from repro.workloads.trace import RegionUpdate

#: Body struct layout in words (stride 28 = 112 B, not line-aligned):
#: [0:6) pos, [6:12) vel, [12:14) mass, [14:20) acc,
#: [20:28) construction-only fields + padding.
BODY_STRIDE = 28
BODY_POS = tuple(range(0, 6))
BODY_VEL = tuple(range(6, 12))
BODY_MASS = (12, 13)
BODY_ACC = tuple(range(14, 20))
BODY_BUILD = tuple(range(20, 28))

#: Cell struct layout (stride 36 words = 144 B): [0:8) center-of-mass
#: quantities used during traversal, [8:36) child pointers and
#: construction bookkeeping.
CELL_STRIDE = 36
CELL_COM = tuple(range(0, 8))
CELL_BUILD = tuple(range(8, 36))

# The force phase's communication region includes the conditionally-read
# velocity head (near interactions): those words are *fetched* every time
# but used only sometimes — the paper's conditional-field Evict waste.
FORCE_FLEX = FlexPattern(BODY_STRIDE,
                         BODY_POS + BODY_VEL[:2] + BODY_MASS)
# The update phase announces the integration state (pos, vel, mass); the
# flip between the two patterns is what forces L2-Flex refetches of
# words dropped in the previous phase (the paper's Excess waste).
UPDATE_FLEX = FlexPattern(BODY_STRIDE, BODY_POS + BODY_VEL + BODY_MASS)
CELL_FLEX = FlexPattern(CELL_STRIDE, CELL_COM)

#: Tree nodes visited per body during force computation.
VISITS_PER_BODY = 12
#: Fraction of visits that are near interactions reading extra fields.
NEAR_FRACTION = 0.25


class BarnesGenerator(Generator):
    name = "barnes"

    def __init__(self, scale: ScaleConfig, **kwargs) -> None:
        super().__init__(scale, **kwargs)
        self.nbodies = scale.barnes_bodies
        self.ncells = max(self.nbodies // 2, 8)

    def description(self) -> str:
        return f"{self.nbodies} bodies, sequential tree build"

    def layout(self) -> None:
        self.bodies = self.alloc.alloc(
            "barnes.bodies", self.nbodies * BODY_STRIDE, flex=FORCE_FLEX)
        self.cells = self.alloc.alloc(
            "barnes.cells", self.ncells * CELL_STRIDE, flex=CELL_FLEX)
        # Pre-draw the traversal structure so every protocol sees the
        # same irregular access sequence.
        self.visit_plan = {}
        for body in range(self.nbodies):
            visits = []
            for v in range(VISITS_PER_BODY):
                if self.rng.random() < 0.5:
                    visits.append(("cell", self.rng.randrange(self.ncells)))
                else:
                    other = self.rng.randrange(self.nbodies)
                    near = self.rng.random() < NEAR_FRACTION
                    visits.append(("body", other, near))
            self.visit_plan[body] = visits

    def body_addr(self, index: int, offset: int) -> int:
        return self.bodies.base_word + index * BODY_STRIDE + offset

    def cell_addr(self, index: int, offset: int) -> int:
        return self.cells.base_word + index * CELL_STRIDE + offset

    def emit(self) -> None:
        # Warm-up iteration + measured iteration (paper Section 4.3).
        for _iteration in range(2):
            self._tree_build()
            self.barrier(updates=[
                RegionUpdate(self.bodies.region_id, flex=FORCE_FLEX)])
            self._force_phase()
            self.barrier(updates=[
                RegionUpdate(self.bodies.region_id, flex=UPDATE_FLEX)])
            self._update_phase()
            self.barrier(updates=[
                RegionUpdate(self.bodies.region_id, flex=FORCE_FLEX)])

    def warmup_barriers(self) -> int:
        return 3   # the first iteration's three barriers

    def _tree_build(self) -> None:
        """Sequentialized on core 0: reads body positions, writes the
        cells' construction fields and the bodies' build bookkeeping."""
        core = 0
        for body in range(self.nbodies):
            for off in BODY_POS:
                self.tb.load(core, self.body_addr(body, off))
            for off in BODY_BUILD[:4]:
                self.tb.store(core, self.body_addr(body, off))
        for cell in range(self.ncells):
            for off in CELL_COM:
                self.tb.store(core, self.cell_addr(cell, off))
            for off in CELL_BUILD[:8]:
                self.tb.store(core, self.cell_addr(cell, off))
        self.compute(core, self.nbodies)

    def _force_phase(self) -> None:
        """Each core computes forces for its bodies via tree traversal."""
        for core in range(self.num_cores):
            for body in self.chunk(self.nbodies, core):
                for off in BODY_POS:
                    self.tb.load(core, self.body_addr(body, off))
                for visit in self.visit_plan[body]:
                    if visit[0] == "cell":
                        for off in CELL_COM:
                            self.tb.load(core, self.cell_addr(visit[1], off))
                    else:
                        _kind, other, near = visit
                        for off in BODY_POS + BODY_MASS:
                            self.tb.load(core, self.body_addr(other, off))
                        if near:
                            # Conditional extra fields (dynamic condition).
                            for off in BODY_VEL[:2]:
                                self.tb.load(core,
                                             self.body_addr(other, off))
                    self.compute(core, 4)
                for off in BODY_ACC:
                    self.tb.store(core, self.body_addr(body, off))

    def _update_phase(self) -> None:
        """Integrate: read acc, read-modify-write pos and vel."""
        for core in range(self.num_cores):
            for body in self.chunk(self.nbodies, core):
                for off in BODY_ACC:
                    self.tb.load(core, self.body_addr(body, off))
                for off in BODY_POS + BODY_VEL:
                    self.tb.load(core, self.body_addr(body, off))
                    self.tb.store(core, self.body_addr(body, off))
                self.compute(core, 4)

"""kD-tree — parallel SAH kD-tree construction (Choi et al., HPG 2010).

Pattern features reproduced (paper Sections 5.2.1, 5.3):

* the *edges* array (bounding-box event list, 6 entries per triangle) is
  scanned in streaming order, touching only 2 of each 4-word entry —
  Flex drops the unused fields and prefetches following entries, and the
  region is bypass-annotated because it is huge and read once per phase;
* the 64-byte packet limit truncates the Flex prefetch, so consecutive
  misses re-read lines from memory — the paper's "two of every three
  lines read twice" Excess/Fetch effect under L2-Flex;
* the *triangles* array is randomly accessed; only the vertex fields (6
  of a 16-word stride) are useful in this phase — Flex again;
* tree nodes carry three pairs of child pointers of which a dynamic
  condition selects one — the conditionally-used-pointer L1 waste;
* three build levels are measured (the paper measures 3 iterations).
"""

from __future__ import annotations

from repro.common.config import ScaleConfig
from repro.common.regions import FlexPattern
from repro.workloads.base import Generator

#: Edge entry: [pos, type, tri_id, pad] — the scan reads pos and type.
EDGE_STRIDE = 4
EDGE_FIELDS = (0, 1)
EDGES_PER_TRI = 6

#: Triangle entry: 9 vertex floats + 7 words of normals/material ids;
#: classification uses the 6 projected vertex coordinates.
TRI_STRIDE = 16
TRI_FIELDS = (0, 1, 2, 3, 4, 5)

#: Node entry: 2 meta words + 3 pairs of child pointers.
NODE_STRIDE = 8

#: Flex prefetch: following elements of the streaming scan, truncated by
#: the 16-word packet limit (16 // 2 fields = 8 elements max).
EDGE_FLEX = FlexPattern(EDGE_STRIDE, EDGE_FIELDS, prefetch_elements=7)
TRI_FLEX = FlexPattern(TRI_STRIDE, TRI_FIELDS)

MEASURED_LEVELS = 3


class KDTreeGenerator(Generator):
    name = "kD-tree"

    def __init__(self, scale: ScaleConfig, **kwargs) -> None:
        super().__init__(scale, **kwargs)
        self.ntris = scale.kdtree_triangles
        self.nedges = self.ntris * EDGES_PER_TRI
        self.nnodes = max(self.ntris // 4, 16)

    def description(self) -> str:
        return (f"{self.ntris} triangles, {self.nedges} edges, "
                f"{MEASURED_LEVELS} build levels measured")

    def layout(self) -> None:
        self.edges = self.alloc.alloc(
            "kdtree.edges", self.nedges * EDGE_STRIDE,
            bypass_l2=True, flex=EDGE_FLEX)
        self.tris = self.alloc.alloc(
            "kdtree.tris", self.ntris * TRI_STRIDE, flex=TRI_FLEX)
        self.nodes = self.alloc.alloc(
            "kdtree.nodes", self.nnodes * NODE_STRIDE)
        # Random triangle visit order per level, fixed across protocols.
        self.tri_order = [
            [self.rng.randrange(self.ntris)
             for _ in range(self.ntris // 2)]
            for _ in range(MEASURED_LEVELS + 1)]
        self.pair_choice = [self.rng.randrange(3)
                            for _ in range(self.nnodes)]

    def edge_addr(self, index: int, field: int) -> int:
        return self.edges.base_word + index * EDGE_STRIDE + field

    def tri_addr(self, index: int, field: int) -> int:
        return self.tris.base_word + index * TRI_STRIDE + field

    def node_addr(self, index: int, field: int) -> int:
        return self.nodes.base_word + index * NODE_STRIDE + field

    def emit(self) -> None:
        # One warm-up level plus the measured levels.
        for level in range(MEASURED_LEVELS + 1):
            self._scan_edges()
            self.barrier()
            self._classify_triangles(level)
            self.barrier()
            self._write_nodes(level)
            self.barrier()

    def warmup_barriers(self) -> int:
        return 3   # the warm-up build level

    def _scan_edges(self) -> None:
        """Streaming SAH sweep over each core's slice of the edge list."""
        for core in range(self.num_cores):
            for index in self.chunk(self.nedges, core):
                for field in EDGE_FIELDS:
                    self.tb.load(core, self.edge_addr(index, field))
            self.compute(core, 32)

    def _classify_triangles(self, level: int) -> None:
        """Random-access reads of triangle vertices for split decisions."""
        order = self.tri_order[level]
        for core in range(self.num_cores):
            for pos in self.chunk(len(order), core):
                tri = order[pos]
                for field in TRI_FIELDS:
                    self.tb.load(core, self.tri_addr(tri, field))
                self.compute(core, 2)

    def _write_nodes(self, level: int) -> None:
        """Emit tree nodes: read meta + one dynamically-chosen pointer
        pair, write the split results."""
        per_level = max(self.nnodes // (MEASURED_LEVELS + 1), 1)
        start = level * per_level
        for core in range(self.num_cores):
            for node in self.chunk(per_level, core):
                index = (start + node) % self.nnodes
                self.tb.load(core, self.node_addr(index, 0))
                self.tb.load(core, self.node_addr(index, 1))
                pair = self.pair_choice[index]
                self.tb.load(core, self.node_addr(index, 2 + 2 * pair))
                self.tb.load(core, self.node_addr(index, 3 + 2 * pair))
                self.tb.store(core, self.node_addr(index, 0))
                self.tb.store(core, self.node_addr(index, 2 + 2 * pair))
                self.compute(core, 2)

"""stream — synthetic streaming-write microbenchmark (opt-in).

Not one of the paper's six applications: a minimal, cheap scenario for
exercising the sweep runner and seeding scenario diversity beyond the
paper grid.  Each core streams uniform writes over its private
contiguous slice of one large array — no sharing, no reads, no reuse —
the pure fetch-on-write stress case: a write-allocate protocol fetches
every line only to overwrite it completely, while DeNovo's
write-combining and the L2-bypass optimizations should eliminate nearly
all of that traffic.

Registered in ``repro.workloads.GENERATORS`` (so ``build_workload`` and
``python -m repro sweep --workloads stream`` find it) but deliberately
kept out of ``WORKLOAD_ORDER``: paper figures stay six-workload-shaped.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import ScaleConfig
from repro.workloads.base import Generator

#: Array sizes per scale name; anything unknown gets the ``small`` size.
WORDS_BY_SCALE = {"tiny": 2048, "small": 16384, "paper": 1 << 20}


class StreamGenerator(Generator):
    name = "stream"

    def __init__(self, scale: ScaleConfig, words: Optional[int] = None,
                 iterations: int = 2, **kwargs) -> None:
        super().__init__(scale, **kwargs)
        if iterations < 1:
            raise ValueError("stream needs at least one iteration")
        self.words = (words if words is not None
                      else WORDS_BY_SCALE.get(scale.name,
                                              WORDS_BY_SCALE["small"]))
        self.iterations = iterations

    def description(self) -> str:
        return (f"{self.words} words, {self.iterations} iterations, "
                f"uniform streaming writes, no sharing")

    def layout(self) -> None:
        # Two buffers written alternately: every iteration streams over
        # lines gone cold since they were last touched (nothing written
        # is ever re-read), so write-allocate protocols fetch-on-write
        # every line.  Bypassing the L2 avoids polluting it.
        self.buffers = [
            self.alloc.alloc(f"stream.dst{i}", self.words, bypass_l2=True)
            for i in range(2)]

    def warmup_barriers(self) -> int:
        # First iteration warms caches and write buffers — unless it is
        # the only one, in which case everything is measured.
        return min(1, self.iterations - 1)

    def emit(self) -> None:
        for iteration in range(self.iterations):
            dst = self.buffers[iteration % 2]
            for core in range(self.num_cores):
                for word in self.chunk(self.words, core):
                    self.tb.store(core, dst.base_word + word)
                self.compute(core, 4)
            self.barrier()

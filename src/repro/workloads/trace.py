"""Memory-access trace representation.

Workload generators emit one trace per core.  A trace is a flat list of
ops encoded as tuples for speed:

* ``(OP_LOAD, word_addr)`` — a load; blocks the core on a miss;
* ``(OP_STORE, word_addr)`` — a store; non-blocking up to buffer limits;
* ``(OP_COMPUTE, cycles)`` — non-memory work (1 cycle per instruction in
  the paper's core model, so this is simply a busy-time advance);
* ``(OP_BARRIER, 0)`` — global barrier (all cores synchronize; DeNovo
  self-invalidates and drains its write-combining table).

``Workload`` bundles per-core traces with the software region table and
the per-phase metadata the protocols consume: the regions written in the
phase ending at each barrier (driving DeNovo self-invalidation) and
per-phase region annotation updates (Flex patterns / bypass flags, the
DPJ-style information software hands to hardware between phases).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.common.regions import FlexPattern, Region, RegionTable

OP_LOAD = 0
OP_STORE = 1
OP_COMPUTE = 2
OP_BARRIER = 3

Op = Tuple[int, int]


@dataclass(frozen=True)
class RegionUpdate:
    """A software annotation change applied at a phase boundary."""

    region_id: int
    flex: Optional[FlexPattern] = None
    bypass_l2: Optional[bool] = None


@dataclass
class Workload:
    """A complete multi-core workload: traces plus software metadata."""

    name: str
    regions: RegionTable
    traces: List[List[Op]]
    #: regions written during the phase that ends at barrier *i* — DeNovo
    #: self-invalidates valid words of these regions at that barrier.
    phase_written_regions: List[FrozenSet[int]] = field(default_factory=list)
    #: annotation updates applied when barrier *i* releases.
    phase_region_updates: Dict[int, List[RegionUpdate]] = field(
        default_factory=dict)
    #: barriers to treat as the end of warm-up (stats reset); 0 disables.
    warmup_barriers: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.traces:
            raise ValueError("workload needs at least one core trace")
        counts = {self._barrier_count(t) for t in self.traces}
        if len(counts) != 1:
            raise ValueError(f"cores disagree on barrier count: {counts}")
        self.num_barriers = counts.pop()
        if len(self.phase_written_regions) < self.num_barriers:
            # Pad with empty sets: phases with no writes invalidate nothing.
            missing = self.num_barriers - len(self.phase_written_regions)
            self.phase_written_regions = (list(self.phase_written_regions)
                                          + [frozenset()] * missing)

    @staticmethod
    def _barrier_count(trace: Sequence[Op]) -> int:
        return sum(1 for kind, _arg in trace if kind == OP_BARRIER)

    @property
    def num_cores(self) -> int:
        return len(self.traces)

    def total_ops(self) -> int:
        return sum(len(t) for t in self.traces)

    def memory_ops(self) -> int:
        return sum(1 for t in self.traces for kind, _ in t
                   if kind in (OP_LOAD, OP_STORE))

    def written_regions_at(self, barrier_index: int) -> FrozenSet[int]:
        if barrier_index < len(self.phase_written_regions):
            return self.phase_written_regions[barrier_index]
        return frozenset()

    def updates_at(self, barrier_index: int) -> List[RegionUpdate]:
        return self.phase_region_updates.get(barrier_index, [])


class TraceBuilder:
    """Convenience builder for per-core traces with phase tracking.

    Tracks which regions were written in the current phase across all
    cores, so the generator does not have to maintain that set by hand.
    """

    def __init__(self, num_cores: int, regions: RegionTable) -> None:
        self._regions = regions
        self.traces: List[List[Op]] = [[] for _ in range(num_cores)]
        self._phase_written: set = set()
        self.phase_written_regions: List[FrozenSet[int]] = []
        self.phase_region_updates: Dict[int, List[RegionUpdate]] = {}
        self._barriers_emitted = 0

    @property
    def num_cores(self) -> int:
        return len(self.traces)

    def load(self, core: int, addr: int) -> None:
        self.traces[core].append((OP_LOAD, addr))

    def store(self, core: int, addr: int) -> None:
        self.traces[core].append((OP_STORE, addr))
        region = self._regions.find(addr)
        if region is not None:
            self._phase_written.add(region.region_id)

    def compute(self, core: int, cycles: int) -> None:
        if cycles > 0:
            self.traces[core].append((OP_COMPUTE, cycles))

    def barrier(self, updates: Optional[List[RegionUpdate]] = None) -> None:
        """End the current phase on every core."""
        for trace in self.traces:
            trace.append((OP_BARRIER, 0))
        self.phase_written_regions.append(frozenset(self._phase_written))
        if updates:
            self.phase_region_updates[self._barriers_emitted] = list(updates)
        self._phase_written = set()
        self._barriers_emitted += 1

    def build(self, name: str, warmup_barriers: int = 0,
              description: str = "") -> Workload:
        # Ensure a final barrier so the last phase's stores are flushed
        # and self-invalidation state is consistent at end of simulation.
        if any(not t or t[-1][0] != OP_BARRIER for t in self.traces):
            self.barrier()
        return Workload(
            name=name, regions=self._regions, traces=self.traces,
            phase_written_regions=self.phase_written_regions,
            phase_region_updates=self.phase_region_updates,
            warmup_barriers=warmup_barriers, description=description)

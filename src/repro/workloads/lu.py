"""LU — blocked dense LU factorization (SPLASH-2, aligned variant).

Pattern features reproduced (paper Sections 4.3, 5.2.2, 5.3):

* the matrix is blocked into 16x16 blocks of doubles, block-aligned so
  there is no false sharing (the paper uses the *aligned* LU);
* owner-computes: blocks are assigned to cores in a 2D scatter; the
  perimeter and interior updates read blocks owned by other cores
  (producer-consumer sharing through barriers);
* upgrade-heavy stores: blocks are read (Shared) before being written,
  so MESI issues many Upgrade requests with invalidations — the paper's
  "LU store control traffic" oddity;
* triangular use: the perimeter update consumes only the triangular half
  of the diagonal block, so half of each fetched line is spatial waste —
  the paper's residual LU L1 waste.
"""

from __future__ import annotations

from typing import List

from repro.common.config import ScaleConfig
from repro.workloads.base import DOUBLE_WORDS, Generator, core_grid


class LUGenerator(Generator):
    name = "LU"

    def __init__(self, scale: ScaleConfig, **kwargs) -> None:
        super().__init__(scale, **kwargs)
        self.n = scale.lu_matrix
        self.b = scale.lu_block
        if self.n % self.b:
            raise ValueError("matrix size must be a multiple of block size")
        self.nblocks = self.n // self.b
        self.block_words = self.b * self.b * DOUBLE_WORDS
        # 2D block-cyclic owner grid: 4x4 on the paper's 16-core machine.
        self.grid_rows, self.grid_cols = core_grid(self.num_cores)

    def description(self) -> str:
        return (f"{self.n}x{self.n} matrix, {self.b}x{self.b} blocks, "
                f"aligned (no false sharing)")

    def layout(self) -> None:
        total = self.nblocks * self.nblocks * self.block_words
        self.matrix = self.alloc.alloc("lu.matrix", total)

    # -- addressing ------------------------------------------------------
    def block_base(self, bi: int, bj: int) -> int:
        index = bi * self.nblocks + bj
        return self.matrix.base_word + index * self.block_words

    def elem(self, bi: int, bj: int, i: int, j: int) -> int:
        return self.block_base(bi, bj) + (i * self.b + j) * DOUBLE_WORDS

    def owner(self, bi: int, bj: int) -> int:
        """2D scatter block-to-core assignment (SPLASH LU)."""
        return ((bi % self.grid_rows) * self.grid_cols
                + (bj % self.grid_cols))

    # -- emission --------------------------------------------------------
    def emit(self) -> None:
        self._warmup_read_all()
        self.barrier()
        for k in range(self.nblocks):
            self._factor_diagonal(k)
            self.barrier()
            self._update_perimeter(k)
            self.barrier()
            self._update_interior(k)
            self.barrier()

    def warmup_barriers(self) -> int:
        return 1   # core 0 streams the matrix once (paper Section 4.3)

    def _warmup_read_all(self) -> None:
        for bi in range(self.nblocks):
            for bj in range(self.nblocks):
                base = self.block_base(bi, bj)
                self.read_range(0, base, self.block_words)

    def _factor_diagonal(self, k: int) -> None:
        """Owner factorizes block (k, k): read-modify-write, triangular."""
        core = self.owner(k, k)
        for i in range(self.b):
            for j in range(self.b):
                self.load_double(core, self.elem(k, k, i, j))
                if j >= i:   # the elimination only updates at/above the pivot row
                    self.store_double(core, self.elem(k, k, i, j))
            self.compute(core, 4)

    def _update_perimeter(self, k: int) -> None:
        """Row/column blocks (k, j) and (i, k): triangular solve against
        the diagonal block (reads only its upper triangle)."""
        for j in range(k + 1, self.nblocks):
            self._perimeter_one(k, k, j, row=True)
            self._perimeter_one(k, j, k, row=False)

    def _perimeter_one(self, k: int, bi: int, bj: int, row: bool) -> None:
        core = self.owner(bi, bj)
        # Triangular read of the diagonal block: upper half only, which
        # leaves the other half of each fetched line unread.
        for i in range(self.b):
            for j in range(i, self.b):
                self.load_double(core, self.elem(k, k, i, j))
        # Read-modify-write the perimeter block.
        for i in range(self.b):
            for j in range(self.b):
                self.load_double(core, self.elem(bi, bj, i, j))
                self.store_double(core, self.elem(bi, bj, i, j))
            self.compute(core, 4)

    def _update_interior(self, k: int) -> None:
        """Interior blocks (i, j), i,j > k: A[i][j] -= A[i][k] * A[k][j]."""
        for bi in range(k + 1, self.nblocks):
            for bj in range(k + 1, self.nblocks):
                core = self.owner(bi, bj)
                row_base = self.block_base(bi, k)
                col_base = self.block_base(k, bj)
                self.read_range(core, row_base, self.block_words)
                self.read_range(core, col_base, self.block_words)
                for i in range(self.b):
                    for j in range(self.b):
                        self.load_double(core, self.elem(bi, bj, i, j))
                        self.store_double(core, self.elem(bi, bj, i, j))
                    self.compute(core, 8)

"""radix — parallel radix sort (SPLASH-2).

Pattern features reproduced (paper Sections 5.2.2, 5.3):

* histogram pass: each core streams its contiguous slice of the key
  array (read once — bypass pattern 2) into a private histogram;
* rank pass: a prefix-sum over the shared global histogram;
* permutation pass: each core re-reads its keys and writes each one to
  its rank position — the writes cycle among ``radix`` (1024) different
  destination buckets, far more lines than the L1 holds, producing the
  paper's Write waste (fetch-on-write fetches lines that are fully
  overwritten) and Evict waste (lines evicted half-written and
  refetched), and overflowing DeNovo's 32-entry write-combining table so
  the same line needs multiple registration messages (the paper's radix
  store-control blowup);
* the destination array is read in the next iteration, giving the
  L2-bypass secondary benefit the paper describes.
"""

from __future__ import annotations

from repro.common.config import ScaleConfig
from repro.workloads.base import Generator


class RadixGenerator(Generator):
    name = "radix"

    def __init__(self, scale: ScaleConfig, **kwargs) -> None:
        super().__init__(scale, **kwargs)
        self.keys = scale.radix_keys
        self.buckets = scale.radix_buckets

    def description(self) -> str:
        return f"{self.keys} keys, {self.buckets} radix"

    def layout(self) -> None:
        self.key_array = self.alloc.alloc("radix.keys", self.keys,
                                          bypass_l2=True)
        self.dst_array = self.alloc.alloc("radix.dst", self.keys,
                                          bypass_l2=True)
        self.global_hist = self.alloc.alloc("radix.hist", self.buckets)
        self.local_hist = [
            self.alloc.alloc(f"radix.lhist{c}", self.buckets)
            for c in range(self.num_cores)]
        # Pre-draw each key's digit so both passes see the same values.
        self.digits = [self.rng.randrange(self.buckets)
                       for _ in range(self.keys)]

    def emit(self) -> None:
        # Warm-up iteration sorts keys -> dst; measured iteration sorts
        # dst -> keys (the paper warms one iteration, measures one).
        self._iteration(self.key_array, self.dst_array)
        self._iteration(self.dst_array, self.key_array)

    def warmup_barriers(self) -> int:
        return 3   # the three barriers of the first iteration

    def _iteration(self, src, dst) -> None:
        self._histogram(src)
        self.barrier()
        self._rank()
        self.barrier()
        self._permute(src, dst)
        self.barrier()

    def _histogram(self, src) -> None:
        for core in range(self.num_cores):
            lhist = self.local_hist[core]
            for i in self.chunk(self.keys, core):
                self.tb.load(core, src.base_word + i)
                digit = self.digits[i]
                # Increment the private histogram bin (read-modify-write).
                self.tb.load(core, lhist.base_word + digit)
                self.tb.store(core, lhist.base_word + digit)
            self.compute(core, 8)

    def _rank(self) -> None:
        """Core 0 reduces the local histograms into global bucket bases."""
        for c in range(self.num_cores):
            self.read_range(0, self.local_hist[c].base_word, self.buckets)
        self.write_range(0, self.global_hist.base_word, self.buckets)

    def _permute(self, src, dst) -> None:
        # Each (core, digit) pair owns a contiguous destination range;
        # compute the bases the same way the real sort's ranking does.
        counts = [[0] * self.buckets for _ in range(self.num_cores)]
        for core in range(self.num_cores):
            for i in self.chunk(self.keys, core):
                counts[core][self.digits[i]] += 1
        base = 0
        offset = [[0] * self.buckets for _ in range(self.num_cores)]
        for digit in range(self.buckets):
            for core in range(self.num_cores):
                offset[core][digit] = base
                base += counts[core][digit]
        cursor = [[0] * self.buckets for _ in range(self.num_cores)]
        for core in range(self.num_cores):
            for i in self.chunk(self.keys, core):
                self.tb.load(core, src.base_word + i)
                digit = self.digits[i]
                # Read the rank base (global histogram) then scatter.
                self.tb.load(core, self.global_hist.base_word + digit)
                target = offset[core][digit] + cursor[core][digit]
                cursor[core][digit] += 1
                self.tb.store(core, dst.base_word + target)

"""The six benchmark workloads of paper Table 4.2, as trace generators."""

from typing import Dict, List, Optional, Type

from repro.common.config import DEFAULT_SCALE, ScaleConfig
from repro.workloads.barnes import BarnesGenerator
from repro.workloads.base import DEFAULT_NUM_CORES, Generator, core_grid
from repro.workloads.fft import FFTGenerator
from repro.workloads.fluidanimate import FluidanimateGenerator
from repro.workloads.kdtree import KDTreeGenerator
from repro.workloads.lu import LUGenerator
from repro.workloads.radix import RadixGenerator
from repro.workloads.stream import StreamGenerator
from repro.workloads.trace import (
    OP_BARRIER,
    OP_COMPUTE,
    OP_LOAD,
    OP_STORE,
    RegionUpdate,
    TraceBuilder,
    Workload,
)

#: Paper order (Figure 5.1 x-axis grouping).
WORKLOAD_ORDER = ("fluidanimate", "LU", "FFT", "radix", "barnes", "kD-tree")

#: Paper workloads plus opt-in synthetic microbenchmarks (registered
#: here but kept out of ``WORKLOAD_ORDER`` so figures stay paper-shaped).
GENERATORS: Dict[str, Type[Generator]] = {
    "fluidanimate": FluidanimateGenerator,
    "LU": LUGenerator,
    "FFT": FFTGenerator,
    "radix": RadixGenerator,
    "barnes": BarnesGenerator,
    "kD-tree": KDTreeGenerator,
    "stream": StreamGenerator,
}


def canonical_workload(name: str) -> str:
    """Resolve a case-insensitive workload name to its registry key."""
    canonical = {n.lower(): n for n in GENERATORS}
    key = canonical.get(name.lower())
    if key is None:
        raise KeyError(f"unknown workload {name!r}; "
                       f"known: {', '.join(GENERATORS)}")
    return key


def build_workload(name: str,
                   scale: Optional[ScaleConfig] = None,
                   num_cores: Optional[int] = None,
                   **kwargs) -> Workload:
    """Build a named workload's traces (paper Table 4.2 names).

    Accepts case-insensitive names; ``scale`` defaults to the fast
    ``small`` configuration (use ``ScaleConfig.paper()`` for the paper's
    input sizes).  ``num_cores`` defaults to the paper's 16-core
    machine; pass the target ``SystemConfig.num_tiles`` to build traces
    for another machine shape (every generator's partitioning scales).
    """
    key = canonical_workload(name)
    if num_cores is not None:
        kwargs["num_cores"] = num_cores
    generator = GENERATORS[key](scale if scale is not None else DEFAULT_SCALE,
                                **kwargs)
    return generator.build()


def build_all(scale: Optional[ScaleConfig] = None,
              num_cores: Optional[int] = None) -> Dict[str, Workload]:
    """Build every workload in paper order."""
    return {name: build_workload(name, scale, num_cores=num_cores)
            for name in WORKLOAD_ORDER}


__all__ = [
    "DEFAULT_NUM_CORES", "GENERATORS", "WORKLOAD_ORDER", "Generator",
    "Workload", "TraceBuilder",
    "RegionUpdate", "build_all", "build_workload", "canonical_workload",
    "core_grid",
    "OP_LOAD", "OP_STORE", "OP_COMPUTE", "OP_BARRIER",
    "BarnesGenerator", "FFTGenerator", "FluidanimateGenerator",
    "KDTreeGenerator", "LUGenerator", "RadixGenerator", "StreamGenerator",
]

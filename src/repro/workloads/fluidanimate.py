"""fluidanimate — SPH fluid simulation (PARSEC), ghost-cell variant.

Pattern features reproduced (paper Sections 5.2.1, 5.2.2, 5.3):

* grid cells hold up to 16 particle slots but most are under-filled
  (random fill, mean ~6), so the pre-allocated tails of the per-field
  slot arrays are fetched with the useful data and die as Evict waste —
  the paper's dominant fluidanimate L1 waste;
* an un-blocked X-Y-Z stencil traversal reads the 6 neighbour cells,
  giving the large disparity in L2 reuse distance the paper blames for
  residual L2 waste;
* per-iteration accumulator zeroing and an array-to-array position copy
  (rebuild) overwrite large regions without reading them — Write waste
  under fetch-on-write, and the read-then-overwrite bypass pattern;
* the thesis modified fluidanimate to use the ghost-cell pattern: each
  core keeps private ghost copies of neighbouring slabs' boundary cells
  and an explicit exchange phase refreshes them (the only cross-core
  sharing).

Layout is struct-of-arrays per field so each field is its own software
region, as the DPJ-style region annotations require.
"""

from __future__ import annotations

from typing import List

from repro.common.config import ScaleConfig
from repro.workloads.base import Generator

SLOTS = 16    # particle slots per cell (paper: objects hold up to 16)


class FluidanimateGenerator(Generator):
    name = "fluidanimate"

    def __init__(self, scale: ScaleConfig, **kwargs) -> None:
        super().__init__(scale, **kwargs)
        self.ncells = scale.fluid_cells
        # Arrange cells in an x-major 3D grid: nx * ny * nz = ncells.
        self.nx = 8
        self.ny = 8
        self.nz = max(self.ncells // (self.nx * self.ny), 1)
        self.ncells = self.nx * self.ny * self.nz

    def description(self) -> str:
        return (f"{self.ncells} cells ({self.nx}x{self.ny}x{self.nz}), "
                f"<=16 particle slots, ghost-cell exchange")

    def layout(self) -> None:
        n = self.ncells * SLOTS
        self.count = self.alloc.alloc("fluid.count", self.ncells)
        self.pos = self.alloc.alloc("fluid.pos", n)
        self.pos2 = self.alloc.alloc("fluid.pos2", n, bypass_l2=True)
        self.vel = self.alloc.alloc("fluid.vel", n)
        # Accumulators: read then overwritten every iteration (bypass
        # pattern 1 in the paper).
        self.density = self.alloc.alloc("fluid.density", n, bypass_l2=True)
        self.acc = self.alloc.alloc("fluid.acc", n, bypass_l2=True)
        # Per-core ghost copies of neighbour-slab boundary cells.
        boundary = self.nx * self.ny * SLOTS
        self.ghost = [self.alloc.alloc(f"fluid.ghost{c}", 2 * boundary)
                      for c in range(self.num_cores)]
        self.fill = [1 + self.rng.randrange(SLOTS)  # mean ~8, mostly < 16
                     if self.rng.random() < 0.85 else SLOTS
                     for _ in range(self.ncells)]

    # -- addressing -----------------------------------------------------
    def cell_index(self, x: int, y: int, z: int) -> int:
        return (z * self.ny + y) * self.nx + x

    def slot_base(self, region, cell: int) -> int:
        return region.base_word + cell * SLOTS

    def neighbours(self, x: int, y: int, z: int) -> List[int]:
        out = []
        for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0),
                           (0, 0, 1), (0, 0, -1)):
            nx, ny, nz = x + dx, y + dy, z + dz
            if 0 <= nx < self.nx and 0 <= ny < self.ny and 0 <= nz < self.nz:
                out.append(self.cell_index(nx, ny, nz))
        return out

    def core_slabs(self, core: int) -> range:
        """Z-slab partitioning of the grid across cores."""
        return self.chunk(self.nz, core)

    # -- emission -----------------------------------------------------------
    def emit(self) -> None:
        for _iteration in range(2):   # warm-up + measured
            self._rebuild()
            self.barrier()
            self._zero_accumulators()
            self.barrier()
            self._density_pass()
            self.barrier()
            self._force_pass()
            self.barrier()
            self._update_pass()
            self.barrier()
            self._ghost_exchange()
            self.barrier()

    def warmup_barriers(self) -> int:
        return 6   # the first iteration

    def _cells_of(self, core: int):
        for z in self.core_slabs(core):
            for y in range(self.ny):
                for x in range(self.nx):
                    yield x, y, z, self.cell_index(x, y, z)

    def _rebuild(self) -> None:
        """Array-to-array copy: pos -> pos2 (read once, overwrite dest)."""
        for core in range(self.num_cores):
            for _x, _y, _z, cell in self._cells_of(core):
                fill = self.fill[cell]
                self.tb.load(core, self.count.base_word + cell)
                src = self.slot_base(self.pos, cell)
                dst = self.slot_base(self.pos2, cell)
                for s in range(fill):
                    self.tb.load(core, src + s)
                    self.tb.store(core, dst + s)
                self.tb.store(core, self.count.base_word + cell)

    def _zero_accumulators(self) -> None:
        """Zero density and acc without reading them (Write waste under
        fetch-on-write; the whole slot array is zeroed, filled or not)."""
        for core in range(self.num_cores):
            for _x, _y, _z, cell in self._cells_of(core):
                self.write_range(core, self.slot_base(self.density, cell),
                                 SLOTS)
                self.write_range(core, self.slot_base(self.acc, cell),
                                 SLOTS)

    def _density_pass(self) -> None:
        """Stencil: read neighbours' positions, accumulate own density."""
        for core in range(self.num_cores):
            for x, y, z, cell in self._cells_of(core):
                fill = self.fill[cell]
                own = self.slot_base(self.pos, cell)
                for s in range(fill):
                    self.tb.load(core, own + s)
                for ncell in self.neighbours(x, y, z):
                    nbase = self.slot_base(self.pos, ncell)
                    for s in range(self.fill[ncell]):
                        self.tb.load(core, nbase + s)
                dens = self.slot_base(self.density, cell)
                for s in range(fill):
                    self.tb.load(core, dens + s)
                    self.tb.store(core, dens + s)
                self.compute(core, 6)

    def _force_pass(self) -> None:
        """Read neighbour density+pos, write own acceleration."""
        for core in range(self.num_cores):
            for x, y, z, cell in self._cells_of(core):
                fill = self.fill[cell]
                for ncell in self.neighbours(x, y, z):
                    dbase = self.slot_base(self.density, ncell)
                    for s in range(min(self.fill[ncell], 4)):
                        self.tb.load(core, dbase + s)
                abase = self.slot_base(self.acc, cell)
                for s in range(fill):
                    self.tb.load(core, abase + s)
                    self.tb.store(core, abase + s)
                self.compute(core, 6)

    def _update_pass(self) -> None:
        """Integrate: read acc, read-modify-write pos2 and vel."""
        for core in range(self.num_cores):
            for _x, _y, _z, cell in self._cells_of(core):
                fill = self.fill[cell]
                abase = self.slot_base(self.acc, cell)
                pbase = self.slot_base(self.pos2, cell)
                vbase = self.slot_base(self.vel, cell)
                for s in range(fill):
                    self.tb.load(core, abase + s)
                    self.tb.load(core, pbase + s)
                    self.tb.store(core, self.slot_base(self.pos, cell) + s)
                    self.tb.load(core, vbase + s)
                    self.tb.store(core, vbase + s)
                self.compute(core, 4)

    def _ghost_exchange(self) -> None:
        """Each core copies neighbour slabs' boundary cells into its
        private ghost region (the only cross-core reads)."""
        for core in range(self.num_cores):
            slabs = self.core_slabs(core)
            ghost = self.ghost[core]
            cursor = 0
            for z in (slabs.start - 1, slabs.stop):
                if not 0 <= z < self.nz:
                    continue
                for y in range(self.ny):
                    for x in range(self.nx):
                        cell = self.cell_index(x, y, z)
                        pbase = self.slot_base(self.pos, cell)
                        for s in range(min(self.fill[cell], 4)):
                            self.tb.load(core, pbase + s)
                            if cursor < ghost.size_words:
                                self.tb.store(core,
                                              ghost.base_word + cursor)
                                cursor += 1

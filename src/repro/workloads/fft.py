"""FFT — six-step radix-√n FFT (SPLASH-2).

Pattern features reproduced (paper Sections 5.2.1, 5.2.2):

* the n points are complex doubles (4 words) in a sqrt(n) x sqrt(n)
  matrix; rows are partitioned contiguously across cores;
* compute phases read-modify-write each owned row in place (read-then-
  overwrite — bypass pattern 1);
* the transpose reads each source element exactly once (bypass pattern
  2) and *overwrites* the destination without reading it, which under
  fetch-on-write drags whole destination lines on-chip only to be
  overwritten (Write waste, the dominant FFT store waste);
* the destination array is consumed in the following phase, so evicting
  it early would hurt — only the *source* read and destination write
  sides are bypass-annotated, matching the paper's FFT discussion.
"""

from __future__ import annotations

import math

from repro.common.config import ScaleConfig
from repro.workloads.base import Generator

COMPLEX_WORDS = 4   # two doubles


class FFTGenerator(Generator):
    name = "FFT"

    def __init__(self, scale: ScaleConfig, **kwargs) -> None:
        super().__init__(scale, **kwargs)
        self.n = scale.fft_points
        self.side = int(math.isqrt(self.n))
        if self.side * self.side != self.n:
            raise ValueError("fft_points must be a perfect square")

    def description(self) -> str:
        return f"{self.n} complex points, {self.side}x{self.side} matrix"

    def layout(self) -> None:
        words = self.n * COMPLEX_WORDS
        # Both arrays stream through the hierarchy once per phase and the
        # combined working set exceeds the L2: annotate both for bypass.
        self.src = self.alloc.alloc("fft.src", words, bypass_l2=True)
        self.dst = self.alloc.alloc("fft.dst", words, bypass_l2=True)
        self.twiddle = self.alloc.alloc("fft.twiddle",
                                        self.side * COMPLEX_WORDS)

    def elem(self, region, row: int, col: int) -> int:
        return region.base_word + (row * self.side + col) * COMPLEX_WORDS

    def emit(self) -> None:
        self._warmup_read_all()
        self.barrier()
        self._fft_rows(self.src)
        self.barrier()
        self._transpose(self.src, self.dst)
        self.barrier()
        self._fft_rows(self.dst)
        self.barrier()

    def warmup_barriers(self) -> int:
        return 1   # core 0 streams both arrays (paper Section 4.3)

    def _warmup_read_all(self) -> None:
        for region in (self.src, self.dst):
            self.read_range(0, region.base_word, region.size_words)

    def _fft_rows(self, region) -> None:
        """Each core performs 1D FFTs on its rows: in-place butterflies
        (read-modify-write every element) using the shared twiddles."""
        for core in range(self.num_cores):
            for row in self.chunk(self.side, core):
                self.read_range(core, self.twiddle.base_word,
                                min(16, self.twiddle.size_words))
                for col in range(self.side):
                    addr = self.elem(region, row, col)
                    self.load_scalar(core, addr, COMPLEX_WORDS)
                    self.store_scalar(core, addr, COMPLEX_WORDS)
                self.compute(core, self.side // 2)

    def _transpose(self, src, dst) -> None:
        """dst[j][i] = src[i][j], blocked 4x4 to mimic SPLASH's blocked
        transpose; destinations land in other cores' future rows."""
        blk = 4
        for core in range(self.num_cores):
            rows = self.chunk(self.side, core)
            for row0 in range(rows.start, rows.stop, blk):
                for col0 in range(0, self.side, blk):
                    for row in range(row0, min(row0 + blk, rows.stop)):
                        for col in range(col0, min(col0 + blk, self.side)):
                            self.load_scalar(core, self.elem(src, row, col),
                                             COMPLEX_WORDS)
                            self.store_scalar(core, self.elem(dst, col, row),
                                              COMPLEX_WORDS)
                    self.compute(core, 2)

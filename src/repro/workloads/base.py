"""Common machinery for the six benchmark trace generators.

Each generator reproduces the *access-pattern features* the paper's
analysis hinges on (Section 5), not the arithmetic of the original
benchmark: data layouts are byte-faithful (struct strides, padding,
alignment), sharing and phase structure match the paper's description,
and software annotations (regions, Flex communication regions, L2 bypass)
carry the same information DPJ would provide.

All generators are deterministic (seeded) so simulations are exactly
reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.common.config import ScaleConfig
from repro.common.regions import FlexPattern, Region, RegionAllocator
from repro.workloads.trace import TraceBuilder, Workload

#: The paper's machine has 16 cores; every generator takes ``num_cores``
#: so the same access patterns scale to any machine shape.
DEFAULT_NUM_CORES = 16

#: Words per scalar type in the simulated 4-byte-word machine.
FLOAT_WORDS = 1
DOUBLE_WORDS = 2


def core_grid(num_cores: int) -> Tuple[int, int]:
    """``(rows, cols)`` of the most-square 2D scatter grid of the cores.

    Used by owner-computes workloads (LU) that assign work in a 2D
    block-cyclic pattern: 16 cores -> 4x4 (the paper's machine), 4 ->
    2x2, 8 -> 2x4, 1 -> 1x1.
    """
    if num_cores < 1:
        raise ValueError("num_cores must be positive")
    rows = math.isqrt(num_cores)
    while num_cores % rows:
        rows -= 1
    return rows, num_cores // rows


class Generator:
    """Base class for benchmark trace generators."""

    name = "base"

    def __init__(self, scale: ScaleConfig, num_cores: int = DEFAULT_NUM_CORES,
                 seed: int = 12345) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be positive")
        self.scale = scale
        self.num_cores = num_cores
        self.rng = random.Random(seed)
        self.alloc = RegionAllocator()
        self.tb: Optional[TraceBuilder] = None

    # -- subclass API ------------------------------------------------------
    def layout(self) -> None:
        """Allocate regions; called before :meth:`emit`."""
        raise NotImplementedError

    def emit(self) -> None:
        """Emit per-core traces into ``self.tb``."""
        raise NotImplementedError

    def warmup_barriers(self) -> int:
        """Barriers that constitute the warm-up period (stats reset after)."""
        return 0

    def description(self) -> str:
        return ""

    # -- driver ------------------------------------------------------------
    def build(self) -> Workload:
        self.layout()
        self.tb = TraceBuilder(self.num_cores, self.alloc.table)
        self.emit()
        return self.tb.build(self.name,
                             warmup_barriers=self.warmup_barriers(),
                             description=self.description())

    # -- emission helpers --------------------------------------------------
    def load_scalar(self, core: int, addr: int, words: int = 1) -> None:
        for w in range(words):
            self.tb.load(core, addr + w)

    def store_scalar(self, core: int, addr: int, words: int = 1) -> None:
        for w in range(words):
            self.tb.store(core, addr + w)

    def load_double(self, core: int, addr: int) -> None:
        self.load_scalar(core, addr, DOUBLE_WORDS)

    def store_double(self, core: int, addr: int) -> None:
        self.store_scalar(core, addr, DOUBLE_WORDS)

    def read_range(self, core: int, base: int, num_words: int) -> None:
        for w in range(num_words):
            self.tb.load(core, base + w)

    def write_range(self, core: int, base: int, num_words: int) -> None:
        for w in range(num_words):
            self.tb.store(core, base + w)

    def compute(self, core: int, cycles: int) -> None:
        self.tb.compute(core, cycles)

    def barrier(self, updates=None) -> None:
        self.tb.barrier(updates)

    # -- partitioning helpers -----------------------------------------------
    def chunk(self, total: int, core: int) -> range:
        """Contiguous slice of ``range(total)`` owned by ``core``."""
        per = total // self.num_cores
        extra = total % self.num_cores
        start = core * per + min(core, extra)
        size = per + (1 if core < extra else 0)
        return range(start, start + size)

    def round_robin(self, total: int, core: int) -> range:
        """Indices owned by ``core`` under round-robin assignment."""
        return range(core, total, self.num_cores)

"""In-order core model (Simics-equivalent, paper Section 4.2).

Each core executes its trace in order.  Non-memory instructions take one
cycle (represented by ``OP_COMPUTE`` advances), loads block on misses,
stores are non-blocking until the protocol's buffering fills up, and
barriers synchronize all cores.

Stall cycles are attributed to the paper's Figure 5.2 buckets: ``busy``
(compute + issue), ``onchip`` (misses served by the L2 or a remote L1),
``to_mc`` / ``mem`` / ``from_mc`` (segments of memory-served misses) and
``sync`` (barrier wait, including the pre-barrier write drain).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.context import LoadRequest, SimContext
from repro.core.stats import TimeStats
from repro.engine.events import Barrier
from repro.workloads.trace import OP_BARRIER, OP_COMPUTE, OP_LOAD, OP_STORE

#: Max ops executed locally before yielding to the event queue; bounds the
#: timing skew introduced by batching L1 hits.
BATCH_LIMIT = 64


class Core:
    """One in-order core driving its trace through the protocol."""

    def __init__(self, core_id: int, trace: List, protocol_system,
                 ctx: SimContext, barrier: Barrier,
                 on_finish: Callable[[int, int], None]) -> None:
        self.core_id = core_id
        self.trace = trace
        self.proto = protocol_system
        self.ctx = ctx
        self.barrier = barrier
        self.on_finish = on_finish
        self.time = TimeStats()
        self.pc = 0
        self.finished = False
        self.finish_time: Optional[int] = None
        self._wait_start = 0

    def start(self, at: int = 0) -> None:
        self.ctx.queue.schedule_call(at, self._run, at)

    # ------------------------------------------------------------------

    def _run(self, at: int) -> None:
        # The hottest loop in the simulator: bind the per-op lookups
        # (trace, program counter, time stats, protocol entry points,
        # trace length) to locals so each op skips repeated attribute
        # chains; re-entry and continuations go through the closure-free
        # scheduler (bound method + args, no lambda per yield).
        queue = self.ctx.queue
        schedule_call = queue.schedule_call
        now = queue.now
        t = at if at >= now else now
        batch = 0
        trace = self.trace
        trace_len = len(trace)
        time = self.time
        core_id = self.core_id
        proto_load = self.proto.load
        proto_store = self.proto.store
        pc = self.pc
        while pc < trace_len:
            kind, arg = trace[pc]
            if kind == OP_COMPUTE:
                time.busy += arg
                t += arg
                pc += 1
                batch += 1
                if arg > BATCH_LIMIT:
                    self.pc = pc
                    schedule_call(t, self._run, t)
                    return
            elif kind == OP_LOAD:
                time.busy += 1
                self.pc = pc
                done = proto_load(core_id, arg, t, self._load_done)
                if done is None:
                    self._wait_start = t
                    return
                t = done
                pc = self.pc = pc + 1
                batch += 1
            elif kind == OP_STORE:
                accepted = proto_store(core_id, arg, t)
                if not accepted:
                    self.pc = pc
                    self._wait_start = t
                    self.proto.on_retire(core_id, self._store_stall_resume)
                    return
                time.busy += 1
                t += 1
                pc += 1
                batch += 1
            elif kind == OP_BARRIER:
                self.pc = pc + 1
                self._wait_start = t
                self.proto.drain_barrier(self.core_id, t, self._drain_done)
                return
            else:
                raise ValueError(f"unknown op kind {kind}")
            if batch >= BATCH_LIMIT:
                self.pc = pc
                schedule_call(t, self._run, t)
                return
        self.pc = pc
        self.finished = True
        self.finish_time = t
        self.on_finish(self.core_id, t)

    # ------------------------------------------------------------------

    def _drain_done(self, _t: int) -> None:
        """Store drain finished: join the barrier."""
        self.barrier.arrive(self.core_id, self._barrier_release)

    def _load_done(self, t: int, req: LoadRequest) -> None:
        stall = max(0, t - self._wait_start - 1)
        if req.went_to_memory and req.t_arrive_mc is not None:
            leave = req.t_leave_mc if req.t_leave_mc is not None else t
            self.time.to_mc += max(0, req.t_arrive_mc - self._wait_start)
            self.time.mem += max(0, leave - req.t_arrive_mc)
            self.time.from_mc += max(0, t - leave)
        else:
            self.time.onchip += stall
        self.pc += 1
        self._run(t)

    def _store_stall_resume(self, t: int) -> None:
        stall = max(0, t - self._wait_start)
        if getattr(self.proto, "last_retire_went_to_memory", None):
            to_mem = self.proto.last_retire_went_to_memory(self.core_id)
        else:
            to_mem = False
        if to_mem:
            self.time.mem += stall
        else:
            self.time.onchip += stall
        self._run(t)   # retry the same store op

    def _barrier_release(self, release_time: int) -> None:
        self.time.sync += max(0, release_time - self._wait_start)
        self._run(release_time)

    def reset_time(self) -> None:
        self.time.reset()

"""Shared simulation context handed to the coherence protocols.

``SimContext`` owns the clock, mesh, traffic ledger, waste profilers, DRAM
channels and region table, and exposes the message-send helpers both
protocols use.  Every network message goes through one of the ``send_*``
helpers so flit-hop accounting and latency stay consistent with the
paper's methodology (Section 5.2): control flits are one flit; data
payloads are charged per word with unfilled tail-flit slack credited to
response control.

The helpers are closure-free: each takes ``handler, *args`` and hands
them straight to :meth:`EventQueue.schedule_call`, which invokes
``handler(*args, arrive_time)`` — the arrival time is always the last
argument.  Callers pass bound methods plus their state instead of
allocating a lambda per message, which keeps the per-event cost flat on
the hottest loop in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.config import ProtocolConfig, SystemConfig
from repro.common.regions import RegionTable
from repro.dram.model import LINES_PER_ROW, DramChannel
from repro.engine.events import Barrier, EventQueue, make_event_queue
from repro.network.mesh import Mesh
from repro.network.traffic import TrafficLedger
from repro.waste.profiler import CacheLevelProfiler, MemoryProfiler


#: Fixed L2 slice lookup latency (cycles) and per-request occupancy.
L2_ACCESS_LATENCY = 8
L2_OCCUPANCY = 2
#: Memory-controller front-end latency before the DRAM queue.
MC_FRONTEND_LATENCY = 4
#: Retry backoff after a NACK (cycles).
NACK_RETRY_DELAY = 20


#: ``LoadRequest.served_by`` values: which agent supplied the fill.
SERVED_NONE = 0       # never completed normally (or L1 hit after retry)
SERVED_L2 = 1         # home L2 slice had the line/words
SERVED_REMOTE_L1 = 2  # forwarded to and answered by a remote owner L1
SERVED_MEMORY = 3     # went to a memory controller


@dataclass(slots=True)
class LoadRequest:
    """Bookkeeping for one outstanding (blocking) load miss.

    The ``t_*`` checkpoints past ``t_issue`` are purely observational:
    the coherence controllers stamp them unconditionally as the request
    moves (first home arrival, home departure toward memory, MC
    arrival/departure, fill send), and ``repro.obs.attrib`` — when
    attached — decomposes the end-to-end latency into segments from
    them.  Nothing on the timing path ever reads them.
    """

    core: int
    addr: int
    t_issue: int
    on_done: Callable[[int, "LoadRequest"], None]
    t_arrive_mc: Optional[int] = None
    t_leave_mc: Optional[int] = None
    went_to_memory: bool = False
    retries: int = 0
    t_home_arrive: Optional[int] = None
    t_home_depart: Optional[int] = None
    t_fill_send: Optional[int] = None
    served_by: int = SERVED_NONE


@dataclass(slots=True)
class StoreRequest:
    """Bookkeeping for one outstanding (non-blocking) store-path request.

    The ``t_*`` fields mirror :class:`LoadRequest`'s observational
    checkpoints for the MESI store (GETX) path; DeNovo stores are
    write-combined registrations and carry no per-request record.
    """

    core: int
    line_addr: int
    t_issue: int
    went_to_memory: bool = False
    retries: int = 0
    t_home_arrive: Optional[int] = None
    t_home_depart: Optional[int] = None
    t_arrive_mc: Optional[int] = None
    t_leave_mc: Optional[int] = None


class SimContext:
    """Everything the protocol controllers need to talk to each other."""

    def __init__(self, config: SystemConfig, proto: ProtocolConfig,
                 regions: RegionTable) -> None:
        self.config = config
        self.proto = proto
        self.regions = regions
        self.queue = make_event_queue(config.scheduler)
        self.mesh = Mesh(config)
        # Accounting objects come from overridable factories so engine
        # variants (repro.engine.compiled) can substitute array-backed
        # implementations with identical observable behaviour.
        self.ledger = self._make_ledger()
        self.l1_prof = self._make_cache_profiler("L1")
        self.l2_prof = self._make_cache_profiler("L2")
        self.mem_prof = self._make_memory_profiler()
        # Memory-controller tiles: the paper's four corners by default,
        # generalized by the config for other shapes/controller counts.
        self.mc_tiles = config.mc_placement()
        self.drams: Dict[int, DramChannel] = {
            tile: DramChannel(config, self.queue) for tile in self.mc_tiles}
        self._l2_free: List[int] = [0] * config.num_tiles
        self.barrier: Optional[Barrier] = None   # wired by System
        # -- precomputed placement tables -------------------------------
        # home_tile is line_addr % num_tiles; mc_tile is periodic in the
        # line address with period LINES_PER_ROW * num_controllers, so
        # both collapse to one modulo plus (for mc) one table index.
        self._num_tiles = config.num_tiles
        self._mc_period = LINES_PER_ROW * len(self.mc_tiles)
        self._mc_table = [
            self.mc_tiles[(i // LINES_PER_ROW) % len(self.mc_tiles)]
            for i in range(self._mc_period)]
        self._dram_table = [self.drams[t] for t in self._mc_table]
        # -- hot-path bindings ------------------------------------------
        # The mesh, queue and their methods live for the whole run; the
        # ledger is swapped by reset_stats(), which rebinds.
        self._hops = self.mesh.hops
        self._latency = self.mesh.latency
        self._traverse = self.mesh.traverse
        self._schedule_call = self.queue.schedule_call
        self._bind_ledger()

    # -- accounting factories (overridden by engine variants) -----------
    def _make_ledger(self) -> TrafficLedger:
        return TrafficLedger(self.config.words_per_flit)

    def _make_cache_profiler(self, level: str) -> CacheLevelProfiler:
        return CacheLevelProfiler(level)

    def _make_memory_profiler(self) -> MemoryProfiler:
        return MemoryProfiler()

    def _bind_ledger(self) -> None:
        ledger = self.ledger
        self._add_request_ctl = ledger.add_request_ctl
        self._add_response_ctl = ledger.add_response_ctl
        self._add_data_words = ledger.add_data_words
        self._add_wb_control = ledger.add_wb_control
        self._add_wb_data_words = ledger.add_wb_data_words
        self._add_overhead = ledger.add_overhead

    # -- placement ------------------------------------------------------
    def home_tile(self, line_addr: int) -> int:
        """L2 slice owning ``line_addr`` (line-interleaved)."""
        return line_addr % self._num_tiles

    def mc_tile(self, line_addr: int) -> int:
        """Memory controller owning ``line_addr``.

        Interleaved at DRAM-row granularity so that a whole row lives
        behind one controller — the L2-Flex optimization prefetches only
        same-row lines, which must share a controller.
        """
        return self._mc_table[line_addr % self._mc_period]

    def dram_for(self, line_addr: int) -> DramChannel:
        return self._dram_table[line_addr % self._mc_period]

    # -- L2 slice serialization --------------------------------------------
    def l2_service_time(self, tile: int, arrival: int) -> int:
        """When the slice can start handling a request arriving at ``arrival``."""
        l2_free = self._l2_free
        free = l2_free[tile]
        start = arrival if arrival >= free else free
        l2_free[tile] = start + L2_OCCUPANCY
        return start + L2_ACCESS_LATENCY

    # -- message helpers ----------------------------------------------------
    # Each returns the arrival time of the message at its destination
    # and schedules ``handler(*args, arrive)``.

    def send_req_ctl(self, major: str, src: int, dst: int, at: int,
                     handler: Callable, *args) -> int:
        """One-control-flit request (GETS/GETX/registration/memory req)."""
        hops, delay = self._traverse(src, dst, 1, at)
        self._add_request_ctl(major, hops)
        arrive = at + delay
        self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    def send_resp_ctl(self, major: str, src: int, dst: int, at: int,
                      handler: Callable, *args) -> int:
        """One-control-flit response (ack/grant)."""
        hops, delay = self._traverse(src, dst, 1, at)
        self._add_response_ctl(major, hops)
        arrive = at + delay
        self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    def send_data(self, major: str, dest_level: str, src: int, dst: int,
                  at: int, entries: List[object],
                  handler: Callable, *args) -> int:
        """Response carrying ``len(entries)`` data words plus a header flit.

        ``entries`` are waste-profiler entries for the delivered words (at
        the destination level); their verdicts decide Used vs Waste at
        finalize time.
        """
        hops = self._hops(src, dst)
        self._add_response_ctl(major, hops)  # header flit
        data_flits = self._add_data_words(major, dest_level, hops, entries)
        total_flits = 1 + int(data_flits)
        arrive = at + self._latency(src, dst, total_flits, at)
        self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    def send_wb(self, src: int, dst: int, at: int, dirty_flags: List[bool],
                dest_level: str, handler: Callable, *args) -> int:
        """Writeback message: control flit + data words flagged dirty/clean."""
        hops = self._hops(src, dst)
        self._add_wb_control(hops)  # header flit
        data_flits = self._add_wb_data_words(dest_level, hops, dirty_flags)
        total_flits = 1 + int(data_flits)
        arrive = at + self._latency(src, dst, total_flits, at)
        self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    def send_overhead(self, subtype: str, src: int, dst: int, at: int,
                      handler: Optional[Callable] = None, *args,
                      flits: int = 1) -> int:
        """Coherence-overhead message (inv/ack/unblock/NACK/bloom)."""
        hops, delay = self._traverse(src, dst, flits, at)
        self._add_overhead(subtype, hops, flits)
        arrive = at + delay
        if handler is not None:
            self._schedule_call(arrive, handler, *args, arrive)
        return arrive

    # -- statistics reset (warm-up support) -------------------------------
    def reset_stats(self) -> None:
        """Swap in fresh traffic/waste accounting after the warm-up period.

        Cache contents and protocol state are untouched; words brought in
        during warm-up keep their references to the old profilers, so any
        later verdicts on them land in the discarded warm-up counters, as
        the paper's measurement methodology intends.
        """
        self.ledger = self._make_ledger()
        self._bind_ledger()
        self.l1_prof = self._make_cache_profiler("L1")
        self.l2_prof = self._make_cache_profiler("L2")
        self.mem_prof = self._make_memory_profiler()
        # Energy counters follow the same measurement window as the
        # ledger: NoC flit-hops must reconcile with the post-warm-up
        # traffic totals, and DRAM/MC energy events with the window's
        # command counts.  (The coherence kernel's counters are reset by
        # ``System`` right after this call, for the same reason.)
        self.mesh.reset_energy_counters()
        for dram in self.drams.values():
            dram.reset_energy_counters()

    def finalize(self) -> None:
        self.l1_prof.finalize()
        self.l2_prof.finalize()
        self.mem_prof.finalize()
        self.ledger.finalize()

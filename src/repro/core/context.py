"""Shared simulation context handed to the coherence protocols.

``SimContext`` owns the clock, mesh, traffic ledger, waste profilers, DRAM
channels and region table, and exposes the message-send helpers both
protocols use.  Every network message goes through one of the ``send_*``
helpers so flit-hop accounting and latency stay consistent with the
paper's methodology (Section 5.2): control flits are one flit; data
payloads are charged per word with unfilled tail-flit slack credited to
response control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.config import ProtocolConfig, SystemConfig
from repro.common.regions import RegionTable
from repro.dram.model import DramChannel
from repro.engine.events import Barrier, EventQueue
from repro.network import traffic as T
from repro.network.mesh import Mesh
from repro.network.traffic import TrafficLedger
from repro.waste.profiler import CacheLevelProfiler, MemoryProfiler


#: Fixed L2 slice lookup latency (cycles) and per-request occupancy.
L2_ACCESS_LATENCY = 8
L2_OCCUPANCY = 2
#: Memory-controller front-end latency before the DRAM queue.
MC_FRONTEND_LATENCY = 4
#: Retry backoff after a NACK (cycles).
NACK_RETRY_DELAY = 20


@dataclass(slots=True)
class LoadRequest:
    """Bookkeeping for one outstanding (blocking) load miss."""

    core: int
    addr: int
    t_issue: int
    on_done: Callable[[int, "LoadRequest"], None]
    t_arrive_mc: Optional[int] = None
    t_leave_mc: Optional[int] = None
    went_to_memory: bool = False
    retries: int = 0


@dataclass(slots=True)
class StoreRequest:
    """Bookkeeping for one outstanding (non-blocking) store-path request."""

    core: int
    line_addr: int
    t_issue: int
    went_to_memory: bool = False
    retries: int = 0


class SimContext:
    """Everything the protocol controllers need to talk to each other."""

    def __init__(self, config: SystemConfig, proto: ProtocolConfig,
                 regions: RegionTable) -> None:
        self.config = config
        self.proto = proto
        self.regions = regions
        self.queue = EventQueue()
        self.mesh = Mesh(config)
        self.ledger = TrafficLedger(config.words_per_flit)
        self.l1_prof = CacheLevelProfiler("L1")
        self.l2_prof = CacheLevelProfiler("L2")
        self.mem_prof = MemoryProfiler()
        # Memory-controller tiles: the paper's four corners by default,
        # generalized by the config for other shapes/controller counts.
        self.mc_tiles = config.mc_placement()
        self.drams: Dict[int, DramChannel] = {
            tile: DramChannel(config, self.queue) for tile in self.mc_tiles}
        self._l2_free: Dict[int, int] = {t: 0 for t in range(config.num_tiles)}
        self.barrier: Optional[Barrier] = None   # wired by System

    # -- placement ------------------------------------------------------
    def home_tile(self, line_addr: int) -> int:
        """L2 slice owning ``line_addr`` (line-interleaved)."""
        return line_addr % self.config.num_tiles

    def mc_tile(self, line_addr: int) -> int:
        """Memory controller owning ``line_addr``.

        Interleaved at DRAM-row granularity so that a whole row lives
        behind one controller — the L2-Flex optimization prefetches only
        same-row lines, which must share a controller.
        """
        from repro.dram.model import LINES_PER_ROW
        return self.mc_tiles[(line_addr // LINES_PER_ROW)
                             % len(self.mc_tiles)]

    def dram_for(self, line_addr: int) -> DramChannel:
        return self.drams[self.mc_tile(line_addr)]

    # -- L2 slice serialization --------------------------------------------
    def l2_service_time(self, tile: int, arrival: int) -> int:
        """When the slice can start handling a request arriving at ``arrival``."""
        start = max(arrival, self._l2_free[tile])
        self._l2_free[tile] = start + L2_OCCUPANCY
        return start + L2_ACCESS_LATENCY

    # -- message helpers ----------------------------------------------------
    # Each returns the arrival time of the message at its destination.

    def send_req_ctl(self, major: str, src: int, dst: int, at: int,
                     handler: Callable[[int], None]) -> int:
        """One-control-flit request (GETS/GETX/registration/memory req)."""
        hops = self.mesh.hops(src, dst)
        self.ledger.add_request_ctl(major, hops)
        arrive = at + self.mesh.latency(src, dst, 1, at)
        self.queue.schedule(arrive, lambda: handler(arrive))
        return arrive

    def send_resp_ctl(self, major: str, src: int, dst: int, at: int,
                      handler: Callable[[int], None]) -> int:
        """One-control-flit response (ack/grant)."""
        hops = self.mesh.hops(src, dst)
        self.ledger.add_response_ctl(major, hops)
        arrive = at + self.mesh.latency(src, dst, 1, at)
        self.queue.schedule(arrive, lambda: handler(arrive))
        return arrive

    def send_data(self, major: str, dest_level: str, src: int, dst: int,
                  at: int, entries: List[object],
                  handler: Callable[[int], None]) -> int:
        """Response carrying ``len(entries)`` data words plus a header flit.

        ``entries`` are waste-profiler entries for the delivered words (at
        the destination level); their verdicts decide Used vs Waste at
        finalize time.
        """
        hops = self.mesh.hops(src, dst)
        self.ledger.add_response_ctl(major, hops)  # header flit
        data_flits = self.ledger.add_data_words(major, dest_level, hops,
                                                entries)
        total_flits = 1 + int(data_flits)
        arrive = at + self.mesh.latency(src, dst, total_flits, at)
        self.queue.schedule(arrive, lambda: handler(arrive))
        return arrive

    def send_wb(self, src: int, dst: int, at: int, dirty_flags: List[bool],
                dest_level: str, handler: Callable[[int], None]) -> int:
        """Writeback message: control flit + data words flagged dirty/clean."""
        hops = self.mesh.hops(src, dst)
        self.ledger.add_wb_control(hops)  # header flit
        data_flits = self.ledger.add_wb_data_words(dest_level, hops,
                                                   dirty_flags)
        total_flits = 1 + int(data_flits)
        arrive = at + self.mesh.latency(src, dst, total_flits, at)
        self.queue.schedule(arrive, lambda: handler(arrive))
        return arrive

    def send_overhead(self, subtype: str, src: int, dst: int, at: int,
                      handler: Optional[Callable[[int], None]] = None,
                      flits: int = 1) -> int:
        """Coherence-overhead message (inv/ack/unblock/NACK/bloom)."""
        hops = self.mesh.hops(src, dst)
        self.ledger.add_overhead(subtype, hops, flits)
        arrive = at + self.mesh.latency(src, dst, flits, at)
        if handler is not None:
            self.queue.schedule(arrive, lambda: handler(arrive))
        return arrive

    # -- statistics reset (warm-up support) -------------------------------
    def reset_stats(self) -> None:
        """Swap in fresh traffic/waste accounting after the warm-up period.

        Cache contents and protocol state are untouched; words brought in
        during warm-up keep their references to the old profilers, so any
        later verdicts on them land in the discarded warm-up counters, as
        the paper's measurement methodology intends.
        """
        self.ledger = TrafficLedger(self.config.words_per_flit)
        self.l1_prof = CacheLevelProfiler("L1")
        self.l2_prof = CacheLevelProfiler("L2")
        self.mem_prof = MemoryProfiler()
        # Energy counters follow the same measurement window as the
        # ledger: NoC flit-hops must reconcile with the post-warm-up
        # traffic totals, and DRAM/MC energy events with the window's
        # command counts.  (The coherence kernel's counters are reset by
        # ``System`` right after this call, for the same reason.)
        self.mesh.reset_energy_counters()
        for dram in self.drams.values():
            dram.reset_energy_counters()

    def finalize(self) -> None:
        self.l1_prof.finalize()
        self.l2_prof.finalize()
        self.mem_prof.finalize()
        self.ledger.finalize()

"""Simulator core: system assembly, in-order cores, run results."""

from repro.core.context import SimContext
from repro.core.core import Core
from repro.core.simulator import simulate, simulate_all_protocols
from repro.core.stats import TIME_BUCKETS, TIME_LABELS, RunResult, TimeStats
from repro.core.system import System

__all__ = [
    "Core", "RunResult", "SimContext", "System", "TIME_BUCKETS",
    "TIME_LABELS", "TimeStats", "simulate", "simulate_all_protocols",
]

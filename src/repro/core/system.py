"""Tiled-CMP assembly: wire cores, caches, protocol, network and DRAM.

``System`` builds one simulated machine for a (workload, protocol) pair and
``System.run()`` executes it to completion, returning a :class:`RunResult`.
This is the main entry point of the library; see also
:func:`repro.core.simulator.simulate` for the one-call convenience API.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.coherence import build_protocol_system
from repro.common.config import ProtocolConfig, SystemConfig
from repro.core.context import SimContext
from repro.core.core import Core
from repro.engine.compiled import (
    CompiledSimContext, build_compiled_protocol_system, core_class)
from repro.core.stats import RunResult, TimeStats
from repro.engine.events import Barrier
from repro.workloads.trace import Workload

#: Safety cap on simulation events; generous for all shipped workloads.
MAX_EVENTS = 200_000_000


class System:
    """One simulated tiled machine running one workload.

    The machine shape comes from the ``SystemConfig`` (the paper's
    16-tile 4x4 mesh by default; any square mesh from 2x2 to 8x8 is
    supported) and must match the workload's core count — build the
    workload with ``build_workload(name, scale,
    num_cores=config.num_tiles)`` for non-default shapes.
    """

    def __init__(self, workload: Workload, proto: ProtocolConfig,
                 config: Optional[SystemConfig] = None,
                 obs=None) -> None:
        self.workload = workload
        self.proto = proto
        self.config = config if config is not None else SystemConfig()
        self.obs = obs
        if workload.num_cores != self.config.num_tiles:
            raise ValueError(
                f"workload has {workload.num_cores} cores but the system "
                f"has {self.config.num_tiles} tiles")
        # Clone the region table: phase updates mutate annotations and the
        # same workload object is reused across protocol runs.
        self.regions = workload.regions.clone()
        # Engine selection (SystemConfig.engine): the compiled engine
        # substitutes an array-backed context (pooled accounting) and a
        # table-driven core; the protocol controllers are shared between
        # engines, which is what keeps results bit-identical.
        if self.config.engine == "compiled":
            # ``observed`` keeps the traverse-calling send helpers so the
            # obs session's mesh wrapper sees every packet; unobserved
            # runs get the fused network fast path.
            self.ctx: SimContext = CompiledSimContext(
                self.config, proto, self.regions, observed=obs is not None)
            core_cls = core_class(self.ctx)
            # Fused protocol cores where the compiler knows the family;
            # reference cores (over pooled accounting) otherwise.
            self.proto_sys = build_compiled_protocol_system(self.ctx)
        else:
            self.ctx = SimContext(self.config, proto, self.regions)
            core_cls = Core
            # The protocol core comes from the kind registry (see
            # repro.coherence.PROTOCOL_CORES), not a hard-coded if/else.
            self.proto_sys = build_protocol_system(self.ctx)
        self.barrier = Barrier(self.ctx.queue, workload.num_cores,
                               release_cost=self.config.barrier_release_cost)
        self.ctx.barrier = self.barrier
        self.barrier.on_release(self._on_barrier_release)
        self._finished = 0
        self._measure_start = 0
        self.cores = [
            core_cls(i, workload.traces[i], self.proto_sys, self.ctx,
                     self.barrier, self._core_finished)
            for i in range(workload.num_cores)
        ]
        # Observability attaches last so it can see the fully wired
        # machine; with obs=None (the default) nothing here runs and the
        # simulated machine is byte-identical to an unobserved one.
        if obs is not None:
            obs.attach(self)

    # ------------------------------------------------------------------

    def _core_finished(self, core_id: int, at: int) -> None:
        self._finished += 1

    def _on_barrier_release(self) -> None:
        index = self.barrier.barriers_passed - 1
        # DeNovo self-invalidation (MESI's hook is a no-op).
        written = self.workload.written_regions_at(index)
        self.proto_sys.on_barrier(set(written))
        # Software annotation updates for the next phase.
        for update in self.workload.updates_at(index):
            kwargs = {}
            if update.flex is not None:
                kwargs["flex"] = update.flex
            if update.bypass_l2 is not None:
                kwargs["bypass_l2"] = update.bypass_l2
            if kwargs:
                self.regions.update(update.region_id, **kwargs)
        # End of warm-up: reset all statistics.
        if (self.workload.warmup_barriers
                and self.barrier.barriers_passed
                == self.workload.warmup_barriers):
            self.ctx.reset_stats()
            self.proto_sys.reset_energy_counters()
            for core in self.cores:
                core.reset_time()
                # The cores resume right after this hook and will charge
                # (release - wait_start) to sync; that wait happened
                # during warm-up, so move the baseline to now.
                core._wait_start = self.ctx.queue.now
            self._measure_start = self.ctx.queue.now
            # Attribution windows follow the same reset so its
            # conservation audits compare like-scoped totals.
            if self.obs is not None:
                self.obs.on_measure_reset()

    # ------------------------------------------------------------------

    def run(self, max_events: int = MAX_EVENTS) -> RunResult:
        for core in self.cores:
            core.start(0)
        self.ctx.queue.run(max_events=max_events)
        if self._finished != len(self.cores):
            stuck = [c.core_id for c in self.cores if not c.finished]
            raise RuntimeError(
                f"simulation deadlocked; cores {stuck} did not finish "
                f"(cycle {self.ctx.queue.now})")
        # Flush protocol leftovers (e.g. DeNovo write-combining entries),
        # which may generate more messages.
        self.proto_sys.finalize()
        self.ctx.queue.run(max_events=max_events)
        self.ctx.finalize()
        if self.obs is not None:
            self.obs.finish(self)
        return self._collect()

    def _collect(self) -> RunResult:
        time_total = TimeStats()
        for core in self.cores:
            time_total.add(core.time)
        exec_cycles = max(c.finish_time or 0 for c in self.cores)
        exec_cycles -= self._measure_start
        # Explicit stats() protocol (no dir()-scan over stat_* attributes).
        proto_stats = self.proto_sys.stats()
        dram_stats: Dict[str, int] = {"reads": 0, "writes": 0,
                                      "row_hits": 0, "row_misses": 0,
                                      "activates": 0, "precharges": 0}
        for dram in self.ctx.drams.values():
            dram_stats["reads"] += dram.reads
            dram_stats["writes"] += dram.writes
            dram_stats["row_hits"] += dram.row_hits
            dram_stats["row_misses"] += dram.row_misses
            dram_stats["activates"] += dram.activates
            dram_stats["precharges"] += dram.precharges
        energy_counters = self.proto_sys.energy_counters()
        energy_counters["noc_packets"] = self.ctx.mesh.stat_packets
        energy_counters["noc_flit_hops"] = self.ctx.mesh.stat_flit_hops
        # DRAM/MC energy events, scoped to the measurement window
        # (dram_stats above keeps its long-standing whole-run scope).
        for key in ("reads", "writes", "activates", "precharges"):
            energy_counters[f"dram_{key}"] = 0
        for dram in self.ctx.drams.values():
            for key, count in dram.window_commands().items():
                energy_counters[f"dram_{key}"] += count
        return RunResult(
            workload=self.workload.name,
            protocol=self.proto.name,
            traffic=self.ctx.ledger.breakdown(),
            l1_waste=self.ctx.l1_prof.counts(),
            l2_waste=self.ctx.l2_prof.counts(),
            mem_waste=self.ctx.mem_prof.counts(),
            time=time_total.as_dict(),
            exec_cycles=exec_cycles,
            # Sampler ticks are pure reads scheduled alongside the real
            # events; subtracting them keeps an observed run's result
            # bit-identical to the unobserved run (golden-grid pinned).
            events=self.ctx.queue.events_run
            - (self.obs.overhead_events if self.obs is not None else 0),
            protocol_stats=proto_stats,
            dram_stats=dram_stats,
            energy_counters=energy_counters,
        )

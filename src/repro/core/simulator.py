"""One-call simulation API.

>>> from repro.core.simulator import simulate
>>> from repro.workloads import build_workload
>>> result = simulate(build_workload("radix"), "DBypFull")
>>> result.traffic_total()
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.common.config import (
    ProtocolConfig, SystemConfig, protocol as protocol_by_name)
from repro.common.registry import paper_ladder
from repro.core.stats import RunResult
from repro.core.system import System
from repro.workloads.trace import Workload


def simulate(workload: Workload,
             proto: Union[str, ProtocolConfig],
             config: Optional[SystemConfig] = None,
             obs=None) -> RunResult:
    """Simulate ``workload`` under ``proto`` and return the run result.

    Pass ``obs=repro.obs.ObsSession()`` to collect metrics and a
    structured trace from the run; the default (``None``) simulates
    with zero observability overhead.
    """
    if isinstance(proto, str):
        proto = protocol_by_name(proto)
    return System(workload, proto, config, obs=obs).run()


def simulate_all_protocols(
        workload: Workload,
        protocols: Optional[Iterable[Union[str, ProtocolConfig]]] = None,
        config: Optional[SystemConfig] = None) -> Dict[str, RunResult]:
    """Run one workload under every protocol (figure x-axis order).

    ``protocols`` defaults to the paper ladder from the protocol
    registry; pass ``repro.common.registry.registered_protocols()`` to
    include beyond-paper rungs.
    """
    names = list(protocols) if protocols is not None else list(paper_ladder())
    results: Dict[str, RunResult] = {}
    for proto in names:
        result = simulate(workload, proto, config)
        results[result.protocol] = result
    return results

"""Result containers for one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.network import traffic as T
from repro.waste.profiler import Category

#: Execution-time buckets (paper Figure 5.2 legend).
TIME_BUCKETS = ("busy", "onchip", "to_mc", "mem", "from_mc", "sync")

TIME_LABELS = {
    "busy": "Compute",
    "onchip": "On-chip Hit",
    "to_mc": "To MC",
    "mem": "Mem",
    "from_mc": "From MC",
    "sync": "Sync",
}


@dataclass
class TimeStats:
    """Per-core cycle attribution."""

    busy: float = 0.0
    onchip: float = 0.0
    to_mc: float = 0.0
    mem: float = 0.0
    from_mc: float = 0.0
    sync: float = 0.0

    def total(self) -> float:
        return (self.busy + self.onchip + self.to_mc + self.mem
                + self.from_mc + self.sync)

    def add(self, other: "TimeStats") -> None:
        self.busy += other.busy
        self.onchip += other.onchip
        self.to_mc += other.to_mc
        self.mem += other.mem
        self.from_mc += other.from_mc
        self.sync += other.sync

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in TIME_BUCKETS}

    def reset(self) -> None:
        for name in TIME_BUCKETS:
            setattr(self, name, 0.0)


@dataclass
class RunResult:
    """Everything one (workload, protocol) simulation produces."""

    workload: str
    protocol: str
    traffic: Dict[str, Dict[str, float]]
    l1_waste: Dict[Category, int]
    l2_waste: Dict[Category, int]
    mem_waste: Dict[Category, int]
    time: Dict[str, float]
    exec_cycles: int
    events: int
    protocol_stats: Dict[str, int] = field(default_factory=dict)
    dram_stats: Dict[str, int] = field(default_factory=dict)
    # Event counters feeding the post-hoc energy model
    # (:mod:`repro.energy`): tag probes, line installs/evictions, Bloom
    # filter activity, NoC packet/flit-hop totals.  Observational only —
    # they never influence simulated timing, traffic or waste.
    energy_counters: Dict[str, int] = field(default_factory=dict)

    # -- traffic helpers -----------------------------------------------
    def traffic_total(self) -> float:
        return sum(sum(b.values()) for b in self.traffic.values())

    def traffic_major(self, major: str) -> float:
        return sum(self.traffic[major].values())

    def traffic_bucket(self, major: str, sub: str) -> float:
        return self.traffic[major][sub]

    def overhead_fraction(self) -> float:
        total = self.traffic_total()
        return self.traffic_major(T.OVH) / total if total else 0.0

    # -- waste helpers ---------------------------------------------------
    def waste_fraction_of_traffic(self) -> float:
        """Fraction of total flit-hops moving data that was waste."""
        waste = (
            self.traffic[T.LD][T.RESP_L1_WASTE]
            + self.traffic[T.LD][T.RESP_L2_WASTE]
            + self.traffic[T.ST][T.RESP_L1_WASTE]
            + self.traffic[T.ST][T.RESP_L2_WASTE]
            + self.traffic[T.WB][T.WB_L2_WASTE]
            + self.traffic[T.WB][T.WB_MEM_WASTE]
        )
        total = self.traffic_total()
        return waste / total if total else 0.0

    def words_fetched(self, level: str) -> int:
        counts = {"l1": self.l1_waste, "l2": self.l2_waste,
                  "mem": self.mem_waste}[level]
        return sum(counts.values())

    def used_words(self, level: str) -> int:
        counts = {"l1": self.l1_waste, "l2": self.l2_waste,
                  "mem": self.mem_waste}[level]
        return counts.get(Category.USED, 0)

"""Unified metrics registry: counters, gauges and histograms.

:class:`MetricsHub` is the one place every instrumented layer's event
counts meet under a common schema.  It follows the registry pattern of
:mod:`repro.common.registry` — insertion-ordered ``name -> metric``
with duplicate-kind rejection and near-miss suggestions on failed
lookups — but stores *instruments* instead of configs.

Two ways to feed a metric:

* **push** — ``hub.counter("retries").inc()`` /
  ``hub.gauge("queue_depth").set(n)`` / ``hub.histogram(...).observe(x)``
  from code that runs only when observability is enabled (telemetry
  collectors, trace hooks);
* **pull** — ``hub.add_pull(name, fn, **labels)`` registers a
  zero-argument callable read at snapshot time.  This is the default
  for the simulator layers: they already keep observational ``stat_*``
  counters for the energy model (PR 4), so the hub samples those
  instead of adding a single instruction to the hot path.  With no hub
  attached nothing is registered and nothing is read — the
  zero-overhead-when-disabled guarantee is structural, not a branch.

Every metric holds one value per *label set* (e.g. ``tile=3``), so
per-tile series and whole-machine totals come from the same
registration.  :meth:`MetricsHub.snapshot` materializes everything into
a JSON-able dict — the unit the phase sampler appends to its time
series — and :meth:`MetricsHub.total` sums a metric across label sets,
which is what the parity tests compare against the legacy
``stats()`` / ``energy_counters()`` dicts.
"""

from __future__ import annotations

import difflib
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: Metric kinds.  Counters are monotonically non-decreasing event
#: counts; gauges are instantaneous levels; histograms bucket observed
#: values (durations, sizes).
KINDS = ("counter", "gauge", "histogram")

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


class Metric:
    """One named instrument: a value (or histogram) per label set."""

    __slots__ = ("name", "kind", "help", "_series", "_pulls")

    def __init__(self, name: str, kind: str, help: str = "") -> None:
        if kind not in KINDS:
            raise ValueError(f"unknown metric kind {kind!r}; one of {KINDS}")
        self.name = name
        self.kind = kind
        self.help = help
        self._series: Dict[LabelKey, float] = OrderedDict()
        self._pulls: List[Tuple[LabelKey, Callable[[], float]]] = []

    # -- push ----------------------------------------------------------
    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add to a counter (negative increments are rejected)."""
        if self.kind != "counter":
            raise TypeError(f"{self.name} is a {self.kind}, not a counter")
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def set(self, value: float, **labels) -> None:
        """Set a gauge's current level."""
        if self.kind != "gauge":
            raise TypeError(f"{self.name} is a {self.kind}, not a gauge")
        self._series[_label_key(labels)] = value

    # -- pull ----------------------------------------------------------
    def add_pull(self, fn: Callable[[], float], **labels) -> None:
        """Register a source read at snapshot time (sums per label set)."""
        self._pulls.append((_label_key(labels), fn))

    def clear(self) -> None:
        """Drop pushed state (measurement-window reset); pulls stay."""
        self._series.clear()

    # -- read ----------------------------------------------------------
    def collect(self) -> Dict[LabelKey, float]:
        """Current value per label set (pushed state + pulled sources)."""
        out: Dict[LabelKey, float] = OrderedDict(self._series)
        for key, fn in self._pulls:
            out[key] = out.get(key, 0.0) + fn()
        return out

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self.collect().values())

    def snapshot(self) -> Dict[str, float]:
        """JSON-able view: ``{"tile=0": value, ...}`` ("" if unlabeled)."""
        return {_label_str(k): v for k, v in self.collect().items()}


class Histogram(Metric):
    """Bucketed value distribution (per label set).

    Buckets are upper-bound-inclusive cumulative counts, Prometheus
    style, with an implicit ``+Inf`` bucket; ``total()`` reports the
    observation count so hub-wide summaries stay scalar.
    """

    __slots__ = ("buckets", "_hists")

    #: Default cycle-duration buckets (powers of four, DRAM-latency
    #: through barrier-phase scale).
    DEFAULT_BUCKETS = (4, 16, 64, 256, 1024, 4096, 16384, 65536)

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, "histogram", help)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket")
        self._hists: Dict[LabelKey, List[float]] = OrderedDict()

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        hist = self._hists.get(key)
        if hist is None:
            # [count, sum, bucket_0, ..., bucket_n]
            hist = self._hists[key] = [0.0, 0.0] + [0.0] * len(self.buckets)
        hist[0] += 1
        hist[1] += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                hist[2 + i] += 1

    def clear(self) -> None:
        """Drop observations (measurement-window reset)."""
        self._hists.clear()

    def collect(self) -> Dict[LabelKey, float]:
        return {key: hist[0] for key, hist in self._hists.items()}

    def snapshot(self) -> Dict[str, object]:  # type: ignore[override]
        return {
            _label_str(key): {
                "count": hist[0],
                "sum": hist[1],
                "buckets": dict(zip(map(str, self.buckets), hist[2:])),
            }
            for key, hist in self._hists.items()
        }


class MetricsHub:
    """Insertion-ordered name -> :class:`Metric` registry."""

    def __init__(self) -> None:
        self._metrics: "OrderedDict[str, Metric]" = OrderedDict()

    # -- registration / factories --------------------------------------
    def _instrument(self, name: str, kind: str, help: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{metric.kind}, not a {kind}")
            return metric
        metric = (Histogram(name, help) if kind == "histogram"
                  else Metric(name, kind, help))
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Metric:
        """Create (or fetch) a counter."""
        return self._instrument(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> Metric:
        """Create (or fetch) a gauge."""
        return self._instrument(name, "gauge", help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        """Create (or fetch) a histogram."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help,
                               buckets or Histogram.DEFAULT_BUCKETS)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(f"metric {name!r} is already registered as a "
                             f"{metric.kind}, not a histogram")
        return metric

    def add_pull(self, name: str, fn: Callable[[], float], *,
                 kind: str = "counter", help: str = "", **labels) -> Metric:
        """Register a pull source under ``name`` for one label set.

        The instrumented layers' entry point: ``fn`` is a zero-argument
        read of an existing observational counter, evaluated only at
        snapshot/total time.
        """
        metric = self._instrument(name, kind, help)
        metric.add_pull(fn, **labels)
        return metric

    # -- lookup (registry pattern: suggestions on a miss) --------------
    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            close = difflib.get_close_matches(name, list(self._metrics),
                                              n=2, cutoff=0.4)
            hint = f"; did you mean {' or '.join(close)}?" if close else ""
            raise KeyError(f"unknown metric {name!r}{hint}") from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._metrics)

    def total(self, name: str) -> float:
        """Sum of a metric across all its label sets."""
        return self.get(name).total()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Everything, materialized: ``{name: {labelstr: value}}``."""
        return {name: metric.snapshot()
                for name, metric in self._metrics.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

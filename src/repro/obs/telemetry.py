"""Sweep-fleet telemetry: per-cell provenance for every grid run.

:class:`SweepTelemetry` rides the runner's existing ``ProgressFn``
callback (``progress(outcome, done, total)``) and turns the stream of
:class:`~repro.runner.pool.JobOutcome`\\ s — which the runner previously
dropped after collection — into

* a **live progress line** (``printer``): done/total, per-cell wall
  time, cache-hit markers, retry markers and a wall-clock ETA;
* a **telemetry sidecar** (``write``): one JSON record per cell
  (workload, protocol, shape, store key, simulation seconds, attempts,
  cache hit, wall-clock completion offset) plus fleet summary totals,
  persisted next to the results as ``telemetry.json`` in the result
  store — so bench/perf comparisons can attribute a regression to the
  specific cells that slowed down.

The per-cell ``wall_s`` completion offsets double as the fleet
heartbeat: a stalled worker shows up as a growing gap between
``heartbeat_wall_s`` and the current time.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional

#: Bump when the sidecar layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default sidecar file name inside the result-store directory.
SIDECAR_NAME = "telemetry.json"


class SweepTelemetry:
    """Collects ``JobOutcome`` streams into live progress + a sidecar."""

    def __init__(self, command: str = "sweep",
                 clock=time.perf_counter, wall=time.time) -> None:
        self.command = command
        self._clock = clock
        self._wall = wall
        self._start = clock()
        self.started_at = wall()
        self.cells: List[Dict[str, object]] = []
        self.total: Optional[int] = None
        self.done = 0
        self.cache_hits = 0
        self.attempts = 0
        self.sim_seconds = 0.0

    # -- collection -----------------------------------------------------
    def record(self, outcome, done: int, total: int) -> Dict[str, object]:
        """Fold one completed cell in; returns its sidecar record."""
        spec = outcome.spec
        self.total = total
        self.done = done
        self.attempts += outcome.attempts
        self.sim_seconds += outcome.elapsed
        if outcome.from_cache:
            self.cache_hits += 1
        cell = {
            "workload": spec.workload,
            "protocol": spec.protocol,
            "num_tiles": spec.num_tiles,
            "seed": spec.seed,
            "store_key": spec.store_key(),
            "elapsed_s": round(outcome.elapsed, 4),
            "attempts": outcome.attempts,
            "from_cache": outcome.from_cache,
            "wall_s": round(self._clock() - self._start, 4),
        }
        self.cells.append(cell)
        return cell

    def progress(self, outcome, done: int, total: int) -> None:
        """A silent ``ProgressFn``: collect without printing."""
        self.record(outcome, done, total)

    def printer(self, out):
        """A ``ProgressFn`` that collects *and* prints a live line."""
        def progress(outcome, done: int, total: int) -> None:
            cell = self.record(outcome, done, total)
            status = ("cached" if cell["from_cache"]
                      else f"{cell['elapsed_s']:.2f}s")
            retried = (f"  (attempt {cell['attempts']})"
                       if cell["attempts"] > 1 else "")
            eta = self.eta_seconds()
            eta_s = f"  eta {eta:5.1f}s" if eta is not None else ""
            print(f"[{done:3d}/{total}] {cell['workload']:<14s} "
                  f"{cell['protocol']:<12s} {cell['num_tiles']:3d}t "
                  f"{status:>7s}{retried}{eta_s}", file=out, flush=True)
        return progress

    # -- fleet state ----------------------------------------------------
    def wall_seconds(self) -> float:
        return self._clock() - self._start

    def eta_seconds(self) -> Optional[float]:
        """Wall-clock estimate for the remaining cells (None when done).

        Based on mean wall time per completed cell, which absorbs both
        cache hits and parallelism without modelling either.
        """
        if not self.done or self.total is None:
            return None
        remaining = self.total - self.done
        if remaining <= 0:
            return None
        return self.wall_seconds() / self.done * remaining

    def heartbeat_wall_s(self) -> float:
        """Wall offset of the most recent completion (fleet liveness)."""
        return self.cells[-1]["wall_s"] if self.cells else 0.0

    # -- sidecar --------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "command": self.command,
            "started_at": round(self.started_at, 3),
            "total_cells": self.total if self.total is not None else 0,
            "completed_cells": self.done,
            "cache_hits": self.cache_hits,
            "attempts": self.attempts,
            "sim_seconds": round(self.sim_seconds, 4),
            "wall_seconds": round(self.wall_seconds(), 4),
            "heartbeat_wall_s": self.heartbeat_wall_s(),
            "cells": self.cells,
        }

    def write(self, path) -> Path:
        """Persist the sidecar (atomically, like the result store)."""
        import os
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(self.to_dict(), indent=1) + "\n")
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return path


def load_telemetry(path) -> dict:
    """Read a telemetry sidecar back (for reconciliation/tools)."""
    with open(path) as fh:
        return json.load(fh)

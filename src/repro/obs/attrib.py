"""Latency & stall attribution: request lifecycles + per-core cycles.

:class:`AttribCollector` answers the latency question the waste /
traffic / energy pipelines cannot: *where do the cycles of a miss go*
(request NoC, directory/home occupancy, DRAM queue and service, fill
return) and *what is each core stalled on* (L1 miss wait, home L2,
remote L1, DRAM, write-buffer-full, barrier).  It is owned by
:class:`~repro.obs.session.ObsSession` and follows the same
zero-overhead-when-disabled contract: with ``obs=None`` nothing here
exists; when attached, it only *reads* the observational ``t_*``
checkpoints the coherence controllers stamp on
:class:`~repro.core.context.LoadRequest` /
:class:`~repro.core.context.StoreRequest` and rides existing
completion handlers — no scheduler events are added and simulated
timing is untouched, so an attributed run stays bit-identical.

**Lifecycle segments.**  Each completed request's end-to-end latency is
decomposed along its checkpoint chain (monotone by construction)::

    t_issue --req_noc--> t_home_arrive --home--> t_home_depart
      --to_mc--> t_arrive_mc --dram--> t_leave_mc
      --fill_stage--> t_fill_send --fill_noc--> t_done

Checkpoints a request never reached are skipped and their time folds
into the next present segment (an L2 hit has no ``to_mc``/``dram``;
a DeNovo L2 bypass never visits home, so its trip to the controller is
all ``to_mc``).  The segment ending at ``t_fill_send`` is labelled by
where the fill came from: ``fill_stage`` after a memory round-trip,
``fwd_owner`` for a remote-L1 forward, ``home`` otherwise.  NACK
retries replay the chain with a first-write ``t_home_arrive``, so
retry backoff folds into the home-side segment; the retry count is
tracked separately.  By construction the segments of one request sum
exactly to ``t_done - t_issue`` — audited, not assumed.

**Per-core cycle accounting** wraps the three core completion handlers
(``_load_done``, ``_store_stall_resume``, ``_barrier_release``) and
mirrors :class:`~repro.core.core.Core`'s stall arithmetic cycle for
cycle, refining it by *cause*: memory-path loads stall on ``dram``,
on-chip loads on ``l2_home`` / ``remote_l1`` / ``l1_wait`` (the
kernel's L1-hit-after-retry), full store buffers on ``write_buffer``,
barriers on ``barrier``.  ``compute + sum(stalls) == TimeStats.total()``
holds exactly per core — the second conservation audit.

**DRAM reconciliation**: the extended ``on_service`` hook splits queue
wait (service start − controller arrival) from array service and
counts serviced commands, which must equal the channel's
``window_commands()`` in the measurement window — the third audit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.context import (
    SERVED_L2, SERVED_MEMORY, SERVED_NONE, SERVED_REMOTE_L1)

#: Lifecycle segments in chain order (see module docstring).
SEGMENTS = ("req_noc", "home", "fwd_owner", "to_mc", "dram",
            "fill_stage", "fill_noc")

SEGMENT_LABELS = {
    "req_noc": "L1 lookup + request NoC",
    "home": "directory/home occupancy",
    "fwd_owner": "forward + owner L1",
    "to_mc": "home to memory controller",
    "dram": "DRAM queue + service",
    "fill_stage": "fill staging (MC/L2 side)",
    "fill_noc": "fill return NoC",
}

#: Stall causes for per-core cycle accounting.
STALL_CAUSES = ("l1_wait", "l2_home", "remote_l1", "dram",
                "write_buffer", "barrier")

STALL_LABELS = {
    "l1_wait": "L1 miss wait (hit after retry)",
    "l2_home": "home L2 slice",
    "remote_l1": "remote L1 owner",
    "dram": "DRAM round-trip",
    "write_buffer": "write buffer full",
    "barrier": "barrier wait",
}

#: Request kinds with lifecycle records (DeNovo stores are
#: write-combined registrations and carry no per-request record).
OPS = ("load", "store")


class AttribCollector:
    """Per-request lifecycle segments + per-core stall-cause cycles."""

    #: Cap on per-request span groups emitted to the trace ring buffer
    #: (flow-linked in Perfetto); metrics keep counting past the cap.
    FLOW_SPAN_BUDGET = 256

    def __init__(self, hub, trace=None) -> None:
        self.hub = hub
        self.trace = trace
        self._seg_hist = hub.histogram(
            "miss_segment_cycles",
            "per-request lifecycle segment durations")
        self._e2e_hist = hub.histogram(
            "miss_latency_cycles",
            "per-request end-to-end miss latency")
        self._queue_hist = hub.histogram(
            "dram_queue_wait_cycles",
            "DRAM controller queue wait (arrival to service start)")
        self._stall_counter = hub.counter(
            "stall_cycles", "per-core stall cycles by cause")
        self._retry_counter = hub.counter(
            "miss_retries", "NACK/masked retries per request kind")
        # Exact-integer accumulators: the engine-parity tests compare
        # these bit-for-bit, and the conservation audits run over them.
        self.seg_count: Dict[str, Dict[str, int]] = {
            op: dict.fromkeys(SEGMENTS, 0) for op in OPS}
        self.seg_sum: Dict[str, Dict[str, int]] = {
            op: dict.fromkeys(SEGMENTS, 0) for op in OPS}
        self.e2e_count: Dict[str, int] = dict.fromkeys(OPS, 0)
        self.e2e_sum: Dict[str, int] = dict.fromkeys(OPS, 0)
        self.retries: Dict[str, int] = dict.fromkeys(OPS, 0)
        self.stalls: List[Dict[str, int]] = []
        self.nonmonotonic = 0
        self.unbalanced = 0
        self.dram_observed = {"reads": 0, "writes": 0}
        self.dram_queue_wait_sum = 0
        self.dram_service_sum = 0
        self._flow_budget = self.FLOW_SPAN_BUDGET
        self._flow_next = 0
        self._system = None

    # -- wiring ---------------------------------------------------------
    def attach(self, system) -> None:
        """Wrap the completion handlers of a freshly built ``System``.

        The cores and the MESI store-grant handler are fetched by
        instance-attribute lookup on every call, so per-instance
        wrappers cover both engines (the compiled cores inherit the
        reference handlers) with no hot-path branches.
        """
        self._system = system
        self.stalls = [dict.fromkeys(STALL_CAUSES, 0)
                       for _ in system.cores]
        for core in system.cores:
            self._wrap_core(core)
        proto = system.proto_sys
        grant = getattr(proto, "_l1_store_grant", None)
        if grant is not None:
            def store_grant(req, home, acks_needed, data_entries, insts,
                            unblock_ctl_only, t, _inner=grant):
                _inner(req, home, acks_needed, data_entries, insts,
                       unblock_ctl_only, t)
                self._record("store", req.core, req.t_issue, t,
                             req.t_home_arrive, req.t_home_depart,
                             req.t_arrive_mc, req.t_leave_mc,
                             None, SERVED_NONE, req.retries)
            proto._l1_store_grant = store_grant
        for core in system.cores:
            self.hub.add_pull(
                "compute_cycles", lambda c=core: c.time.busy,
                kind="gauge", help="busy (compute + issue) cycles",
                core=core.core_id)

    def _wrap_core(self, core) -> None:
        acct = self.stalls[core.core_id]

        def load_done(t, req, _inner=core._load_done, _core=core,
                      _acct=acct):
            wait_start = _core._wait_start
            _inner(t, req)
            self._on_load_done(t, req, wait_start, _acct)

        def store_resume(t, _inner=core._store_stall_resume, _core=core,
                         _acct=acct):
            wait_start = _core._wait_start
            _inner(t)
            stall = t - wait_start
            if stall > 0:
                _acct["write_buffer"] += stall
                self._stall_counter.inc(stall, cause="write_buffer",
                                        core=_core.core_id)

        def barrier_release(t, _inner=core._barrier_release, _core=core,
                            _acct=acct):
            wait_start = _core._wait_start
            _inner(t)
            stall = t - wait_start
            if stall > 0:
                _acct["barrier"] += stall
                self._stall_counter.inc(stall, cause="barrier",
                                        core=_core.core_id)

        core._load_done = load_done
        core._store_stall_resume = store_resume
        core._barrier_release = barrier_release

    # -- load completion ------------------------------------------------
    def _on_load_done(self, t, req, wait_start, acct) -> None:
        # Mirror Core._load_done's arithmetic exactly so that per core
        # compute + sum(stalls) == TimeStats.total() (audit 2).
        if req.went_to_memory and req.t_arrive_mc is not None:
            leave = req.t_leave_mc if req.t_leave_mc is not None else t
            stall = (max(0, req.t_arrive_mc - wait_start)
                     + max(0, leave - req.t_arrive_mc)
                     + max(0, t - leave))
            cause = "dram"
        else:
            stall = max(0, t - wait_start - 1)
            if req.served_by == SERVED_REMOTE_L1:
                cause = "remote_l1"
            elif req.served_by == SERVED_L2:
                cause = "l2_home"
            else:
                cause = "l1_wait"
        if stall > 0:
            acct[cause] += stall
            self._stall_counter.inc(stall, cause=cause, core=req.core)
        # The coherence kernel's hit-after-retry dummies never entered
        # the protocol; they have no lifecycle to decompose.
        if (req.t_home_arrive is not None or req.went_to_memory
                or req.served_by != SERVED_NONE):
            self._record("load", req.core, req.t_issue, t,
                         req.t_home_arrive, req.t_home_depart,
                         req.t_arrive_mc, req.t_leave_mc,
                         req.t_fill_send, req.served_by, req.retries)

    # -- lifecycle record -----------------------------------------------
    def _record(self, op, core, t_issue, t_done, home_arrive, home_depart,
                arrive_mc, leave_mc, fill_send, served_by,
                retries) -> None:
        segs = []
        prev = t_issue
        for name, ts in (("req_noc", home_arrive), ("home", home_depart),
                         ("to_mc", arrive_mc), ("dram", leave_mc)):
            if ts is None:
                continue
            if ts < prev:
                self.nonmonotonic += 1
                continue
            if ts > prev:
                segs.append((name, prev, ts - prev))
            prev = ts
        if fill_send is not None:
            if arrive_mc is not None:
                name = "fill_stage"
            elif served_by == SERVED_REMOTE_L1:
                name = "fwd_owner"
            else:
                name = "home"
            if fill_send < prev:
                self.nonmonotonic += 1
            else:
                if fill_send > prev:
                    segs.append((name, prev, fill_send - prev))
                prev = fill_send
        if t_done > prev:
            segs.append(("fill_noc", prev, t_done - prev))
        e2e = t_done - t_issue
        if sum(dur for _, _, dur in segs) != e2e:
            self.unbalanced += 1
        seg_count = self.seg_count[op]
        seg_sum = self.seg_sum[op]
        seg_hist = self._seg_hist
        for name, _, dur in segs:
            seg_count[name] += 1
            seg_sum[name] += dur
            seg_hist.observe(dur, op=op, segment=name)
        self.e2e_count[op] += 1
        self.e2e_sum[op] += e2e
        self._e2e_hist.observe(e2e, op=op)
        if retries:
            self.retries[op] += retries
            self._retry_counter.inc(retries, op=op)
        # Flow-linked spans in the trace: loads only (one outstanding
        # blocking load per core keeps its track overlap-free).
        if (op == "load" and self.trace is not None
                and self._flow_budget > 0 and len(segs) > 1):
            self._flow_budget -= 1
            flow_id = self._flow_next = self._flow_next + 1
            track = f"core{core} miss"
            last = len(segs) - 1
            for i, (name, start, dur) in enumerate(segs):
                self.trace.complete(name, "miss", start, dur, track=track)
                phase = "s" if i == 0 else ("f" if i == last else "t")
                self.trace.flow(op, "miss", start, flow_id, track=track,
                                phase=phase)

    # -- DRAM hook (driven by ObsSession._on_dram_service) ---------------
    def on_dram_service(self, tile, is_write, arrival, start,
                        done) -> None:
        self.dram_observed["writes" if is_write else "reads"] += 1
        wait = start - arrival
        self.dram_queue_wait_sum += wait
        self.dram_service_sum += done - start
        self._queue_hist.observe(wait, mc=tile)

    # -- measurement window ----------------------------------------------
    def on_measure_reset(self) -> None:
        """End of warm-up: restart attribution with the other stats.

        Called by ``System`` in the same event as ``ctx.reset_stats()``
        and the cores' ``reset_time()``, so every conservation audit
        compares like-scoped windows.
        """
        for op in OPS:
            self.seg_count[op] = dict.fromkeys(SEGMENTS, 0)
            self.seg_sum[op] = dict.fromkeys(SEGMENTS, 0)
        self.e2e_count = dict.fromkeys(OPS, 0)
        self.e2e_sum = dict.fromkeys(OPS, 0)
        self.retries = dict.fromkeys(OPS, 0)
        # The stall wrappers hold references to these dicts — clear in
        # place, never replace, or post-reset stalls would vanish.
        for per_core in self.stalls:
            for cause in STALL_CAUSES:
                per_core[cause] = 0
        self.nonmonotonic = 0
        self.unbalanced = 0
        self.dram_observed = {"reads": 0, "writes": 0}
        self.dram_queue_wait_sum = 0
        self.dram_service_sum = 0
        for metric in (self._seg_hist, self._e2e_hist, self._queue_hist,
                       self._stall_counter, self._retry_counter):
            metric.clear()

    # -- audits -----------------------------------------------------------
    def audits(self) -> Dict[str, dict]:
        """The three conservation audits over the current window."""
        system = self._system
        seg_total = sum(sum(per.values()) for per in self.seg_sum.values())
        e2e_total = sum(self.e2e_sum.values())
        segments = {
            "ok": (seg_total == e2e_total and self.nonmonotonic == 0
                   and self.unbalanced == 0),
            "segment_cycles": seg_total,
            "e2e_cycles": e2e_total,
            "nonmonotonic": self.nonmonotonic,
            "unbalanced": self.unbalanced,
        }
        per_core = []
        cycles_ok = True
        for core in system.cores:
            stalled = sum(self.stalls[core.core_id].values())
            total = core.time.total()
            ok = core.time.busy + stalled == total
            cycles_ok = cycles_ok and ok
            per_core.append({"core": core.core_id, "ok": ok,
                             "busy": core.time.busy, "stalled": stalled,
                             "total": total})
        cycles = {"ok": cycles_ok, "per_core": per_core}
        window = {"reads": 0, "writes": 0}
        for dram in system.ctx.drams.values():
            commands = dram.window_commands()
            window["reads"] += commands["reads"]
            window["writes"] += commands["writes"]
        dram = {"ok": self.dram_observed == window,
                "observed": dict(self.dram_observed),
                "window_commands": window}
        return {"ok": segments["ok"] and cycles["ok"] and dram["ok"],
                "segments": segments, "cycles": cycles, "dram": dram}

    # -- reporting ---------------------------------------------------------
    def segment_totals(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Exact-integer segment counts/sums (engine-parity contract)."""
        return {op: {seg: {"count": self.seg_count[op][seg],
                           "cycles": self.seg_sum[op][seg]}
                     for seg in SEGMENTS if self.seg_count[op][seg]}
                for op in OPS}

    def stall_totals(self) -> Dict[str, int]:
        """Stall cycles by cause, summed over cores (exact ints)."""
        totals = dict.fromkeys(STALL_CAUSES, 0)
        for per_core in self.stalls:
            for cause, cycles in per_core.items():
                totals[cause] += cycles
        return totals

    def report(self) -> dict:
        """JSON-able attribution profile (the ``repro stalls`` payload)."""
        system = self._system
        compute = sum(core.time.busy for core in system.cores)
        return {
            "protocol": system.proto.name,
            "workload": system.workload.name,
            "segments": self.segment_totals(),
            "latency": {op: {"count": self.e2e_count[op],
                             "cycles": self.e2e_sum[op]}
                        for op in OPS if self.e2e_count[op]},
            "retries": dict(self.retries),
            "stalls": {"total": self.stall_totals(),
                       "per_core": [dict(s) for s in self.stalls]},
            "compute_cycles": compute,
            "dram": {"observed": dict(self.dram_observed),
                     "queue_wait_cycles": self.dram_queue_wait_sum,
                     "service_cycles": self.dram_service_sum},
            "audits": self.audits(),
        }

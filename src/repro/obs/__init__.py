"""``repro.obs`` — observability: metrics, tracing, fleet telemetry.

Three coordinated parts, all opt-in and zero-overhead when unused:

* :class:`MetricsHub` (:mod:`repro.obs.metrics`) — the unified metrics
  registry every instrumented layer registers its observational
  counters into, plus :class:`PhaseSampler` (:mod:`repro.obs.sampler`)
  snapshotting it into a per-interval time series;
* :class:`SimTrace` (:mod:`repro.obs.trace`) — structured span tracing
  exported as Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``), driven through :class:`ObsSession`
  (:mod:`repro.obs.session`), the per-run front door:
  ``simulate(workload, proto, config, obs=ObsSession())``;
* :class:`SweepTelemetry` (:mod:`repro.obs.telemetry`) — per-cell
  fleet telemetry over the runner's ``ProgressFn``, persisted as a
  ``telemetry.json`` sidecar in the result store.
"""

from repro.obs.attrib import (
    SEGMENT_LABELS, SEGMENTS, STALL_CAUSES, STALL_LABELS, AttribCollector)
from repro.obs.metrics import Histogram, Metric, MetricsHub
from repro.obs.sampler import PhaseSampler
from repro.obs.session import ObsSession
from repro.obs.telemetry import SIDECAR_NAME, SweepTelemetry, load_telemetry
from repro.obs.trace import SimTrace

__all__ = [
    "AttribCollector",
    "Histogram",
    "Metric",
    "MetricsHub",
    "ObsSession",
    "PhaseSampler",
    "SEGMENT_LABELS",
    "SEGMENTS",
    "SIDECAR_NAME",
    "STALL_CAUSES",
    "STALL_LABELS",
    "SimTrace",
    "SweepTelemetry",
    "load_telemetry",
]

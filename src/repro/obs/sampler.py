"""Periodic metrics sampling driven off the event queue.

:class:`PhaseSampler` schedules itself on the simulation's
:class:`~repro.engine.events.EventQueue` every ``interval`` cycles and
appends a full :meth:`MetricsHub.snapshot` to its time series —
turning end-of-run totals into per-interval event-rate, occupancy and
traffic curves.

Sampling is purely observational: a tick reads counters and schedules
nothing but its own successor, so interleaving sample events changes
no simulated timing, traffic or waste.  Each tick does consume one
scheduler event, which the owning session reports as
``overhead_events`` so ``System`` can subtract it from the run's event
count — an observed run stays bit-identical to an unobserved one.

A tick re-arms only while other events are pending, so the sampler can
never keep the queue alive on its own (the queue's drain loop would
otherwise never terminate).
"""

from __future__ import annotations

from typing import Dict, List

from repro.engine.events import EventQueue
from repro.obs.metrics import MetricsHub


class PhaseSampler:
    """Snapshot every hub metric into a time series every N cycles."""

    def __init__(self, queue: EventQueue, hub: MetricsHub,
                 interval: int = 5000) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.queue = queue
        self.hub = hub
        self.interval = interval
        #: One entry per sample: ``{"cycle": int, "metrics": snapshot}``.
        self.samples: List[Dict[str, object]] = []
        #: Scheduler events consumed by ticks (subtracted from the run's
        #: event count so observed runs match unobserved ones).
        self.ticks = 0
        self._armed = False

    def start(self) -> None:
        """Arm the first tick, ``interval`` cycles from now."""
        if not self._armed:
            self._armed = True
            self.queue.schedule_call(self.queue.now + self.interval,
                                     self._tick)

    def sample_now(self) -> None:
        """Record one sample immediately (no scheduler event consumed).

        Used for the final end-of-run sample after the queue drained.
        """
        cycle = self.queue.now
        if self.samples and self.samples[-1]["cycle"] == cycle:
            return
        self.samples.append({"cycle": cycle,
                             "metrics": self.hub.snapshot()})

    def _tick(self) -> None:
        self.ticks += 1
        self.samples.append({"cycle": self.queue.now,
                             "metrics": self.hub.snapshot()})
        # Re-arm only while the simulation itself has work left; a
        # sampler that rescheduled unconditionally would keep the drain
        # loop spinning forever after the last real event.
        if self.queue.pending:
            self.queue.schedule_call(self.queue.now + self.interval,
                                     self._tick)
        else:
            self._armed = False

    # -- series helpers -------------------------------------------------
    def series(self, metric: str, label: str = "") -> List[tuple]:
        """``[(cycle, value), ...]`` of one metric/label across samples."""
        out = []
        for sample in self.samples:
            values = sample["metrics"].get(metric)
            if values is not None and label in values:
                out.append((sample["cycle"], values[label]))
        return out

    def deltas(self, metric: str, label: str = "") -> List[tuple]:
        """Per-interval increments of a cumulative counter series."""
        series = self.series(metric, label)
        out = []
        prev = 0.0
        for cycle, value in series:
            out.append((cycle, value - prev))
            prev = value
        return out

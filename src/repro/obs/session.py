"""One observed simulation: metrics + sampler + tracer, attached to a System.

:class:`ObsSession` is the opt-in front door of the observability
subsystem.  Pass one to :func:`repro.core.simulator.simulate` (or
``System(..., obs=session)``) and it

* has every instrumented layer register its observational counters
  into a fresh :class:`~repro.obs.metrics.MetricsHub` (cache tag
  arrays, Bloom banks, mesh, DRAM channels, protocol state machines,
  waste profilers, the event engine);
* arms a :class:`~repro.obs.sampler.PhaseSampler` that snapshots the
  hub every ``sample_interval`` cycles into a time series;
* installs tracing hooks — barrier-phase spans, per-bank DRAM activity
  spans, per-tile link-flit attribution — into a
  :class:`~repro.obs.trace.SimTrace` ring buffer, exported as Chrome
  trace-event JSON via :meth:`export`.

**Zero overhead when disabled** is structural: with ``obs=None`` (the
default everywhere) none of this code runs, no hook is installed and
no hot-path branch exists.  When enabled, the hooks are pull-based or
ride existing extension points (``Barrier.on_release``, the DRAM
``on_service`` callback, rebinding the context's bound mesh helpers),
and sampling events are pure reads — so an observed run produces a
``RunResult`` bit-identical to an unobserved one (the sampler's own
scheduler events are subtracted from the event count by ``System``).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional

from repro.obs.attrib import AttribCollector
from repro.obs.metrics import MetricsHub
from repro.obs.sampler import PhaseSampler
from repro.obs.trace import SimTrace
from repro.waste.profiler import CATEGORY_ORDER


class ObsSession:
    """Metrics hub + phase sampler + tracer for one simulation run."""

    def __init__(self, *, sample_interval: int = 5000,
                 trace: bool = True, trace_capacity: int = 65536,
                 attrib: bool = True) -> None:
        self.hub = MetricsHub()
        self.trace: Optional[SimTrace] = (
            SimTrace(trace_capacity) if trace else None)
        self.sampler: Optional[PhaseSampler] = None
        self.sample_interval = sample_interval
        #: Latency/stall attribution collector (``attrib=False`` turns
        #: it off; the run stays bit-identical either way).
        self.attrib: Optional[AttribCollector] = (
            AttribCollector(self.hub, self.trace) if attrib else None)
        #: Flits forwarded per tile (link-source attribution), filled by
        #: the mesh wrapper installed in :meth:`attach`.
        self.tile_flits: List[int] = []
        self.meta: Dict[str, object] = {}
        self._phase_start = 0
        self._phases = 0
        self._attached = False

    # ------------------------------------------------------------------
    @property
    def overhead_events(self) -> int:
        """Scheduler events consumed by observation (sampler ticks)."""
        return self.sampler.ticks if self.sampler is not None else 0

    @property
    def samples(self) -> List[dict]:
        return self.sampler.samples if self.sampler is not None else []

    @property
    def phases(self) -> int:
        """Barrier phases closed so far (spans emitted to the trace)."""
        return self._phases

    # ------------------------------------------------------------------
    def attach(self, system) -> None:
        """Instrument a freshly built ``System`` (called by its ctor)."""
        if self._attached:
            raise RuntimeError("an ObsSession observes exactly one run; "
                               "create a fresh session per simulation")
        self._attached = True
        ctx = system.ctx
        self.meta.update(workload=system.workload.name,
                         protocol=system.proto.name,
                         num_tiles=ctx.config.num_tiles)

        # -- metrics: every instrumented layer registers its counters --
        hub = self.hub
        system.proto_sys.register_metrics(hub)
        ctx.mesh.register_metrics(hub)
        for tile, dram in sorted(ctx.drams.items()):
            dram.register_metrics(hub, tile)
        ctx.queue.register_metrics(hub)
        # Waste profilers are swapped by the warm-up reset, so the pulls
        # must resolve through ctx at read time, not bind the instances.
        for level, attr in (("l1", "l1_prof"), ("l2", "l2_prof"),
                            ("mem", "mem_prof")):
            for cat in CATEGORY_ORDER:
                hub.add_pull(
                    "waste_words",
                    lambda c=ctx, a=attr, k=cat: getattr(c, a).count(k),
                    kind="gauge",
                    help="word-level waste taxonomy (live verdicts)",
                    level=level, category=cat.value)

        # -- per-tile link utilization: wrap the context's bound mesh
        # helpers (send_* read them per call, so rebinding after
        # construction is safe and costs nothing when no obs is given).
        self._wrap_mesh(ctx)

        # -- latency/stall attribution ----------------------------------
        if self.attrib is not None:
            self.attrib.attach(system)

        # -- sampler ----------------------------------------------------
        self.sampler = PhaseSampler(ctx.queue, hub, self.sample_interval)
        self.sampler.start()

        # -- tracing / DRAM hooks ---------------------------------------
        if self.trace is not None:
            system.barrier.on_release(partial(self._on_barrier, ctx.queue))
        if self.trace is not None or self.attrib is not None:
            service_hist = hub.histogram(
                "dram_service_cycles",
                "DRAM request service latency (service start to data out)")
            for tile, dram in sorted(ctx.drams.items()):
                dram.on_service = partial(self._on_dram_service, tile,
                                          service_hist)

    def _wrap_mesh(self, ctx) -> None:
        mesh = ctx.mesh
        num_tiles = ctx.config.num_tiles
        self.tile_flits = [0] * num_tiles
        tile_flits = self.tile_flits
        links_table = mesh._links
        for tile in range(num_tiles):
            self.hub.add_pull("tile_link_flits",
                              lambda f=tile_flits, t=tile: f[t],
                              help="flits forwarded by each tile's router "
                                   "(link-source attribution)",
                              tile=tile)

        real_traverse = ctx._traverse

        def traverse(src, dst, total_flits, now,
                     _real=real_traverse, _links=links_table,
                     _n=num_tiles, _flits=tile_flits):
            if src != dst:
                for link in _links[src * _n + dst]:
                    _flits[link // _n] += total_flits
            return _real(src, dst, total_flits, now)

        real_latency = ctx._latency

        def latency(src, dst, total_flits, now,
                    _real=real_latency, _links=links_table,
                    _n=num_tiles, _flits=tile_flits):
            if src != dst:
                for link in _links[src * _n + dst]:
                    _flits[link // _n] += total_flits
            return _real(src, dst, total_flits, now)

        ctx._traverse = traverse
        ctx._latency = latency

    # -- trace hooks ----------------------------------------------------
    def _on_barrier(self, queue) -> None:
        now = queue.now
        self.trace.complete(f"phase {self._phases}", "barrier",
                            self._phase_start, now - self._phase_start,
                            track="barrier phases")
        self._phases += 1
        self._phase_start = now

    def _on_dram_service(self, tile, hist, line_addr, is_write, bank,
                         row_hit, arrival, start, done) -> None:
        hist.observe(done - start, mc=tile)
        if self.attrib is not None:
            self.attrib.on_dram_service(tile, is_write, arrival, start,
                                        done)
        if self.trace is not None:
            self.trace.complete(
                "write" if is_write else "read", "dram", start,
                done - start, track=f"mc{tile} bank{bank}",
                args={"line": line_addr, "row_hit": row_hit,
                      "queue_wait": start - arrival})

    # ------------------------------------------------------------------
    def on_measure_reset(self) -> None:
        """End of warm-up (called by ``System`` with the stats reset)."""
        if self.attrib is not None:
            self.attrib.on_measure_reset()

    # ------------------------------------------------------------------
    def finish(self, system) -> None:
        """End of run: close the trailing phase span, take a last sample."""
        now = system.ctx.queue.now
        if self.trace is not None and now > self._phase_start:
            self.trace.complete(f"phase {self._phases}", "barrier",
                                self._phase_start, now - self._phase_start,
                                track="barrier phases")
            self._phases += 1
            self._phase_start = now
        if self.sampler is not None:
            self.sampler.sample_now()

    # -- export ---------------------------------------------------------
    def _sample_counters(self) -> List[dict]:
        """Chrome counter events derived from the sampler time series."""
        events: List[dict] = []
        if self.sampler is None:
            return events
        prev_events = 0.0
        prev_hops = 0.0
        prev_tiles: Dict[str, float] = {}
        for sample in self.sampler.samples:
            cycle = sample["cycle"]
            metrics = sample["metrics"]
            engine = metrics.get("engine_events", {}).get("", 0.0)
            events.append({"name": "events/interval", "ph": "C",
                           "ts": cycle, "pid": 0,
                           "args": {"events": engine - prev_events}})
            prev_events = engine
            hops = metrics.get("noc_flit_hops", {}).get("", 0.0)
            events.append({"name": "noc flit-hops/interval", "ph": "C",
                           "ts": cycle, "pid": 0,
                           "args": {"flit_hops": hops - prev_hops}})
            prev_hops = hops
            tiles = metrics.get("tile_link_flits", {})
            if tiles:
                deltas = {
                    f"t{label.split('=', 1)[1]}":
                        value - prev_tiles.get(label, 0.0)
                    for label, value in tiles.items()}
                events.append({"name": "tile link flits/interval",
                               "ph": "C", "ts": cycle, "pid": 0,
                               "args": deltas})
                prev_tiles = dict(tiles)
        return events

    def chrome_trace(self) -> dict:
        """The run as a Chrome trace-event JSON object (spans + counters)."""
        if self.trace is None:
            raise RuntimeError("this session was created with trace=False")
        data = self.trace.chrome(other_data=dict(self.meta))
        counters = self._sample_counters()
        data["traceEvents"] = sorted(
            data["traceEvents"] + counters,
            key=lambda e: (e.get("ts", -1),))
        return data

    def export(self, path) -> None:
        """Write the Chrome trace JSON (loads in Perfetto) to ``path``."""
        import json
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, indent=1)
            fh.write("\n")

"""Structured simulation tracing in Chrome trace-event format.

:class:`SimTrace` is an opt-in ring-buffer tracer.  Instrumentation
hooks record *spans* (named intervals: barrier phases, DRAM bank
activity), *instants* and *counter samples* in simulated-cycle time;
:meth:`SimTrace.chrome` serializes the buffer as the Chrome
trace-event JSON format, so ``trace.json`` loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  Cycle timestamps
are emitted as-is in the ``ts``/``dur`` microsecond fields — 1 µs on
the timeline reads as 1 simulated cycle.

The buffer is bounded (oldest events drop first, ``dropped`` counts
them) so tracing a long run cannot exhaust memory; tracks ("threads"
in the Chrome model) are named lazily via :meth:`track` and labelled
with metadata events at export time.
"""

from __future__ import annotations

import json
from collections import OrderedDict, deque
from typing import Dict, List, Optional

#: Chrome trace-event JSON "process" id used for all simulator tracks.
TRACE_PID = 0


class SimTrace:
    """Bounded buffer of Chrome-trace events keyed by simulated cycles."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._events: "deque[dict]" = deque(maxlen=capacity)
        self._tracks: "OrderedDict[str, int]" = OrderedDict()
        self.dropped = 0

    # -- tracks ---------------------------------------------------------
    def track(self, name: str) -> int:
        """Stable integer tid for a named track (created on first use)."""
        tid = self._tracks.get(name)
        if tid is None:
            tid = self._tracks[name] = len(self._tracks)
        return tid

    # -- recording ------------------------------------------------------
    def _append(self, event: dict) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def complete(self, name: str, cat: str, ts: int, dur: int,
                 track: str = "sim", args: Optional[dict] = None) -> None:
        """One complete span (``ph: "X"``): ``[ts, ts + dur)`` cycles."""
        event = {"name": name, "cat": cat, "ph": "X", "ts": ts,
                 "dur": max(dur, 0), "pid": TRACE_PID,
                 "tid": self.track(track)}
        if args:
            event["args"] = args
        self._append(event)

    def instant(self, name: str, cat: str, ts: int,
                track: str = "sim", args: Optional[dict] = None) -> None:
        """One instant event (``ph: "i"``)."""
        event = {"name": name, "cat": cat, "ph": "i", "s": "t", "ts": ts,
                 "pid": TRACE_PID, "tid": self.track(track)}
        if args:
            event["args"] = args
        self._append(event)

    def counter(self, name: str, ts: int, values: Dict[str, float]) -> None:
        """One counter sample (``ph: "C"``): stacked series in Perfetto."""
        self._append({"name": name, "ph": "C", "ts": ts, "pid": TRACE_PID,
                      "args": dict(values)})

    def flow(self, name: str, cat: str, ts: int, flow_id: int,
             track: str = "sim", phase: str = "s") -> None:
        """One flow event linking spans that share ``flow_id``.

        ``phase`` is ``"s"`` (start), ``"t"`` (step) or ``"f"`` (end),
        Chrome's flow-event phases.  Perfetto binds a flow event to the
        slice at the same ``ts`` on the same track, so emit it alongside
        the :meth:`complete` span it annotates; matching (name, cat,
        id) triples render as arrows between the linked slices.
        """
        if phase not in ("s", "t", "f"):
            raise ValueError(f"flow phase must be s/t/f, not {phase!r}")
        event = {"name": name, "cat": cat, "ph": phase, "ts": ts,
                 "pid": TRACE_PID, "tid": self.track(track), "id": flow_id}
        if phase == "f":
            event["bp"] = "e"   # bind the end to the enclosing slice
        self._append(event)

    # -- export ---------------------------------------------------------
    def events(self) -> List[dict]:
        """Buffered events in monotonically non-decreasing ``ts`` order.

        Hooks record spans at *completion* time, so buffer order is not
        timestamp order; the export contract (and the round-trip test)
        is sorted-by-ts.
        """
        return sorted(self._events, key=lambda e: e["ts"])

    def chrome(self, other_data: Optional[dict] = None) -> dict:
        """The trace as a Chrome trace-event JSON object."""
        metadata: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": TRACE_PID,
            "args": {"name": "repro-sim"},
        }]
        for track_name, tid in self._tracks.items():
            metadata.append({
                "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                "tid": tid, "args": {"name": track_name},
            })
            # Keep Perfetto's track order equal to creation order.
            metadata.append({
                "name": "thread_sort_index", "ph": "M", "pid": TRACE_PID,
                "tid": tid, "args": {"sort_index": tid},
            })
        other = {"clock": "simulated cycles (1 cycle rendered as 1 us)",
                 "dropped_events": self.dropped}
        if other_data:
            other.update(other_data)
        return {"traceEvents": metadata + self.events(),
                "displayTimeUnit": "ms",
                "otherData": other}

    def export(self, path, other_data: Optional[dict] = None) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.chrome(other_data), fh, indent=1)
            fh.write("\n")

    def __len__(self) -> int:
        return len(self._events)

"""Word-level waste characterization (paper Section 4.1).

Every word moved into a cache level (or fetched from memory) is classified
into one of six categories:

* **Used** — its value was read (or, for the L2, returned in a response);
* **Write** — overwritten before being Used;
* **Fetch** — it was already present in the cache when it arrived;
* **Invalidate** — invalidated by the coherence protocol before being Used;
* **Evict** — evicted before being classified Used or Write;
* **Unevicted** — still resident and unclassified at end of simulation.

Memory-level profiling additionally tracks ``(address, identifier)``
instances with an on-chip reference count (Figure 4.3), plus an **Excess**
category for words read out of DRAM but dropped at the memory controller by
L2-Flex filtering.

Classification is *first event wins*: entries start pending and receive
exactly one terminal category.  Traffic accounting holds references to the
entries and reads :attr:`ProfileEntry.is_used` after finalization.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set

from repro.common.addressing import WORDS_PER_LINE


class Category(enum.Enum):
    USED = "used"
    WRITE = "write"
    FETCH = "fetch"
    INVALIDATE = "invalidate"
    EVICT = "evict"
    UNEVICTED = "unevicted"
    EXCESS = "excess"      # memory level only


#: Display order used by the figures (Used at the bottom of each bar).
CATEGORY_ORDER = (
    Category.USED, Category.FETCH, Category.WRITE, Category.INVALIDATE,
    Category.EVICT, Category.UNEVICTED, Category.EXCESS,
)

#: Dense index per category for hot-path list counters.
_CATEGORIES = tuple(Category)
_CAT_INDEX = {cat: i for i, cat in enumerate(_CATEGORIES)}
_USED_INDEX = _CAT_INDEX[Category.USED]
# Per-category index constants so the hot FSM transitions do a plain
# list increment instead of an enum-keyed dict lookup.
_USED_I = _CAT_INDEX[Category.USED]
_WRITE_I = _CAT_INDEX[Category.WRITE]
_FETCH_I = _CAT_INDEX[Category.FETCH]
_INVALIDATE_I = _CAT_INDEX[Category.INVALIDATE]
_EVICT_I = _CAT_INDEX[Category.EVICT]
_UNEVICTED_I = _CAT_INDEX[Category.UNEVICTED]
_EXCESS_I = _CAT_INDEX[Category.EXCESS]


class ProfileEntry:
    """One word-instance at one level, awaiting or holding its verdict.

    One entry is allocated per delivered data word and lives until
    ``finalize``, so the class stays fully slotted; the bulk creation
    sites below construct via ``__new__`` + an explicit ``category``
    store to skip the initializer call.
    """

    __slots__ = ("category",)

    def __init__(self) -> None:
        self.category: Optional[Category] = None

    @property
    def is_pending(self) -> bool:
        return self.category is None

    @property
    def is_used(self) -> bool:
        return self.category is Category.USED

    def classify(self, category: Category) -> None:
        """Set the terminal category; later events are ignored."""
        if self.category is None:
            self.category = category


class CacheLevelProfiler:
    """Implements the L1 (Figure 4.1) and L2 (Figure 4.2) waste FSMs.

    One profiler instance covers every cache unit of a level; the *active*
    entry for each ``(unit, word)`` is the most recent pending arrival.
    """

    def __init__(self, level: str) -> None:
        if level not in ("L1", "L2"):
            raise ValueError("level must be 'L1' or 'L2'")
        self.level = level
        # Active entries are stored per cache *line*: the key is
        # ``(line << 6) | unit`` (unit ids fit in 6 bits, <= 64 tiles)
        # and the value a 16-slot row of per-word entries.  Line-granular
        # protocol events then cost one dict operation per line instead
        # of 16, and an int key hashes for free where a tuple would be
        # allocated and hashed on every FSM event.
        self._active: Dict[int, List[Optional[ProfileEntry]]] = {}
        self._counts: List[int] = [0] * len(_CATEGORIES)
        self._total = 0
        self._finalized = False

    def _row_for(self, line_key: int) -> List[Optional[ProfileEntry]]:
        row = self._active.get(line_key)
        if row is None:
            row = self._active[line_key] = [None] * WORDS_PER_LINE
        return row

    # -- FSM events --------------------------------------------------------
    def on_arrival(self, unit: int, word: int, already_present: bool) -> ProfileEntry:
        """A word arrived at cache ``unit`` in a response or fill.

        Returns the entry that traffic accounting should reference.  If the
        word was already present the new copy is immediately Fetch waste
        and the previously active entry (if any) stays active.
        """
        entry = ProfileEntry()
        self._total += 1
        if already_present:
            entry.category = Category.FETCH
            self._counts[_FETCH_I] += 1
            return entry
        row = self._row_for(((word >> 4) << 6) | unit)
        slot = word & 15
        old = row[slot]
        if old is not None and old.category is None:
            # Defensive: an unclassified copy being silently replaced by a
            # new fill counts as Fetch waste for the old copy.
            old.category = Category.FETCH
            self._counts[_FETCH_I] += 1
        row[slot] = entry
        return entry

    def on_use(self, unit: int, word: int) -> None:
        """The word was read (L1) or returned in a response (L2)."""
        row = self._active.get(((word >> 4) << 6) | unit)
        if row is None:
            return
        entry = row[word & 15]
        if entry is not None and entry.category is None:
            entry.category = Category.USED
            self._counts[_USED_I] += 1

    def on_write(self, unit: int, word: int) -> None:
        """The word was overwritten before being used."""
        row = self._active.get(((word >> 4) << 6) | unit)
        if row is None:
            return
        entry = row[word & 15]
        if entry is not None and entry.category is None:
            entry.category = Category.WRITE
            self._counts[_WRITE_I] += 1

    def on_evict(self, unit: int, word: int) -> None:
        row = self._active.get(((word >> 4) << 6) | unit)
        if row is None:
            return
        slot = word & 15
        entry = row[slot]
        if entry is None:
            return
        if entry.category is None:
            entry.category = Category.EVICT
            self._counts[_EVICT_I] += 1
        row[slot] = None

    def on_invalidate(self, unit: int, word: int) -> None:
        if self.level == "L2":
            raise RuntimeError("the L2 FSM has no invalidate transition")
        row = self._active.get(((word >> 4) << 6) | unit)
        if row is None:
            return
        slot = word & 15
        entry = row[slot]
        if entry is None:
            return
        if entry.category is None:
            entry.category = Category.INVALIDATE
            self._counts[_INVALIDATE_I] += 1
        row[slot] = None

    # -- bulk line-granular events --------------------------------------
    # One call and one active-dict operation per 16-word line instead of
    # 16; event-for-event identical to looping the scalar methods over
    # ``words_of_line`` (the line protocols do exactly that on every
    # fill/eviction/invalidation, so this was the hottest profiler cost).

    def arrivals_line(self, unit: int, base: int) -> List[ProfileEntry]:
        """``on_arrival(unit, word, False)`` for one full line's words."""
        counts = self._counts
        cat_fetch = Category.FETCH
        # __new__ + explicit category store: same slotted object, no
        # initializer call per word.
        new = ProfileEntry.__new__
        cls = ProfileEntry
        self._total += WORDS_PER_LINE
        line_key = (base << 2) | unit
        old_row = self._active.get(line_key)
        entries = []
        for _ in range(WORDS_PER_LINE):
            entry = new(cls)
            entry.category = None
            entries.append(entry)
        if old_row is not None:
            for old in old_row:
                if old is not None and old.category is None:
                    old.category = cat_fetch
                    counts[_FETCH_I] += 1
        self._active[line_key] = list(entries)
        return entries

    def arrivals_words(self, unit: int, words, present_flags) -> List[ProfileEntry]:
        """``on_arrival(unit, w, flag)`` over parallel word/flag lists."""
        counts = self._counts
        cat_fetch = Category.FETCH
        new = ProfileEntry.__new__
        cls = ProfileEntry
        active = self._active
        entries = []
        append = entries.append
        self._total += len(words)
        last_key = -1
        row = None
        for word, present in zip(words, present_flags):
            entry = new(cls)
            entry.category = None
            if present:
                entry.category = cat_fetch
                counts[_FETCH_I] += 1
            else:
                line_key = ((word >> 4) << 6) | unit
                if line_key != last_key:
                    row = active.get(line_key)
                    if row is None:
                        row = active[line_key] = [None] * WORDS_PER_LINE
                    last_key = line_key
                slot = word & 15
                old = row[slot]
                if old is not None and old.category is None:
                    old.category = cat_fetch
                    counts[_FETCH_I] += 1
                row[slot] = entry
            append(entry)
        return entries

    def on_use_words(self, unit: int, words) -> None:
        """``on_use(unit, w)`` for every word in ``words``."""
        active = self._active
        counts = self._counts
        cat_used = Category.USED
        last_key = -1
        row = None
        for word in words:
            line_key = ((word >> 4) << 6) | unit
            if line_key != last_key:
                row = active.get(line_key)
                last_key = line_key
            if row is None:
                continue
            entry = row[word & 15]
            if entry is not None and entry.category is None:
                entry.category = cat_used
                counts[_USED_I] += 1

    def on_use_line(self, unit: int, base: int) -> None:
        """``on_use`` over one full line's words."""
        row = self._active.get((base << 2) | unit)
        if row is None:
            return
        counts = self._counts
        cat_used = Category.USED
        for entry in row:
            if entry is not None and entry.category is None:
                entry.category = cat_used
                counts[_USED_I] += 1

    def on_evict_line(self, unit: int, base: int) -> None:
        """``on_evict`` over one full line's words."""
        row = self._active.pop((base << 2) | unit, None)
        if row is None:
            return
        counts = self._counts
        cat_evict = Category.EVICT
        for entry in row:
            if entry is not None and entry.category is None:
                entry.category = cat_evict
                counts[_EVICT_I] += 1

    def on_invalidate_line(self, unit: int, base: int) -> None:
        """``on_invalidate`` over one full line's words."""
        if self.level == "L2":
            raise RuntimeError("the L2 FSM has no invalidate transition")
        row = self._active.pop((base << 2) | unit, None)
        if row is None:
            return
        counts = self._counts
        cat_inval = Category.INVALIDATE
        for entry in row:
            if entry is not None and entry.category is None:
                entry.category = cat_inval
                counts[_INVALIDATE_I] += 1

    def finalize(self) -> None:
        """Classify all still-resident pending words as Unevicted."""
        for row in self._active.values():
            for entry in row:
                if entry is not None and entry.category is None:
                    self._settle(entry, Category.UNEVICTED)
        self._active.clear()
        self._finalized = True

    # -- queries -------------------------------------------------------------
    def count(self, category: Category) -> int:
        return self._counts[_CAT_INDEX[category]]

    def counts(self) -> Dict[Category, int]:
        return {cat: self._counts[i] for i, cat in enumerate(_CATEGORIES)}

    def total_words(self) -> int:
        return self._total

    def waste_words(self) -> int:
        return self._total - self._counts[_USED_INDEX]

    # -- internals -------------------------------------------------------------
    def _settle(self, entry: ProfileEntry, category: Category) -> None:
        if entry.category is None:
            entry.category = category
            self._counts[_CAT_INDEX[category]] += 1


class MemInstance(ProfileEntry):
    """A word fetched from memory, identified by ``(address, identifier)``."""

    __slots__ = ("addr", "refs")

    def __init__(self, addr: int) -> None:
        self.category = None
        self.addr = addr
        self.refs = 0


class MemoryProfiler:
    """Implements the memory-level FSM of Figure 4.3.

    Every word read out of DRAM and sent on-chip becomes an instance with a
    unique identifier.  Instances are classified Used on the first load of
    any on-chip copy; Write when *any* L1 stores to the address (all
    pending instances of that address become Write waste, since coherence
    would invalidate or overwrite every copy); Evict/Invalidate when the
    last on-chip copy disappears; Excess when the memory controller drops
    the word before it ever reaches the network.
    """

    def __init__(self) -> None:
        self._counts: List[int] = [0] * len(_CATEGORIES)
        self._pending_by_addr: Dict[int, Set[MemInstance]] = {}
        self._total = 0
        self._finalized = False

    # -- FSM events --------------------------------------------------------
    def fetch(self, addr: int, l2_has_addr: bool) -> MemInstance:
        """A word at ``addr`` was fetched from memory and sent on-chip."""
        instance = MemInstance(addr)
        self._total += 1
        if l2_has_addr:
            # Figure 4.3: address already present in the L2 => Fetch waste.
            instance.category = Category.FETCH
            self._counts[_FETCH_I] += 1
            return instance
        by_addr = self._pending_by_addr
        pending = by_addr.get(addr)
        if pending is None:
            by_addr[addr] = pending = set()
        pending.add(instance)
        return instance

    def fetch_excess(self, addr: int) -> MemInstance:
        """A word read out of DRAM but dropped at the memory controller."""
        instance = MemInstance(addr)
        self._total += 1
        instance.category = Category.EXCESS
        self._counts[_EXCESS_I] += 1
        return instance

    def install_copy(self, instance: MemInstance) -> None:
        """A cache installed a copy of this instance."""
        instance.refs += 1

    def drop_copy(self, instance: MemInstance, *, invalidated: bool) -> None:
        """A cache lost its copy (eviction or invalidation)."""
        instance.refs -= 1
        if instance.refs <= 0 and instance.category is None:
            if invalidated:
                self._settle_pending(instance, Category.INVALIDATE,
                                     _INVALIDATE_I)
            else:
                self._settle_pending(instance, Category.EVICT, _EVICT_I)

    def on_load(self, instance: MemInstance) -> None:
        if instance.category is None:
            self._settle_pending(instance, Category.USED, _USED_I)

    def on_store_addr(self, addr: int) -> None:
        """Any L1 stored to ``addr``: all pending instances become Write."""
        pending = self._pending_by_addr.pop(addr, None)
        if not pending:
            return
        counts = self._counts
        for instance in pending:
            if instance.category is None:
                instance.category = Category.WRITE
                counts[_WRITE_I] += 1

    # -- bulk line-granular events --------------------------------------

    def fetch_line(self, base: int) -> List[MemInstance]:
        """``fetch(word, False)`` for one full line's words."""
        by_addr = self._pending_by_addr
        new_instance = MemInstance
        out = []
        append = out.append
        self._total += WORDS_PER_LINE
        for addr in range(base, base + WORDS_PER_LINE):
            instance = new_instance(addr)
            pending = by_addr.get(addr)
            if pending is None:
                by_addr[addr] = pending = set()
            pending.add(instance)
            append(instance)
        return out

    def install_copies(self, insts) -> None:
        """``install_copy`` for every non-None instance in ``insts``."""
        for inst in insts:
            if inst is not None:
                inst.refs += 1

    def drop_copies(self, insts, *, invalidated: bool) -> None:
        """``drop_copy`` for every non-None instance in ``insts``."""
        if invalidated:
            category, idx = Category.INVALIDATE, _INVALIDATE_I
        else:
            category, idx = Category.EVICT, _EVICT_I
        settle = self._settle_pending
        for inst in insts:
            if inst is None:
                continue
            inst.refs -= 1
            if inst.refs <= 0 and inst.category is None:
                settle(inst, category, idx)

    def finalize(self) -> None:
        for pending in self._pending_by_addr.values():
            for instance in pending:
                self._settle(instance, Category.UNEVICTED)
        self._pending_by_addr.clear()
        self._finalized = True

    # -- queries ---------------------------------------------------------
    def count(self, category: Category) -> int:
        return self._counts[_CAT_INDEX[category]]

    def counts(self) -> Dict[Category, int]:
        return {cat: self._counts[i] for i, cat in enumerate(_CATEGORIES)}

    def total_words(self) -> int:
        return self._total

    # -- internals ------------------------------------------------------------
    def _settle_pending(self, instance: MemInstance, category: Category,
                        cat_index: int) -> None:
        """Classify a still-pending instance (callers check ``category
        is None`` first, so the verdict always lands)."""
        by_addr = self._pending_by_addr
        pending = by_addr.get(instance.addr)
        if pending is not None:
            pending.discard(instance)
            if not pending:
                del by_addr[instance.addr]
        instance.category = category
        self._counts[cat_index] += 1

    def _settle(self, instance: MemInstance, category: Category) -> None:
        if instance.category is None:
            instance.category = category
            self._counts[_CAT_INDEX[category]] += 1

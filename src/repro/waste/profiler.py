"""Word-level waste characterization (paper Section 4.1).

Every word moved into a cache level (or fetched from memory) is classified
into one of six categories:

* **Used** — its value was read (or, for the L2, returned in a response);
* **Write** — overwritten before being Used;
* **Fetch** — it was already present in the cache when it arrived;
* **Invalidate** — invalidated by the coherence protocol before being Used;
* **Evict** — evicted before being classified Used or Write;
* **Unevicted** — still resident and unclassified at end of simulation.

Memory-level profiling additionally tracks ``(address, identifier)``
instances with an on-chip reference count (Figure 4.3), plus an **Excess**
category for words read out of DRAM but dropped at the memory controller by
L2-Flex filtering.

Classification is *first event wins*: entries start pending and receive
exactly one terminal category.  Traffic accounting holds references to the
entries and reads :attr:`ProfileEntry.is_used` after finalization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class Category(enum.Enum):
    USED = "used"
    WRITE = "write"
    FETCH = "fetch"
    INVALIDATE = "invalidate"
    EVICT = "evict"
    UNEVICTED = "unevicted"
    EXCESS = "excess"      # memory level only


#: Display order used by the figures (Used at the bottom of each bar).
CATEGORY_ORDER = (
    Category.USED, Category.FETCH, Category.WRITE, Category.INVALIDATE,
    Category.EVICT, Category.UNEVICTED, Category.EXCESS,
)

#: Dense index per category for hot-path list counters.
_CATEGORIES = tuple(Category)
_CAT_INDEX = {cat: i for i, cat in enumerate(_CATEGORIES)}
_USED_INDEX = _CAT_INDEX[Category.USED]


class ProfileEntry:
    """One word-instance at one level, awaiting or holding its verdict."""

    __slots__ = ("category",)

    def __init__(self) -> None:
        self.category: Optional[Category] = None

    @property
    def is_pending(self) -> bool:
        return self.category is None

    @property
    def is_used(self) -> bool:
        return self.category is Category.USED

    def classify(self, category: Category) -> None:
        """Set the terminal category; later events are ignored."""
        if self.category is None:
            self.category = category


class CacheLevelProfiler:
    """Implements the L1 (Figure 4.1) and L2 (Figure 4.2) waste FSMs.

    One profiler instance covers every cache unit of a level; the *active*
    entry for each ``(unit, word)`` is the most recent pending arrival.
    """

    def __init__(self, level: str) -> None:
        if level not in ("L1", "L2"):
            raise ValueError("level must be 'L1' or 'L2'")
        self.level = level
        self._active: Dict[Tuple[int, int], ProfileEntry] = {}
        self._counts: List[int] = [0] * len(_CATEGORIES)
        self._total = 0
        self._finalized = False

    # -- FSM events --------------------------------------------------------
    def on_arrival(self, unit: int, word: int, already_present: bool) -> ProfileEntry:
        """A word arrived at cache ``unit`` in a response or fill.

        Returns the entry that traffic accounting should reference.  If the
        word was already present the new copy is immediately Fetch waste
        and the previously active entry (if any) stays active.
        """
        entry = ProfileEntry()
        self._total += 1
        if already_present:
            self._settle(entry, Category.FETCH)
            return entry
        key = (unit, word)
        old = self._active.get(key)
        if old is not None and old.is_pending:
            # Defensive: an unclassified copy being silently replaced by a
            # new fill counts as Fetch waste for the old copy.
            self._settle(old, Category.FETCH)
        self._active[key] = entry
        return entry

    def on_use(self, unit: int, word: int) -> None:
        """The word was read (L1) or returned in a response (L2)."""
        self._resolve(unit, word, Category.USED)

    def on_write(self, unit: int, word: int) -> None:
        """The word was overwritten before being used."""
        self._resolve(unit, word, Category.WRITE)

    def on_evict(self, unit: int, word: int) -> None:
        self._resolve(unit, word, Category.EVICT, remove=True)

    def on_invalidate(self, unit: int, word: int) -> None:
        if self.level == "L2":
            raise RuntimeError("the L2 FSM has no invalidate transition")
        self._resolve(unit, word, Category.INVALIDATE, remove=True)

    def finalize(self) -> None:
        """Classify all still-resident pending words as Unevicted."""
        for entry in self._active.values():
            if entry.is_pending:
                self._settle(entry, Category.UNEVICTED)
        self._active.clear()
        self._finalized = True

    # -- queries -------------------------------------------------------------
    def count(self, category: Category) -> int:
        return self._counts[_CAT_INDEX[category]]

    def counts(self) -> Dict[Category, int]:
        return {cat: self._counts[i] for i, cat in enumerate(_CATEGORIES)}

    def total_words(self) -> int:
        return self._total

    def waste_words(self) -> int:
        return self._total - self._counts[_USED_INDEX]

    # -- internals -------------------------------------------------------------
    def _resolve(self, unit: int, word: int, category: Category,
                 remove: bool = False) -> None:
        key = (unit, word)
        entry = self._active.get(key)
        if entry is None:
            return
        if entry.is_pending:
            self._settle(entry, category)
        if remove:
            del self._active[key]

    def _settle(self, entry: ProfileEntry, category: Category) -> None:
        if entry.category is None:
            entry.category = category
            self._counts[_CAT_INDEX[category]] += 1


class MemInstance(ProfileEntry):
    """A word fetched from memory, identified by ``(address, identifier)``."""

    __slots__ = ("addr", "refs")

    def __init__(self, addr: int) -> None:
        super().__init__()
        self.addr = addr
        self.refs = 0


class MemoryProfiler:
    """Implements the memory-level FSM of Figure 4.3.

    Every word read out of DRAM and sent on-chip becomes an instance with a
    unique identifier.  Instances are classified Used on the first load of
    any on-chip copy; Write when *any* L1 stores to the address (all
    pending instances of that address become Write waste, since coherence
    would invalidate or overwrite every copy); Evict/Invalidate when the
    last on-chip copy disappears; Excess when the memory controller drops
    the word before it ever reaches the network.
    """

    def __init__(self) -> None:
        self._counts: List[int] = [0] * len(_CATEGORIES)
        self._pending_by_addr: Dict[int, Set[MemInstance]] = {}
        self._total = 0
        self._finalized = False

    # -- FSM events --------------------------------------------------------
    def fetch(self, addr: int, l2_has_addr: bool) -> MemInstance:
        """A word at ``addr`` was fetched from memory and sent on-chip."""
        instance = MemInstance(addr)
        self._total += 1
        if l2_has_addr:
            # Figure 4.3: address already present in the L2 => Fetch waste.
            self._settle(instance, Category.FETCH)
            return instance
        self._pending_by_addr.setdefault(addr, set()).add(instance)
        return instance

    def fetch_excess(self, addr: int) -> MemInstance:
        """A word read out of DRAM but dropped at the memory controller."""
        instance = MemInstance(addr)
        self._total += 1
        self._settle(instance, Category.EXCESS)
        return instance

    def install_copy(self, instance: MemInstance) -> None:
        """A cache installed a copy of this instance."""
        instance.refs += 1

    def drop_copy(self, instance: MemInstance, *, invalidated: bool) -> None:
        """A cache lost its copy (eviction or invalidation)."""
        instance.refs -= 1
        if instance.refs <= 0 and instance.is_pending:
            category = Category.INVALIDATE if invalidated else Category.EVICT
            self._settle_pending(instance, category)

    def on_load(self, instance: MemInstance) -> None:
        if instance.is_pending:
            self._settle_pending(instance, Category.USED)

    def on_store_addr(self, addr: int) -> None:
        """Any L1 stored to ``addr``: all pending instances become Write."""
        pending = self._pending_by_addr.pop(addr, None)
        if not pending:
            return
        for instance in pending:
            self._settle(instance, Category.WRITE)

    def finalize(self) -> None:
        for pending in self._pending_by_addr.values():
            for instance in pending:
                self._settle(instance, Category.UNEVICTED)
        self._pending_by_addr.clear()
        self._finalized = True

    # -- queries ---------------------------------------------------------
    def count(self, category: Category) -> int:
        return self._counts[_CAT_INDEX[category]]

    def counts(self) -> Dict[Category, int]:
        return {cat: self._counts[i] for i, cat in enumerate(_CATEGORIES)}

    def total_words(self) -> int:
        return self._total

    # -- internals ------------------------------------------------------------
    def _settle_pending(self, instance: MemInstance, category: Category) -> None:
        pending = self._pending_by_addr.get(instance.addr)
        if pending is not None:
            pending.discard(instance)
            if not pending:
                del self._pending_by_addr[instance.addr]
        self._settle(instance, category)

    def _settle(self, instance: MemInstance, category: Category) -> None:
        if instance.category is None:
            instance.category = category
            self._counts[_CAT_INDEX[category]] += 1

"""Word-level waste characterization (the paper's Section 4.1 taxonomy)."""

from repro.waste.profiler import (
    CATEGORY_ORDER,
    CacheLevelProfiler,
    Category,
    MemInstance,
    MemoryProfiler,
    ProfileEntry,
)

__all__ = [
    "CATEGORY_ORDER", "CacheLevelProfiler", "Category", "MemInstance",
    "MemoryProfiler", "ProfileEntry",
]

"""Cache arrays and store-buffering structures."""

from repro.cache.sa_cache import CacheLine, SetAssocCache
from repro.cache.writebuffer import (
    StoreBuffer,
    WriteCombineEntry,
    WriteCombineTable,
)

__all__ = [
    "CacheLine", "SetAssocCache",
    "StoreBuffer", "WriteCombineEntry", "WriteCombineTable",
]

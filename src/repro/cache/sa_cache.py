"""Set-associative cache arrays with per-word state.

Both protocols need word-granular bookkeeping (DeNovo for coherence, MESI
for the waste profiler and dirty-word writeback accounting), so every line
carries per-word state, dirty flags and memory-instance references.  The
line class is parameterized so each protocol can attach its own fields.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, List, Optional, Tuple, TypeVar

from repro.common.addressing import WORDS_PER_LINE

#: Shared templates for one-slice-assignment word resets.
_ZERO_WORDS = (0,) * WORDS_PER_LINE
_CLEAN_WORDS = (False,) * WORDS_PER_LINE
_NO_INSTS = (None,) * WORDS_PER_LINE


class CacheLine:
    """One cache line: tag plus per-word metadata.

    ``word_state`` holds protocol-defined small integers; ``word_dirty``
    marks words modified locally; ``mem_inst`` references the memory-level
    waste-profiler instance each word copy derives from (or None for words
    produced locally by stores).
    """

    __slots__ = ("line_addr", "word_state", "word_dirty", "mem_inst")

    def __init__(self, line_addr: int) -> None:
        self.line_addr = line_addr
        self.word_state: List[int] = [0] * WORDS_PER_LINE
        self.word_dirty: List[bool] = [False] * WORDS_PER_LINE
        self.mem_inst: List[Optional[object]] = [None] * WORDS_PER_LINE

    def reset_words(self) -> None:
        self.word_state[:] = _ZERO_WORDS
        self.word_dirty[:] = _CLEAN_WORDS
        self.mem_inst[:] = _NO_INSTS

    def any_dirty(self) -> bool:
        return any(self.word_dirty)

    def dirty_offsets(self) -> List[int]:
        return [i for i, d in enumerate(self.word_dirty) if d]


LineT = TypeVar("LineT", bound=CacheLine)


class SetAssocCache(Generic[LineT]):
    """LRU set-associative cache indexed by line address."""

    __slots__ = ("_num_sets", "_assoc", "_index_shift", "_line_factory",
                 "_tags", "_lru", "_lines", "stat_probes", "stat_installs",
                 "stat_evictions")

    def __init__(self, num_sets: int, assoc: int,
                 line_factory: Callable[[int], LineT] = CacheLine,
                 index_shift: int = 0) -> None:
        """``index_shift`` drops low line-address bits before set
        selection — L2 slices on power-of-two machines must shift out
        the home-interleaving bits (line % num_tiles selects the slice),
        otherwise every line of a slice lands in the same set.
        Non-power-of-two tile counts pass 0: their slice id is not a
        bit-field, so the low bits still spread across sets."""
        if num_sets <= 0 or assoc <= 0:
            raise ValueError("sets and associativity must be positive")
        if index_shift < 0:
            raise ValueError("index_shift must be non-negative")
        self._num_sets = num_sets
        self._assoc = assoc
        self._index_shift = index_shift
        self._line_factory = line_factory
        # Per set: line_addr -> line, plus LRU order (front = MRU).
        self._tags: List[Dict[int, LineT]] = [dict() for _ in range(num_sets)]
        self._lru: List[List[int]] = [[] for _ in range(num_sets)]
        # Flat line_addr -> line mirror of every per-set dict, so the
        # hot lookup path resolves residency with one dict get and only
        # computes the set index when it must touch the LRU order.
        self._lines: Dict[int, LineT] = {}
        # Energy-model event counters (purely observational: they feed
        # ``repro.energy`` per-event cost tables and never influence
        # timing or replacement decisions).
        #
        # ``stat_probes`` counts one tag probe per word examined.  Hot
        # word-granular loops that reuse a prior ``lookup`` result for
        # further words of the same line bump the counter directly
        # (``cache.stat_probes += n``) so the accounting stays identical
        # to one ``lookup`` call per word.
        self.stat_probes = 0        # tag-array probes (lookup calls)
        self.stat_installs = 0      # new lines written into the array
        self.stat_evictions = 0     # lines removed (evictions + recalls)

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def assoc(self) -> int:
        return self._assoc

    @property
    def capacity_lines(self) -> int:
        return self._num_sets * self._assoc

    def set_index(self, line_addr: int) -> int:
        return (line_addr >> self._index_shift) % self._num_sets

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[LineT]:
        """Return the resident line or None; by default refresh LRU."""
        self.stat_probes += 1
        line = self._lines.get(line_addr)
        if line is not None and touch:
            idx = (line_addr >> self._index_shift) % self._num_sets
            order = self._lru[idx]
            # Hot case: the line is already most-recently-used, so the
            # remove/insert pair would be a no-op list rebuild.
            if order[0] != line_addr:
                order.remove(line_addr)
                order.insert(0, line_addr)
        return line

    def victim_for(self, line_addr: int) -> Optional[LineT]:
        """Line that would be evicted to make room for ``line_addr``.

        Returns None when the set has a free way or the line is already
        resident.
        """
        idx = (line_addr >> self._index_shift) % self._num_sets
        tags = self._tags[idx]
        if line_addr in tags or len(tags) < self._assoc:
            return None
        return tags[self._lru[idx][-1]]

    def allocate(self, line_addr: int) -> Tuple[LineT, Optional[LineT]]:
        """Insert ``line_addr`` (MRU); return ``(line, evicted_line)``.

        The evicted line is removed from the array before being returned,
        so the caller can inspect its state for writeback handling.  If the
        line is already resident it is refreshed and returned with no
        victim.
        """
        idx = (line_addr >> self._index_shift) % self._num_sets
        tags = self._tags[idx]
        order = self._lru[idx]
        existing = tags.get(line_addr)
        if existing is not None:
            if order[0] != line_addr:
                order.remove(line_addr)
                order.insert(0, line_addr)
            return existing, None
        victim: Optional[LineT] = None
        if len(tags) >= self._assoc:
            victim_addr = order.pop()
            victim = tags.pop(victim_addr)
            del self._lines[victim_addr]
            self.stat_evictions += 1
        line = self._line_factory(line_addr)
        tags[line_addr] = line
        self._lines[line_addr] = line
        order.insert(0, line_addr)
        self.stat_installs += 1
        return line, victim

    def remove(self, line_addr: int) -> Optional[LineT]:
        """Remove a line without replacement (invalidation/recall)."""
        idx = (line_addr >> self._index_shift) % self._num_sets
        line = self._tags[idx].pop(line_addr, None)
        if line is not None:
            del self._lines[line_addr]
            self._lru[idx].remove(line_addr)
            self.stat_evictions += 1
        return line

    def reset_energy_counters(self) -> None:
        """Zero the observational counters (end of measurement warm-up)."""
        self.stat_probes = 0
        self.stat_installs = 0
        self.stat_evictions = 0

    def register_metrics(self, hub, level: str, tile: int) -> None:
        """Register this array's counters into a ``repro.obs`` hub.

        Pull-based: the hub samples the existing energy-model counters,
        so nothing is added to the lookup/allocate hot path.  Called
        only when an observability session is attached to the run.
        """
        for stat, attr in (("probes", "stat_probes"),
                           ("installs", "stat_installs"),
                           ("evictions", "stat_evictions")):
            hub.add_pull(f"{level}_{stat}",
                         lambda c=self, a=attr: getattr(c, a),
                         help=f"{level.upper()} tag-array {stat}",
                         tile=tile)
        hub.add_pull(f"{level}_occupancy", self.occupancy, kind="gauge",
                     help=f"resident lines per {level.upper()} array",
                     tile=tile)

    def resident_lines(self) -> List[LineT]:
        """All resident lines (for end-of-simulation finalization)."""
        out: List[LineT] = []
        for tags in self._tags:
            out.extend(tags.values())
        return out

    def occupancy(self) -> int:
        return sum(len(tags) for tags in self._tags)

"""Store buffering structures.

``StoreBuffer`` models MESI's non-blocking writes: up to N outstanding
ownership requests; the core stalls only when the buffer is full.

``WriteCombineTable`` models DeNovo's write-combining optimization (paper
Section 4.2): pending word-registration requests for the same cache line
are batched into one message, released when the line fills, a timeout
expires, a release/barrier is issued, or the line is evicted from the L1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.common.addressing import OFFSET_MASK, WORDS_PER_LINE


class StoreBuffer:
    """Outstanding-ownership-request tracker for MESI non-blocking writes."""

    __slots__ = ("_capacity", "_pending")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._pending: Set[int] = set()   # line addresses with GETX in flight

    @property
    def capacity(self) -> int:
        return self._capacity

    def is_full(self) -> bool:
        return len(self._pending) >= self._capacity

    def has(self, line_addr: int) -> bool:
        return line_addr in self._pending

    def insert(self, line_addr: int) -> None:
        if self.is_full():
            raise RuntimeError("store buffer overflow; caller must stall")
        self._pending.add(line_addr)

    def retire(self, line_addr: int) -> None:
        self._pending.discard(line_addr)

    def __len__(self) -> int:
        return len(self._pending)


@dataclass(slots=True)
class WriteCombineEntry:
    """Pending registration requests for one cache line."""

    line_addr: int
    word_mask: int = 0          # bit i set => word i has a pending request
    created_at: int = 0

    def add_word(self, offset: int) -> None:
        self.word_mask |= 1 << offset

    def offsets(self) -> List[int]:
        return [i for i in range(WORDS_PER_LINE) if self.word_mask >> i & 1]

    @property
    def is_full_line(self) -> bool:
        return self.word_mask == (1 << WORDS_PER_LINE) - 1


class WriteCombineTable:
    """DeNovo write-combining unit (32 entries, 10,000-cycle timeout).

    The caller polls :meth:`expired` from its event loop and flushes the
    returned entries; :meth:`drain` empties the whole table at releases and
    barriers.  Inserting into a full table must be preceded by flushing —
    the structure itself never silently drops requests.
    """

    __slots__ = ("_capacity", "_timeout", "_entries")

    def __init__(self, capacity: int, timeout: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._timeout = timeout
        self._entries: Dict[int, WriteCombineEntry] = {}

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def timeout(self) -> int:
        return self._timeout

    def is_full(self) -> bool:
        return len(self._entries) >= self._capacity

    def has(self, line_addr: int) -> bool:
        return line_addr in self._entries

    def get(self, line_addr: int) -> Optional[WriteCombineEntry]:
        return self._entries.get(line_addr)

    def add_store(self, word_addr: int, now: int) -> WriteCombineEntry:
        """Record a pending registration for ``word_addr``.

        Raises if a new entry is needed while full: callers must first
        flush (oldest-entry policy is theirs to choose).

        This sits on the DeNovo store fast path, so line/offset
        arithmetic and the mask update are inlined.
        """
        line_addr = word_addr >> 4
        entries = self._entries
        entry = entries.get(line_addr)
        if entry is None:
            if len(entries) >= self._capacity:
                raise RuntimeError("write-combine table overflow; flush first")
            entry = WriteCombineEntry(line_addr=line_addr, created_at=now)
            entries[line_addr] = entry
        entry.word_mask |= 1 << (word_addr & OFFSET_MASK)
        return entry

    def pop(self, line_addr: int) -> Optional[WriteCombineEntry]:
        """Remove and return the entry for ``line_addr`` (eviction/full line)."""
        return self._entries.pop(line_addr, None)

    def oldest(self) -> Optional[WriteCombineEntry]:
        if not self._entries:
            return None
        return min(self._entries.values(), key=lambda e: e.created_at)

    def expired(self, now: int) -> List[WriteCombineEntry]:
        """Entries whose timeout elapsed; removed from the table."""
        out = [e for e in self._entries.values()
               if now - e.created_at >= self._timeout]
        for entry in out:
            del self._entries[entry.line_addr]
        return out

    def next_deadline(self) -> Optional[int]:
        """Earliest cycle at which some entry will time out."""
        if not self._entries:
            return None
        return min(e.created_at for e in self._entries.values()) + self._timeout

    def drain(self) -> List[WriteCombineEntry]:
        """Remove and return every entry (release instruction / barrier)."""
        out = list(self._entries.values())
        self._entries.clear()
        return out

    def __len__(self) -> int:
        return len(self._entries)

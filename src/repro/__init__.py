"""repro — reproduction of "Eliminating on-chip traffic waste: are we
there yet?" (Smolinski).

A word-granular simulator of a tiled CMP (the paper's 16-tile 4x4 mesh
by default; the machine shape is a sweep axis) with MESI and DeNovo
coherence protocols, the paper's waste-characterization methodology, its
six benchmark access patterns, and harnesses regenerating every table
and figure of the evaluation.

Quickstart::

    from repro import build_workload, simulate
    result = simulate(build_workload("radix"), "DBypFull")
    print(result.traffic_total())
"""

from repro.common.config import (
    PROTOCOL_ORDER,
    PROTOCOLS,
    ProtocolConfig,
    ScaleConfig,
    SystemConfig,
    mc_tile_placement,
    protocol,
    reshape_system,
    scaled_system,
)
from repro.common.registry import (
    paper_ladder,
    register_protocol,
    registered_protocols,
)
from repro.core.simulator import simulate, simulate_all_protocols
from repro.core.stats import RunResult
from repro.workloads import WORKLOAD_ORDER, build_all, build_workload

__version__ = "1.1.0"

__all__ = [
    "PROTOCOLS", "PROTOCOL_ORDER", "ProtocolConfig", "RunResult",
    "ScaleConfig", "SystemConfig", "WORKLOAD_ORDER", "build_all",
    "build_workload", "mc_tile_placement", "paper_ladder", "protocol",
    "register_protocol", "registered_protocols", "reshape_system",
    "scaled_system", "simulate", "simulate_all_protocols", "__version__",
]

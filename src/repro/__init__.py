"""repro — reproduction of "Eliminating on-chip traffic waste: are we
there yet?" (Smolinski).

A word-granular simulator of a tiled CMP (the paper's 16-tile 4x4 mesh
by default; the machine shape is a sweep axis) with MESI and DeNovo
coherence protocols, the paper's waste-characterization methodology, its
six benchmark access patterns, and harnesses regenerating every table
and figure of the evaluation.

Quickstart::

    from repro import build_workload, compute_energy, simulate
    result = simulate(build_workload("radix"), "DBypFull")
    print(result.traffic_total())
    print(compute_energy(result).total)   # post-hoc energy (joules)
"""

from repro.common.config import (
    ENERGY_MODELS,
    PROTOCOL_ORDER,
    PROTOCOLS,
    EnergyModelConfig,
    ProtocolConfig,
    ScaleConfig,
    SystemConfig,
    energy_model,
    mc_tile_placement,
    protocol,
    registered_energy_models,
    reshape_system,
    scaled_system,
)
from repro.common.registry import (
    paper_ladder,
    register_protocol,
    registered_protocols,
)
from repro.core.simulator import simulate, simulate_all_protocols
from repro.core.stats import RunResult
from repro.energy import EnergyStats, compute_energy
from repro.workloads import WORKLOAD_ORDER, build_all, build_workload

__version__ = "1.2.0"

__all__ = [
    "ENERGY_MODELS", "EnergyModelConfig", "EnergyStats",
    "PROTOCOLS", "PROTOCOL_ORDER", "ProtocolConfig", "RunResult",
    "ScaleConfig", "SystemConfig", "WORKLOAD_ORDER", "build_all",
    "build_workload", "compute_energy", "energy_model",
    "mc_tile_placement", "paper_ladder", "protocol",
    "register_protocol", "registered_energy_models",
    "registered_protocols", "reshape_system",
    "scaled_system", "simulate", "simulate_all_protocols", "__version__",
]

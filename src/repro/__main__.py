"""``python -m repro`` — see :mod:`repro.runner.cli`."""

import sys

from repro.runner.cli import main

if __name__ == "__main__":
    sys.exit(main())

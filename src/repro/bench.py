"""Perf-smoke benchmark records and the regression-compare gate.

Two halves, shared by ``benchmarks/perf_smoke.py``, ``python -m repro
bench`` and ``tools/bench_compare.py``:

* :func:`run_smoke` times a tiny-scale radix x {MESI, DeNovo} sweep
  under both execution engines *and* both event schedulers, asserting
  bit-identity across every variant per cell, and returns a JSON-able
  record.  All variants of all cells are timed **interleaved**
  (A/B/A/B… across the whole variant list, ``repeats`` rounds) and each
  cell records its **median** — run-to-run drift on a shared runner
  hits every variant alike instead of masquerading as a speedup for
  whichever happened to run in the quiet window.  The record carries
  ``schema_version`` and a ``git_describe`` stamp so records from
  incompatible layouts or unknown commits are never silently compared;
  :func:`write_record` refuses to stamp the committed baseline from a
  ``-dirty`` tree.
* :func:`compare_records` diffs two records cell-by-cell on
  ``events_per_second`` and classifies the outcome: any cell regressing
  by more than the threshold (default 15%) fails the gate; smaller
  regressions are reported as warnings (runner noise), improvements are
  reported as speedups.  :func:`check_engine_floor` gates the compiled
  engine's per-cell speedup within one record;
  :func:`check_scheduler_floor` gates the wheel scheduler against the
  heap the same way.

The smoke cells run in-process, serially and cache-free, so the numbers
are pure simulation speed — the perf trajectory of the simulator hot
path, not store hits.  The ``trace_memo`` and ``sweep_throughput``
sections additionally measure the warm-worker machinery: actual
cold-vs-warm cell times through the pool's trace memo, and the same
mini-sweep pushed through every execution backend (serial reference,
cold/warm pool, tcp with real loopback worker subprocesses —
:func:`check_backend_floor` gates tcp against the warm pool).  The
``service_roundtrip`` section times the HTTP sweep service end to end
over a loopback socket.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from typing import Dict, List, Tuple

#: Bump when the record layout changes incompatibly; compare_records
#: refuses to diff records with different schema versions.  v4: cells
#: carry a ``scheduler`` axis (heap vs wheel) next to the v3 ``engine``
#: axis, per-cell seconds are interleaved medians (previously
#: consecutive best-of), ``trace_memo`` reports measured cold-vs-warm
#: cell times, and a ``sweep_throughput`` section times a pooled sweep.
#: v5: an ``attrib`` section stores one latency/stall attribution
#: profile per simulated (workload, protocol, shape) — from separate
#: *non-timed* observed runs, so the timed cells stay obs-free — which
#: lets :func:`attrib_delta` name the segment that moved when a perf
#: gate trips.  v6: ``sweep_throughput`` is keyed by execution backend
#: (serial reference, pool cold/warm, tcp with real loopback workers —
#: gated by :func:`check_backend_floor` against the warm pool) and a
#: ``service_roundtrip`` section records the HTTP sweep service's cold
#: submit-to-complete and cached round-trip latencies plus its
#: single-flight dedup count.
SCHEMA_VERSION = 6

#: Hard-fail threshold of the regression gate: a cell whose
#: events_per_second drops by more than this fraction fails CI.
REGRESSION_THRESHOLD = 0.15

#: Execution engines each (workload, protocol) cell is timed under.
ENGINES = ("reference", "compiled")

#: Event schedulers each cell is timed under (see repro.engine.events).
SCHEDULERS = ("heap", "wheel")

#: Minimum compiled/reference events-per-second ratio the engine gate
#: accepts, per cell.  The compiled engine currently delivers ~1.2-1.4x
#: over the (already allocation-light) reference on CPython 3.11 —
#: short of the 2.5-3x the table-compilation work aimed for, because
#: the shared floors (trace interpretation, cache lookups, event
#: dispatch) dominate once the protocol handlers and the network walk
#: are fused.  The floor is set with margin below the achieved ratio so
#: CI catches the compiled engine ever becoming slower than the
#: reference (the failure mode that matters: a "fast engine" that
#: silently is not), without flaking on runner noise.
COMPILED_SPEEDUP_FLOOR = 1.02

#: Minimum wheel/heap events-per-second ratio, applied to the
#: geometric mean across every paired cell (best-of timings).  The
#: wheel is the default scheduler; this gate exists to catch it ever
#: becoming *structurally* slower than the heap it replaced, not to
#: claim a win: scheduler operations are only ~1-2% of runtime (the
#: callbacks dominate), so the two schedulers genuinely measure at
#: parity — repeated interleaved A/B runs land the aggregate anywhere
#: in 0.96-1.04x, centered on 1.00.  The originally intended ">2%
#: slower = fail" (0.98) criterion sits *inside* that noise band even
#: after pooling best-of timings across all paired cells, so it flakes
#: on jitter rather than catching regressions; the floor is therefore
#: set just below the observed band.  A real structural regression
#: (e.g. the wheel degenerating to per-event heap pushes) shows up as
#: tens of percent, far below this floor.
WHEEL_SPEEDUP_FLOOR = 0.93

#: Basename of the committed repo-root baseline record.  write_record
#: refuses to (over)write it from a dirty working tree, so the
#: committed baseline always carries a clean, reproducible describe.
COMMITTED_BASELINE = "BENCH_sweep.json"

WORKLOAD = "radix"
PROTOCOLS = ("MESI", "DeNovo")
SCALE = "tiny"
#: The extra machine shape exercised each run (the paper's is 16).
EXTRA_TILES = 4

#: Post-hoc energy derivation must stay below this fraction of the
#: sweep's simulation wall time (it is pure arithmetic over counters).
ENERGY_OVERHEAD_BUDGET = 0.05

#: Timing rounds over the interleaved variant list; each cell keeps its
#: median.  Shared runners are noisy and simulation is deterministic,
#: so the median of interleaved rounds is the fairest cross-variant
#: comparison (a quiet window helps every variant equally).
DEFAULT_REPEATS = 5


def git_describe() -> str:
    """``git describe`` of the repo this package lives in, or "unknown".

    Hardened for headless/odd environments: runs against the package's
    own directory (not whatever cwd the caller happens to be in),
    captures stderr so a missing-git or not-a-repo failure never leaks
    noise to the terminal, and degrades to ``"unknown"`` on any error
    (git absent, non-zero exit, empty output, timeout).
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10, check=False,
            stdin=subprocess.DEVNULL,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    described = out.stdout.strip()
    return described if out.returncode == 0 and described else "unknown"


# ----------------------------------------------------------------------
# The smoke suite
# ----------------------------------------------------------------------

def _timed_run(simulate, workload, proto, config):
    """One gc-quiesced timed simulation: ``(result, seconds)``.

    The cyclic collector is paused around the timed run — collection
    pauses triggered by unrelated garbage (trace building, earlier
    cells) would otherwise dominate the cell-to-cell noise.
    """
    import gc
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        result = simulate(workload, proto, config)
        elapsed = time.perf_counter() - t0
    finally:
        if was_enabled:
            gc.enable()
    return result, elapsed


def _measure_trace_memo(scale, repeats: int) -> dict:
    """Measured cold-vs-warm cell times through the pool's trace memo.

    A *cold* cell pays trace build + simulation (memo cleared first); a
    *warm* cell is a memo hit and pays simulation only — exactly what a
    persistent pool worker sees from its second cell of a (workload,
    shape) onwards.  The simulation work is bit-identical either way,
    so every simulate() timing (cold or warm run) goes into one pool
    and the cell times are decomposed from the measured noise floors:
    ``warm = min(sim)``, ``cold = min(sim) + min(build)``.  Comparing
    two independently-noisy mins instead would let run-to-run jitter
    (10-25% on a shared 1-vCPU runner) swamp the few-percent build
    margin and randomly invert the reported speedup.
    """
    from repro.runner import pool as worker_pool
    from repro.runner.jobs import expand_grid

    import gc

    spec = expand_grid((WORKLOAD,), (PROTOCOLS[0],), scale)[0]
    sim_times: List[float] = []
    build_times: List[float] = []
    for _ in range(repeats):
        worker_pool._WORKLOAD_MEMO.clear()
        gc.collect()
        gc.disable()
        try:
            _result, sim_s, build_s = worker_pool._execute_timed(spec)
            sim_times.append(sim_s)
            build_times.append(build_s)
            _result, sim_s, build_s = worker_pool._execute_timed(spec)
        finally:
            gc.enable()
        assert build_s == 0.0, "second run of one spec must hit the memo"
        sim_times.append(sim_s)
    worker_pool._WORKLOAD_MEMO.clear()
    warm = min(sim_times)
    cold = warm + min(build_times)
    return {
        "cold_cell_seconds": round(cold, 4),
        "warm_cell_seconds": round(warm, 4),
        "build_seconds": round(min(build_times), 4),
        "speedup_per_memoized_cell": round(cold / warm, 2) if warm else 0.0,
    }


#: Pooled mini-sweep shape for the sweep_throughput section.
SWEEP_WORKLOADS = ("radix", "stream")
SWEEP_JOBS = 2

#: Loopback workers the tcp backend is measured with.
TCP_WORKERS = 2

#: Minimum tcp(2 loopback workers)/warm-pool cells-per-second ratio.
#: Both run the same 2 parallel lanes on one host; the tcp path adds
#: JSON framing, lease bookkeeping and result decode per cell, which
#: must stay a small tax — a ratio collapsing far below 1.0 means the
#: coordinator serialized (lease starvation, heartbeat storms) or fell
#: back to serial.  0.9 leaves margin for loopback+runner noise.
TCP_BACKEND_FLOOR = 0.9


def _spawn_tcp_worker(address) -> "subprocess.Popen":
    """A real ``python -m repro worker`` subprocess for the bench."""
    import sys

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                     else []))
    host, port = address
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"{host}:{port}"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        stdin=subprocess.DEVNULL)


def _measure_sweep_throughput(scale) -> dict:
    """Cells/second of the mini-sweep through every execution backend.

    ``serial`` is the deterministic reference (one pass, cold memo);
    ``pool`` runs cold (fresh pool, trace prewarm) then warm best-of-2
    (the steady state of consecutive sweeps in one process); ``tcp``
    coordinates :data:`TCP_WORKERS` real ``python -m repro worker``
    loopback subprocesses — one warm-up pass (worker connect + trace
    builds), then best-of-2 timed passes, symmetric with the pool's
    treatment.  Cache-free throughout, so the numbers are sweep
    machinery + simulation only.  :func:`check_backend_floor` gates
    tcp against the warm pool.
    """
    from repro.runner import pool as worker_pool
    from repro.runner.backends import TcpBackend
    from repro.runner.jobs import expand_grid

    specs = expand_grid(SWEEP_WORKLOADS, PROTOCOLS, scale)
    n = len(specs)

    worker_pool.shutdown_pool()
    worker_pool._WORKLOAD_MEMO.clear()
    t0 = time.perf_counter()
    worker_pool.sweep(specs, jobs=1, use_cache=False, backend="serial")
    serial_s = time.perf_counter() - t0

    worker_pool.shutdown_pool()
    worker_pool._WORKLOAD_MEMO.clear()
    try:
        t0 = time.perf_counter()
        worker_pool.sweep(specs, jobs=SWEEP_JOBS, use_cache=False,
                          backend="pool")
        cold_s = time.perf_counter() - t0
        # Two warm passes, best kept: a single pass on a shared runner
        # can land in a slow phase and misreport warm as slower.
        warm_s = None
        for _ in range(2):
            t0 = time.perf_counter()
            worker_pool.sweep(specs, jobs=SWEEP_JOBS, use_cache=False,
                              backend="pool")
            elapsed = time.perf_counter() - t0
            warm_s = elapsed if warm_s is None else min(warm_s, elapsed)
    finally:
        worker_pool.shutdown_pool()

    backend = TcpBackend(connect_grace=30.0)
    workers = [_spawn_tcp_worker(backend.listen())
               for _ in range(TCP_WORKERS)]
    try:
        backend.wait_for_workers(TCP_WORKERS, timeout=30.0)
        # Warm-up: workers build their trace memos (symmetric with the
        # pool's cold pass, which is reported separately).
        worker_pool.sweep(specs, use_cache=False, backend=backend)
        tcp_s = None
        for _ in range(2):
            t0 = time.perf_counter()
            worker_pool.sweep(specs, use_cache=False, backend=backend)
            elapsed = time.perf_counter() - t0
            tcp_s = elapsed if tcp_s is None else min(tcp_s, elapsed)
        connected = backend.stats["workers_connected"]
        serial_fallback_cells = backend.stats["serial_cells"]
    finally:
        backend.close()
        for worker in workers:
            try:
                worker.wait(timeout=15)
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.wait()

    warm_cps = round(n / warm_s, 3)
    tcp_cps = round(n / tcp_s, 3)
    return {
        "cells": n,
        "jobs": SWEEP_JOBS,
        "backends": {
            "serial": {
                "seconds": round(serial_s, 4),
                "cells_per_second": round(n / serial_s, 3),
            },
            "pool": {
                "cold_seconds": round(cold_s, 4),
                "cold_cells_per_second": round(n / cold_s, 3),
                "warm_seconds": round(warm_s, 4),
                "warm_cells_per_second": warm_cps,
            },
            "tcp": {
                "workers": connected,
                "serial_fallback_cells": serial_fallback_cells,
                "seconds": round(tcp_s, 4),
                "cells_per_second": tcp_cps,
                "vs_warm_pool": round(tcp_cps / warm_cps, 3)
                if warm_cps else 0.0,
            },
        },
    }


def _measure_service_roundtrip() -> dict:
    """HTTP sweep-service latencies over a real loopback socket.

    Times the full client experience: a cold submit-to-complete of the
    smoke pair (simulation included), then a duplicate submission that
    must be served from the store — its round-trip is pure service +
    store overhead.  The single-flight/dedup invariant is recorded
    (``simulations`` must equal the distinct cell count).
    """
    import json as json_mod
    import tempfile
    import threading
    import urllib.request

    from repro.runner.service import SweepService, make_server
    from repro.runner.store import ResultStore

    payload = {"workloads": [WORKLOAD], "protocols": list(PROTOCOLS),
               "scale": SCALE}

    def call(base, method, path, body=None):
        data = (json_mod.dumps(body).encode()
                if body is not None else None)
        req = urllib.request.Request(base + path, data=data,
                                     method=method)
        with urllib.request.urlopen(req, timeout=120) as resp:
            return json_mod.loads(resp.read())

    with tempfile.TemporaryDirectory() as tmp:
        service = SweepService(store=ResultStore(tmp), jobs=1)
        server = make_server(service)
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        try:
            host, port = server.socket.getsockname()[:2]
            base = f"http://{host}:{port}"
            t0 = time.perf_counter()
            receipt = call(base, "POST", "/v1/submit", payload)
            while True:
                status = call(base, "GET", f"/v1/jobs/{receipt['job']}")
                if status["finished"]:
                    break
                time.sleep(0.01)
            cold_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            again = call(base, "POST", "/v1/submit", payload)
            call(base, "GET", f"/v1/jobs/{again['job']}/results")
            cached_s = time.perf_counter() - t0
            stats = service.snapshot()["stats"]
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
    return {
        "cells": receipt["total"],
        "cold_seconds": round(cold_s, 4),
        "cached_roundtrip_ms": round(cached_s * 1000, 2),
        "simulations": stats["simulations"],
        "dedup_ok": (stats["simulations"] == receipt["total"]
                     and again["cached"] == receipt["total"]),
    }


def _attrib_key(workload: str, protocol: str, tiles: int) -> str:
    return f"{workload} x {protocol} ({tiles}t)"


def _attrib_profile(workload, proto, config) -> dict:
    """Compact attribution profile from one *non-timed* observed run.

    The timed cells above stay obs-free (that gate passing unchanged is
    the zero-overhead proof); attribution comes from one extra observed
    run per simulated shape.  Its counters are simulated-behaviour
    facts — bit-equal across engines and schedulers (pinned by
    ``tests/test_attrib.py``) — so one profile covers all four timed
    variants of a cell, and a delta between two records means the
    *simulated work* changed, not the host.
    """
    from repro.core.simulator import simulate
    from repro.obs import ObsSession

    obs = ObsSession(trace=False)
    simulate(workload, proto, config, obs=obs)
    report = obs.attrib.report()
    segments = {}
    for op, per_op in report["segments"].items():
        for name, entry in per_op.items():
            segments[f"{op}.{name}"] = entry["cycles"]
    return {
        "segments": segments,
        "stall_cycles": {cause: cycles for cause, cycles
                         in report["stalls"]["total"].items() if cycles},
        # TimeStats buckets are declared float (integral-valued); cast
        # so the JSON profile stays exact-integer like the segments.
        "compute_cycles": int(report["compute_cycles"]),
        "miss_cycles": sum(entry["cycles"]
                           for entry in report["latency"].values()),
        "misses": sum(entry["count"]
                      for entry in report["latency"].values()),
        "audits_ok": report["audits"]["ok"],
    }


def run_smoke(repeats: int = DEFAULT_REPEATS) -> dict:
    """Run the perf smoke suite and return the benchmark record.

    Every (workload, protocol) cell is timed under the full
    (engine x scheduler) variant matrix, interleaved A/B/A/B across
    ``repeats`` rounds with per-cell medians; all variants of one cell
    are asserted bit-identical before any enters the record, so a perf
    record can never be produced by an engine or scheduler that
    diverged.
    """
    import dataclasses

    from repro.common.config import (
        ScaleConfig, registered_energy_models, scaled_system)
    from repro.core.simulator import simulate
    from repro.energy import compute_energy
    from repro.workloads import build_workload

    scale = ScaleConfig.tiny()
    config = scaled_system(scale)
    t_build = time.perf_counter()
    workload = build_workload(WORKLOAD, scale)
    build_s = time.perf_counter() - t_build

    # The variant list: every timed (workload, proto, shape, engine,
    # scheduler) combination, plus one non-default machine shape.
    shape_config = scaled_system(scale, num_tiles=EXTRA_TILES)
    shape_workload = build_workload(WORKLOAD, scale,
                                    num_cores=EXTRA_TILES)
    variants = []
    for proto in PROTOCOLS:
        for engine in ENGINES:
            for scheduler in SCHEDULERS:
                cell_config = dataclasses.replace(
                    config, engine=engine, scheduler=scheduler)
                variants.append((workload, proto, cell_config))
    variants.append((shape_workload, PROTOCOLS[0], shape_config))

    # Interleaved timing: one full pass over the variant list per
    # round, so slow-machine phases hit every variant alike.
    times: List[List[float]] = [[] for _ in variants]
    var_results = [None] * len(variants)
    for _round in range(repeats):
        for i, (wl, proto, cell_config) in enumerate(variants):
            result, elapsed = _timed_run(simulate, wl, proto, cell_config)
            times[i].append(elapsed)
            var_results[i] = result

    cells = []
    results = []
    by_proto: dict = {}
    for (wl, proto, cell_config), cell_times, result in zip(
            variants, times, var_results):
        elapsed = statistics.median(cell_times)
        best = min(cell_times)
        results.append((result, cell_config))
        cells.append({
            "workload": WORKLOAD,
            "protocol": proto,
            "num_tiles": cell_config.num_tiles,
            "engine": cell_config.engine,
            "scheduler": cell_config.scheduler,
            "seconds": round(elapsed, 4),
            # Best-of round: the noise floor of a deterministic cell,
            # the statistic tight gates (scheduler floor) pair on.
            "seconds_min": round(best, 4),
            "events": result.events,
            "events_per_second": round(result.events / elapsed, 1),
            "events_per_second_best": round(result.events / best, 1),
            "exec_cycles": result.exec_cycles,
        })
        if cell_config.num_tiles == config.num_tiles:
            by_proto.setdefault(proto, []).append(
                (cell_config, dataclasses.asdict(result)))
    for proto, variant_results in by_proto.items():
        _cfg0, canonical = variant_results[0]
        for cfg, result_dict in variant_results[1:]:
            assert result_dict == canonical, (
                f"engine={cfg.engine}/scheduler={cfg.scheduler} diverged "
                f"from {_cfg0.engine}/{_cfg0.scheduler} on "
                f"{WORKLOAD} x {proto}")

    # Energy-derivation cell: price every simulated cell under every
    # registered preset, post hoc.  This must be cheap — it is the whole
    # point of a counter-driven model — so assert the budget here, where
    # CI runs it on every commit.
    presets = registered_energy_models()
    t0 = time.perf_counter()
    derivations = 0
    for cell_result, cell_config in results:
        for preset in presets:
            compute_energy(cell_result, preset, cell_config)
            derivations += 1
    energy_s = time.perf_counter() - t0

    # Attribution profiles beside the cells: one per simulated shape
    # (engine/scheduler variants share theirs — the counters are
    # bit-equal across variants), collected outside any timing.
    attrib = {}
    for proto in PROTOCOLS:
        attrib[_attrib_key(WORKLOAD, proto, config.num_tiles)] = (
            _attrib_profile(workload, proto, config))
    attrib[_attrib_key(WORKLOAD, PROTOCOLS[0], EXTRA_TILES)] = (
        _attrib_profile(shape_workload, PROTOCOLS[0], shape_config))

    total_s = sum(c["seconds"] for c in cells)
    overhead = energy_s / total_s if total_s else 0.0
    assert overhead < ENERGY_OVERHEAD_BUDGET, (
        f"post-hoc energy derivation took {energy_s:.4f}s = "
        f"{overhead:.1%} of the {total_s:.4f}s sweep (budget "
        f"{ENERGY_OVERHEAD_BUDGET:.0%})")
    return {
        "bench": f"sweep_{WORKLOAD}_{SCALE}",
        "schema_version": SCHEMA_VERSION,
        "git_describe": git_describe(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "trace_build_seconds": round(build_s, 4),
        "total_seconds": round(total_s, 4),
        "cells_per_second": round(len(cells) / total_s, 3),
        # Measured cold-vs-warm cell cost through the pool's trace
        # memo: what a persistent worker saves from its second cell of
        # a (workload, shape) onwards.
        "trace_memo": _measure_trace_memo(scale, repeats),
        # The same mini-sweep through every execution backend: serial
        # reference, cold/warm pool, tcp with real loopback workers.
        "sweep_throughput": _measure_sweep_throughput(scale),
        # Full HTTP client experience against the sweep service: cold
        # submit-to-complete, then a duplicate submission served from
        # the store (pure service + store overhead).
        "service_roundtrip": _measure_service_roundtrip(),
        # Post-hoc energy model: pure arithmetic over stored counters,
        # so derivation cost must stay a rounding error next to
        # simulation (asserted above against ENERGY_OVERHEAD_BUDGET).
        "energy_derivation": {
            "derivations": derivations,
            "presets": list(presets),
            "seconds": round(energy_s, 4),
            "fraction_of_sweep": round(overhead, 5),
            "budget": ENERGY_OVERHEAD_BUDGET,
        },
        # Latency/stall attribution per simulated shape (non-timed
        # observed runs; see _attrib_profile).  attrib_delta diffs
        # these to name which segment moved when a perf gate trips.
        "attrib": attrib,
        "cells": cells,
    }


class DirtyBaseline(Exception):
    """Refusing to stamp the committed baseline from a dirty tree."""


def write_record(record: dict, path: str) -> None:
    """Write ``record`` to ``path`` as indented JSON.

    Writing the committed repo-root baseline (``BENCH_sweep.json``) is
    refused when the record's ``git_describe`` carries a ``-dirty``
    suffix (or is unknown): a baseline CI gates every future commit
    against must come from a committed, reproducible tree.  Scratch
    outputs (any other filename) are unrestricted.
    """
    if os.path.basename(path) == COMMITTED_BASELINE:
        described = record.get("git_describe", "unknown")
        if described == "unknown" or described.endswith("-dirty"):
            raise DirtyBaseline(
                f"refusing to write {COMMITTED_BASELINE}: the record is "
                f"stamped {described!r}; commit the tree first, then "
                f"regenerate the baseline so its describe is clean")
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")


# ----------------------------------------------------------------------
# The compare gate
# ----------------------------------------------------------------------

class RecordMismatch(Exception):
    """Two records cannot be compared (schema/bench layout differs)."""


def _cell_key(cell: dict) -> Tuple[str, str, int, str, str]:
    return (cell["workload"], cell["protocol"], cell["num_tiles"],
            cell.get("engine", "reference"),
            cell.get("scheduler", "heap"))


def _cell_label(key: Tuple[str, str, int, str, str]) -> str:
    workload, protocol, tiles, engine, scheduler = key
    return f"{workload} x {protocol} ({tiles}t, {engine}/{scheduler})"


def compare_records(baseline: dict, current: dict,
                    threshold: float = REGRESSION_THRESHOLD) -> dict:
    """Diff two smoke records on per-cell ``events_per_second``.

    Returns ``{"ok": bool, "lines": [str], "cells": [...]}`` where
    ``ok`` is False when any cell regressed by more than ``threshold``
    (or a baseline cell disappeared).  Raises :class:`RecordMismatch`
    when the records are not comparable (different or missing
    ``schema_version``, different bench suites).
    """
    for name, record in (("baseline", baseline), ("current", current)):
        version = record.get("schema_version")
        if version is None:
            raise RecordMismatch(
                f"{name} record has no schema_version (pre-gate record); "
                f"regenerate it with `python -m repro bench`")
        if version != SCHEMA_VERSION:
            raise RecordMismatch(
                f"{name} record has schema_version {version}, this tool "
                f"speaks {SCHEMA_VERSION}; regenerate the record")
    if baseline.get("bench") != current.get("bench"):
        raise RecordMismatch(
            f"records come from different suites "
            f"({baseline.get('bench')!r} vs {current.get('bench')!r})")

    base_cells = {_cell_key(c): c for c in baseline["cells"]}
    new_cells = {_cell_key(c): c for c in current["cells"]}
    lines: List[str] = [
        f"baseline: {baseline.get('git_describe', '?')} "
        f"({baseline.get('python', '?')})",
        f"current:  {current.get('git_describe', '?')} "
        f"({current.get('python', '?')})",
    ]
    ok = True
    compared = []
    for key, base in base_cells.items():
        workload, protocol, tiles, engine, scheduler = key
        label = _cell_label(key)
        new = new_cells.get(key)
        if new is None:
            lines.append(f"FAIL {label}: cell missing from current record")
            ok = False
            continue
        base_eps = base["events_per_second"]
        new_eps = new["events_per_second"]
        ratio = new_eps / base_eps if base_eps else 0.0
        cell = {"workload": workload, "protocol": protocol,
                "num_tiles": tiles, "engine": engine,
                "scheduler": scheduler, "baseline_eps": base_eps,
                "current_eps": new_eps, "ratio": round(ratio, 3)}
        compared.append(cell)
        detail = (f"{label}: {base_eps:,.0f} -> {new_eps:,.0f} ev/s "
                  f"({ratio:.2f}x)")
        regression = 1.0 - ratio
        if regression > threshold:
            lines.append(f"FAIL {detail} — regressed "
                         f">{threshold:.0%}")
            ok = False
        elif regression > 0:
            lines.append(f"warn {detail} — within the {threshold:.0%} "
                         f"noise band")
        else:
            lines.append(f"ok   {detail}")
    extra = set(new_cells) - set(base_cells)
    for key in sorted(extra):
        lines.append(f"note {_cell_label(key)}: new cell, no baseline")
    return {"ok": ok, "lines": lines, "cells": compared}


def _flat_buckets(profile: dict) -> Dict[str, int]:
    """One flat {bucket: cycles} view of an attribution profile."""
    flat = {f"seg {name}": int(cycles)
            for name, cycles in profile.get("segments", {}).items()}
    for cause, cycles in profile.get("stall_cycles", {}).items():
        flat[f"stall {cause}"] = int(cycles)
    flat["compute"] = int(profile.get("compute_cycles", 0))
    return flat


def attrib_delta(baseline: dict, current: dict, top: int = 3) -> dict:
    """Name which attribution buckets moved between two records.

    Diffs the per-shape ``attrib`` profiles (segment cycles, stall
    cycles by cause, compute cycles) and reports the ``top`` largest
    absolute movers per shape.  Because the profiles are simulated-
    behaviour facts — identical run-to-run on one commit — any nonzero
    delta means the *work being simulated* changed between the two
    records, while an all-zero delta pins a tripped perf gate on the
    host/runner instead.  Returns ``{"lines", "changed"}``; tolerant of
    pre-v5 records (reports the absence instead of raising).
    """
    base_attrib = baseline.get("attrib")
    new_attrib = current.get("attrib")
    if not base_attrib or not new_attrib:
        which = "baseline" if not base_attrib else "current"
        return {"changed": False, "lines": [
            f"note {which} record carries no attribution profiles "
            f"(pre-v5); cannot attribute the regression"]}
    lines: List[str] = []
    changed = False
    for key in sorted(set(base_attrib) | set(new_attrib)):
        base = base_attrib.get(key)
        new = new_attrib.get(key)
        if base is None or new is None:
            lines.append(f"note {key}: profile only in "
                         f"{'current' if base is None else 'baseline'} "
                         f"record")
            continue
        base_flat = _flat_buckets(base)
        new_flat = _flat_buckets(new)
        deltas = []
        for bucket in set(base_flat) | set(new_flat):
            before = base_flat.get(bucket, 0)
            after = new_flat.get(bucket, 0)
            if after != before:
                deltas.append((abs(after - before), bucket, before, after))
        if not deltas:
            lines.append(f"ok   {key}: attribution unchanged")
            continue
        changed = True
        deltas.sort(reverse=True)
        movers = []
        for _, bucket, before, after in deltas[:top]:
            pct = (f"{(after - before) / before:+.1%}" if before
                   else "new")
            movers.append(f"{bucket} {before:,} -> {after:,} ({pct})")
        lines.append(f"moved {key}: " + "; ".join(movers))
    if changed:
        lines.append("note attribution moved: the simulated work "
                     "changed, not just the host")
    else:
        lines.append("note attribution identical: a tripped perf gate "
                     "is host/runner-side, not a workload change")
    return {"changed": changed, "lines": lines}


def _best_eps(cell: dict) -> float:
    """Noise-floor events/second of a cell (median as fallback)."""
    return cell.get("events_per_second_best",
                    cell["events_per_second"])


def check_engine_floor(record: dict,
                       floor: float = COMPILED_SPEEDUP_FLOOR) -> dict:
    """Gate the compiled engine's speedup within one smoke record.

    For every (workload, protocol, shape, scheduler) measured under
    both engines, the compiled cell's best-of (noise floor)
    ``events_per_second`` must be at least ``floor`` times the
    reference cell's.  Both cells simulate a deterministic workload,
    so the min across interleaved rounds is the right estimator — the
    median carries the shared runner's 10-25% jitter and flakes on
    true ratios near the floor.  Returns ``{"ok", "lines", "cells"}``
    like :func:`compare_records`.  Records predating the engine axis
    (no compiled cells) pass vacuously with a note.
    """
    by_key = {_cell_key(c): c for c in record["cells"]}
    lines: List[str] = []
    cells = []
    ok = True
    seen = 0
    for key, compiled in by_key.items():
        workload, protocol, tiles, engine, scheduler = key
        if engine != "compiled":
            continue
        reference = by_key.get((workload, protocol, tiles, "reference",
                                scheduler))
        if reference is None:
            continue
        seen += 1
        ref_eps = _best_eps(reference)
        ratio = _best_eps(compiled) / ref_eps if ref_eps else 0.0
        label = f"{workload} x {protocol} ({tiles}t, {scheduler})"
        cells.append({"workload": workload, "protocol": protocol,
                      "num_tiles": tiles, "scheduler": scheduler,
                      "speedup": round(ratio, 3)})
        detail = (f"{label}: compiled {ratio:.2f}x reference "
                  f"(floor {floor:.2f}x)")
        if ratio < floor:
            lines.append(f"FAIL {detail}")
            ok = False
        else:
            lines.append(f"ok   {detail}")
    if not seen:
        lines.append("note no compiled cells in the record; engine gate "
                     "skipped")
    return {"ok": ok, "lines": lines, "cells": cells}


def check_scheduler_floor(record: dict,
                          floor: float = WHEEL_SPEEDUP_FLOOR) -> dict:
    """Gate the wheel scheduler against the heap within one record.

    For every (workload, protocol, shape, engine) measured under both
    schedulers, the wheel/heap ratio of best-of (noise floor)
    ``events_per_second`` is computed; the gate passes when the
    **geometric mean across all pairs** is at least ``floor`` — i.e.
    the default scheduler must never be meaningfully slower than the
    queue it replaced.  The aggregate (not per-cell) criterion is
    deliberate: the true ratio sits within the per-cell noise band, so
    only pooling the pairs makes a 2% threshold decidable without
    flaking.  Per-cell ratios are still reported (``low`` marks cells
    under the floor individually).  Records without a scheduler axis
    pass vacuously with a note.
    """
    by_key = {_cell_key(c): c for c in record["cells"]}
    lines: List[str] = []
    cells = []
    ratios: List[float] = []
    for key, wheel in by_key.items():
        workload, protocol, tiles, engine, scheduler = key
        if scheduler != "wheel":
            continue
        heap = by_key.get((workload, protocol, tiles, engine, "heap"))
        if heap is None:
            continue
        heap_eps = _best_eps(heap)
        ratio = _best_eps(wheel) / heap_eps if heap_eps else 0.0
        ratios.append(ratio)
        label = f"{workload} x {protocol} ({tiles}t, {engine})"
        cells.append({"workload": workload, "protocol": protocol,
                      "num_tiles": tiles, "engine": engine,
                      "speedup": round(ratio, 3)})
        mark = "ok  " if ratio >= floor else "low "
        lines.append(f"{mark} {label}: wheel {ratio:.2f}x heap")
    if not ratios:
        lines.append("note no scheduler-paired cells in the record; "
                     "scheduler gate skipped")
        return {"ok": True, "lines": lines, "cells": cells,
                "aggregate": None}
    aggregate = statistics.geometric_mean(ratios)
    ok = aggregate >= floor
    mark = "ok  " if ok else "FAIL"
    lines.append(f"{mark} aggregate: wheel {aggregate:.3f}x heap over "
                 f"{len(ratios)} paired cells (floor {floor:.2f}x)")
    return {"ok": ok, "lines": lines, "cells": cells,
            "aggregate": round(aggregate, 4)}


def check_backend_floor(record: dict,
                        floor: float = TCP_BACKEND_FLOOR) -> dict:
    """Gate the tcp backend against the warm pool within one record.

    Both paths run the same parallel lanes on one host, so tcp's
    framing/lease/decode overhead must stay a small tax: the gate
    passes when tcp cells/s is at least ``floor`` x the warm pool's.
    The gate is skipped (vacuous pass, with a note) on pre-v6 records
    without a backend axis, and when the measurement itself degraded —
    fewer workers connected than requested, or cells fell back to the
    serial path — since the ratio then measures the degradation, not
    the overhead.
    """
    sweep_thr = record.get("sweep_throughput") or {}
    backends = sweep_thr.get("backends")
    lines: List[str] = []
    if not backends:
        lines.append("note record has no backend-keyed "
                     "sweep_throughput (pre-v6); backend gate skipped")
        return {"ok": True, "lines": lines, "ratio": None}
    tcp = backends.get("tcp", {})
    pool = backends.get("pool", {})
    warm_cps = pool.get("warm_cells_per_second", 0.0)
    tcp_cps = tcp.get("cells_per_second", 0.0)
    if tcp.get("workers", 0) < TCP_WORKERS or tcp.get(
            "serial_fallback_cells", 0):
        lines.append(
            f"note tcp measurement degraded ({tcp.get('workers', 0)}/"
            f"{TCP_WORKERS} workers, "
            f"{tcp.get('serial_fallback_cells', 0)} serial-fallback "
            f"cells); backend gate skipped")
        return {"ok": True, "lines": lines, "ratio": None}
    ratio = tcp_cps / warm_cps if warm_cps else 0.0
    ok = ratio >= floor
    mark = "ok  " if ok else "FAIL"
    lines.append(
        f"{mark} tcp({tcp['workers']}w) {tcp_cps:.2f} cells/s = "
        f"{ratio:.2f}x warm pool {warm_cps:.2f} cells/s "
        f"(floor {floor:.2f}x)")
    return {"ok": ok, "lines": lines, "ratio": round(ratio, 4)}


def load_record(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)

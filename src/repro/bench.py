"""Perf-smoke benchmark records and the regression-compare gate.

Two halves, shared by ``benchmarks/perf_smoke.py``, ``python -m repro
bench`` and ``tools/bench_compare.py``:

* :func:`run_smoke` times a tiny-scale radix x {MESI, DeNovo} sweep
  under both execution engines (plus one non-default machine shape and
  the post-hoc energy derivation), asserting compiled/reference
  bit-identity per cell, and returns a JSON-able record.  The record
  carries ``schema_version`` and a ``git_describe`` stamp so records
  from incompatible layouts or unknown commits are never silently
  compared; :func:`write_record` refuses to stamp the committed
  baseline from a ``-dirty`` tree.
* :func:`compare_records` diffs two records cell-by-cell on
  ``events_per_second`` and classifies the outcome: any cell regressing
  by more than the threshold (default 15%) fails the gate; smaller
  regressions are reported as warnings (runner noise), improvements are
  reported as speedups.  :func:`check_engine_floor` additionally gates
  the compiled engine's per-cell speedup within one record.

The smoke cells run in-process, serially and cache-free, so the numbers
are pure simulation speed — the perf trajectory of the simulator hot
path, not store hits.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import List, Tuple

#: Bump when the record layout changes incompatibly; compare_records
#: refuses to diff records with different schema versions.  v3: cells
#: carry an ``engine`` axis (reference vs compiled) and enter the
#: compare key with it.
SCHEMA_VERSION = 3

#: Hard-fail threshold of the regression gate: a cell whose
#: events_per_second drops by more than this fraction fails CI.
REGRESSION_THRESHOLD = 0.15

#: Execution engines each (workload, protocol) cell is timed under.
ENGINES = ("reference", "compiled")

#: Minimum compiled/reference events-per-second ratio the engine gate
#: accepts, per cell.  The compiled engine currently delivers ~1.2-1.3x
#: over the (already allocation-light) reference on CPython 3.11 —
#: short of the 2.5-3x the table-compilation work aimed for, because
#: the shared floors (event heap, mesh traversal with link contention,
#: trace interpretation) dominate once the protocol handlers are fused.
#: The floor is set with margin below the achieved ratio so CI catches
#: the compiled engine ever becoming slower than the reference (the
#: failure mode that matters: a "fast engine" that silently is not),
#: without flaking on runner noise.
COMPILED_SPEEDUP_FLOOR = 1.02

#: Basename of the committed repo-root baseline record.  write_record
#: refuses to (over)write it from a dirty working tree, so the
#: committed baseline always carries a clean, reproducible describe.
COMMITTED_BASELINE = "BENCH_sweep.json"

WORKLOAD = "radix"
PROTOCOLS = ("MESI", "DeNovo")
SCALE = "tiny"
#: The extra machine shape exercised each run (the paper's is 16).
EXTRA_TILES = 4

#: Post-hoc energy derivation must stay below this fraction of the
#: sweep's simulation wall time (it is pure arithmetic over counters).
ENERGY_OVERHEAD_BUDGET = 0.05

#: Timing repetitions per cell; the record keeps the best run.  Shared
#: runners are noisy and simulation is deterministic, so the minimum
#: wall time is the least-disturbed measurement of the hot path.
DEFAULT_REPEATS = 5


def git_describe() -> str:
    """``git describe`` of the repo this package lives in, or "unknown".

    Hardened for headless/odd environments: runs against the package's
    own directory (not whatever cwd the caller happens to be in),
    captures stderr so a missing-git or not-a-repo failure never leaks
    noise to the terminal, and degrades to ``"unknown"`` on any error
    (git absent, non-zero exit, empty output, timeout).
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10, check=False,
            stdin=subprocess.DEVNULL,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    described = out.stdout.strip()
    return described if out.returncode == 0 and described else "unknown"


# ----------------------------------------------------------------------
# The smoke suite
# ----------------------------------------------------------------------

def _time_cell(simulate, workload, proto, config, repeats: int):
    """Best-of-``repeats`` timing of one cell (result is deterministic).

    The cyclic collector is paused around each timed run — collection
    pauses triggered by unrelated garbage (trace building, earlier
    cells) would otherwise dominate the cell-to-cell noise.
    """
    import gc
    best_result = None
    best = None
    was_enabled = gc.isenabled()
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = simulate(workload, proto, config)
            elapsed = time.perf_counter() - t0
        finally:
            if was_enabled:
                gc.enable()
        if best is None or elapsed < best:
            best = elapsed
            best_result = result
    return best_result, best


def run_smoke(repeats: int = DEFAULT_REPEATS) -> dict:
    """Run the perf smoke suite and return the benchmark record.

    Every (workload, protocol) cell is timed under both execution
    engines; the compiled cell's result is asserted bit-identical to
    the reference cell's before either enters the record, so a perf
    record can never be produced by an engine that diverged.
    """
    import dataclasses

    from repro.common.config import (
        ScaleConfig, registered_energy_models, scaled_system)
    from repro.core.simulator import simulate
    from repro.energy import compute_energy
    from repro.workloads import build_workload

    scale = ScaleConfig.tiny()
    config = scaled_system(scale)
    t_build = time.perf_counter()
    workload = build_workload(WORKLOAD, scale)
    build_s = time.perf_counter() - t_build

    cells = []
    results = []
    for proto in PROTOCOLS:
        engine_results = {}
        for engine in ENGINES:
            cell_config = dataclasses.replace(config, engine=engine)
            result, elapsed = _time_cell(simulate, workload, proto,
                                         cell_config, repeats)
            engine_results[engine] = result
            results.append((result, cell_config))
            cells.append({
                "workload": WORKLOAD,
                "protocol": proto,
                "num_tiles": config.num_tiles,
                "engine": engine,
                "seconds": round(elapsed, 4),
                "events": result.events,
                "events_per_second": round(result.events / elapsed, 1),
                "exec_cycles": result.exec_cycles,
            })
        assert (dataclasses.asdict(engine_results["compiled"])
                == dataclasses.asdict(engine_results["reference"])), (
            f"compiled engine diverged from reference on "
            f"{WORKLOAD} x {proto}")

    # One non-default-shape cell, timed like the others (prebuilt
    # trace, simulate() only) so its events/second stays comparable
    # across the cells and across commits.
    shape_config = scaled_system(scale, num_tiles=EXTRA_TILES)
    shape_workload = build_workload(WORKLOAD, scale,
                                    num_cores=EXTRA_TILES)
    shape_result, shape_s = _time_cell(simulate, shape_workload,
                                       PROTOCOLS[0], shape_config, repeats)
    cells.append({
        "workload": WORKLOAD,
        "protocol": PROTOCOLS[0],
        "num_tiles": EXTRA_TILES,
        "engine": "reference",
        "seconds": round(shape_s, 4),
        "events": shape_result.events,
        "events_per_second": round(shape_result.events / shape_s, 1),
        "exec_cycles": shape_result.exec_cycles,
    })

    # Energy-derivation cell: price every simulated cell under every
    # registered preset, post hoc.  This must be cheap — it is the whole
    # point of a counter-driven model — so assert the budget here, where
    # CI runs it on every commit.
    results.append((shape_result, shape_config))
    presets = registered_energy_models()
    t0 = time.perf_counter()
    derivations = 0
    for cell_result, cell_config in results:
        for preset in presets:
            compute_energy(cell_result, preset, cell_config)
            derivations += 1
    energy_s = time.perf_counter() - t0

    total_s = sum(c["seconds"] for c in cells)
    overhead = energy_s / total_s if total_s else 0.0
    assert overhead < ENERGY_OVERHEAD_BUDGET, (
        f"post-hoc energy derivation took {energy_s:.4f}s = "
        f"{overhead:.1%} of the {total_s:.4f}s sweep (budget "
        f"{ENERGY_OVERHEAD_BUDGET:.0%})")
    reference_cells = [c for c in cells if c["engine"] == "reference"
                       and c["num_tiles"] == config.num_tiles]
    mean_sim = (sum(c["seconds"] for c in reference_cells)
                / len(reference_cells))
    return {
        "bench": f"sweep_{WORKLOAD}_{SCALE}",
        "schema_version": SCHEMA_VERSION,
        "git_describe": git_describe(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "trace_build_seconds": round(build_s, 4),
        "total_seconds": round(total_s, 4),
        "cells_per_second": round(len(cells) / total_s, 3),
        # The pool workers memoize built traces per (workload, scale,
        # num_cores, seed): every cell after the first of a (workload,
        # shape) run costs sim-only instead of build+sim.
        "trace_memo": {
            "build_seconds": round(build_s, 4),
            "mean_sim_seconds": round(mean_sim, 4),
            "speedup_per_memoized_cell":
                round((build_s + mean_sim) / mean_sim, 2) if mean_sim else 0.0,
        },
        # Post-hoc energy model: pure arithmetic over stored counters,
        # so derivation cost must stay a rounding error next to
        # simulation (asserted above against ENERGY_OVERHEAD_BUDGET).
        "energy_derivation": {
            "derivations": derivations,
            "presets": list(presets),
            "seconds": round(energy_s, 4),
            "fraction_of_sweep": round(overhead, 5),
            "budget": ENERGY_OVERHEAD_BUDGET,
        },
        "cells": cells,
    }


class DirtyBaseline(Exception):
    """Refusing to stamp the committed baseline from a dirty tree."""


def write_record(record: dict, path: str) -> None:
    """Write ``record`` to ``path`` as indented JSON.

    Writing the committed repo-root baseline (``BENCH_sweep.json``) is
    refused when the record's ``git_describe`` carries a ``-dirty``
    suffix (or is unknown): a baseline CI gates every future commit
    against must come from a committed, reproducible tree.  Scratch
    outputs (any other filename) are unrestricted.
    """
    if os.path.basename(path) == COMMITTED_BASELINE:
        described = record.get("git_describe", "unknown")
        if described == "unknown" or described.endswith("-dirty"):
            raise DirtyBaseline(
                f"refusing to write {COMMITTED_BASELINE}: the record is "
                f"stamped {described!r}; commit the tree first, then "
                f"regenerate the baseline so its describe is clean")
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")


# ----------------------------------------------------------------------
# The compare gate
# ----------------------------------------------------------------------

class RecordMismatch(Exception):
    """Two records cannot be compared (schema/bench layout differs)."""


def _cell_key(cell: dict) -> Tuple[str, str, int, str]:
    return (cell["workload"], cell["protocol"], cell["num_tiles"],
            cell.get("engine", "reference"))


def compare_records(baseline: dict, current: dict,
                    threshold: float = REGRESSION_THRESHOLD) -> dict:
    """Diff two smoke records on per-cell ``events_per_second``.

    Returns ``{"ok": bool, "lines": [str], "cells": [...]}`` where
    ``ok`` is False when any cell regressed by more than ``threshold``
    (or a baseline cell disappeared).  Raises :class:`RecordMismatch`
    when the records are not comparable (different or missing
    ``schema_version``, different bench suites).
    """
    for name, record in (("baseline", baseline), ("current", current)):
        version = record.get("schema_version")
        if version is None:
            raise RecordMismatch(
                f"{name} record has no schema_version (pre-gate record); "
                f"regenerate it with `python -m repro bench`")
        if version != SCHEMA_VERSION:
            raise RecordMismatch(
                f"{name} record has schema_version {version}, this tool "
                f"speaks {SCHEMA_VERSION}; regenerate the record")
    if baseline.get("bench") != current.get("bench"):
        raise RecordMismatch(
            f"records come from different suites "
            f"({baseline.get('bench')!r} vs {current.get('bench')!r})")

    base_cells = {_cell_key(c): c for c in baseline["cells"]}
    new_cells = {_cell_key(c): c for c in current["cells"]}
    lines: List[str] = [
        f"baseline: {baseline.get('git_describe', '?')} "
        f"({baseline.get('python', '?')})",
        f"current:  {current.get('git_describe', '?')} "
        f"({current.get('python', '?')})",
    ]
    ok = True
    compared = []
    for key, base in base_cells.items():
        workload, protocol, tiles, engine = key
        label = f"{workload} x {protocol} ({tiles}t, {engine})"
        new = new_cells.get(key)
        if new is None:
            lines.append(f"FAIL {label}: cell missing from current record")
            ok = False
            continue
        base_eps = base["events_per_second"]
        new_eps = new["events_per_second"]
        ratio = new_eps / base_eps if base_eps else 0.0
        cell = {"workload": workload, "protocol": protocol,
                "num_tiles": tiles, "engine": engine,
                "baseline_eps": base_eps,
                "current_eps": new_eps, "ratio": round(ratio, 3)}
        compared.append(cell)
        detail = (f"{label}: {base_eps:,.0f} -> {new_eps:,.0f} ev/s "
                  f"({ratio:.2f}x)")
        regression = 1.0 - ratio
        if regression > threshold:
            lines.append(f"FAIL {detail} — regressed "
                         f">{threshold:.0%}")
            ok = False
        elif regression > 0:
            lines.append(f"warn {detail} — within the {threshold:.0%} "
                         f"noise band")
        else:
            lines.append(f"ok   {detail}")
    extra = set(new_cells) - set(base_cells)
    for key in sorted(extra):
        lines.append(f"note {key[0]} x {key[1]} ({key[2]}t, {key[3]}): "
                     f"new cell, no baseline")
    return {"ok": ok, "lines": lines, "cells": compared}


def check_engine_floor(record: dict,
                       floor: float = COMPILED_SPEEDUP_FLOOR) -> dict:
    """Gate the compiled engine's speedup within one smoke record.

    For every (workload, protocol, shape) measured under both engines,
    the compiled cell's ``events_per_second`` must be at least
    ``floor`` times the reference cell's.  Returns ``{"ok", "lines",
    "cells"}`` like :func:`compare_records`.  Records predating the
    engine axis (no compiled cells) pass vacuously with a note.
    """
    by_key = {_cell_key(c): c for c in record["cells"]}
    lines: List[str] = []
    cells = []
    ok = True
    seen = 0
    for key, compiled in by_key.items():
        workload, protocol, tiles, engine = key
        if engine != "compiled":
            continue
        reference = by_key.get((workload, protocol, tiles, "reference"))
        if reference is None:
            continue
        seen += 1
        ref_eps = reference["events_per_second"]
        ratio = compiled["events_per_second"] / ref_eps if ref_eps else 0.0
        label = f"{workload} x {protocol} ({tiles}t)"
        cells.append({"workload": workload, "protocol": protocol,
                      "num_tiles": tiles, "speedup": round(ratio, 3)})
        detail = (f"{label}: compiled {ratio:.2f}x reference "
                  f"(floor {floor:.2f}x)")
        if ratio < floor:
            lines.append(f"FAIL {detail}")
            ok = False
        else:
            lines.append(f"ok   {detail}")
    if not seen:
        lines.append("note no compiled cells in the record; engine gate "
                     "skipped")
    return {"ok": ok, "lines": lines, "cells": cells}


def load_record(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)

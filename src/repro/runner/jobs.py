"""Job specifications for the sweep runner.

A :class:`JobSpec` names one (workload, protocol, machine shape)
simulation cell completely: the workload and protocol, the input scale,
the system configuration — which carries the machine shape, so a sweep
cell is a point on the (workload x protocol x shape) grid — and the
trace-generator seed.  Specs are small frozen dataclasses so they
pickle cheaply across the process-pool pipe — workers rebuild the
(large) workload trace locally from the spec, sized to the spec's tile
count.

Key derivation is shared with the durable result store: every cell has

* a **config key** — hash of (scale, system) only, shared by all cells
  of one grid sweep.  The key payload hashes every ``SystemConfig``
  field, so the machine shape (``num_tiles``/``mesh_width``) enters
  every key;
* a **store key** — the config key tagged with the tile count (a
  readable ``-tN`` suffix, so shapes are distinguishable in a cache
  directory listing) plus the seed when it differs from the generators'
  default; it names the cache file;
* a **job key** — hash of the full spec, used for in-process memoization
  (e.g. the experiment grid LRU).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Sequence, Tuple

from repro.common.config import (
    DEFAULT_SCALE, ScaleConfig, SystemConfig, protocol, reshape_system,
    scaled_system)
from repro.common.hashing import config_items, stable_hash
from repro.common.registry import paper_ladder
from repro.workloads import WORKLOAD_ORDER, canonical_workload

#: Default trace-generator seed (matches ``workloads.base.Generator``).
DEFAULT_SEED = 12345

#: Bump when workload generators, protocol semantics or the config hash
#: payload change, so stale cached results are never reused.  v7: the
#: execution engine became a first-class ``SystemConfig`` axis
#: (``engine``), which enters the config hash payload.  v8: the event
#: scheduler joined the config (``scheduler``) — results are
#: bit-identical across schedulers by contract, but the hash payload
#: changed shape, so v7 keys are retired; old cache files are simply
#: re-simulated on first use.
GRID_VERSION = 8


def config_key(scale: ScaleConfig, config: SystemConfig) -> str:
    """Stable short hash of the (scale, system) configuration."""
    payload = [GRID_VERSION, config_items(scale), config_items(config)]
    return stable_hash(payload)


@dataclass(frozen=True)
class JobSpec:
    """One independent simulation cell of a sweep.

    The machine shape rides in ``config`` (``config.num_tiles``); it
    enters every derived key and sizes the workload trace the worker
    builds.
    """

    workload: str
    protocol: str
    scale: ScaleConfig
    config: SystemConfig
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        # Validate and canonicalize eagerly: a typo should fail in the
        # parent process with a clear message, not inside a pool worker.
        object.__setattr__(self, "workload", canonical_workload(self.workload))
        protocol(self.protocol)

    @property
    def num_tiles(self) -> int:
        """Machine shape of this cell (tile == core count)."""
        return self.config.num_tiles

    # -- key derivation ----------------------------------------------------
    def config_key(self) -> str:
        return config_key(self.scale, self.config)

    def store_key(self) -> str:
        """Key naming this cell's cache file in the result store."""
        key = f"{self.config_key()}-t{self.num_tiles}"
        if self.seed == DEFAULT_SEED:
            return key
        return f"{key}-s{self.seed}"

    def job_key(self) -> str:
        """Hash of the complete spec (for in-process memo keys)."""
        return stable_hash([GRID_VERSION, self.workload, self.protocol,
                            self.seed, config_items(self.scale),
                            config_items(self.config)])

    def label(self) -> str:
        return f"{self.workload} x {self.protocol} @ {self.num_tiles}t"


def spec_to_dict(spec: JobSpec) -> dict:
    """JSON-able payload of one spec, for shipping across a socket.

    The wire twin of the pickle path pool workers use: the frozen
    dataclasses become plain dicts, round-tripped exactly by
    :func:`spec_from_dict`.  Both scale and system configs are flat
    primitive-field dataclasses, so ``asdict`` loses nothing.
    """
    return {
        "workload": spec.workload,
        "protocol": spec.protocol,
        "scale": asdict(spec.scale),
        "config": asdict(spec.config),
        "seed": spec.seed,
    }


def spec_from_dict(data: dict) -> JobSpec:
    """Rebuild a :class:`JobSpec` from :func:`spec_to_dict` output.

    The dataclass constructors re-validate every field (mesh shape,
    engine, scheduler, workload and protocol names), so a corrupt or
    hostile payload fails loudly on the receiving side instead of
    simulating garbage.
    """
    return JobSpec(
        workload=data["workload"],
        protocol=data["protocol"],
        scale=ScaleConfig(**data["scale"]),
        config=SystemConfig(**data["config"]),
        seed=data["seed"],
    )


def expand_grid(workloads: Optional[Sequence[str]] = None,
                protocols: Optional[Sequence[str]] = None,
                scale: Optional[ScaleConfig] = None,
                config: Optional[SystemConfig] = None,
                seed: int = DEFAULT_SEED,
                tiles: Optional[Sequence[int]] = None) -> Tuple[JobSpec, ...]:
    """The (workload x shape x protocol) grid as job specs.

    Defaults mirror :func:`repro.analysis.experiments.run_grid`: paper
    workload/protocol order, the fast ``small`` scale, and a system
    configuration shrunk in step with the scale.  ``tiles`` adds the
    machine-shape axis: each entry re-shapes the base configuration via
    :func:`repro.common.config.reshape_system`.  Specs are ordered
    workload-major, then shape, then protocol, so all protocol cells
    sharing one (workload, shape) trace are adjacent — pool workers
    memoize the built trace per (workload, scale, num_cores, seed).
    """
    workloads = tuple(workloads) if workloads else WORKLOAD_ORDER
    protocols = tuple(protocols) if protocols else paper_ladder()
    scale = scale if scale is not None else DEFAULT_SCALE
    base = config if config is not None else scaled_system(scale)
    configs = (tuple(reshape_system(base, t) for t in tiles) if tiles
               else (base,))
    return tuple(JobSpec(workload=w, protocol=p, scale=scale,
                         config=cfg, seed=seed)
                 for w in workloads for cfg in configs for p in protocols)

"""Job specifications for the sweep runner.

A :class:`JobSpec` names one (workload, protocol) simulation cell
completely: the workload and protocol, the input scale, the system
configuration and the trace-generator seed.  Specs are small frozen
dataclasses so they pickle cheaply across the process-pool pipe —
workers rebuild the (large) workload trace locally from the spec.

Key derivation is shared with the durable result store: every cell has

* a **config key** — hash of (scale, system) only, shared by all cells
  of one grid sweep.  The key payload hashes every ``SystemConfig``
  field, so GRID_VERSION 4 (which added ``barrier_release_cost``)
  deliberately retired the pre-v4 keys the legacy
  :mod:`repro.analysis.persist` module derived — old cache files are
  re-simulated, not misread;
* a **store key** — the config key plus the seed when it differs from
  the generators' default, naming the cache file;
* a **job key** — hash of the full spec, used for in-process memoization
  (e.g. the experiment grid LRU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.common.config import (
    DEFAULT_SCALE, ScaleConfig, SystemConfig, protocol, scaled_system)
from repro.common.hashing import config_items, stable_hash
from repro.common.registry import paper_ladder
from repro.workloads import WORKLOAD_ORDER, canonical_workload

#: Default trace-generator seed (matches ``workloads.base.Generator``).
DEFAULT_SEED = 12345

#: Bump when workload generators, protocol semantics or the config hash
#: payload change, so stale cached results are never reused.  v4:
#: ``SystemConfig`` gained ``barrier_release_cost``, which enters
#: ``config_items`` and therefore every config key — pre-v4 cache files
#: are simply re-simulated on first use.
GRID_VERSION = 4


def config_key(scale: ScaleConfig, config: SystemConfig) -> str:
    """Stable short hash of the (scale, system) configuration."""
    payload = [GRID_VERSION, config_items(scale), config_items(config)]
    return stable_hash(payload)


@dataclass(frozen=True)
class JobSpec:
    """One independent simulation cell of a sweep."""

    workload: str
    protocol: str
    scale: ScaleConfig
    config: SystemConfig
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        # Validate and canonicalize eagerly: a typo should fail in the
        # parent process with a clear message, not inside a pool worker.
        object.__setattr__(self, "workload", canonical_workload(self.workload))
        protocol(self.protocol)

    # -- key derivation ----------------------------------------------------
    def config_key(self) -> str:
        return config_key(self.scale, self.config)

    def store_key(self) -> str:
        """Key naming this cell's cache file in the result store."""
        base = self.config_key()
        if self.seed == DEFAULT_SEED:
            return base
        return f"{base}-s{self.seed}"

    def job_key(self) -> str:
        """Hash of the complete spec (for in-process memo keys)."""
        return stable_hash([GRID_VERSION, self.workload, self.protocol,
                            self.seed, config_items(self.scale),
                            config_items(self.config)])

    def label(self) -> str:
        return f"{self.workload} x {self.protocol}"


def expand_grid(workloads: Optional[Sequence[str]] = None,
                protocols: Optional[Sequence[str]] = None,
                scale: Optional[ScaleConfig] = None,
                config: Optional[SystemConfig] = None,
                seed: int = DEFAULT_SEED) -> Tuple[JobSpec, ...]:
    """The (workload x protocol) grid as job specs, workload-major.

    Defaults mirror :func:`repro.analysis.experiments.run_grid`: paper
    workload/protocol order, the fast ``small`` scale, and a system
    configuration shrunk in step with the scale.
    """
    workloads = tuple(workloads) if workloads else WORKLOAD_ORDER
    protocols = tuple(protocols) if protocols else paper_ladder()
    scale = scale if scale is not None else DEFAULT_SCALE
    config = config if config is not None else scaled_system(scale)
    return tuple(JobSpec(workload=w, protocol=p, scale=scale,
                         config=config, seed=seed)
                 for w in workloads for p in protocols)

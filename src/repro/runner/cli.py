"""``python -m repro`` — drive sweeps, figures and reports from a shell.

Subcommands::

    python -m repro list
    python -m repro sweep   --workloads radix --protocols MESI DeNovo --jobs 8
    python -m repro sweep   --tiles 4,16,64 --scale tiny
    python -m repro figures --figures 5.1a 5.2
    python -m repro report
    python -m repro scaling --tiles 4,16,64 --workloads radix
    python -m repro energy  --preset 22nm --workloads radix
    python -m repro bench   --out BENCH_new.json --compare BENCH_sweep.json
    python -m repro backends
    python -m repro sweep   --backend tcp --workloads radix
    python -m repro worker  --connect 127.0.0.1:7421
    python -m repro serve   --port 8517 --jobs 4
    python -m repro clean-cache

``list`` prints every registered workload and protocol (including
beyond-paper rungs like ``MDirtyWB``/``DWordHybrid``).  Every
grid-shaped subcommand shares the same selection flags
(``--workloads/--protocols/--scale/--seed/--tiles``), the parallelism
flag (``--jobs``, 0 = one per CPU) and cache controls (``--cache-dir``,
``--fresh``).  ``sweep`` prints one progress line per completed cell
and accepts a multi-valued ``--tiles`` machine-shape axis; ``figures``,
``report`` and ``energy`` render one shape (a single ``--tiles``
value); ``scaling`` renders the core-count scaling figure over a
multi-valued ``--tiles`` axis.  ``energy`` derives the per-rung energy
breakdown and EDP table post hoc from stored results (cells already in
the result store are never re-simulated) under one technology preset
(``--preset``; default: every registered preset).  Protocol and preset
names resolve through their registries; a misspelled ``--protocols`` or
``--preset`` entry reports near-miss suggestions.  Every grid command
also takes ``--backend`` (``serial``/``pool``/``tcp``; see ``python -m
repro backends``) selecting *where* cells execute — results are
bit-identical across backends, so the axis never enters store keys.
``--backend tcp`` coordinates remote ``python -m repro worker
--connect HOST:PORT`` processes over work-stealing leases; ``serve``
runs the long-lived HTTP sweep service with single-flight dedup.  ``bench`` runs the
perf-smoke suite (the hot-path trend record CI gates on) and, with
``--compare``, diffs the fresh record against a baseline with the same
gate as ``tools/bench_compare.py``.
"""

from __future__ import annotations

import argparse
import difflib
import os
import sys
import time
from dataclasses import replace
from typing import List, Optional, Tuple

from repro.common.config import (
    ENERGY_MODELS, ENGINES, SCHEDULERS, ScaleConfig,
    registered_energy_models, scaled_system)
from repro.engine.events import DEFAULT_SCHEDULER
from repro.common.registry import (
    paper_ladder, protocol as protocol_by_name, registered_protocols)
from repro.runner.backends import BACKEND_NAMES, validate_backend
from repro.runner.jobs import DEFAULT_SEED, expand_grid
from repro.runner.pool import JobOutcome, sweep, sweep_grid, sweep_shapes
from repro.runner.store import ResultStore
from repro.runner.worker import parse_endpoint
from repro.workloads import GENERATORS, WORKLOAD_ORDER, canonical_workload

SCALES = {
    "tiny": ScaleConfig.tiny,
    "small": ScaleConfig,
    "paper": ScaleConfig.paper,
}

def _resolve_jobs(jobs: int) -> int:
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _make_store(ns: argparse.Namespace) -> ResultStore:
    return ResultStore(ns.cache_dir) if ns.cache_dir else ResultStore()


def _parse_tiles(ns: argparse.Namespace) -> Optional[Tuple[int, ...]]:
    """The --tiles axis as ints (accepts ``4,16`` and ``4 16`` forms)."""
    raw = getattr(ns, "tiles", None)
    if not raw:
        return None
    values = []
    for chunk in raw:
        for part in chunk.split(","):
            part = part.strip()
            if part:
                values.append(int(part))
    return tuple(values) or None


def _progress_printer(out):
    def progress(outcome: JobOutcome, done: int, total: int) -> None:
        spec = outcome.spec
        status = ("cached" if outcome.from_cache
                  else f"{outcome.elapsed:.2f}s")
        retried = (f"  (attempt {outcome.attempts})"
                   if outcome.attempts > 1 else "")
        print(f"[{done:3d}/{total}] {spec.workload:<14s} "
              f"{spec.protocol:<12s} {spec.num_tiles:3d}t {status}{retried}",
              file=out, flush=True)
    return progress


def _grid_progress(ns: argparse.Namespace, store: ResultStore, out):
    """``(ProgressFn, finish)`` for one grid command.

    Without ``--progress`` this is the legacy per-cell printer and a
    no-op finish.  With ``--progress`` the callback routes through a
    :class:`~repro.obs.telemetry.SweepTelemetry` collector — live lines
    gain ETA estimates, and ``finish()`` persists the per-cell timing
    sidecar (``telemetry.json``) next to the results.
    """
    if not getattr(ns, "progress", False):
        return _progress_printer(out), lambda: None
    from repro.obs import SweepTelemetry
    telemetry = SweepTelemetry(command=ns.command)

    def finish() -> None:
        path = telemetry.write(store.sidecar_path())
        print(f"telemetry: {telemetry.done}/{telemetry.total or 0} cells, "
              f"{telemetry.cache_hits} cached, "
              f"{telemetry.sim_seconds:.2f}s simulated in "
              f"{telemetry.wall_seconds():.2f}s wall -> {path}",
              file=out, flush=True)

    return telemetry.printer(out), finish


def _backend_for(ns: argparse.Namespace, out):
    """Resolve ``--backend``/``--bind`` to ``(sweep backend, cleanup)``.

    ``serial``/``pool`` pass through as names — the sweep resolves and
    owns them.  ``tcp`` is constructed here so the coordinator's bound
    (possibly ephemeral) port can be announced before the sweep starts;
    the returned ``cleanup`` closes it.
    """
    name = getattr(ns, "backend", None)
    if not name:
        return None, lambda: None
    if name != "tcp":
        return name, lambda: None
    from repro.runner.backends import TcpBackend
    bind = getattr(ns, "bind", None)
    host, port = parse_endpoint(bind) if bind else ("127.0.0.1", 0)
    backend = TcpBackend(host=host, port=port)
    bhost, bport = backend.listen()
    print(f"tcp: coordinating on {bhost}:{bport} — start workers with "
          f"`python -m repro worker --connect {bhost}:{bport}`; with no "
          f"workers after {backend.connect_grace:.0f}s the sweep "
          f"degrades to serial", file=out, flush=True)
    return backend, backend.close


def _with_engine(config, ns: argparse.Namespace):
    """``config`` with the ``--engine``/``--scheduler`` selections
    applied (both axes are bit-identical result-wise, so they share the
    threading path)."""
    engine = getattr(ns, "engine", None) or "reference"
    scheduler = getattr(ns, "scheduler", None) or config.scheduler
    changes = {}
    if config.engine != engine:
        changes["engine"] = engine
    if config.scheduler != scheduler:
        changes["scheduler"] = scheduler
    return replace(config, **changes) if changes else config


def _single_shape_config(ns: argparse.Namespace, scale: ScaleConfig):
    """System config for one-shape commands (figures/report)."""
    tiles = _parse_tiles(ns)
    if tiles is None:
        engine = getattr(ns, "engine", None) or "reference"
        scheduler = getattr(ns, "scheduler", None)
        if engine == "reference" and scheduler in (None, DEFAULT_SCHEDULER):
            return None
        return _with_engine(scaled_system(scale), ns)
    if len(tiles) != 1:
        raise ValueError(
            f"{ns.command} renders one machine shape at a time; pass a "
            f"single --tiles value (use `sweep`/`scaling` for a shape "
            f"axis)")
    return _with_engine(scaled_system(scale, num_tiles=tiles[0]), ns)


def _grid(ns: argparse.Namespace, store: ResultStore, progress=None,
          backend=None):
    scale = SCALES[ns.scale]()
    return sweep_grid(
        workloads=ns.workloads, protocols=ns.protocols,
        scale=scale, config=_single_shape_config(ns, scale), seed=ns.seed,
        jobs=_resolve_jobs(ns.jobs), store=store,
        use_cache=not ns.fresh, progress=progress, backend=backend)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_sweep(ns: argparse.Namespace, out=None) -> int:
    out = out if out is not None else sys.stdout
    jobs = _resolve_jobs(ns.jobs)
    workloads = tuple(ns.workloads) if ns.workloads else WORKLOAD_ORDER
    protocols = tuple(ns.protocols) if ns.protocols else paper_ladder()
    tiles = _parse_tiles(ns)
    scale = SCALES[ns.scale]()
    specs = expand_grid(workloads, protocols, scale,
                        config=_with_engine(scaled_system(scale), ns),
                        seed=ns.seed, tiles=tiles)
    shapes = (f" x {len(tiles)} shapes ({','.join(map(str, tiles))} tiles)"
              if tiles else "")
    print(f"sweep: {len(workloads)} workloads x {len(protocols)} protocols"
          f"{shapes} = {len(specs)} cells, scale={ns.scale}, jobs={jobs}",
          file=out, flush=True)
    store = _make_store(ns)
    progress, finish = _grid_progress(ns, store, out)
    backend, backend_cleanup = _backend_for(ns, out)
    start = time.perf_counter()
    try:
        sweep(specs, jobs=jobs, store=store, use_cache=not ns.fresh,
              progress=progress, backend=backend)
    finally:
        backend_cleanup()
    elapsed = time.perf_counter() - start
    finish()
    print(f"sweep: {len(specs)} cells in {elapsed:.2f}s "
          f"(results in {store.directory})", file=out, flush=True)
    return 0


def cmd_scaling(ns: argparse.Namespace, out=None) -> int:
    """Render the core-count scaling figure over a --tiles axis."""
    out = out if out is not None else sys.stdout
    from repro.analysis.scaling import DEFAULT_TILES, figure_scaling
    tiles = _parse_tiles(ns) or DEFAULT_TILES
    workloads = tuple(ns.workloads) if ns.workloads else ("radix",)
    store = _make_store(ns)
    progress, finish = _grid_progress(ns, store, sys.stderr)
    backend, backend_cleanup = _backend_for(ns, sys.stderr)
    scale = SCALES[ns.scale]()
    try:
        shapes = sweep_shapes(
            tiles, workloads=workloads, protocols=ns.protocols,
            scale=scale, config=_with_engine(scaled_system(scale), ns),
            seed=ns.seed,
            jobs=_resolve_jobs(ns.jobs), store=store,
            use_cache=not ns.fresh, progress=progress, backend=backend)
    finally:
        backend_cleanup()
    finish()
    print(figure_scaling(shapes).render(), file=out)
    return 0


def cmd_energy(ns: argparse.Namespace, out=None) -> int:
    """Derive per-rung energy/EDP from the (cached) grid, post hoc."""
    out = out if out is not None else sys.stdout
    from repro.analysis.energy import edp_table, energy_grid, figure_energy
    scale = SCALES[ns.scale]()
    config = _single_shape_config(ns, scale) or scaled_system(scale)
    store = _make_store(ns)
    progress, finish = _grid_progress(ns, store, sys.stderr)
    backend, backend_cleanup = _backend_for(ns, sys.stderr)
    try:
        grid = sweep_grid(
            workloads=ns.workloads, protocols=ns.protocols,
            scale=scale, config=config, seed=ns.seed,
            jobs=_resolve_jobs(ns.jobs), store=store,
            use_cache=not ns.fresh, progress=progress, backend=backend)
    finally:
        backend_cleanup()
    finish()
    presets = [ns.preset] if ns.preset else list(registered_energy_models())
    for preset in presets:
        stats = energy_grid(grid, preset, config)
        print(figure_energy(grid, preset, config, stats=stats).render(),
              file=out)
        print(file=out)
        print(edp_table(grid, preset, config, stats=stats), file=out)
        print(file=out)
    return 0


def cmd_figures(ns: argparse.Namespace, out=None) -> int:
    out = out if out is not None else sys.stdout
    from repro.analysis.figures import figures_from_store
    scale = SCALES[ns.scale]()
    store = _make_store(ns)
    progress, finish = _grid_progress(ns, store, sys.stderr)
    backend, backend_cleanup = _backend_for(ns, sys.stderr)
    try:
        figures = figures_from_store(
            ns.figures, jobs=_resolve_jobs(ns.jobs),
            workloads=ns.workloads, protocols=ns.protocols,
            scale=scale, config=_single_shape_config(ns, scale),
            seed=ns.seed, store=store,
            use_cache=not ns.fresh, progress=progress, backend=backend)
    finally:
        backend_cleanup()
    finish()
    for figure in figures:
        print(figure.render(), file=out)
        print(file=out)
    return 0


def cmd_report(ns: argparse.Namespace, out=None) -> int:
    out = out if out is not None else sys.stdout
    from repro.analysis import report
    scale = SCALES[ns.scale]()
    store = _make_store(ns)
    progress, finish = _grid_progress(ns, store, sys.stderr)
    backend, backend_cleanup = _backend_for(ns, sys.stderr)
    try:
        grid = _grid(ns, store, progress=progress, backend=backend)
    finally:
        backend_cleanup()
    finish()
    config = _single_shape_config(ns, scale) or scaled_system(scale)
    print(report.generate(grid, energy_config=config), file=out)
    return 0


def _canonical_protocol(name: str) -> str:
    """Resolve a case-insensitive protocol name to its registry key.

    ``--protocol denovo`` should work like ``--workload fft`` does;
    exact-case lookups (and their near-miss suggestions) stay with the
    registry itself.
    """
    canonical = {n.lower(): n for n in registered_protocols()}
    key = canonical.get(name.lower())
    if key is not None:
        return key
    protocol_by_name(name)     # raises KeyError with suggestions
    return name


def cmd_trace(ns: argparse.Namespace, out=None) -> int:
    """Run one observed cell; export the Chrome trace JSON."""
    out = out if out is not None else sys.stdout
    from repro.core.simulator import simulate
    from repro.obs import ObsSession
    from repro.workloads import build_workload
    scale = SCALES[ns.scale]()
    tiles = _parse_tiles(ns)
    config = (scaled_system(scale, num_tiles=tiles[0]) if tiles
              else scaled_system(scale))
    config = _with_engine(config, ns)
    workload = build_workload(ns.workload, scale,
                              num_cores=config.num_tiles, seed=ns.seed)
    protocol = _canonical_protocol(ns.protocol)
    obs = ObsSession(sample_interval=ns.sample_interval,
                     trace_capacity=ns.trace_capacity)
    start = time.perf_counter()
    result = simulate(workload, protocol, config, obs=obs)
    elapsed = time.perf_counter() - start
    obs.export(ns.out)
    trace = obs.trace
    print(f"trace: {workload.name} / {protocol} @ {config.num_tiles}t, "
          f"{result.exec_cycles} cycles in {elapsed:.2f}s", file=out,
          flush=True)
    print(f"trace: {len(trace.events())} span/instant events "
          f"({trace.dropped} dropped by the ring buffer), "
          f"{len(obs.samples)} metric samples -> {ns.out}", file=out,
          flush=True)
    if trace.dropped > 0:
        print(f"trace: warning: ring buffer dropped {trace.dropped} "
              f"event(s); re-run with --trace-capacity "
              f"{max(trace.capacity * 2, trace.capacity + trace.dropped)} "
              f"(or higher) for a complete trace", file=sys.stderr,
              flush=True)
    print("trace: load in https://ui.perfetto.dev or chrome://tracing",
          file=out, flush=True)
    if ns.timeline:
        from repro.analysis.timeline import figure_timeline
        print(file=out)
        print(figure_timeline(obs).render(), file=out, flush=True)
    return 0


def cmd_stalls(ns: argparse.Namespace, out=None) -> int:
    """Run one observed cell per rung; print the stall attribution."""
    out = out if out is not None else sys.stdout
    from repro.analysis.stalls import (
        collect_stall_profiles, figure_stalls, report_section)
    scale = SCALES[ns.scale]()
    tiles = _parse_tiles(ns)
    config = (scaled_system(scale, num_tiles=tiles[0]) if tiles
              else scaled_system(scale))
    config = _with_engine(config, ns)
    protocols = [_canonical_protocol(p)
                 for p in (ns.protocols or paper_ladder())]
    start = time.perf_counter()
    profiles = collect_stall_profiles(ns.workload, scale, protocols,
                                      config, seed=ns.seed)
    elapsed = time.perf_counter() - start
    if ns.report_section:
        print(report_section(profiles, config.num_tiles), file=out)
    else:
        print(figure_stalls(profiles, config.num_tiles).render(), file=out)
    print(f"stalls: {len(profiles)} rung(s) of {ns.workload} @ "
          f"{config.num_tiles}t ({config.engine}/{config.scheduler}) "
          f"in {elapsed:.2f}s", file=out, flush=True)
    if ns.json:
        import json
        payload = {"workload": profiles[0]["workload"] if profiles
                   else ns.workload,
                   "num_tiles": config.num_tiles,
                   "engine": config.engine,
                   "scheduler": config.scheduler,
                   "seed": ns.seed,
                   "profiles": profiles}
        with open(ns.json, "w") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
        print(f"stalls: wrote {ns.json}", file=out, flush=True)
    failed = [p["protocol"] for p in profiles if not p["audits"]["ok"]]
    if failed:
        print(f"stalls: conservation audits FAILED for "
              f"{', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def cmd_list(ns: argparse.Namespace, out=None) -> int:
    """Print registered workloads and protocols (from the registries)."""
    out = out if out is not None else sys.stdout
    print("workloads:", file=out)
    paper_workloads = set(WORKLOAD_ORDER)
    ordered = list(WORKLOAD_ORDER) + sorted(
        set(GENERATORS) - paper_workloads)
    for name in ordered:
        tag = "paper" if name in paper_workloads else "extra"
        print(f"  {name:<14s} {tag}", file=out)
    print("protocols:", file=out)
    from repro.engine.compiled import compile_status
    ladder = set(paper_ladder())
    for name in registered_protocols():
        proto = protocol_by_name(name)
        tag = "paper-ladder" if name in ladder else "extra"
        flags = ", ".join(proto.enabled_flags()) or "-"
        status = compile_status(proto)
        engine_tag = "compiled" if status["compiled"] else "reference-only"
        print(f"  {name:<12s} {proto.kind:<7s} {tag:<13s} "
              f"{engine_tag:<14s} {flags}", file=out)
        print(f"  {'':<12s} {'':<7s} {'':<13s} -> {status['detail']}",
              file=out)
    return 0


def cmd_bench(ns: argparse.Namespace, out=None) -> int:
    """Run the perf-smoke suite; optionally gate against a baseline."""
    out = out if out is not None else sys.stdout
    from repro.bench import (
        DirtyBaseline, RecordMismatch, check_backend_floor,
        check_engine_floor, check_scheduler_floor, compare_records,
        load_record, run_smoke, write_record)
    record = run_smoke()
    try:
        write_record(record, ns.out)
    except DirtyBaseline as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    for cell in record["cells"]:
        print(f"{cell['workload']:<10s} {cell['protocol']:<8s} "
              f"{cell['num_tiles']:3d}t  {cell['engine']:<10s} "
              f"{cell.get('scheduler', 'heap'):<6s} "
              f"{cell['seconds']:8.3f}s  "
              f"{cell['events_per_second']:12,.0f} ev/s", file=out)
    memo = record["trace_memo"]
    print(f"trace memo: cold {memo['cold_cell_seconds']:.3f}s vs warm "
          f"{memo['warm_cell_seconds']:.3f}s per cell "
          f"({memo['speedup_per_memoized_cell']:.2f}x)", file=out)
    sweep_thr = record["sweep_throughput"]
    serial = sweep_thr["backends"]["serial"]
    pool = sweep_thr["backends"]["pool"]
    tcp = sweep_thr["backends"]["tcp"]
    print(f"sweep backends ({sweep_thr['cells']} cells): "
          f"serial {serial['cells_per_second']:.2f} | "
          f"pool({sweep_thr['jobs']}j) cold "
          f"{pool['cold_cells_per_second']:.2f} -> warm "
          f"{pool['warm_cells_per_second']:.2f} | "
          f"tcp({tcp['workers']}w) {tcp['cells_per_second']:.2f} "
          f"cells/s ({tcp['vs_warm_pool']:.2f}x warm pool)", file=out)
    svc = record["service_roundtrip"]
    print(f"service round-trip: cold {svc['cold_seconds']:.2f}s for "
          f"{svc['cells']} cells, cached "
          f"{svc['cached_roundtrip_ms']:.1f}ms, "
          f"{svc['simulations']} simulation(s), dedup "
          f"{'ok' if svc['dedup_ok'] else 'FAILED'}", file=out)
    print(f"wrote {ns.out} ({record['git_describe']})", file=out)
    engine_gate = check_engine_floor(record)
    for line in engine_gate["lines"]:
        print(line, file=out)
    if not engine_gate["ok"]:
        print("bench: compiled engine fell below its speedup floor "
              "vs the reference engine", file=sys.stderr)
        return 1
    scheduler_gate = check_scheduler_floor(record)
    for line in scheduler_gate["lines"]:
        print(line, file=out)
    if not scheduler_gate["ok"]:
        print("bench: wheel scheduler fell below its speedup floor "
              "vs the heap scheduler", file=sys.stderr)
        return 1
    backend_gate = check_backend_floor(record)
    for line in backend_gate["lines"]:
        print(line, file=out)
    if not backend_gate["ok"]:
        print("bench: tcp backend fell below its throughput floor "
              "vs the warm pool", file=sys.stderr)
        return 1
    if not ns.compare:
        return 0
    try:
        outcome = compare_records(load_record(ns.compare), record,
                                  threshold=ns.threshold)
    except RecordMismatch as exc:
        print(f"bench: refusing to compare: {exc}", file=sys.stderr)
        return 2
    for line in outcome["lines"]:
        print(line, file=out)
    if not outcome["ok"]:
        print(f"bench: events_per_second regressed by more than "
              f"{ns.threshold:.0%} vs {ns.compare}", file=sys.stderr)
        return 1
    return 0


def cmd_backends(ns: argparse.Namespace, out=None) -> int:
    """Print the execution-backend matrix (the ``--backend`` axis)."""
    out = out if out is not None else sys.stdout
    from repro.runner.backends import backend_matrix
    print("backends (results are bit-identical across all of them; the "
          "axis never enters store keys):", file=out)
    for name, parallelism, detail in backend_matrix():
        print(f"  {name:<8s} parallelism: {parallelism}", file=out)
        print(f"  {'':<8s} {detail}", file=out)
    return 0


def cmd_worker(ns: argparse.Namespace, out=None) -> int:
    """Join a tcp-backend coordinator as a remote sweep worker."""
    from repro.runner.worker import main as worker_main
    return worker_main(ns.connect, out=out)


def cmd_serve(ns: argparse.Namespace, out=None) -> int:
    """Run the long-lived HTTP sweep service daemon."""
    out = out if out is not None else sys.stdout
    from repro.runner.service import run_service
    jobs = _resolve_jobs(ns.jobs)
    backend, backend_cleanup = _backend_for(ns, out)
    try:
        return run_service(
            ns.host, ns.port, store=_make_store(ns), backend=backend,
            jobs=jobs, quota=ns.quota,
            allow_shutdown=ns.allow_shutdown, out=out)
    finally:
        backend_cleanup()


def cmd_clean_cache(ns: argparse.Namespace, out=None) -> int:
    out = out if out is not None else sys.stdout
    store = _make_store(ns)
    removed = store.clear()
    print(f"removed {removed} cached result(s) from {store.directory}",
          file=out)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel sweep runner for the traffic-waste "
                    "reproduction (workload x protocol grids).")
    sub = parser.add_subparsers(dest="command", required=True)

    grid_flags = argparse.ArgumentParser(add_help=False)
    grid_flags.add_argument(
        "--workloads", nargs="+", metavar="W",
        help=f"workloads to sweep (default: paper order; "
             f"known: {', '.join(sorted(GENERATORS))})")
    grid_flags.add_argument(
        "--protocols", nargs="+", metavar="P",
        help="protocol configurations (default: the paper's nine-rung "
             "ladder; see `python -m repro list` for every registered "
             "rung)")
    grid_flags.add_argument(
        "--scale", choices=sorted(SCALES), default="small",
        help="input-size scale (default: small)")
    grid_flags.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help=f"trace-generator seed (default: {DEFAULT_SEED})")
    grid_flags.add_argument(
        "--tiles", nargs="+", metavar="N",
        help="machine-shape axis: tile counts as comma- or "
             "space-separated square numbers, e.g. `--tiles 4,16,64` "
             "(default: the paper's 16-tile 4x4 mesh; sweep/scaling "
             "accept several shapes, figures/report exactly one)")
    grid_flags.add_argument(
        "--engine", default="reference", metavar="E",
        help=f"execution engine (default: reference; known: "
             f"{', '.join(ENGINES)}); results are bit-identical, "
             f"`compiled` runs the table-compiled fast engine")
    grid_flags.add_argument(
        "--scheduler", metavar="S",
        help=f"event scheduler (default: {DEFAULT_SCHEDULER}; known: "
             f"{', '.join(SCHEDULERS)}); results are bit-identical, "
             f"`heap` is the reference binary-heap queue, `wheel` the "
             f"bucketed event wheel")
    grid_flags.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallel worker processes; 0 = one per CPU (default: 1)")
    grid_flags.add_argument(
        "--backend", metavar="B",
        help=f"execution backend (known: {', '.join(BACKEND_NAMES)}; "
             f"default: serial, or pool when --jobs > 1); results are "
             f"bit-identical across backends — see `python -m repro "
             f"backends`")
    grid_flags.add_argument(
        "--bind", metavar="HOST:PORT",
        help="with --backend tcp: coordinator bind address (default: "
             "127.0.0.1 on an ephemeral port, announced at startup)")
    grid_flags.add_argument(
        "--cache-dir", metavar="DIR",
        help="result-store directory (default: $REPRO_CACHE_DIR "
             "or ./.repro_cache)")
    grid_flags.add_argument(
        "--fresh", action="store_true",
        help="ignore and do not update the on-disk result store")
    grid_flags.add_argument(
        "--progress", action="store_true",
        help="live per-cell progress with ETA, plus a telemetry.json "
             "sidecar (per-cell wall time, attempts, cache hits) in "
             "the result-store directory")

    p = sub.add_parser("sweep", parents=[grid_flags],
                       help="simulate the grid and persist results")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("figures", parents=[grid_flags],
                       help="render paper figures from the (cached) grid")
    from repro.analysis.figures import ALL_FIGURES
    p.add_argument("--figures", nargs="+", choices=list(ALL_FIGURES),
                   metavar="FIG",
                   help=f"figures to render (default: all; known: "
                        f"{', '.join(ALL_FIGURES)})")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("report", parents=[grid_flags],
                       help="print the full paper-vs-measured report")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "scaling", parents=[grid_flags],
        help="render the core-count scaling figure (exec time, "
             "traffic and energy vs tile count, one line per protocol)")
    p.set_defaults(func=cmd_scaling)

    p = sub.add_parser(
        "energy", parents=[grid_flags],
        help="derive the per-rung energy breakdown and EDP table from "
             "stored results (no re-simulation for cached cells)")
    p.add_argument(
        "--preset", metavar="NAME",
        help=f"technology preset (default: all; known: "
             f"{', '.join(registered_energy_models())})")
    p.set_defaults(func=cmd_energy)

    p = sub.add_parser(
        "bench",
        help="run the perf-smoke suite and write a BENCH_sweep.json "
             "record; --compare gates it against a baseline record")
    from repro.bench import REGRESSION_THRESHOLD
    # The default deliberately differs from the committed repo-root
    # BENCH_sweep.json baseline so a bare `bench` run cannot clobber it.
    p.add_argument("--out", default="BENCH_new.json", metavar="FILE",
                   help="output record path (default: BENCH_new.json)")
    p.add_argument("--compare", metavar="BASELINE",
                   help="baseline record to diff against (fails on a "
                        ">threshold events/second regression)")
    p.add_argument("--threshold", type=float,
                   default=REGRESSION_THRESHOLD, metavar="FRAC",
                   help="hard-fail regression fraction (default: "
                        f"{REGRESSION_THRESHOLD})")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "trace",
        help="run one observed cell and export a Chrome trace-event "
             "JSON (loads in Perfetto / chrome://tracing)")
    p.add_argument("--workload", default="FFT", metavar="W",
                   help="workload to trace (case-insensitive; "
                        "default: FFT)")
    p.add_argument("--protocol", default="DeNovo", metavar="P",
                   help="protocol rung (case-insensitive; "
                        "default: DeNovo)")
    p.add_argument("--scale", choices=sorted(SCALES), default="tiny",
                   help="input-size scale (default: tiny — traces of "
                        "bigger scales get large)")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED,
                   help=f"trace-generator seed (default: {DEFAULT_SEED})")
    p.add_argument("--tiles", nargs="+", metavar="N",
                   help="machine shape (one square tile count; "
                        "default: the paper's 16)")
    p.add_argument("--engine", default="reference", metavar="E",
                   help=f"execution engine (default: reference; known: "
                        f"{', '.join(ENGINES)})")
    p.add_argument("--scheduler", metavar="S",
                   help=f"event scheduler (default: {DEFAULT_SCHEDULER}; "
                        f"known: {', '.join(SCHEDULERS)})")
    p.add_argument("--sample-interval", type=int, default=5000,
                   metavar="CYCLES",
                   help="metric-sampling period in simulated cycles "
                        "(default: 5000)")
    p.add_argument("-o", "--out", default="trace.json", metavar="FILE",
                   help="output trace path (default: trace.json)")
    p.add_argument("--trace-capacity", type=int, default=65536,
                   metavar="EVENTS",
                   help="SimTrace ring-buffer capacity; oldest events "
                        "drop beyond it, with a stderr warning "
                        "(default: 65536)")
    p.add_argument("--timeline", action="store_true",
                   help="also print the per-tile link-utilization "
                        "heat-strip timeline")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "stalls",
        help="run one observed cell per protocol rung and print the "
             "stacked latency/stall attribution breakdown")
    p.add_argument("--workload", default="radix", metavar="W",
                   help="workload to attribute (case-insensitive; "
                        "default: radix)")
    p.add_argument("--protocols", nargs="+", metavar="P",
                   help="protocol rungs (default: the paper's nine-rung "
                        "ladder)")
    p.add_argument("--scale", choices=sorted(SCALES), default="tiny",
                   help="input-size scale (default: tiny — each rung is "
                        "simulated with attribution attached)")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED,
                   help=f"trace-generator seed (default: {DEFAULT_SEED})")
    p.add_argument("--tiles", nargs="+", metavar="N",
                   help="machine shape (one square tile count; "
                        "default: the paper's 16)")
    p.add_argument("--engine", default="reference", metavar="E",
                   help=f"execution engine (default: reference; known: "
                        f"{', '.join(ENGINES)})")
    p.add_argument("--scheduler", metavar="S",
                   help=f"event scheduler (default: {DEFAULT_SCHEDULER}; "
                        f"known: {', '.join(SCHEDULERS)})")
    p.add_argument("--json", metavar="FILE",
                   help="also write the attribution profiles (segments, "
                        "stall causes, conservation audits) as JSON")
    p.add_argument("--report-section", action="store_true",
                   help="print the markdown report section instead of "
                        "the bare figure")
    p.set_defaults(func=cmd_stalls)

    p = sub.add_parser("list",
                       help="print registered workloads and protocols")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser(
        "backends",
        help="print the execution-backend matrix (the --backend axis)")
    p.set_defaults(func=cmd_backends)

    p = sub.add_parser(
        "worker",
        help="join a `--backend tcp` coordinator as a remote sweep "
             "worker (steals leases, heartbeats, streams results back)")
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="coordinator endpoint printed by the sweep "
                        "(e.g. 127.0.0.1:7421)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "serve",
        help="run the HTTP sweep service: submit grids, poll/stream "
             "per-cell results, single-flight dedup on store keys")
    p.add_argument("--host", default="127.0.0.1", metavar="HOST",
                   help="HTTP bind host (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=0, metavar="PORT",
                   help="HTTP bind port (default: 0 = ephemeral, "
                        "announced at startup)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="parallel worker processes for queued cells; "
                        "0 = one per CPU (default: 1)")
    p.add_argument("--backend", metavar="B",
                   help=f"execution backend draining the queue (known: "
                        f"{', '.join(BACKEND_NAMES)}; default: serial, "
                        f"or pool when --jobs > 1)")
    p.add_argument("--bind", metavar="HOST:PORT",
                   help="with --backend tcp: coordinator bind address "
                        "for remote workers")
    p.add_argument("--quota", type=int, default=256, metavar="CELLS",
                   help="per-client cap on not-yet-finished cells; "
                        "over-quota submissions get 429 (default: 256)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="result-store directory served (default: "
                        "$REPRO_CACHE_DIR or ./.repro_cache)")
    p.add_argument("--allow-shutdown", action="store_true",
                   help="enable clean remote stop via POST /v1/shutdown "
                        "(403 otherwise)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("clean-cache",
                       help="delete every stored result")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="result-store directory to clean")
    p.set_defaults(func=cmd_clean_cache)
    return parser


def _validate(ns: argparse.Namespace) -> Optional[str]:
    """Check argument combinations argparse can't; returns an error."""
    for name in getattr(ns, "workloads", None) or ():
        try:
            canonical_workload(name)
        except KeyError as exc:
            return str(exc.args[0])
    # Protocols resolve through the registry; its KeyError carries
    # near-miss suggestions ("did you mean ...?").
    for name in getattr(ns, "protocols", None) or ():
        try:
            protocol_by_name(name)
        except KeyError as exc:
            return str(exc.args[0])
    # Engines: near-miss suggestions, like protocols and presets.
    engine = getattr(ns, "engine", None)
    if engine and engine not in ENGINES:
        close = difflib.get_close_matches(engine, ENGINES, n=1,
                                          cutoff=0.4)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        return (f"unknown engine {engine!r}; known engines: "
                f"{', '.join(ENGINES)}{hint}")
    # Schedulers: same treatment (the config would reject these too,
    # but only after argument parsing has scattered into a sweep).
    scheduler = getattr(ns, "scheduler", None)
    if scheduler and scheduler not in SCHEDULERS:
        close = difflib.get_close_matches(scheduler, SCHEDULERS, n=1,
                                          cutoff=0.4)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        return (f"unknown scheduler {scheduler!r}; known schedulers: "
                f"{', '.join(SCHEDULERS)}{hint}")
    # Backends: the difflib near-miss treatment lives in the registry.
    backend = getattr(ns, "backend", None)
    if backend:
        try:
            validate_backend(backend)
        except KeyError as exc:
            return str(exc.args[0])
    bind = getattr(ns, "bind", None)
    if bind:
        if backend != "tcp":
            return ("--bind selects the tcp coordinator address; it "
                    "requires --backend tcp")
        try:
            parse_endpoint(bind)
        except ValueError as exc:
            return str(exc)
    if ns.command == "worker":
        try:
            parse_endpoint(ns.connect)
        except ValueError as exc:
            return str(exc)
    if ns.command == "serve":
        if ns.quota <= 0:
            return "--quota must be a positive cell count"
        if not 0 <= ns.port <= 65535:
            return "--port must be in [0, 65535]"
    # Energy presets resolve the same way.
    if getattr(ns, "preset", None):
        try:
            ENERGY_MODELS.get(ns.preset)
        except KeyError as exc:
            return str(exc.args[0])
    # Machine shapes: fail before sweeping, with the config's message.
    try:
        tiles = _parse_tiles(ns)
    except ValueError:
        return (f"--tiles takes comma- or space-separated integers "
                f"(got {' '.join(getattr(ns, 'tiles', []))!r})")
    if tiles:
        scale = SCALES[ns.scale]()
        for count in tiles:
            try:
                scaled_system(scale, num_tiles=count)
            except ValueError as exc:
                return f"--tiles {count}: {exc}"
        if ns.command in ("figures", "report", "energy"):
            try:
                _single_shape_config(ns, scale)
            except ValueError as exc:
                return str(exc)
    # Trace runs a single cell: singular flags, one shape.
    if ns.command == "trace":
        try:
            canonical_workload(ns.workload)
        except KeyError as exc:
            return str(exc.args[0])
        try:
            _canonical_protocol(ns.protocol)
        except KeyError as exc:
            return str(exc.args[0])
        if ns.sample_interval <= 0:
            return "--sample-interval must be a positive cycle count"
        if ns.trace_capacity <= 0:
            return "--trace-capacity must be a positive event count"
        if tiles and len(tiles) != 1:
            return ("trace runs one machine shape at a time; pass a "
                    "single --tiles value")
    # Stalls runs one observed cell per rung: one shape, valid names
    # (--protocols entries already resolved through the registry above).
    if ns.command == "stalls":
        try:
            canonical_workload(ns.workload)
        except KeyError as exc:
            return str(exc.args[0])
        if tiles and len(tiles) != 1:
            return ("stalls runs one machine shape at a time; pass a "
                    "single --tiles value")
    # Every figure and the report normalize to the MESI bar, so a grid
    # without MESI would only fail after the whole sweep ran.
    if ns.command in ("figures", "report", "energy"):
        protocols = getattr(ns, "protocols", None)
        if protocols and "MESI" not in protocols:
            return (f"{ns.command} normalizes to the MESI baseline; "
                    f"include MESI in --protocols")
    return None


def main(argv: Optional[List[str]] = None) -> int:
    ns = build_parser().parse_args(argv)
    error = _validate(ns)
    if error is not None:
        print(f"python -m repro {ns.command}: error: {error}",
              file=sys.stderr)
        return 2
    return ns.func(ns)


if __name__ == "__main__":
    sys.exit(main())

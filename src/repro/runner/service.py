"""``python -m repro serve`` — the sweep result store as an HTTP service.

A long-lived stdlib :class:`~http.server.ThreadingHTTPServer` daemon in
front of the durable :class:`~repro.runner.store.ResultStore`: clients
submit a grid, poll or stream per-cell results, and the deterministic
``JobSpec.store_key()`` content addressing makes duplicate work free at
every layer —

* **on disk**: a cell already in the store is served without
  simulating (the store *is* the cache);
* **in flight**: submissions are **single-flight coalesced** — N
  concurrent identical submissions share one queued cell keyed on
  ``store_key()``, so a million identical requests cost exactly one
  simulation (asserted by an execution counter in the tests);
* **across backends**: queued cells drain through any execution
  backend (``serial``/``pool``/``tcp``), batched in priority order, so
  the service is also the front door to a multi-host worker fleet.

Heavy concurrent traffic is kept safe by a **priority queue** (lower
number = more urgent; ties FIFO) and **per-client quotas**: a client
may only have ``quota`` not-yet-finished cells in the system, and an
over-quota submission is rejected atomically with 429 before any of
its cells enqueue.  Queue state is persisted as a registered store
sidecar (``service_queue.json``) so the store's cell accounting stays
exact.

HTTP API (all JSON; client identity from the ``X-Repro-Client``
header, else the ``client`` body field, else ``anon``)::

    GET  /v1/health                    liveness + backend
    GET  /v1/backends                  the execution-backend matrix
    GET  /v1/stats                     queue depth, dedup counters, quotas
    POST /v1/submit                    {workloads?, protocols?, scale?,
                                        tiles?, seed?, engine?, scheduler?,
                                        priority?, client?} -> job + cells
    GET  /v1/jobs/<id>                 per-cell states
    GET  /v1/jobs/<id>/results         results of every finished cell
    GET  /v1/jobs/<id>/stream          NDJSON, one line per cell as it
                                       completes (blocks until done)
    GET  /v1/cells/<workload>/<protocol>/<key>   one stored result
    POST /v1/shutdown                  clean stop (403 unless enabled)
"""

from __future__ import annotations

import heapq
import itertools
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Set

from repro.common.config import ENGINES, SCHEDULERS
from repro.runner.jobs import DEFAULT_SEED, JobSpec, expand_grid
from repro.runner.store import ResultStore, register_sidecar, result_to_dict

#: The service's queue-state sidecar in the result store (registered so
#: the store never counts it as a cell).
SERVICE_SIDECAR = register_sidecar("service_queue.json")

#: Default per-client cap on not-yet-finished cells in the system.
DEFAULT_QUOTA = 256

#: Default submission priority (0 is most urgent).
DEFAULT_PRIORITY = 5


class QuotaExceeded(Exception):
    """A submission would push its client past the pending-cell quota."""


class BadSubmission(ValueError):
    """A submission payload failed validation."""


def _cell_id(workload: str, protocol: str, key: str) -> str:
    """The globally unique cell identity.

    ``store_key()`` alone is unique only *within* one
    (workload, protocol) store directory — every protocol rung of one
    shape shares it — so the single-flight table must key on the full
    composite, exactly like the store's file paths do.
    """
    return f"{workload}/{protocol}/{key}"


class _Cell:
    """One in-flight simulation, shared by every job that names it."""

    __slots__ = ("spec", "cid", "key", "state", "priority", "clients",
                 "error", "seq")

    def __init__(self, spec: JobSpec, cid: str, key: str, priority: int,
                 seq: int) -> None:
        self.spec = spec
        self.cid = cid
        self.key = key
        self.state = "queued"        # queued -> running -> done/failed
        self.priority = priority
        self.seq = seq
        self.clients: Set[str] = set()
        self.error: Optional[str] = None


class _Job:
    __slots__ = ("job_id", "client", "cells", "created")

    def __init__(self, job_id: str, client: str, cells: List[dict],
                 created: float) -> None:
        self.job_id = job_id
        self.client = client
        self.cells = cells           # [{"workload", "protocol", "key"}]
        self.created = created


class SweepService:
    """Queueing, dedup and quota core behind the HTTP handler.

    Thread-safe: handler threads call :meth:`submit`/:meth:`job_status`
    and friends; one executor thread drains the priority queue in
    batches through the configured execution backend.
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 backend=None, jobs: int = 1,
                 quota: int = DEFAULT_QUOTA) -> None:
        from repro.runner.backends import resolve_backend
        self.store = store if store is not None else ResultStore()
        self.jobs = jobs
        self.quota = quota
        self._backend, self._owns_backend = resolve_backend(backend,
                                                            jobs=jobs)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._cells: Dict[str, _Cell] = {}      # single-flight table
        self._completed: Dict[str, str] = {}    # key -> done|failed
        self._queue: List = []                  # (priority, seq, key)
        self._jobs: Dict[str, _Job] = {}
        self._seq = itertools.count()
        self._job_seq = itertools.count(1)
        self._stopping = False
        self.started = time.time()
        self.stats = {
            "submissions": 0,
            "submitted_cells": 0,
            "cache_hits": 0,         # served straight from the store
            "coalesced": 0,          # attached to an in-flight cell
            "simulations": 0,        # actual simulate() executions
            "completed_cells": 0,
            "failed_cells": 0,
            "rejected_submissions": 0,
        }
        self._executor = threading.Thread(target=self._drain_loop,
                                          name="repro-serve-executor",
                                          daemon=True)
        self._executor.start()

    # -- submission --------------------------------------------------------
    def _expand(self, payload: dict) -> List[JobSpec]:
        from repro.runner.cli import SCALES
        from repro.common.config import scaled_system

        if not isinstance(payload, dict):
            raise BadSubmission("submission body must be a JSON object")
        scale_name = payload.get("scale", "tiny")
        if scale_name not in SCALES:
            raise BadSubmission(
                f"unknown scale {scale_name!r}; known scales: "
                f"{', '.join(sorted(SCALES))}")
        scale = SCALES[scale_name]()
        engine = payload.get("engine", "reference")
        scheduler = payload.get("scheduler")
        tiles = payload.get("tiles")
        try:
            kwargs = {"engine": engine}
            if scheduler is not None:
                kwargs["scheduler"] = scheduler
            if tiles is not None:
                config = scaled_system(scale, num_tiles=int(tiles))
            else:
                config = scaled_system(scale)
            import dataclasses
            config = dataclasses.replace(config, **kwargs)
            return list(expand_grid(
                payload.get("workloads"), payload.get("protocols"),
                scale, config,
                seed=int(payload.get("seed", DEFAULT_SEED))))
        except (KeyError, ValueError, TypeError) as exc:
            raise BadSubmission(str(exc.args[0] if exc.args else exc))

    def submit(self, payload: dict, client: str = "anon") -> dict:
        """Expand, dedup, quota-check and enqueue one submission."""
        specs = self._expand(payload)
        try:
            priority = int(payload.get("priority", DEFAULT_PRIORITY))
        except (TypeError, ValueError):
            raise BadSubmission("priority must be an integer")
        client = str(payload.get("client", client) or "anon")

        with self._cond:
            self.stats["submissions"] += 1
            # Pass 1 (no mutation): classify and quota-check, so an
            # over-quota submission rejects atomically.
            plan = []
            new_load = 0
            planned: Set[str] = set()
            for spec in specs:
                key = spec.store_key()
                cid = _cell_id(spec.workload, spec.protocol, key)
                if cid in self._cells or cid in planned:
                    plan.append((spec, cid, key, "coalesced"))
                    cell = self._cells.get(cid)
                    if cell is not None and client not in cell.clients:
                        new_load += 1
                elif (cid in self._completed
                      or self.store.load(spec.workload, spec.protocol,
                                         key) is not None):
                    plan.append((spec, cid, key, "cached"))
                else:
                    plan.append((spec, cid, key, "new"))
                    planned.add(cid)
                    new_load += 1
            pending = sum(1 for c in self._cells.values()
                          if client in c.clients)
            if pending + new_load > self.quota:
                self.stats["rejected_submissions"] += 1
                raise QuotaExceeded(
                    f"client {client!r} has {pending} pending cell(s) "
                    f"and asked for {new_load} more; the quota is "
                    f"{self.quota}")
            # Pass 2: apply.
            job_id = f"j{next(self._job_seq):06d}"
            cells_out = []
            counts = {"new": 0, "coalesced": 0, "cached": 0}
            for spec, cid, key, kind in plan:
                counts[kind] += 1
                self.stats["submitted_cells"] += 1
                if kind == "cached":
                    self.stats["cache_hits"] += 1
                    self._completed.setdefault(cid, "done")
                    state = "done"
                elif kind == "coalesced":
                    self.stats["coalesced"] += 1
                    cell = self._cells[cid]
                    cell.clients.add(client)
                    # An urgent duplicate promotes the shared cell.
                    if priority < cell.priority:
                        cell.priority = priority
                    state = cell.state
                else:
                    cell = _Cell(spec, cid, key, priority,
                                 next(self._seq))
                    cell.clients.add(client)
                    self._cells[cid] = cell
                    heapq.heappush(self._queue,
                                   (cell.priority, cell.seq, cid))
                    state = "queued"
                cells_out.append({"workload": spec.workload,
                                  "protocol": spec.protocol,
                                  "key": key, "state": state})
            job = _Job(job_id, client,
                       [{k: c[k] for k in ("workload", "protocol", "key")}
                        for c in cells_out],
                       time.time())
            self._jobs[job_id] = job
            self._cond.notify_all()
        self.write_queue_state()
        return {"job": job_id, "client": client, "priority": priority,
                "total": len(cells_out), **counts, "cells": cells_out}

    # -- the executor ------------------------------------------------------
    def _drain_loop(self) -> None:
        from repro.runner.pool import sweep
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait(timeout=0.1)
                if self._stopping:
                    return
                # Take everything queued right now, most urgent first;
                # cells arriving mid-batch wait for the next batch.
                batch: List[_Cell] = []
                while self._queue:
                    _, _, cid = heapq.heappop(self._queue)
                    cell = self._cells.get(cid)
                    if cell is not None and cell.state == "queued":
                        cell.state = "running"
                        batch.append(cell)
            if not batch:
                continue

            def progress(outcome, done, total) -> None:
                spec = outcome.spec
                cid = _cell_id(spec.workload, spec.protocol,
                               spec.store_key())
                with self._cond:
                    if not outcome.from_cache:
                        self.stats["simulations"] += 1
                    self._finish(cid, "done")

            try:
                sweep([cell.spec for cell in batch], jobs=self.jobs,
                      store=self.store, use_cache=True,
                      progress=progress, backend=self._backend)
            except Exception as exc:          # noqa: BLE001 — job error
                with self._cond:
                    for cell in batch:
                        if cell.cid in self._cells:
                            cell.error = f"{type(exc).__name__}: {exc}"
                            self._finish(cell.cid, "failed")
            self.write_queue_state()

    def _finish(self, cid: str, state: str) -> None:
        """Move one cell out of the single-flight table (lock held)."""
        cell = self._cells.pop(cid, None)
        if cell is None:
            return
        self._completed[cid] = state
        self.stats["completed_cells" if state == "done"
                   else "failed_cells"] += 1
        self._cond.notify_all()

    # -- queries -----------------------------------------------------------
    def cell_state(self, cid: str) -> str:
        """queued/running/done/failed/unknown (lock held by caller)."""
        cell = self._cells.get(cid)
        if cell is not None:
            return cell.state
        return self._completed.get(cid, "unknown")

    def job_status(self, job_id: str) -> Optional[dict]:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            cells = []
            done = failed = 0
            for ref in job.cells:
                state = self.cell_state(_cell_id(ref["workload"],
                                                 ref["protocol"],
                                                 ref["key"]))
                # A cell finished by an earlier service run (or written
                # by a sweep outside the service) counts as done.
                if state == "unknown" and self.store.load(
                        ref["workload"], ref["protocol"],
                        ref["key"]) is not None:
                    state = "done"
                done += state == "done"
                failed += state == "failed"
                cells.append({**ref, "state": state})
            return {"job": job_id, "client": job.client,
                    "total": len(cells), "done": done, "failed": failed,
                    "finished": done + failed == len(cells),
                    "cells": cells}

    def job_results(self, job_id: str) -> Optional[dict]:
        status = self.job_status(job_id)
        if status is None:
            return None
        for cell in status["cells"]:
            if cell["state"] == "done":
                result = self.store.load(cell["workload"],
                                         cell["protocol"], cell["key"])
                cell["result"] = (result_to_dict(result)
                                  if result is not None else None)
        return status

    def wait_cell(self, job_id: str, emitted: Set[str],
                  timeout: float = 30.0) -> Optional[dict]:
        """Next newly finished cell of a job (blocking); ``None`` when
        every cell has been emitted or the timeout passes."""
        deadline = time.monotonic() + timeout
        while True:
            with self._cond:
                job = self._jobs.get(job_id)
                if job is None:
                    return None
                for ref in job.cells:
                    cid = _cell_id(ref["workload"], ref["protocol"],
                                   ref["key"])
                    if cid in emitted:
                        continue
                    state = self.cell_state(cid)
                    if state in ("done", "failed") or (
                            state == "unknown"
                            and self.store.load(ref["workload"],
                                                ref["protocol"],
                                                ref["key"]) is not None):
                        emitted.add(cid)
                        return {**ref, "state": "done"
                                if state == "unknown" else state}
                if len(emitted) >= len(job.cells):
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(timeout=min(remaining, 0.25))

    def snapshot(self) -> dict:
        with self._lock:
            clients: Dict[str, int] = {}
            for cell in self._cells.values():
                for client in cell.clients:
                    clients[client] = clients.get(client, 0) + 1
            return {
                "queue_depth": sum(1 for c in self._cells.values()
                                   if c.state == "queued"),
                "running": sum(1 for c in self._cells.values()
                               if c.state == "running"),
                "jobs": len(self._jobs),
                "quota": self.quota,
                "pending_by_client": clients,
                "backend": self._backend.name,
                "uptime_seconds": round(time.time() - self.started, 1),
                "stats": dict(self.stats),
            }

    def write_queue_state(self) -> None:
        """Persist queue/dedup state as a registered store sidecar."""
        payload = {"schema_version": 1, **self.snapshot()}
        try:
            self.store.directory.mkdir(parents=True, exist_ok=True)
            self.store.sidecar_path(SERVICE_SIDECAR).write_text(
                json.dumps(payload, indent=1) + "\n")
        except OSError:
            pass                     # telemetry, never a service failure

    def stop(self) -> None:
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        self._executor.join(timeout=5.0)
        if self._owns_backend:
            self._backend.close()
        self.write_queue_state()


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------

class ServiceHandler(BaseHTTPRequestHandler):
    """Routes the ``/v1`` API onto a :class:`SweepService`."""

    #: Injected by :func:`make_server`.
    service: SweepService = None
    allow_shutdown = False
    #: HTTP/1.0 keeps responses simple (no chunked framing) and lets
    #: the stream endpoint write incrementally then close.
    protocol_version = "HTTP/1.0"

    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        pass                          # quiet; stats carry the telemetry

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, indent=1).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _client(self, payload: Optional[dict] = None) -> str:
        header = self.headers.get("X-Repro-Client")
        if header:
            return header
        if payload and payload.get("client"):
            return str(payload["client"])
        return "anon"

    # -- GET ---------------------------------------------------------------
    def do_GET(self) -> None:          # noqa: N802 — stdlib convention
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        service = self.service
        if parts == ["v1", "health"]:
            return self._send_json(200, {
                "status": "ok", "backend": service._backend.name,
                "uptime_seconds": round(time.time() - service.started, 1)})
        if parts == ["v1", "stats"]:
            return self._send_json(200, service.snapshot())
        if parts == ["v1", "backends"]:
            from repro.runner.backends import backend_matrix
            return self._send_json(200, {"backends": [
                {"name": n, "parallelism": p, "detail": d}
                for n, p, d in backend_matrix()],
                "engines": list(ENGINES), "schedulers": list(SCHEDULERS)})
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            status = service.job_status(parts[2])
            if status is None:
                return self._send_json(404, {"error": "unknown job"})
            return self._send_json(200, status)
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
            if parts[3] == "results":
                results = service.job_results(parts[2])
                if results is None:
                    return self._send_json(404, {"error": "unknown job"})
                return self._send_json(200, results)
            if parts[3] == "stream":
                return self._stream(parts[2])
        if len(parts) == 5 and parts[:2] == ["v1", "cells"]:
            _, _, workload, protocol, key = parts
            result = service.store.load(workload, protocol, key)
            if result is None:
                return self._send_json(404, {"error": "no such cell"})
            return self._send_json(200, {
                "workload": workload, "protocol": protocol, "key": key,
                "result": result_to_dict(result)})
        return self._send_json(404, {"error": f"no route {self.path!r}"})

    def _stream(self, job_id: str) -> None:
        service = self.service
        if service.job_status(job_id) is None:
            return self._send_json(404, {"error": "unknown job"})
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        emitted: Set[str] = set()
        while True:
            cell = service.wait_cell(job_id, emitted)
            if cell is None:
                break
            if cell["state"] == "done":
                result = service.store.load(cell["workload"],
                                            cell["protocol"], cell["key"])
                cell["result"] = (result_to_dict(result)
                                  if result is not None else None)
            self.wfile.write((json.dumps(cell) + "\n").encode("utf-8"))
            self.wfile.flush()

    # -- POST --------------------------------------------------------------
    def do_POST(self) -> None:         # noqa: N802 — stdlib convention
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["v1", "shutdown"]:
            if not self.allow_shutdown:
                return self._send_json(403, {
                    "error": "shutdown over HTTP is disabled; start the "
                             "daemon with --allow-shutdown to enable it"})
            self._send_json(200, {"ok": True})
            threading.Thread(target=self.server.shutdown,
                             daemon=True).start()
            return None
        if parts != ["v1", "submit"]:
            return self._send_json(404, {"error": f"no route {self.path!r}"})
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            return self._send_json(400, {"error": "body is not JSON"})
        try:
            receipt = self.service.submit(payload, self._client(payload))
        except BadSubmission as exc:
            return self._send_json(400, {"error": str(exc)})
        except QuotaExceeded as exc:
            return self._send_json(429, {"error": str(exc)})
        return self._send_json(202, receipt)


def make_server(service: SweepService, host: str = "127.0.0.1",
                port: int = 0,
                allow_shutdown: bool = False) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` HTTP server bound to ``service``."""
    handler = type("BoundServiceHandler", (ServiceHandler,),
                   {"service": service, "allow_shutdown": allow_shutdown})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def run_service(host: str, port: int, store: Optional[ResultStore] = None,
                backend=None, jobs: int = 1, quota: int = DEFAULT_QUOTA,
                allow_shutdown: bool = False, out=None) -> int:
    """Blocking daemon entry (the ``python -m repro serve`` body)."""
    import sys
    out = out if out is not None else sys.stdout
    service = SweepService(store=store, backend=backend, jobs=jobs,
                           quota=quota)
    server = make_server(service, host, port,
                         allow_shutdown=allow_shutdown)
    bound = server.socket.getsockname()
    print(f"serve: listening on http://{bound[0]}:{bound[1]} "
          f"(backend={service._backend.name}, jobs={jobs}, "
          f"quota={quota}/client, store={service.store.directory})",
          file=out, flush=True)
    service.write_queue_state()
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print("serve: interrupted, shutting down", file=out, flush=True)
    finally:
        server.server_close()
        service.stop()
    print("serve: stopped cleanly", file=out, flush=True)
    return 0

"""``python -m repro worker`` — a remote sweep worker over TCP.

Connects to a :class:`~repro.runner.backends.tcp.TcpBackend`
coordinator and steals work until told to shut down: each loop sends a
``steal``, receives a lease of :class:`~repro.runner.jobs.JobSpec`s as
length-prefixed JSON, simulates them locally — rebuilding the workload
trace from the spec through the same per-process memo a pool worker
uses, so consecutive cells of one (workload, shape) share a build —
and streams the results back.  A heartbeat thread keeps the lease
alive while a long cell simulates; a cell that raises reports an
``error`` frame (the coordinator retries it elsewhere or serially)
instead of killing the worker.

The worker exits 0 on a coordinator ``shutdown`` or a clean
disconnect, 1 when the connection could not be established.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
import traceback
from typing import Optional, Tuple

from repro.runner.backends.wire import WireError, recv_msg, send_msg
from repro.runner.jobs import spec_from_dict
from repro.runner.pool import _execute_timed
from repro.runner.store import result_to_dict


def parse_endpoint(value: str) -> Tuple[str, int]:
    """``HOST:PORT`` (or bare ``:PORT`` for localhost) as a tuple."""
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"expected HOST:PORT (e.g. 127.0.0.1:7421), got {value!r}")
    return host or "127.0.0.1", int(port)


class _Heartbeat:
    """Daemon thread pinging the coordinator while a lease executes."""

    def __init__(self, sock: socket.socket, send_lock: threading.Lock,
                 lease_id: int, interval: float) -> None:
        self._sock = sock
        self._send_lock = send_lock
        self._lease_id = lease_id
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._send_lock:
                    send_msg(self._sock, {"type": "heartbeat",
                                          "lease_id": self._lease_id})
            except OSError:
                return               # coordinator gone; main loop notices

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


def run_worker(host: str, port: int, out=None,
               connect_timeout: float = 10.0) -> int:
    """Steal and simulate leases from ``host:port`` until shut down."""
    out = out if out is not None else sys.stderr
    label = f"{os.uname().nodename}:{os.getpid()}" if hasattr(os, "uname") \
        else f"pid{os.getpid()}"
    try:
        sock = socket.create_connection((host, port),
                                        timeout=connect_timeout)
    except OSError as exc:
        print(f"worker: cannot connect to {host}:{port}: {exc}",
              file=out, flush=True)
        return 1
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    leases = cells = 0
    print(f"worker {label}: connected to {host}:{port}", file=out,
          flush=True)
    try:
        with send_lock:
            send_msg(sock, {"type": "hello", "worker": label})
        while True:
            with send_lock:
                send_msg(sock, {"type": "steal"})
            msg = recv_msg(sock)
            if msg is None or msg.get("type") == "shutdown":
                break
            if msg.get("type") == "wait":
                time.sleep(float(msg.get("seconds", 0.05)))
                continue
            if msg.get("type") != "lease":
                continue
            lease_id = msg["lease_id"]
            interval = float(msg.get("heartbeat_seconds", 1.0))
            with _Heartbeat(sock, send_lock, lease_id, interval):
                try:
                    results = []
                    for payload in msg["specs"]:
                        spec = spec_from_dict(payload)
                        result, sim_s, build_s = _execute_timed(spec)
                        results.append({
                            "result": result_to_dict(result),
                            "sim_seconds": sim_s,
                            "build_seconds": build_s,
                        })
                except Exception:
                    reply = {"type": "error", "lease_id": lease_id,
                             "error": traceback.format_exc()}
                else:
                    reply = {"type": "done", "lease_id": lease_id,
                             "results": results}
                    leases += 1
                    cells += len(results)
            with send_lock:
                send_msg(sock, reply)
    except (WireError, OSError):
        pass                         # coordinator gone: clean exit
    finally:
        try:
            sock.close()
        except OSError:
            pass
    print(f"worker {label}: done ({cells} cells in {leases} leases)",
          file=out, flush=True)
    return 0


def main(connect: str, out=None) -> int:
    try:
        host, port = parse_endpoint(connect)
    except ValueError as exc:
        print(f"worker: {exc}", file=out or sys.stderr)
        return 2
    return run_worker(host, port, out=out)

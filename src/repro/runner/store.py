"""Durable, content-addressed on-disk store for simulation results.

One JSON file per (workload, protocol, key) cell, where the key is
derived from the full configuration (see :mod:`repro.runner.jobs`), so a
result is found again iff the exact same configuration is swept.

Properties the sweep runner relies on:

* **Atomic writes** — results are written to a uniquely named temp file
  and ``os.replace``d into place, so concurrent writers (pool workers,
  parallel pytest sessions) never interleave partial content and readers
  never observe a torn file.
* **Corrupt-file tolerance** — any unreadable, truncated or
  wrong-schema file loads as ``None``; callers fall back to
  re-simulation and the next save repairs the file.
* **Versioned schema** — files carry a ``schema_version``; the legacy
  bare-payload format written by the old ``analysis.persist`` module
  (schema 0) is still readable so existing caches keep working.
* **Relocatable** — the directory defaults to ``.repro_cache/`` under
  the current directory and is overridden by ``$REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from pathlib import Path
from typing import Iterator, Optional

from repro.core.stats import RunResult
from repro.waste.profiler import Category

#: Current on-disk schema.  0 = legacy bare result dict (read-only).
SCHEMA_VERSION = 1

#: Registered sidecar filenames: non-result files that live next to the
#: cells (sweep telemetry, the service's queue state) and are excluded
#: from :meth:`ResultStore.entries`, so ``clear``/``__len__`` and any
#: cache accounting never mistake them for cells.  Subsystems register
#: theirs via :func:`register_sidecar` (``sidecar_path`` registers
#: automatically).
_SIDECARS = {"telemetry.json"}

_tmp_counter = itertools.count()


def register_sidecar(name: str) -> str:
    """Register ``name`` as a known sidecar filename; returns it.

    Sidecars must be plain ``.json`` filenames (no path separators) so
    they can never shadow a result cell's atomic-write temp files.
    """
    if os.sep in name or (os.altsep and os.altsep in name):
        raise ValueError(f"sidecar name {name!r} must not contain a path")
    if not name.endswith(".json"):
        raise ValueError(f"sidecar name {name!r} must end in .json")
    _SIDECARS.add(name)
    return name


def registered_sidecars() -> frozenset:
    """The current set of registered sidecar filenames."""
    return frozenset(_SIDECARS)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro_cache/`` under cwd."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.cwd() / ".repro_cache"


# ----------------------------------------------------------------------
# RunResult <-> plain-dict serialization
# ----------------------------------------------------------------------

def result_to_dict(result: RunResult) -> dict:
    return {
        "workload": result.workload,
        "protocol": result.protocol,
        "traffic": result.traffic,
        "l1_waste": {c.value: n for c, n in result.l1_waste.items()},
        "l2_waste": {c.value: n for c, n in result.l2_waste.items()},
        "mem_waste": {c.value: n for c, n in result.mem_waste.items()},
        "time": result.time,
        "exec_cycles": result.exec_cycles,
        "events": result.events,
        "protocol_stats": result.protocol_stats,
        "dram_stats": result.dram_stats,
        "energy_counters": result.energy_counters,
    }


def result_from_dict(data: dict) -> RunResult:
    def cats(d):
        return {Category(k): v for k, v in d.items()}

    return RunResult(
        workload=data["workload"],
        protocol=data["protocol"],
        traffic=data["traffic"],
        l1_waste=cats(data["l1_waste"]),
        l2_waste=cats(data["l2_waste"]),
        mem_waste=cats(data["mem_waste"]),
        time=data["time"],
        exec_cycles=data["exec_cycles"],
        events=data["events"],
        protocol_stats=data.get("protocol_stats", {}),
        dram_stats=data.get("dram_stats", {}),
        energy_counters=data.get("energy_counters", {}),
    )


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

class ResultStore:
    """Directory of cached :class:`RunResult` cells."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = (Path(directory) if directory is not None
                          else default_cache_dir())

    def path_for(self, workload: str, protocol: str, key: str) -> Path:
        return self.directory / f"{workload}_{protocol}_{key}.json"

    def sidecar_path(self, name: str = "telemetry.json") -> Path:
        """Path for a non-result sidecar file (e.g. sweep telemetry).

        Sidecars live next to the cells but are not cells: the name is
        registered (see :func:`register_sidecar`) and excluded from
        :meth:`entries`, so ``clear``/``__len__`` and any cache
        accounting ignore them.
        """
        return self.directory / register_sidecar(name)

    def save(self, result: RunResult, key: str) -> Path:
        """Atomically persist one result; returns the cell's path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(result.workload, result.protocol, key)
        envelope = {"schema_version": SCHEMA_VERSION,
                    "result": result_to_dict(result)}
        # Unique temp name per writer: pid for processes, thread id and a
        # counter for threads sharing one store.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}"
            f".{next(_tmp_counter)}.tmp")
        try:
            tmp.write_text(json.dumps(envelope))
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return path

    def load(self, workload: str, protocol: str,
             key: str) -> Optional[RunResult]:
        """The cached result, or ``None`` if absent/corrupt/stale."""
        path = self.path_for(workload, protocol, key)
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(raw, dict):
            return None
        if "schema_version" in raw:
            if raw.get("schema_version") != SCHEMA_VERSION:
                return None
            payload = raw.get("result")
        else:
            payload = raw          # legacy analysis.persist format
        if not isinstance(payload, dict):
            return None
        try:
            return result_from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None

    # -- maintenance -------------------------------------------------------
    def entries(self) -> Iterator[Path]:
        """Paths of every stored cell (and stray temp files)."""
        if not self.directory.is_dir():
            return iter(())
        return iter(sorted(
            p for p in self.directory.iterdir()
            if (p.suffix == ".json" or p.name.endswith(".tmp"))
            and p.name not in _SIDECARS))

    def clear(self) -> int:
        """Delete every stored cell; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for p in self.entries() if p.suffix == ".json")

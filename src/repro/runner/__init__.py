"""Parallel sweep-execution subsystem.

Shards the paper's (workload x protocol) simulation grid across a
process pool, persists every cell in a durable content-addressed store,
and exposes the whole pipeline on the command line via
``python -m repro``.

* :mod:`repro.runner.jobs`  — :class:`JobSpec` and deterministic keys
* :mod:`repro.runner.pool`  — process-pool execution (:func:`sweep_grid`)
* :mod:`repro.runner.store` — the durable :class:`ResultStore`
* :mod:`repro.runner.cli`   — the ``python -m repro`` entry point
"""

from repro.runner.jobs import (
    DEFAULT_SEED, GRID_VERSION, JobSpec, config_key, expand_grid)
from repro.runner.pool import (
    JobOutcome, execute_job, run_jobs, sweep, sweep_grid, sweep_shapes)
from repro.runner.store import (
    ResultStore, default_cache_dir, result_from_dict, result_to_dict)

__all__ = [
    "DEFAULT_SEED", "GRID_VERSION", "JobOutcome", "JobSpec", "ResultStore",
    "config_key", "default_cache_dir", "execute_job", "expand_grid",
    "result_from_dict", "result_to_dict", "run_jobs", "sweep", "sweep_grid",
    "sweep_shapes",
]

"""Parallel sweep-execution subsystem.

Shards the paper's (workload x protocol) simulation grid across a
pluggable execution backend, persists every cell in a durable
content-addressed store, and exposes the whole pipeline on the command
line via ``python -m repro``.

* :mod:`repro.runner.jobs`     — :class:`JobSpec` and deterministic keys
* :mod:`repro.runner.backends` — execution backends (serial/pool/tcp)
* :mod:`repro.runner.pool`     — the warm process pool (:func:`sweep_grid`)
* :mod:`repro.runner.worker`   — ``python -m repro worker`` (tcp remote)
* :mod:`repro.runner.store`    — the durable :class:`ResultStore`
* :mod:`repro.runner.service`  — ``python -m repro serve`` (HTTP API)
* :mod:`repro.runner.cli`      — the ``python -m repro`` entry point
"""

from repro.runner.backends import (
    BACKEND_NAMES, ExecutionBackend, PoolBackend, SerialBackend,
    TcpBackend, resolve_backend, validate_backend)
from repro.runner.jobs import (
    DEFAULT_SEED, GRID_VERSION, JobSpec, config_key, expand_grid,
    spec_from_dict, spec_to_dict)
from repro.runner.pool import (
    JobOutcome, execute_job, run_jobs, sweep, sweep_grid, sweep_shapes)
from repro.runner.store import (
    ResultStore, default_cache_dir, register_sidecar, registered_sidecars,
    result_from_dict, result_to_dict)

__all__ = [
    "BACKEND_NAMES", "DEFAULT_SEED", "ExecutionBackend", "GRID_VERSION",
    "JobOutcome", "JobSpec", "PoolBackend", "ResultStore", "SerialBackend",
    "TcpBackend", "config_key", "default_cache_dir", "execute_job",
    "expand_grid", "register_sidecar", "registered_sidecars",
    "resolve_backend", "result_from_dict", "result_to_dict", "run_jobs",
    "spec_from_dict", "spec_to_dict", "sweep", "sweep_grid",
    "sweep_shapes", "validate_backend",
]

"""In-process serial execution — the deterministic reference backend."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.runner.backends.base import ExecutionBackend, NotifyFn
from repro.runner.jobs import JobSpec
from repro.runner.pool import JobOutcome, run_jobs


class SerialBackend(ExecutionBackend):
    """One cell at a time, in this process, in input order.

    The reference every other backend is measured (and bit-compared)
    against: no pool, no sockets, deterministic completion order.  It
    delegates to :func:`repro.runner.pool.run_jobs`'s serial path so
    the trace memo and timing bookkeeping stay identical to a
    ``jobs=1`` sweep.
    """

    name = "serial"

    def run_specs(self, specs: Sequence[JobSpec],
                  notify: Optional[NotifyFn] = None,
                  store_dir: Optional[str] = None,
                  retries: int = 1) -> List[JobOutcome]:
        return run_jobs(specs, jobs=1, retries=retries, notify=notify)

    def describe(self) -> str:
        return ("in-process, one cell at a time — the deterministic "
                "reference")

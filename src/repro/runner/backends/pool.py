"""Warm process-pool execution backend (the classic ``--jobs`` path)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.runner.backends.base import ExecutionBackend, NotifyFn
from repro.runner.jobs import JobSpec
from repro.runner.pool import JobOutcome, run_jobs


class PoolBackend(ExecutionBackend):
    """Shard cells across the persistent warm fork pool.

    A thin strategy wrapper over :func:`repro.runner.pool.run_jobs`:
    the pool itself (worker lifetime, trace prewarm, BrokenProcessPool
    degradation) is module-level machinery shared by every
    ``PoolBackend``, so resolving this backend repeatedly keeps
    reusing the same warm workers.
    """

    name = "pool"

    def __init__(self, jobs: int = 2) -> None:
        self.jobs = max(1, jobs)

    def run_specs(self, specs: Sequence[JobSpec],
                  notify: Optional[NotifyFn] = None,
                  store_dir: Optional[str] = None,
                  retries: int = 1) -> List[JobOutcome]:
        # Chunks amortize submission overhead and batch the workers'
        # store writes; small sweeps (tests, single cells) keep
        # per-cell tasks so progress granularity and retry isolation
        # are unchanged.
        chunk_size = 1
        if self.jobs > 1 and len(specs) > self.jobs * 4:
            chunk_size = min(4, len(specs) // (self.jobs * 2))
        return run_jobs(specs, jobs=self.jobs, retries=retries,
                        notify=notify, chunk_size=chunk_size,
                        store_dir=store_dir)

    def describe(self) -> str:
        return (f"persistent warm fork pool, {self.jobs} worker "
                f"process(es) on this host")

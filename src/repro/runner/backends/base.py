"""The execution-backend interface the sweep runner schedules through.

A backend executes a list of :class:`~repro.runner.jobs.JobSpec`s and
returns :class:`~repro.runner.pool.JobOutcome`s in input order; *how*
the cells run — in-process, across a warm fork pool, or on remote
machines over TCP — is the backend's business.  The store-cache layer
stays above the backend (:func:`repro.runner.pool.sweep` serves cached
cells from disk and persists anything the backend did not), so every
backend sees only the cells that actually need simulating.

Contract:

* ``run_specs`` returns outcomes **in input order** and, when
  ``notify`` is given, calls ``notify(index, outcome)`` as each cell
  completes (completion order, ``index`` into the input list).  The
  caller serializes on ``notify`` — backends must invoke it from one
  thread at a time.
* Results are **bit-identical across backends**: every backend runs
  the same deterministic simulation from the same spec, so the choice
  of backend can never change a result, only its wall-clock cost.
  (Backends therefore do *not* enter store keys.)
* ``store_dir``, when given, is the durable store's directory; a
  backend whose workers share the caller's filesystem may persist
  results itself and mark outcomes ``saved=True`` so the caller skips
  the duplicate write.
* ``close`` releases backend resources (sockets, worker processes).
  Backends created by :func:`repro.runner.backends.resolve_backend`
  from a *name* are closed by the sweep that resolved them; instances
  passed in by the caller stay open for reuse.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.runner.jobs import JobSpec
from repro.runner.pool import JobOutcome

#: ``notify(index, outcome)`` — fired per completed cell.
NotifyFn = Callable[[int, JobOutcome], None]


class ExecutionBackend:
    """Base class for sweep execution backends."""

    #: Registry name (``serial`` / ``pool`` / ``tcp``).
    name: str = "?"

    def run_specs(self, specs: Sequence[JobSpec],
                  notify: Optional[NotifyFn] = None,
                  store_dir: Optional[str] = None,
                  retries: int = 1) -> List[JobOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def describe(self) -> str:
        """One-line human description for ``python -m repro backends``."""
        return self.__class__.__doc__.strip().splitlines()[0]

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

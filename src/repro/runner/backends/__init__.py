"""Pluggable sweep execution backends.

Three implementations behind one interface
(:class:`~repro.runner.backends.base.ExecutionBackend`):

* ``serial`` — in-process, one cell at a time: the deterministic
  reference (:mod:`repro.runner.backends.serial`);
* ``pool``   — the persistent warm fork pool on this host
  (:mod:`repro.runner.backends.pool`);
* ``tcp``    — a multi-host work-stealing coordinator serving
  ``python -m repro worker`` processes over length-prefixed JSON
  (:mod:`repro.runner.backends.tcp`).

All three produce bit-identical results for the same specs (pinned by
``tests/test_backends.py``); the backend axis changes *where* cells
run, never *what* they compute — which is why it does not enter store
keys.  :func:`resolve_backend` is the single resolution point used by
:func:`repro.runner.pool.sweep` and the CLI's ``--backend`` flag;
:func:`validate_backend` gives misspellings the same difflib near-miss
treatment as the protocol/engine/scheduler axes.
"""

from __future__ import annotations

import difflib
import os
from typing import Optional, Tuple, Union

from repro.runner.backends.base import ExecutionBackend
from repro.runner.backends.pool import PoolBackend
from repro.runner.backends.serial import SerialBackend
from repro.runner.backends.tcp import TcpBackend

#: Registered backend names, in documentation order.
BACKEND_NAMES = ("serial", "pool", "tcp")


def validate_backend(name: str) -> str:
    """``name`` if registered, else a KeyError with near-miss hints."""
    if name in BACKEND_NAMES:
        return name
    close = difflib.get_close_matches(name, BACKEND_NAMES, n=1, cutoff=0.4)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    raise KeyError(f"unknown backend {name!r}; known backends: "
                   f"{', '.join(BACKEND_NAMES)}{hint}")


def resolve_backend(backend: Union[None, str, ExecutionBackend],
                    jobs: int = 1,
                    bind: Optional[Tuple[str, int]] = None,
                    ) -> Tuple[ExecutionBackend, bool]:
    """Resolve a backend selection to ``(backend, owned)``.

    ``None`` keeps the classic behaviour: ``serial`` when ``jobs <= 1``,
    the warm ``pool`` otherwise.  A string resolves by name (``pool``
    without a ``jobs`` hint sizes itself to the CPU count; ``tcp``
    binds ``bind`` or an ephemeral loopback port).  An
    :class:`ExecutionBackend` instance passes through untouched.

    ``owned`` tells the caller whether it must :meth:`close
    <repro.runner.backends.base.ExecutionBackend.close>` the backend
    when done — true only for backends this call created.
    """
    if isinstance(backend, ExecutionBackend):
        return backend, False
    if backend is None:
        if jobs <= 1:
            return SerialBackend(), True
        return PoolBackend(jobs), True
    name = validate_backend(str(backend))
    if name == "serial":
        return SerialBackend(), True
    if name == "pool":
        return PoolBackend(jobs if jobs > 1 else (os.cpu_count() or 2)), True
    host, port = bind if bind is not None else ("127.0.0.1", 0)
    return TcpBackend(host=host, port=port), True


def backend_matrix() -> list:
    """Rows for ``python -m repro backends``: (name, parallelism, how)."""
    return [
        ("serial", "1 (this process)",
         "deterministic reference; every other backend must match it "
         "bit-for-bit"),
        ("pool", "N worker processes (this host)",
         "persistent warm fork pool: trace prewarm, chunked store "
         "writes, BrokenProcessPool degradation to serial"),
        ("tcp", "any number of hosts",
         "work-stealing coordinator; workers connect with "
         "`python -m repro worker --connect HOST:PORT`, leases "
         "heartbeat and are reassigned on loss, no workers degrades "
         "to serial"),
    ]


__all__ = [
    "BACKEND_NAMES", "ExecutionBackend", "PoolBackend", "SerialBackend",
    "TcpBackend", "backend_matrix", "resolve_backend", "validate_backend",
]

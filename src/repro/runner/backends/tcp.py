"""Multi-host sweep execution: a TCP work-stealing coordinator.

The backend binds a socket and *serves* work: remote worker processes
(``python -m repro worker --connect HOST:PORT``) connect and **steal**
— each idle worker asks for a lease, receives a small batch of
:class:`~repro.runner.jobs.JobSpec`s as length-prefixed JSON (see
:mod:`repro.runner.backends.wire`), simulates them locally (rebuilding
the workload trace from the spec, exactly like a pool worker), and
streams the results back.  Pull-based stealing self-balances: fast
workers simply steal more often, so no placement decision is ever
made centrally.

Fault model — mirroring the pool backend's BrokenProcessPool
degradation ladder:

* **Leases, not assignments.**  Every grant carries a lease with a
  deadline; workers heartbeat while simulating.  A worker that stops
  heartbeating (hang, partition, OOM) has its lease expired, its
  connection fenced (closed — a fenced worker's late results are
  ignored), and its cells requeued for the next thief.
* **Worker death** (EOF/reset on the connection) requeues the
  worker's outstanding lease immediately.
* **Job errors** reported by a worker are retried on other workers up
  to the retry budget, then drain through the **serial fallback**: the
  coordinator simulates them in-process so a deterministic error
  surfaces with its real traceback.
* **No workers at all**: when nothing has connected within
  ``connect_grace`` seconds, the coordinator starts draining the queue
  serially itself — a sweep pointed at ``tcp`` with no fleet degrades
  to the serial backend instead of hanging, and late workers can still
  connect and steal whatever remains.

Results are bit-identical to the serial and pool backends by
construction (same specs, same deterministic simulation); the
coordinator persists nothing itself — remote workers cannot assume a
shared filesystem, so the sweep layer above saves cells as they are
notified.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runner.backends.base import ExecutionBackend, NotifyFn
from repro.runner.backends.wire import WireError, recv_msg, send_msg
from repro.runner.jobs import JobSpec, spec_to_dict
from repro.runner.pool import JobOutcome, _execute_timed
from repro.runner.store import result_from_dict

#: Default seconds a lease may go without a heartbeat before it is
#: expired and its cells are requeued.  Generous: a heartbeat thread
#: only has to get the GIL once per interval.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Default seconds to wait for a first worker before the coordinator
#: starts draining the queue serially itself.
DEFAULT_CONNECT_GRACE = 5.0


class _Conn:
    """One connected worker (shared between its reader thread and the
    coordinator): the socket, a send lock, and an identity label."""

    __slots__ = ("sock", "addr", "label", "send_lock", "fenced")

    def __init__(self, sock: socket.socket, addr) -> None:
        self.sock = sock
        self.addr = addr
        self.label = f"{addr[0]}:{addr[1]}"
        self.send_lock = threading.Lock()
        self.fenced = False

    def send(self, obj: dict) -> None:
        with self.send_lock:
            send_msg(self.sock, obj)

    def fence(self) -> None:
        """Cut the connection; a fenced worker's late frames are lost
        with it, so an expired lease can never race its requeue."""
        self.fenced = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _Lease:
    __slots__ = ("lease_id", "indices", "conn", "deadline")

    def __init__(self, lease_id: int, indices: List[int], conn: _Conn,
                 deadline: float) -> None:
        self.lease_id = lease_id
        self.indices = indices
        self.conn = conn
        self.deadline = deadline


class TcpBackend(ExecutionBackend):
    """Coordinator for ``python -m repro worker`` processes over TCP."""

    name = "tcp"

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 lease_size: int = 1,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 connect_grace: float = DEFAULT_CONNECT_GRACE) -> None:
        self.host = host
        self.port = port
        self.lease_size = max(1, lease_size)
        self.lease_timeout = lease_timeout
        self.connect_grace = connect_grace
        self.address: Optional[Tuple[str, int]] = None

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._closing = False
        self._conns: List[_Conn] = []
        self._lease_seq = 0

        # Per-run state (valid while _active).
        self._active = False
        self._specs: List[JobSpec] = []
        self._pending: deque = deque()
        self._serial_only: deque = deque()
        self._done: List[bool] = []
        self._attempts: List[int] = []
        self._retries = 1
        self._leases: Dict[int, _Lease] = {}
        self._inbox: List[Tuple[int, dict]] = []

        #: Observability counters (cumulative across runs).
        self.stats = {
            "workers_connected": 0,
            "leases_granted": 0,
            "leases_reassigned": 0,
            "worker_errors": 0,
            "worker_cells": 0,
            "serial_cells": 0,
        }

    # -- socket plumbing ---------------------------------------------------
    def listen(self) -> Tuple[str, int]:
        """Bind and start accepting workers; returns ``(host, port)``.

        Idempotent — ``run_specs`` calls it too, but tests and the CLI
        call it first so the bound (possibly ephemeral) port is known
        before any worker is spawned.
        """
        with self._lock:
            if self._listener is not None:
                return self.address
            if self._closing:
                raise RuntimeError("backend is closed")
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(16)
            self._listener = listener
            self.address = listener.getsockname()[:2]
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-tcp-accept",
                daemon=True)
            self._accept_thread.start()
            return self.address

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return               # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Conn(sock, addr)
            with self._cond:
                if self._closing:
                    conn.fence()
                    return
                self._conns.append(conn)
                self.stats["workers_connected"] += 1
                self._cond.notify_all()
            threading.Thread(target=self._serve_conn, args=(conn,),
                             name=f"repro-tcp-{conn.label}",
                             daemon=True).start()

    def _serve_conn(self, conn: _Conn) -> None:
        try:
            while True:
                msg = recv_msg(conn.sock)
                if msg is None:
                    return
                kind = msg.get("type")
                if kind == "hello":
                    conn.label = str(msg.get("worker", conn.label))
                elif kind == "steal":
                    self._handle_steal(conn)
                elif kind == "heartbeat":
                    self._handle_heartbeat(conn, msg)
                elif kind == "done":
                    self._handle_done(conn, msg)
                elif kind == "error":
                    self._handle_error(conn, msg)
                # Unknown types are ignored (forward compatibility).
        except (WireError, OSError):
            pass
        finally:
            with self._cond:
                if conn in self._conns:
                    self._conns.remove(conn)
                self._drop_conn_leases(conn)
                self._cond.notify_all()
            conn.fence()

    # -- message handlers (run on connection threads) ----------------------
    def _handle_steal(self, conn: _Conn) -> None:
        with self._cond:
            if self._closing:
                reply = {"type": "shutdown"}
            else:
                batch: List[int] = []
                while (self._active and self._pending
                       and len(batch) < self.lease_size):
                    index = self._pending.popleft()
                    if not self._done[index]:
                        batch.append(index)
                if batch:
                    self._lease_seq += 1
                    lease = _Lease(self._lease_seq, batch, conn,
                                   time.monotonic() + self.lease_timeout)
                    self._leases[lease.lease_id] = lease
                    for index in batch:
                        self._attempts[index] += 1
                    self.stats["leases_granted"] += 1
                    reply = {
                        "type": "lease",
                        "lease_id": lease.lease_id,
                        "heartbeat_seconds": max(
                            0.05, min(self.lease_timeout / 3.0, 5.0)),
                        "specs": [spec_to_dict(self._specs[i])
                                  for i in batch],
                    }
                else:
                    reply = {"type": "wait", "seconds": 0.05}
        conn.send(reply)

    def _handle_heartbeat(self, conn: _Conn, msg: dict) -> None:
        with self._cond:
            lease = self._leases.get(msg.get("lease_id"))
            if lease is not None and lease.conn is conn:
                lease.deadline = time.monotonic() + self.lease_timeout

    def _handle_done(self, conn: _Conn, msg: dict) -> None:
        with self._cond:
            lease = self._leases.pop(msg.get("lease_id"), None)
            if lease is None or lease.conn is not conn:
                return               # expired/fenced lease: results lost
            results = msg.get("results", [])
            for index, payload in zip(lease.indices, results):
                if not self._done[index]:
                    self._done[index] = True
                    self._inbox.append((index, payload))
                    self.stats["worker_cells"] += 1
            self._cond.notify_all()

    def _handle_error(self, conn: _Conn, msg: dict) -> None:
        with self._cond:
            lease = self._leases.pop(msg.get("lease_id"), None)
            if lease is None:
                return
            self.stats["worker_errors"] += 1
            self._requeue(lease.indices)
            self._cond.notify_all()

    # -- lease bookkeeping (lock held) -------------------------------------
    def _requeue(self, indices: Sequence[int]) -> None:
        for index in indices:
            if self._done[index]:
                continue
            if self._attempts[index] > self._retries:
                self._serial_only.append(index)
            else:
                self._pending.append(index)

    def _drop_conn_leases(self, conn: _Conn) -> None:
        lost = [lease for lease in self._leases.values()
                if lease.conn is conn]
        for lease in lost:
            del self._leases[lease.lease_id]
            self.stats["leases_reassigned"] += 1
            self._requeue(lease.indices)

    def _expire_leases(self, now: float) -> None:
        expired = [lease for lease in self._leases.values()
                   if lease.deadline < now]
        for lease in expired:
            del self._leases[lease.lease_id]
            self.stats["leases_reassigned"] += 1
            self._requeue(lease.indices)
            # Fence the worker: whatever it eventually sends for this
            # (or any other) lease must not race the reassignment.
            if lease.conn in self._conns:
                self._conns.remove(lease.conn)
            lease.conn.fence()

    # -- the coordinator loop ----------------------------------------------
    def run_specs(self, specs: Sequence[JobSpec],
                  notify: Optional[NotifyFn] = None,
                  store_dir: Optional[str] = None,
                  retries: int = 1) -> List[JobOutcome]:
        self.listen()
        specs = list(specs)
        outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
        finished = 0

        def finish(index: int, result, elapsed: float, attempts: int,
                   build_seconds: float) -> None:
            nonlocal finished
            outcomes[index] = JobOutcome(
                specs[index], result, elapsed, attempts,
                from_cache=False, build_seconds=build_seconds)
            finished += 1
            if notify is not None:
                notify(index, outcomes[index])

        with self._cond:
            if self._active:
                raise RuntimeError("run_specs is not reentrant")
            self._active = True
            self._specs = specs
            self._pending = deque(range(len(specs)))
            self._serial_only = deque()
            self._done = [False] * len(specs)
            self._attempts = [0] * len(specs)
            self._retries = retries
            self._leases = {}
            self._inbox = []
            self._cond.notify_all()

        start = time.monotonic()
        try:
            while finished < len(specs):
                payloads: List[Tuple[int, dict]] = []
                serial_index: Optional[int] = None
                with self._cond:
                    if self._inbox:
                        payloads, self._inbox = self._inbox, []
                    now = time.monotonic()
                    self._expire_leases(now)
                    if self._serial_only:
                        serial_index = self._serial_only.popleft()
                        self._done[serial_index] = True
                    elif (self._pending and not self._conns
                          and now > start + self.connect_grace):
                        # Serial fallback: no fleet — drain in-process.
                        while self._pending:
                            index = self._pending.popleft()
                            if not self._done[index]:
                                serial_index = index
                                self._done[index] = True
                                break
                    if not payloads and serial_index is None:
                        self._cond.wait(timeout=0.05)
                # Outside the lock: decode results, run fallbacks and
                # fire notify — all from this one thread, so callers
                # never see concurrent notifications.
                for index, payload in payloads:
                    finish(index, result_from_dict(payload["result"]),
                           payload.get("sim_seconds", 0.0),
                           self._attempts[index],
                           payload.get("build_seconds", 0.0))
                if serial_index is not None:
                    result, sim_s, build_s = _execute_timed(
                        specs[serial_index])
                    self.stats["serial_cells"] += 1
                    finish(serial_index, result, sim_s,
                           self._attempts[serial_index] + 1, build_s)
        finally:
            with self._cond:
                self._active = False
                self._specs = []
                self._pending.clear()
                self._serial_only.clear()
                self._leases.clear()
                self._inbox.clear()
        return outcomes  # type: ignore[return-value]

    # -- lifecycle ---------------------------------------------------------
    def workers(self) -> int:
        """Currently connected worker count."""
        with self._lock:
            return len(self._conns)

    def wait_for_workers(self, count: int, timeout: float = 10.0) -> int:
        """Block until ``count`` workers are connected (or timeout);
        returns the connected count."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while (len(self._conns) < count
                   and time.monotonic() < deadline):
                self._cond.wait(timeout=0.05)
            return len(self._conns)

    def close(self) -> None:
        with self._cond:
            if self._closing:
                return
            self._closing = True
            conns = list(self._conns)
            self._conns.clear()
            listener = self._listener
            self._listener = None
        for conn in conns:
            try:
                conn.send({"type": "shutdown"})
            except OSError:
                pass
            conn.fence()
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)

    def describe(self) -> str:
        where = (f"{self.address[0]}:{self.address[1]}" if self.address
                 else f"{self.host}:{self.port}")
        return (f"multi-host work-stealing coordinator on {where} "
                f"(workers: python -m repro worker --connect {where})")

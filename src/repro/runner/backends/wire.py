"""Length-prefixed JSON framing for the TCP work-stealing backend.

One frame is a 4-byte big-endian payload length followed by a UTF-8
JSON document.  JSON (rather than pickle) keeps the wire format
language-agnostic and makes a hostile or confused peer a parse error
instead of arbitrary code execution; the specs and results that cross
it already have exact dict codecs (:func:`repro.runner.jobs.spec_to_dict`,
:func:`repro.runner.store.result_to_dict`), so nothing is lost to the
encoding.

``recv_msg`` returns ``None`` on a clean EOF at a frame boundary and
raises :class:`WireError` on a truncated frame or an oversized length
prefix — the coordinator treats both as a lost worker.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

#: Upper bound on one frame's payload.  A lease of tiny-grid results is
#: a few hundred KB; anything beyond this is a corrupt or hostile peer.
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class WireError(ConnectionError):
    """A frame could not be read or decoded."""


def send_msg(sock: socket.socket, obj: dict) -> None:
    """Send one framed JSON message (blocking)."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Exactly ``count`` bytes, ``None`` on EOF before the first byte."""
    chunks = []
    got = 0
    while got < count:
        chunk = sock.recv(count - got)
        if not chunk:
            if got == 0:
                return None
            raise WireError(f"connection closed mid-frame "
                            f"({got}/{count} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> Optional[dict]:
    """Receive one framed JSON message; ``None`` on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"frame length {length} exceeds the "
                        f"{MAX_FRAME}-byte cap")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise WireError("connection closed between header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise WireError("frame is not a typed message object")
    return message

"""Sharded sweep execution over a persistent warm process pool.

The sweep is embarrassingly parallel: every (workload, protocol) cell is
an independent pure-Python simulation.  :func:`run_jobs` fans
:class:`~repro.runner.jobs.JobSpec`s out to ``multiprocessing`` workers
— only the small specs cross the pipe; workers rebuild workload traces
locally (generators are seeded, so every rebuild is bit-identical) and
memoize them per process.

Warm workers: the pool is a module-level singleton that survives across
:func:`run_jobs`/:func:`sweep` calls instead of being torn down per
call, so worker-side state — the workload-trace memo, the compiled
protocol tables, every imported module — stays warm from one sweep to
the next.  On platforms with the ``fork`` start method the parent
additionally pre-builds the sweep's traces *before* forking, so every
worker starts with the traces already shared copy-on-write rather than
re-building them per process.  :func:`shutdown_pool` releases the
workers explicitly (tests, benchmarks measuring cold starts).

Store write batching: when a sweep runs against the durable store,
cells are submitted in small contiguous chunks and each worker persists
its chunk's results itself in one batch before returning — the parent
no longer serializes every store write between completions, it only
writes cells that ran serially.

Crash handling: a worker dying (OOM-kill, segfaulting C extension,
interpreter abort) breaks the pool and fails every in-flight future.
The broken pool is discarded, failed cells are retried in a fresh pool
(chunks degrade to single cells on retry, isolating the poison cell),
and whatever still fails after the retry budget runs serially in the
parent as a last resort, so a sweep either completes every cell or
raises the underlying error.

:func:`sweep` layers the durable result store on top; :func:`sweep_grid`
returns the classic ``grid[workload][protocol]`` mapping the analysis
and figure code consume.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import ScaleConfig, SystemConfig
from repro.core.simulator import simulate
from repro.core.stats import RunResult
from repro.runner.jobs import DEFAULT_SEED, JobSpec, expand_grid
from repro.runner.store import ResultStore
from repro.workloads import build_workload

Grid = Dict[str, Dict[str, RunResult]]

#: Called after each finished cell: ``progress(outcome, done, total)``.
ProgressFn = Callable[["JobOutcome", int, int], None]


@dataclass
class JobOutcome:
    """One completed cell: its result plus execution metadata."""

    spec: JobSpec
    result: RunResult
    elapsed: float        # seconds spent simulating (0.0 if from cache)
    attempts: int         # pool submissions consumed (0 if from cache)
    from_cache: bool
    build_seconds: float = 0.0   # trace build time (0.0 = memo-warm)
    saved: bool = False          # already durable (worker-side/cache)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process memo of built workload traces, keyed by
#: (name, scale, num_cores, seed) — the complete build input.  Specs
#: arrive workload-major then shape-major, so all protocol cells of one
#: (workload, shape) share a single build; a small LRU (rather than a
#: single slot) keeps neighbouring shapes warm when completion order
#: interleaves cells, without pinning unbounded trace memory.  In the
#: parent the same memo doubles as the fork-time prewarm source: traces
#: built before pool creation are inherited copy-on-write by every
#: worker.
_WORKLOAD_MEMO: "dict" = {}
_WORKLOAD_MEMO_MAX = 8


def _timed_workload(name: str, scale: ScaleConfig, num_cores: int,
                    seed: int):
    """The memoized workload plus the seconds spent building it
    (0.0 on a memo hit)."""
    key = (name, scale, num_cores, seed)
    workload = _WORKLOAD_MEMO.get(key)
    if workload is not None:
        # Refresh LRU position (dicts preserve insertion order).
        _WORKLOAD_MEMO.pop(key)
        _WORKLOAD_MEMO[key] = workload
        return workload, 0.0
    start = time.perf_counter()
    while len(_WORKLOAD_MEMO) >= _WORKLOAD_MEMO_MAX:
        _WORKLOAD_MEMO.pop(next(iter(_WORKLOAD_MEMO)))
    workload = build_workload(name, scale, num_cores=num_cores, seed=seed)
    _WORKLOAD_MEMO[key] = workload
    return workload, time.perf_counter() - start


def _cached_workload(name: str, scale: ScaleConfig, num_cores: int,
                     seed: int):
    return _timed_workload(name, scale, num_cores, seed)[0]


def _execute_timed(spec: JobSpec) -> Tuple[RunResult, float, float]:
    """Simulate one cell; returns (result, sim_seconds, build_seconds)."""
    workload, build_s = _timed_workload(spec.workload, spec.scale,
                                        spec.config.num_tiles, spec.seed)
    start = time.perf_counter()
    result = simulate(workload, spec.protocol, spec.config)
    return result, time.perf_counter() - start, build_s


def execute_job(spec: JobSpec) -> Tuple[RunResult, float]:
    """Simulate one cell; returns the result and its wall-clock time
    (trace build included, the historical contract of this entry)."""
    start = time.perf_counter()
    result, _sim_s, _build_s = _execute_timed(spec)
    return result, time.perf_counter() - start


def _execute_chunk(specs: Sequence[JobSpec],
                   store_dir: Optional[str]) -> List[tuple]:
    """Worker task: simulate a chunk of cells, then persist the whole
    chunk's results in one batch (when a store directory is given)."""
    out = []
    for spec in specs:
        out.append(_execute_timed(spec))
    if store_dir is not None:
        store = ResultStore(store_dir)
        for spec, (result, _sim_s, _build_s) in zip(specs, out):
            store.save(result, spec.store_key())
    return out


def _worker_init() -> None:
    # Pay the import cost at worker start, not inside the first cell.
    # Under the fork start method everything is inherited and this is a
    # no-op; under spawn it front-loads the heavy imports.
    import repro.core.simulator  # noqa: F401
    import repro.engine.compiled  # noqa: F401


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

def _pool_context():
    # fork keeps workers warm (parent memory, including pre-built
    # traces, is shared copy-on-write) and is available on every POSIX
    # platform; fall back to the default (spawn) elsewhere.
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def shutdown_pool() -> None:
    """Release the persistent worker pool (idempotent).

    The pool otherwise lives until interpreter exit so consecutive
    sweeps reuse warm workers; call this to measure cold starts or to
    free the worker processes early.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def _prewarm_traces(specs: Sequence[JobSpec]) -> int:
    """Build the distinct workload traces of ``specs`` into the memo.

    Returns the number of traces built.  The loop counts *distinct memo
    keys*, not scanned specs: a workload-major spec list repeats one
    key for every protocol cell, so counting specs used to exhaust the
    budget on the first workload's cells and leave later workloads'
    traces cold.  Building stops once the memo is full — a further
    build would evict a trace just prewarmed.
    """
    built = 0
    for spec in specs:
        key = (spec.workload, spec.scale, spec.config.num_tiles,
               spec.seed)
        if key in _WORKLOAD_MEMO:
            continue
        if len(_WORKLOAD_MEMO) >= _WORKLOAD_MEMO_MAX:
            break                # memo full; don't thrash the LRU
        _timed_workload(*key)
        built += 1
    return built


def _warm_pool(workers: int,
               specs: Sequence[JobSpec] = ()) -> ProcessPoolExecutor:
    """The persistent pool, created (and trace-prewarmed) on demand.

    An existing pool is reused when it has at least ``workers`` workers;
    a larger request replaces it.  On creation with the fork start
    method, the distinct workload traces of ``specs`` are built in the
    parent first so every forked worker starts warm, sharing the trace
    pages copy-on-write instead of rebuilding per process.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS >= workers:
        return _POOL
    shutdown_pool()
    ctx = _pool_context()
    if ctx.get_start_method() == "fork":
        _prewarm_traces(specs)
    _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=ctx,
                                initializer=_worker_init)
    _POOL_WORKERS = workers
    return _POOL


def run_jobs(specs: Sequence[JobSpec],
             jobs: int = 1,
             retries: int = 1,
             notify: Optional[Callable[[int, JobOutcome], None]] = None,
             chunk_size: int = 1,
             store_dir: Optional[str] = None,
             ) -> List[JobOutcome]:
    """Execute every spec, returning outcomes in input order.

    ``jobs <= 1`` runs serially in-process (no pool, deterministic
    ordering — the reference path).  ``notify(index, outcome)``, when
    given, fires as each cell completes (completion order).

    ``chunk_size > 1`` submits contiguous runs of specs as one pool
    task: the worker simulates the whole chunk (sharing its memoized
    trace) and, when ``store_dir`` is given, persists the chunk's
    results itself in one batch — those outcomes come back with
    ``saved=True``.  Retry rounds degrade to single-cell tasks so one
    poison cell cannot take healthy neighbours down with it.
    """
    specs = list(specs)
    outcomes: List[Optional[JobOutcome]] = [None] * len(specs)

    def finish(index: int, result: RunResult, elapsed: float,
               attempts: int, build_seconds: float = 0.0,
               saved: bool = False) -> None:
        outcomes[index] = JobOutcome(specs[index], result, elapsed,
                                     attempts, from_cache=False,
                                     build_seconds=build_seconds,
                                     saved=saved)
        if notify is not None:
            notify(index, outcomes[index])

    if jobs <= 1 or len(specs) <= 1:
        try:
            for i, spec in enumerate(specs):
                result, elapsed, build_s = _execute_timed(spec)
                finish(i, result, elapsed, attempts=1,
                       build_seconds=build_s)
        finally:
            # The memo exists to keep pool *workers* warm; don't pin a
            # full workload trace in the parent after a serial sweep.
            if _POOL is None:
                _WORKLOAD_MEMO.clear()
        return outcomes  # type: ignore[return-value]

    remaining: List[int] = list(range(len(specs)))
    attempts = [0] * len(specs)
    for _round in range(retries + 1):
        if not remaining:
            break
        failed: List[int] = []
        workers = min(jobs, len(remaining))
        ex = _warm_pool(workers, [specs[i] for i in remaining])
        csize = max(1, chunk_size) if _round == 0 else 1
        chunks = [remaining[k:k + csize]
                  for k in range(0, len(remaining), csize)]
        futures = {
            ex.submit(_execute_chunk, [specs[i] for i in chunk],
                      store_dir): chunk
            for chunk in chunks}
        broken = False
        for future in as_completed(futures):
            chunk = futures[future]
            for i in chunk:
                attempts[i] += 1
            try:
                results = future.result()
            except BrokenProcessPool:
                broken = True
                failed.extend(chunk)
            except Exception:
                # Job error — queue for the next round / serial
                # fallback.
                failed.extend(chunk)
            else:
                for i, (result, elapsed, build_s) in zip(chunk, results):
                    finish(i, result, elapsed, attempts[i],
                           build_seconds=build_s,
                           saved=store_dir is not None)
        if broken:
            # A dead worker poisons the whole executor; replace it.
            shutdown_pool()
        remaining = failed

    # Last resort: run stragglers in-process so a deterministic job
    # error surfaces with its real traceback.
    try:
        for i in remaining:
            result, elapsed, build_s = _execute_timed(specs[i])
            finish(i, result, elapsed, attempts[i] + 1,
                   build_seconds=build_s)
    finally:
        if _POOL is None:
            _WORKLOAD_MEMO.clear()
    return outcomes  # type: ignore[return-value]


def sweep(specs: Sequence[JobSpec],
          jobs: int = 1,
          store: Optional[ResultStore] = None,
          use_cache: bool = True,
          retries: int = 1,
          progress: Optional[ProgressFn] = None,
          backend=None) -> List[JobOutcome]:
    """Run a sweep against the durable store.

    Cells already in the store are served from disk; the rest execute
    through an :mod:`execution backend <repro.runner.backends>` —
    ``backend`` is a backend name (``serial``/``pool``/``tcp``), an
    :class:`~repro.runner.backends.base.ExecutionBackend` instance, or
    ``None`` for the classic behaviour (``serial`` when ``jobs <= 1``,
    the warm process ``pool`` otherwise).  Any cell the backend did not
    persist itself is persisted here as it completes.  With
    ``use_cache=False`` nothing is read from or written to disk.
    """
    from repro.runner.backends import resolve_backend

    specs = list(specs)
    store = store if store is not None else ResultStore()
    outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
    total = len(specs)
    done = 0

    def report(outcome: JobOutcome) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    pending: List[int] = []
    for i, spec in enumerate(specs):
        cached = (store.load(spec.workload, spec.protocol, spec.store_key())
                  if use_cache else None)
        if cached is not None:
            outcomes[i] = JobOutcome(spec, cached, 0.0, 0, from_cache=True,
                                     saved=True)
            report(outcomes[i])
        else:
            pending.append(i)

    def notify(pending_index: int, outcome: JobOutcome) -> None:
        i = pending[pending_index]
        if use_cache and not outcome.saved:
            store.save(outcome.result, outcome.spec.store_key())
        outcomes[i] = outcome
        report(outcome)

    exec_backend, owned = resolve_backend(backend, jobs=jobs)
    try:
        exec_backend.run_specs(
            [specs[i] for i in pending], notify=notify, retries=retries,
            store_dir=os.fspath(store.directory) if use_cache else None)
    finally:
        if owned:
            exec_backend.close()
    return outcomes  # type: ignore[return-value]


def sweep_grid(workloads: Optional[Sequence[str]] = None,
               protocols: Optional[Sequence[str]] = None,
               scale: Optional[ScaleConfig] = None,
               config: Optional[SystemConfig] = None,
               seed: int = DEFAULT_SEED,
               jobs: int = 1,
               store: Optional[ResultStore] = None,
               use_cache: bool = True,
               retries: int = 1,
               progress: Optional[ProgressFn] = None,
               backend=None) -> Grid:
    """Sweep the (workload x protocol) grid; returns paper-order results.

    Drop-in data source for the figure/report renderers:
    ``grid[workload][protocol] -> RunResult``.  One machine shape per
    call (the config's); use :func:`sweep_shapes` for a tiles axis.
    """
    specs = expand_grid(workloads, protocols, scale, config, seed=seed)
    outcomes = sweep(specs, jobs=jobs, store=store, use_cache=use_cache,
                     retries=retries, progress=progress, backend=backend)
    grid: Grid = {}
    for outcome in outcomes:
        grid.setdefault(outcome.spec.workload, {})[
            outcome.spec.protocol] = outcome.result
    return grid


def sweep_shapes(tiles: Sequence[int],
                 workloads: Optional[Sequence[str]] = None,
                 protocols: Optional[Sequence[str]] = None,
                 scale: Optional[ScaleConfig] = None,
                 config: Optional[SystemConfig] = None,
                 seed: int = DEFAULT_SEED,
                 jobs: int = 1,
                 store: Optional[ResultStore] = None,
                 use_cache: bool = True,
                 retries: int = 1,
                 progress: Optional[ProgressFn] = None,
                 backend=None,
                 ) -> Dict[int, Grid]:
    """Sweep the (workload x shape x protocol) grid over a tiles axis.

    Returns ``shapes[num_tiles][workload][protocol] -> RunResult`` in
    the order the ``tiles`` axis was given — the data source for the
    core-count scaling figure (:mod:`repro.analysis.scaling`).
    """
    specs = expand_grid(workloads, protocols, scale, config, seed=seed,
                        tiles=tiles)
    outcomes = sweep(specs, jobs=jobs, store=store, use_cache=use_cache,
                     retries=retries, progress=progress, backend=backend)
    shapes: Dict[int, Grid] = {}
    for outcome in outcomes:
        spec = outcome.spec
        shapes.setdefault(spec.num_tiles, {}).setdefault(
            spec.workload, {})[spec.protocol] = outcome.result
    return shapes

"""Sharded sweep execution over a process pool.

The sweep is embarrassingly parallel: every (workload, protocol) cell is
an independent pure-Python simulation.  :func:`run_jobs` fans
:class:`~repro.runner.jobs.JobSpec`s out to ``multiprocessing`` workers
— only the small specs cross the pipe; each worker rebuilds the workload
trace locally (generators are seeded, so every rebuild is bit-identical)
and memoizes it so consecutive protocol cells of one workload landing in
the same process share a single build.

Crash handling: a worker dying (OOM-kill, segfaulting C extension,
interpreter abort) breaks the pool and fails every in-flight future.
Failed cells are retried in a fresh pool, and whatever still fails after
the retry budget runs serially in the parent as a last resort, so a
sweep either completes every cell or raises the underlying error.

:func:`sweep` layers the durable result store on top; :func:`sweep_grid`
returns the classic ``grid[workload][protocol]`` mapping the analysis
and figure code consume.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import ScaleConfig, SystemConfig
from repro.core.simulator import simulate
from repro.core.stats import RunResult
from repro.runner.jobs import DEFAULT_SEED, JobSpec, expand_grid
from repro.runner.store import ResultStore
from repro.workloads import build_workload

Grid = Dict[str, Dict[str, RunResult]]

#: Called after each finished cell: ``progress(outcome, done, total)``.
ProgressFn = Callable[["JobOutcome", int, int], None]


@dataclass
class JobOutcome:
    """One completed cell: its result plus execution metadata."""

    spec: JobSpec
    result: RunResult
    elapsed: float        # seconds spent simulating (0.0 if from cache)
    attempts: int         # pool submissions consumed (0 if from cache)
    from_cache: bool


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process memo of built workload traces, keyed by
#: (name, scale, num_cores, seed) — the complete build input.  Specs
#: arrive workload-major then shape-major, so all protocol cells of one
#: (workload, shape) share a single build; a small LRU (rather than a
#: single slot) keeps neighbouring shapes warm when completion order
#: interleaves cells, without pinning unbounded trace memory.
_WORKLOAD_MEMO: "dict" = {}
_WORKLOAD_MEMO_MAX = 4


def _cached_workload(name: str, scale: ScaleConfig, num_cores: int,
                     seed: int):
    key = (name, scale, num_cores, seed)
    workload = _WORKLOAD_MEMO.get(key)
    if workload is None:
        while len(_WORKLOAD_MEMO) >= _WORKLOAD_MEMO_MAX:
            _WORKLOAD_MEMO.pop(next(iter(_WORKLOAD_MEMO)))
        workload = build_workload(name, scale, num_cores=num_cores,
                                  seed=seed)
        _WORKLOAD_MEMO[key] = workload
    else:
        # Refresh LRU position (dicts preserve insertion order).
        _WORKLOAD_MEMO.pop(key)
        _WORKLOAD_MEMO[key] = workload
    return workload


def execute_job(spec: JobSpec) -> Tuple[RunResult, float]:
    """Simulate one cell; returns the result and its wall-clock time."""
    start = time.perf_counter()
    workload = _cached_workload(spec.workload, spec.scale,
                                spec.config.num_tiles, spec.seed)
    result = simulate(workload, spec.protocol, spec.config)
    return result, time.perf_counter() - start


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

def _pool_context():
    # fork keeps workers warm (no re-import) and is available on every
    # POSIX platform; fall back to the default (spawn) elsewhere.
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_jobs(specs: Sequence[JobSpec],
             jobs: int = 1,
             retries: int = 1,
             notify: Optional[Callable[[int, JobOutcome], None]] = None,
             ) -> List[JobOutcome]:
    """Execute every spec, returning outcomes in input order.

    ``jobs <= 1`` runs serially in-process (no pool, deterministic
    ordering — the reference path).  ``notify(index, outcome)``, when
    given, fires as each cell completes (completion order).
    """
    specs = list(specs)
    outcomes: List[Optional[JobOutcome]] = [None] * len(specs)

    def finish(index: int, result: RunResult, elapsed: float,
               attempts: int) -> None:
        outcomes[index] = JobOutcome(specs[index], result, elapsed,
                                     attempts, from_cache=False)
        if notify is not None:
            notify(index, outcomes[index])

    if jobs <= 1 or len(specs) <= 1:
        try:
            for i, spec in enumerate(specs):
                result, elapsed = execute_job(spec)
                finish(i, result, elapsed, attempts=1)
        finally:
            # The memo exists to keep pool *workers* warm; don't pin a
            # full workload trace in the parent after a serial sweep.
            _WORKLOAD_MEMO.clear()
        return outcomes  # type: ignore[return-value]

    ctx = _pool_context()
    remaining: List[int] = list(range(len(specs)))
    attempts = [0] * len(specs)
    for _round in range(retries + 1):
        if not remaining:
            break
        failed: List[int] = []
        workers = min(jobs, len(remaining))
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as ex:
            futures = {ex.submit(execute_job, specs[i]): i for i in remaining}
            for future in as_completed(futures):
                i = futures[future]
                attempts[i] += 1
                try:
                    result, elapsed = future.result()
                except Exception:
                    # Worker crash (BrokenProcessPool) or job error —
                    # queue for the next round / serial fallback.
                    failed.append(i)
                else:
                    finish(i, result, elapsed, attempts[i])
        remaining = failed

    # Last resort: run stragglers in-process so a deterministic job
    # error surfaces with its real traceback.
    try:
        for i in remaining:
            result, elapsed = execute_job(specs[i])
            finish(i, result, elapsed, attempts[i] + 1)
    finally:
        _WORKLOAD_MEMO.clear()
    return outcomes  # type: ignore[return-value]


def sweep(specs: Sequence[JobSpec],
          jobs: int = 1,
          store: Optional[ResultStore] = None,
          use_cache: bool = True,
          retries: int = 1,
          progress: Optional[ProgressFn] = None) -> List[JobOutcome]:
    """Run a sweep against the durable store.

    Cells already in the store are served from disk; the rest are
    sharded across ``jobs`` workers and persisted as they complete.
    With ``use_cache=False`` nothing is read from or written to disk.
    """
    specs = list(specs)
    store = store if store is not None else ResultStore()
    outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
    total = len(specs)
    done = 0

    def report(outcome: JobOutcome) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    pending: List[int] = []
    for i, spec in enumerate(specs):
        cached = (store.load(spec.workload, spec.protocol, spec.store_key())
                  if use_cache else None)
        if cached is not None:
            outcomes[i] = JobOutcome(spec, cached, 0.0, 0, from_cache=True)
            report(outcomes[i])
        else:
            pending.append(i)

    def notify(pending_index: int, outcome: JobOutcome) -> None:
        i = pending[pending_index]
        if use_cache:
            store.save(outcome.result, outcome.spec.store_key())
        outcomes[i] = outcome
        report(outcome)

    run_jobs([specs[i] for i in pending], jobs=jobs, retries=retries,
             notify=notify)
    return outcomes  # type: ignore[return-value]


def sweep_grid(workloads: Optional[Sequence[str]] = None,
               protocols: Optional[Sequence[str]] = None,
               scale: Optional[ScaleConfig] = None,
               config: Optional[SystemConfig] = None,
               seed: int = DEFAULT_SEED,
               jobs: int = 1,
               store: Optional[ResultStore] = None,
               use_cache: bool = True,
               retries: int = 1,
               progress: Optional[ProgressFn] = None) -> Grid:
    """Sweep the (workload x protocol) grid; returns paper-order results.

    Drop-in data source for the figure/report renderers:
    ``grid[workload][protocol] -> RunResult``.  One machine shape per
    call (the config's); use :func:`sweep_shapes` for a tiles axis.
    """
    specs = expand_grid(workloads, protocols, scale, config, seed=seed)
    outcomes = sweep(specs, jobs=jobs, store=store, use_cache=use_cache,
                     retries=retries, progress=progress)
    grid: Grid = {}
    for outcome in outcomes:
        grid.setdefault(outcome.spec.workload, {})[
            outcome.spec.protocol] = outcome.result
    return grid


def sweep_shapes(tiles: Sequence[int],
                 workloads: Optional[Sequence[str]] = None,
                 protocols: Optional[Sequence[str]] = None,
                 scale: Optional[ScaleConfig] = None,
                 config: Optional[SystemConfig] = None,
                 seed: int = DEFAULT_SEED,
                 jobs: int = 1,
                 store: Optional[ResultStore] = None,
                 use_cache: bool = True,
                 retries: int = 1,
                 progress: Optional[ProgressFn] = None,
                 ) -> Dict[int, Grid]:
    """Sweep the (workload x shape x protocol) grid over a tiles axis.

    Returns ``shapes[num_tiles][workload][protocol] -> RunResult`` in
    the order the ``tiles`` axis was given — the data source for the
    core-count scaling figure (:mod:`repro.analysis.scaling`).
    """
    specs = expand_grid(workloads, protocols, scale, config, seed=seed,
                        tiles=tiles)
    outcomes = sweep(specs, jobs=jobs, store=store, use_cache=use_cache,
                     retries=retries, progress=progress)
    shapes: Dict[int, Grid] = {}
    for outcome in outcomes:
        spec = outcome.spec
        shapes.setdefault(spec.num_tiles, {}).setdefault(
            spec.workload, {})[spec.protocol] = outcome.result
    return shapes

"""Shared coherence-kernel machinery (the hierarchy layer).

:class:`CoherenceKernel` owns everything a protocol core needs
regardless of its coherence policy:

* the L1 and L2 tag+state arrays (one :class:`SetAssocCache` per tile,
  with the L2 slices shifting out the home-interleaving bits);
* the transaction lifecycle around L1 fills: way reservation,
  eviction-protection of lines with in-flight requests, and
  unprotected-victim selection;
* retire hooks — callbacks cores register to be woken after the next
  store retirement (store-buffer-full stalls, barrier drains);
* the waste-profiler touchpoints of the L1 fast path (load-hit use and
  memory-instance accounting);
* the per-flag :class:`~repro.coherence.policies.PolicySet` resolved
  from the run's ``ProtocolConfig``;
* the explicit :meth:`stats` protocol consumed by ``System._collect``
  (replacing the old ``dir()``-scan over ``stat_*`` attributes).

Protocol cores (:class:`~repro.coherence.mesi.MesiSystem`,
:class:`~repro.coherence.denovo.DenovoSystem`) subclass the kernel and
add their coherence state machines on top.  Message building and flit
sizing are shared one layer down, in ``SimContext.send_*``; the kernel
binds the hot ones to instance attributes so the access fast path skips
repeated attribute chains.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.cache.sa_cache import CacheLine, SetAssocCache
from repro.common.addressing import OFFSET_MASK as _OFFSET_MASK
from repro.coherence.policies import PolicySet, resolve_policies
from repro.core.context import LoadRequest, SimContext


class CoherenceKernel:
    """Shared tag arrays, transaction lifecycle and profiling hooks."""

    #: Per-protocol line classes; subclasses override with lines carrying
    #: their protocol state (directory bits, per-word owners, ...).
    l1_line_cls = CacheLine
    l2_line_cls = CacheLine

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx
        cfg = ctx.config
        # Cores consult the resolved policies, never ctx.proto's raw
        # flags — that is the whole point of the policy layer.
        self.policies: PolicySet = resolve_policies(ctx.proto, ctx.regions,
                                                    cfg)
        num_tiles = cfg.num_tiles
        self.l1: List[SetAssocCache] = [
            SetAssocCache(cfg.l1_sets, cfg.l1_assoc, self.l1_line_cls)
            for _ in range(num_tiles)]
        # Home interleaving (line % num_tiles) consumes the low
        # line-address bits only when the tile count is a power of two;
        # shift them out of the L2 set index in that case.  For
        # non-power-of-two shapes (3x3, 5x5, ...) the slice id is not a
        # bit-field, every set stays reachable, and no shift is correct.
        l2_shift = (num_tiles.bit_length() - 1
                    if num_tiles & (num_tiles - 1) == 0 else 0)
        self.l2: List[SetAssocCache] = [
            SetAssocCache(cfg.l2_slice_sets, cfg.l2_assoc, self.l2_line_cls,
                          index_shift=l2_shift)
            for _ in range(num_tiles)]
        # Core-level callbacks fired after any retire (buffer-full stalls).
        self._retire_hooks: List[List[Callable[[int], None]]] = [
            [] for _ in range(num_tiles)]
        # Lines with an in-flight request (protected from L1 eviction).
        self._protected: List[Set[int]] = [set() for _ in range(num_tiles)]
        # Fast-path bindings: the hot message entry points and scheduler,
        # bound once so per-access code skips the ctx attribute chains.
        # Profiler methods must NOT be bound here — ctx.reset_stats()
        # swaps the profiler objects after warm-up.
        self._send_req_ctl = ctx.send_req_ctl
        self._send_resp_ctl = ctx.send_resp_ctl
        self._send_data = ctx.send_data
        self._send_wb = ctx.send_wb
        self._send_overhead = ctx.send_overhead
        self._schedule_call = ctx.queue.schedule_call
        self._home_tile = ctx.home_tile
        self._queue = ctx.queue

    # ------------------------------------------------------------------
    # Core-facing interface (the contract ``core.Core`` drives)
    # ------------------------------------------------------------------

    def load(self, core: int, addr: int, at: int, on_done) -> Optional[int]:
        raise NotImplementedError

    def store(self, core: int, addr: int, at: int) -> bool:
        raise NotImplementedError

    def pending_store_count(self, core: int) -> int:
        raise NotImplementedError

    def drain_barrier(self, core: int, at: int,
                      resume: Callable[[int], None]) -> None:
        raise NotImplementedError

    def on_retire(self, core: int, hook: Callable[[int], None]) -> None:
        """Run ``hook(time)`` after the next store retirement on ``core``."""
        self._retire_hooks[core].append(hook)

    def on_barrier(self, written_regions) -> None:
        """Barrier-time protocol work; the default is a no-op."""

    def finalize(self) -> None:
        """End of simulation: flush protocol leftovers; default no-op."""

    def stats(self) -> Dict[str, int]:
        """Protocol counters for ``RunResult.protocol_stats``."""
        return {}

    def energy_counters(self) -> Dict[str, int]:
        """Event counters for ``RunResult.energy_counters``.

        The base kernel reports the shared tag-array events; protocol
        cores extend the dict with their own structures (e.g. DeNovo's
        Bloom filter banks).  Purely observational — the energy model
        (:mod:`repro.energy`) multiplies these by per-event costs.
        """
        counters = {"l1_probes": 0, "l1_installs": 0, "l1_evictions": 0,
                    "l2_probes": 0, "l2_installs": 0, "l2_evictions": 0}
        for prefix, caches in (("l1", self.l1), ("l2", self.l2)):
            for cache in caches:
                counters[f"{prefix}_probes"] += cache.stat_probes
                counters[f"{prefix}_installs"] += cache.stat_installs
                counters[f"{prefix}_evictions"] += cache.stat_evictions
        return counters

    def reset_energy_counters(self) -> None:
        """Zero the energy event counters (end of measurement warm-up)."""
        for cache in self.l1:
            cache.reset_energy_counters()
        for cache in self.l2:
            cache.reset_energy_counters()

    def register_metrics(self, hub) -> None:
        """Register the kernel's counters into a ``repro.obs`` hub.

        Pull-based over the same counters :meth:`energy_counters` and
        :meth:`stats` report, so hub totals reconcile exactly with
        ``RunResult``.  Protocol cores extend this with their own
        structures (e.g. DeNovo's Bloom filters).  Called only when an
        observability session is attached to the run.
        """
        for level, caches in (("l1", self.l1), ("l2", self.l2)):
            for tile, cache in enumerate(caches):
                cache.register_metrics(hub, level, tile)
        for key in self.stats():
            hub.add_pull(f"proto_{key}",
                         lambda k=self, s=key: k.stats()[s],
                         help=f"protocol counter {key} "
                              "(RunResult.protocol_stats)")

    # ------------------------------------------------------------------
    # Retire hooks
    # ------------------------------------------------------------------

    def _fire_retire_hooks(self, core: int, t: int) -> None:
        hooks = self._retire_hooks[core]
        if not hooks:
            return
        self._retire_hooks[core] = []
        queue = self._queue
        now = queue.now
        when = t if t >= now else now
        schedule_call = queue.schedule_call
        for hook in hooks:
            schedule_call(when, hook, t)

    # ------------------------------------------------------------------
    # L1 reservation / allocation (shared transaction lifecycle)
    # ------------------------------------------------------------------

    def _can_reserve(self, core: int, line_addr: int) -> bool:
        """Whether an L1 fill for ``line_addr`` can claim a way now."""
        cache = self.l1[core]
        if cache.lookup(line_addr, touch=False) is not None:
            return True
        set_index = cache.set_index
        lookup = cache.lookup
        idx = set_index(line_addr)
        protected_in_set = 0
        for la in self._protected[core]:
            if set_index(la) == idx and lookup(la, touch=False) is not None:
                protected_in_set += 1
        return protected_in_set < cache.assoc

    def _allocate_l1(self, core: int, line_addr: int):
        """Insert ``line_addr`` into the L1, evicting an unprotected way.

        Victims are handed to the protocol core's ``_evict_l1_line`` for
        writeback/profiling before the new line is installed.
        """
        cache = self.l1[core]
        existing = cache.lookup(line_addr)
        if existing is not None:
            return existing
        # Choose an unprotected victim: temporarily walk LRU order.
        victim = cache.victim_for(line_addr)
        if victim is not None and victim.line_addr in self._protected[core]:
            victim = self._find_unprotected_victim(core, line_addr)
        if victim is not None:
            cache.remove(victim.line_addr)
            self._evict_l1_line(core, victim)
        line, auto_victim = cache.allocate(line_addr)
        if auto_victim is not None:
            self._evict_l1_line(core, auto_victim)
        return line

    def _find_unprotected_victim(self, core: int, line_addr: int):
        cache = self.l1[core]
        idx = cache.set_index(line_addr)
        for candidate in reversed(cache._lru[idx]):
            if candidate not in self._protected[core]:
                return cache.lookup(candidate, touch=False)
        raise RuntimeError(
            "no evictable way; _can_reserve should prevent this")

    def _evict_l1_line(self, core: int, line) -> None:
        """Protocol-specific victim handling (writebacks, profiling)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared fast-path profiling / retry / message helpers
    # ------------------------------------------------------------------

    def _profile_load_hit(self, core: int, line, addr: int) -> None:
        ctx = self.ctx
        ctx.l1_prof.on_use(core, addr)
        inst = line.mem_inst[addr & _OFFSET_MASK]
        if inst is not None:
            ctx.mem_prof.on_load(inst)

    def _retry_load(self, core: int, addr: int, at: int,
                    on_done: Callable[[int, LoadRequest], None]) -> None:
        done = self.load(core, addr, at, on_done)
        if done is not None:
            dummy = LoadRequest(core=core, addr=addr, t_issue=at,
                                on_done=on_done)
            on_done(done, dummy)

    def _wb_to_dram(self, line_addr: int, _t: int) -> None:
        """Terminal handler of a writeback travelling to memory."""
        self.ctx.dram_for(line_addr).write(line_addr)

    @staticmethod
    def _ignore(*_args) -> None:
        """No-op message handler (fire-and-forget data messages)."""

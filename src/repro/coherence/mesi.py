"""Directory-based MESI protocol core (GEMS-style, blocking directory).

``MesiSystem`` is a protocol core on top of
:class:`~repro.coherence.kernel.CoherenceKernel`: the kernel owns the
tag arrays, reservation/protection lifecycle and retire hooks; this
module owns the line-granular MESI state machine and composes the
policy objects that distinguish the MESI-side ladder rungs:

* **MESI** — baseline: inclusive shared L2 with an in-cache directory,
  blocking transitions (requests to busy lines are NACKed), E state with
  silent E->M upgrade, Upgrade requests for S->M, fetch-on-write, directory
  unblock messages, and non-blocking writes through a 32-entry store buffer.
* **MMemL1** (``mem_to_l1`` -> :class:`MemTransferPolicy`) — memory
  responses go directly to the requesting L1; loads forward the line to
  the L2 as a combined unblock+data message (profiled as load traffic,
  per Section 3.3), and write fills skip the L2 entirely since the L1
  writeback will overwrite them.
* **MDirtyWB** (``dirty_wb_only`` -> :class:`WritebackPolicy`, beyond
  the paper) — writebacks carry only the dirty words instead of the
  whole line with dirty flags.

The protocol is line-granular; per-word dirty bits are tracked only for
the waste profiler and the writeback Used/Waste split of Figure 5.1d.

Message continuations use the closure-free scheduling convention
(``handler, *args`` with the arrival time appended as the last
argument), so the hot request/fill paths allocate no lambdas; the only
remaining closures sit on rare blocked/waiter paths.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.cache.sa_cache import CacheLine
from repro.cache.writebuffer import StoreBuffer
from repro.coherence.kernel import CoherenceKernel
from repro.common.addressing import base_word, line_of, offset_of
from repro.core.context import (
    NACK_RETRY_DELAY, SERVED_L2, SERVED_MEMORY, SERVED_REMOTE_L1,
    LoadRequest, SimContext, StoreRequest)
from repro.network import traffic as T

# The inlined load-hit path uses ``addr & 15`` for offset_of (16-word
# lines, pinned in repro.common.addressing).

# L1 line states.
L1_PENDING = 0   # way reserved, fill in flight
L1_S = 1
L1_E = 2
L1_M = 3

# L2 directory states (per line).
DIR_IDLE = 0     # data at L2 is authoritative (sharers may exist)
DIR_EXCL = 1     # one L1 owns the line (E or M)


class MesiL1Line(CacheLine):
    __slots__ = ("state",)

    def __init__(self, line_addr: int) -> None:
        super().__init__(line_addr)
        self.state = L1_PENDING


class MesiL2Line(CacheLine):
    __slots__ = ("dir_state", "owner", "sharers", "busy", "has_data",
                 "l2_dirty", "waiters")

    def __init__(self, line_addr: int) -> None:
        super().__init__(line_addr)
        self.dir_state = DIR_IDLE
        self.owner: Optional[int] = None
        self.sharers: Set[int] = set()
        self.busy = False
        self.has_data = False
        self.l2_dirty = False
        # Requests held back while the line is mid-transition (the
        # "blocking directory" of GEMS: hold back or NACK).
        self.waiters: List[Callable[[int], None]] = []


class MesiSystem(CoherenceKernel):
    """All L1s, L2 slices and the directory logic of one MESI machine."""

    l1_line_cls = MesiL1Line
    l2_line_cls = MesiL2Line

    def __init__(self, ctx: SimContext) -> None:
        super().__init__(ctx)
        cfg = ctx.config
        self.mem_to_l1 = self.policies.mem_transfer.direct_to_l1
        self._wb_l1_flags = self.policies.writeback.l1_flags
        self.sbuf = [StoreBuffer(cfg.store_buffer_entries)
                     for _ in range(cfg.num_tiles)]
        # Deferred store words per (core, line): offsets written while the
        # ownership request is in flight.
        self._pending_words: List[Dict[int, Set[int]]] = [
            dict() for _ in range(cfg.num_tiles)]
        self._store_reqs: List[Dict[int, StoreRequest]] = [
            dict() for _ in range(cfg.num_tiles)]
        # Loads blocked on a line with a pending store: line -> callbacks.
        self._load_waiters: List[Dict[int, List[Callable[[int], None]]]] = [
            dict() for _ in range(cfg.num_tiles)]
        self._last_retire_mem = [False] * cfg.num_tiles
        self.stat_upgrades = 0
        self.stat_nacks = 0
        self.stat_e_grants = 0

    def stats(self) -> Dict[str, int]:
        return {"e_grants": self.stat_e_grants,
                "nacks": self.stat_nacks,
                "upgrades": self.stat_upgrades}

    def last_retire_went_to_memory(self, core: int) -> bool:
        return self._last_retire_mem[core]

    # ------------------------------------------------------------------
    # Core-facing interface
    # ------------------------------------------------------------------

    def load(self, core: int, addr: int, at: int,
             on_done: Callable[[int, LoadRequest], None]) -> Optional[int]:
        """Issue a load; return completion time on an L1 hit, else None
        and ``on_done(time, request)`` fires later."""
        line_addr = addr >> 4
        line = self.l1[core].lookup(line_addr)
        if line is not None and line.state != L1_PENDING:
            if self.sbuf[core].has(line_addr):
                # Ownership upgrade in flight; the load waits for it so the
                # value it reads is the retired store's.
                self._wait_on_line(core, line_addr, addr, at, on_done)
                return None
            # Hottest path in the protocol: _profile_load_hit inlined.
            ctx = self.ctx
            ctx.l1_prof.on_use(core, addr)
            inst = line.mem_inst[addr & 15]
            if inst is not None:
                ctx.mem_prof.on_load(inst)
            return at + 1
        if line is not None and line.state == L1_PENDING:
            self._wait_on_line(core, line_addr, addr, at, on_done)
            return None
        if not self._can_reserve(core, line_addr):
            # Set conflict with in-flight fills: retry after a retire.
            self._retire_hooks[core].append(
                lambda t: self._retry_load(core, addr, t, on_done))
            return None
        request = LoadRequest(core=core, addr=addr, t_issue=at,
                              on_done=on_done)
        self._reserve_line(core, line_addr)
        self._send_req_ctl(
            T.LD, core, self._home_tile(line_addr), at,
            self._dir_gets, request)
        return None

    def store(self, core: int, addr: int, at: int) -> bool:
        """Issue a store; True if accepted (hit or buffered), False if the
        store buffer is full and the core must stall."""
        line_addr = addr >> 4
        sbuf = self.sbuf[core]
        line = self.l1[core].lookup(line_addr)
        if sbuf.has(line_addr):
            self._pending_words[core][line_addr].add(addr & 15)
            return True
        if line is not None and line.state in (L1_E, L1_M):
            line.state = L1_M   # silent E->M upgrade
            self._apply_store_word(core, line, addr)
            return True
        if sbuf.is_full():
            return False
        if line is None and not self._can_reserve(core, line_addr):
            return False
        is_upgrade = line is not None and line.state == L1_S
        sbuf.insert(line_addr)
        self._pending_words[core][line_addr] = {addr & 15}
        request = StoreRequest(core=core, line_addr=line_addr, t_issue=at)
        self._store_reqs[core][line_addr] = request
        if line is None:
            self._reserve_line(core, line_addr)
        else:
            self._protected[core].add(line_addr)
        if is_upgrade:
            self.stat_upgrades += 1
        self._send_req_ctl(
            T.ST, core, self._home_tile(line_addr), at,
            self._dir_getx, request, is_upgrade)
        return True

    def pending_store_count(self, core: int) -> int:
        return len(self.sbuf[core])

    def drain_barrier(self, core: int, at: int,
                      resume: Callable[[int], None]) -> None:
        """Wait until the store buffer is empty, then ``resume(time)``."""
        if len(self.sbuf[core]) == 0:
            resume(at)
            return

        def check(t: int) -> None:
            if len(self.sbuf[core]) == 0:
                resume(t)
            else:
                self._retire_hooks[core].append(check)

        self._retire_hooks[core].append(check)

    # ------------------------------------------------------------------
    # L1 helpers
    # ------------------------------------------------------------------

    def _wait_on_line(self, core: int, line_addr: int, addr: int, at: int,
                      on_done: Callable[[int, LoadRequest], None]) -> None:
        waiters = self._load_waiters[core].setdefault(line_addr, [])

        def resume(t: int) -> None:
            self._retry_load(core, addr, t, on_done)

        waiters.append(resume)

    def _apply_store_word(self, core: int, line: MesiL1Line,
                          addr: int) -> None:
        ctx = self.ctx
        ctx.l1_prof.on_write(core, addr)
        ctx.mem_prof.on_store_addr(addr)
        line.word_dirty[addr & 15] = True

    def _reserve_line(self, core: int, line_addr: int) -> MesiL1Line:
        self._protected[core].add(line_addr)
        line = self._allocate_l1(core, line_addr)
        line.state = L1_PENDING
        return line

    def _evict_l1_line(self, core: int, line: MesiL1Line) -> None:
        """Handle an L1 victim: profile + writeback messages."""
        ctx = self.ctx
        at = ctx.queue.now
        ctx.l1_prof.on_evict_line(core, base_word(line.line_addr))
        ctx.mem_prof.drop_copies(line.mem_inst, invalidated=False)
        home = self._home_tile(line.line_addr)
        if line.state == L1_M:
            written = tuple(i for i, d in enumerate(line.word_dirty) if d)
            self._send_wb(core, home, at, self._wb_l1_flags(line.word_dirty),
                          T.DEST_L2,
                          self._dir_dirty_wb, line.line_addr, core, written)
        elif line.state == L1_E:
            # Clean writeback: control-only PUTX, counted as overhead.
            self._send_overhead(
                T.OVH_WB_CTL, core, home, at,
                self._dir_clean_wb, line.line_addr, core)
        # Shared lines are dropped silently; the directory keeps a stale
        # sharer and may later send a spurious invalidation (acked anyway).

    # ------------------------------------------------------------------
    # Directory: GETS (loads)
    # ------------------------------------------------------------------

    def _dir_gets(self, req: LoadRequest, arrive: int) -> None:
        ctx = self.ctx
        line_addr = line_of(req.addr)
        home = self._home_tile(line_addr)
        if req.t_home_arrive is None:
            req.t_home_arrive = arrive
        t = ctx.l2_service_time(home, arrive)
        entry = self.l2[home].lookup(line_addr)
        if entry is not None and entry.busy:
            entry.waiters.append(lambda tt: self._dir_gets(req, tt))
            return
        if entry is not None and entry.has_data and entry.owner is None:
            self._dir_gets_hit(req, entry, home, t)
            return
        if entry is not None and entry.owner is not None:
            self._dir_gets_fwd(req, entry, home, t)
            return
        self._dir_miss_to_memory(req, line_addr, home, t, major=T.LD)

    def _retry_gets(self, req: LoadRequest, at: int) -> None:
        req.retries += 1
        line_addr = line_of(req.addr)
        self._send_req_ctl(
            T.LD, req.core, self._home_tile(line_addr),
            at + NACK_RETRY_DELAY, self._dir_gets, req)

    def _dir_gets_hit(self, req: LoadRequest, entry: MesiL2Line, home: int,
                      t: int) -> None:
        ctx = self.ctx
        line_addr = entry.line_addr
        grant_e = not entry.sharers
        if grant_e:
            entry.dir_state = DIR_EXCL
            entry.owner = req.core
            self.stat_e_grants += 1
        entry.sharers.add(req.core)
        entry.busy = True
        base = base_word(line_addr)
        ctx.l2_prof.on_use_line(home, base)
        core = req.core
        l1_entries = ctx.l1_prof.arrivals_line(core, base)
        insts = list(entry.mem_inst)
        state = L1_E if grant_e else L1_S
        req.served_by = SERVED_L2
        req.t_fill_send = t
        self._send_data(
            T.LD, T.DEST_L1, home, core, t, l1_entries,
            self._l1_load_fill, req, state, insts, home, False)

    def _dir_gets_fwd(self, req: LoadRequest, entry: MesiL2Line, home: int,
                      t: int) -> None:
        """Line exclusively owned: forward the request to the owner."""
        entry.busy = True
        self._send_req_ctl(T.LD, home, entry.owner, t,
                           self._gets_at_owner, req, entry, entry.owner,
                           home)

    def _gets_at_owner(self, req: LoadRequest, entry: MesiL2Line,
                       owner: int, home: int, tt: int) -> None:
        ctx = self.ctx
        line_addr = entry.line_addr
        oline = self.l1[owner].lookup(line_addr)
        if oline is None or oline.state not in (L1_E, L1_M):
            # Owner raced an eviction; its writeback will settle the
            # directory.  NACK the requestor to retry.
            self._nack(T.LD, owner, req.core, tt, self._retry_gets, req)
            self._clear_busy(entry)
            return
        was_m = oline.state == L1_M
        oline.state = L1_S
        core = req.core
        l1_entries = ctx.l1_prof.arrivals_line(core, base_word(line_addr))
        insts = list(oline.mem_inst)
        req.served_by = SERVED_REMOTE_L1
        req.t_fill_send = tt
        self._send_data(
            T.LD, T.DEST_L1, owner, core, tt, l1_entries,
            self._l1_load_fill, req, L1_S, insts, home, False)
        if was_m:
            written = tuple(i for i, d in enumerate(oline.word_dirty) if d)
            self._send_wb(owner, home, tt,
                          self._wb_l1_flags(oline.word_dirty), T.DEST_L2,
                          self._dir_downgrade_data, entry, owner, core,
                          written)
        else:
            self._send_overhead(
                T.OVH_ACK, owner, home, tt,
                self._dir_downgrade_clean, entry, owner, core)

    def _dir_downgrade_data(self, entry: MesiL2Line, owner: int,
                            requestor: int, written: Tuple[int, ...],
                            t: int) -> None:
        ctx = self.ctx
        home = self._home_tile(entry.line_addr)
        base = base_word(entry.line_addr)
        l2_on_write = ctx.l2_prof.on_write
        word_dirty = entry.word_dirty
        for off in written:
            word_dirty[off] = True
            l2_on_write(home, base + off)
        entry.l2_dirty = True
        self._dir_downgrade_clean(entry, owner, requestor, t)

    def _dir_downgrade_clean(self, entry: MesiL2Line, owner: int,
                             requestor: int, t: int) -> None:
        entry.dir_state = DIR_IDLE
        entry.owner = None
        entry.sharers.update((owner, requestor))
        entry.has_data = True

    # ------------------------------------------------------------------
    # Directory: GETX / Upgrade (stores)
    # ------------------------------------------------------------------

    def _dir_getx(self, req: StoreRequest, upgrade: bool,
                  arrive: int) -> None:
        ctx = self.ctx
        line_addr = req.line_addr
        home = self._home_tile(line_addr)
        if req.t_home_arrive is None:
            req.t_home_arrive = arrive
        t = ctx.l2_service_time(home, arrive)
        entry = self.l2[home].lookup(line_addr)
        if entry is not None and entry.busy:
            entry.waiters.append(
                lambda tt: self._dir_getx(req, upgrade, tt))
            return
        if entry is None or not entry.has_data and entry.owner is None:
            self._dir_miss_to_memory_store(req, line_addr, home, t)
            return
        if entry.owner is not None and entry.owner != req.core:
            self._dir_getx_fwd(req, entry, home, t)
            return
        # Data at L2 (possibly with sharers) or requestor already owner.
        entry.busy = True
        sharers = [s for s in entry.sharers if s != req.core]
        acks_needed = len(sharers)
        still_sharer = req.core in entry.sharers
        for s in sharers:
            self._send_invalidation_for(line_addr, home, s, req.core, t)
        entry.sharers = {req.core}
        entry.dir_state = DIR_EXCL
        entry.owner = req.core

        if upgrade and still_sharer:
            # Data-less grant; requestor already has the line in S.
            self._send_resp_ctl(
                T.ST, home, req.core, t,
                self._l1_store_grant, req, home, acks_needed, None, None,
                False)
        else:
            base = base_word(line_addr)
            ctx.l2_prof.on_use_line(home, base)
            core = req.core
            l1_entries = ctx.l1_prof.arrivals_line(core, base)
            insts = list(entry.mem_inst)
            self._send_data(
                T.ST, T.DEST_L1, home, core, t, l1_entries,
                self._l1_store_grant, req, home, acks_needed, l1_entries,
                insts, False)

    def _retry_getx(self, req: StoreRequest, upgrade: bool,
                    at: int) -> None:
        req.retries += 1
        # Re-evaluate upgrade vs full GETX: the line may have been
        # invalidated under us while we were NACKed.
        line = self.l1[req.core].lookup(req.line_addr, touch=False)
        still_upgrade = (upgrade and line is not None
                         and line.state == L1_S)
        self._send_req_ctl(
            T.ST, req.core, self._home_tile(req.line_addr),
            at + NACK_RETRY_DELAY,
            self._dir_getx, req, still_upgrade)

    def _dir_getx_fwd(self, req: StoreRequest, entry: MesiL2Line, home: int,
                      t: int) -> None:
        entry.busy = True
        self._send_req_ctl(T.ST, home, entry.owner, t,
                           self._getx_at_owner, req, entry, entry.owner,
                           home)

    def _getx_at_owner(self, req: StoreRequest, entry: MesiL2Line,
                       owner: int, home: int, tt: int) -> None:
        ctx = self.ctx
        line_addr = entry.line_addr
        oline = self.l1[owner].lookup(line_addr, touch=False)
        if oline is None or oline.state not in (L1_E, L1_M):
            self._nack(T.ST, owner, req.core, tt,
                       self._retry_getx, req, False)
            self._clear_busy(entry)
            return
        core = req.core
        l1_entries = ctx.l1_prof.arrivals_line(core, base_word(line_addr))
        insts = list(oline.mem_inst)
        self._invalidate_l1_copy(owner, oline)
        self.l1[owner].remove(line_addr)
        entry.owner = core
        entry.sharers = {core}
        entry.dir_state = DIR_EXCL
        self._send_data(
            T.ST, T.DEST_L1, owner, core, tt, l1_entries,
            self._l1_store_grant, req, home, 0, l1_entries, insts, False)

    def _send_invalidation_for(self, line_addr: int, home: int, sharer: int,
                               requestor: int, t: int) -> None:
        self._send_overhead(T.OVH_INVAL, home, sharer, t,
                            self._invalidate_at_sharer, line_addr, sharer,
                            requestor)

    def _invalidate_at_sharer(self, line_addr: int, sharer: int,
                              requestor: int, tt: int) -> None:
        line = self.l1[sharer].lookup(line_addr, touch=False)
        if line is not None and line.state != L1_PENDING:
            self._invalidate_l1_copy(sharer, line)
            self.l1[sharer].remove(line_addr)
        self._send_overhead(T.OVH_ACK, sharer, requestor, tt)

    def _invalidate_l1_copy(self, core: int, line: MesiL1Line) -> None:
        ctx = self.ctx
        ctx.l1_prof.on_invalidate_line(core, base_word(line.line_addr))
        ctx.mem_prof.drop_copies(line.mem_inst, invalidated=True)

    # ------------------------------------------------------------------
    # Memory path
    # ------------------------------------------------------------------

    def _dir_miss_to_memory(self, req: LoadRequest, line_addr: int,
                            home: int, t: int, major: str) -> None:
        """L2 load miss: reserve the L2 line and fetch from memory."""
        ctx = self.ctx
        entry = self._reserve_l2(home, line_addr)
        entry.busy = True
        req.went_to_memory = True
        req.t_home_depart = t
        req.served_by = SERVED_MEMORY
        mc = ctx.mc_tile(line_addr)
        self._send_req_ctl(major, home, mc, t,
                           self._mc_read, req, entry, home, mc)

    def _mc_read(self, req: LoadRequest, entry: MesiL2Line, home: int,
                 mc: int, arrive: int) -> None:
        req.t_arrive_mc = arrive
        line_addr = entry.line_addr
        self.ctx.dram_for(line_addr).read(
            line_addr, self._load_dram_done, req, entry, home, mc)

    def _load_dram_done(self, req: LoadRequest, entry: MesiL2Line,
                        home: int, mc: int, t: int) -> None:
        req.t_leave_mc = t
        insts = self.ctx.mem_prof.fetch_line(base_word(entry.line_addr))
        if self.mem_to_l1:
            self._mc_respond_direct_l1(req, entry, home, mc, t, insts)
        else:
            self._mc_respond_via_l2(req, entry, home, mc, t, insts)

    def _mc_respond_via_l2(self, req: LoadRequest, entry: MesiL2Line,
                           home: int, mc: int, t: int, insts: List) -> None:
        """Baseline MESI: memory -> L2 -> L1."""
        ctx = self.ctx
        line_addr = entry.line_addr
        l2_entries = ctx.l2_prof.arrivals_line(home, base_word(line_addr))
        self._send_data(T.LD, T.DEST_L2, mc, home, t, l2_entries,
                        self._load_at_l2, req, entry, home, insts)

    def _load_at_l2(self, req: LoadRequest, entry: MesiL2Line, home: int,
                    insts: List, tt: int) -> None:
        ctx = self.ctx
        line_addr = entry.line_addr
        self._fill_l2_data(entry, home, insts)
        core = req.core
        l1_entries = ctx.l1_prof.arrivals_line(core, base_word(line_addr))
        grant_e = not entry.sharers
        if grant_e:
            entry.dir_state = DIR_EXCL
            entry.owner = core
            self.stat_e_grants += 1
        entry.sharers.add(core)
        state = L1_E if grant_e else L1_S
        req.t_fill_send = tt
        self._send_data(
            T.LD, T.DEST_L1, home, core, tt, l1_entries,
            self._l1_load_fill, req, state, list(entry.mem_inst), home,
            True)

    def _mc_respond_direct_l1(self, req: LoadRequest, entry: MesiL2Line,
                              home: int, mc: int, t: int,
                              insts: List) -> None:
        """MMemL1: memory -> L1, then unblock+data L1 -> L2."""
        ctx = self.ctx
        line_addr = entry.line_addr
        core = req.core
        l1_entries = ctx.l1_prof.arrivals_line(core, base_word(line_addr))
        grant_e = not entry.sharers
        if grant_e:
            entry.dir_state = DIR_EXCL
            entry.owner = core
            self.stat_e_grants += 1
        entry.sharers.add(core)
        state = L1_E if grant_e else L1_S
        req.t_fill_send = t
        self._send_data(T.LD, T.DEST_L1, mc, core, t, l1_entries,
                        self._load_direct_at_l1, req, entry, home, state,
                        insts)

    def _load_direct_at_l1(self, req: LoadRequest, entry: MesiL2Line,
                           home: int, state: int, insts: List,
                           tt: int) -> None:
        ctx = self.ctx
        line_addr = entry.line_addr
        self._install_l1_fill(req.core, line_addr, state, insts)
        self._complete_load(req, tt)
        # Combined unblock+data carries the line to the inclusive L2;
        # profiled as load traffic (paper Section 3.3).
        l2_entries = ctx.l2_prof.arrivals_line(home, base_word(line_addr))
        self._send_data(T.LD, T.DEST_L2, req.core, home, tt, l2_entries,
                        self._direct_fill_at_l2, entry, home, insts)

    def _direct_fill_at_l2(self, entry: MesiL2Line, home: int, insts: List,
                           _t: int) -> None:
        self._fill_l2_data(entry, home, insts)
        self._clear_busy(entry)

    def _dir_miss_to_memory_store(self, req: StoreRequest, line_addr: int,
                                  home: int, t: int) -> None:
        ctx = self.ctx
        entry = self._reserve_l2(home, line_addr)
        entry.busy = True
        req.went_to_memory = True
        req.t_home_depart = t
        mc = ctx.mc_tile(line_addr)
        self._send_req_ctl(T.ST, home, mc, t,
                           self._store_at_mc, req, entry, home, mc)

    def _store_at_mc(self, req: StoreRequest, entry: MesiL2Line, home: int,
                     mc: int, arrive: int) -> None:
        req.t_arrive_mc = arrive
        line_addr = entry.line_addr
        self.ctx.dram_for(line_addr).read(
            line_addr, self._store_dram_done, req, entry, home, mc)

    def _store_dram_done(self, req: StoreRequest, entry: MesiL2Line,
                         home: int, mc: int, tt: int) -> None:
        ctx = self.ctx
        req.t_leave_mc = tt
        line_addr = entry.line_addr
        base = base_word(line_addr)
        insts = ctx.mem_prof.fetch_line(base)
        if self.mem_to_l1:
            # Write fill skips the L2 entirely: the writeback will
            # overwrite it (Section 3.3).
            core = req.core
            l1_entries = ctx.l1_prof.arrivals_line(core, base)
            entry.dir_state = DIR_EXCL
            entry.owner = core
            entry.sharers = {core}
            entry.has_data = False
            self._send_data(
                T.ST, T.DEST_L1, mc, core, tt, l1_entries,
                self._l1_store_grant, req, home, 0, l1_entries, insts,
                True)
        else:
            l2_entries = ctx.l2_prof.arrivals_line(home, base)
            self._send_data(T.ST, T.DEST_L2, mc, home, tt, l2_entries,
                            self._store_at_l2, req, entry, home, insts)

    def _store_at_l2(self, req: StoreRequest, entry: MesiL2Line, home: int,
                     insts: List, t3: int) -> None:
        ctx = self.ctx
        line_addr = entry.line_addr
        self._fill_l2_data(entry, home, insts)
        core = req.core
        entry.dir_state = DIR_EXCL
        entry.owner = core
        entry.sharers = {core}
        l1_entries = ctx.l1_prof.arrivals_line(core, base_word(line_addr))
        self._send_data(
            T.ST, T.DEST_L1, home, core, t3, l1_entries,
            self._l1_store_grant, req, home, 0, l1_entries,
            list(entry.mem_inst), False)

    # ------------------------------------------------------------------
    # L1 fill / completion
    # ------------------------------------------------------------------

    def _install_l1_fill(self, core: int, line_addr: int, state: int,
                         insts: List) -> None:
        line = self._allocate_l1(core, line_addr)
        line.reset_words()
        line.state = state
        line.mem_inst[:] = insts
        self.ctx.mem_prof.install_copies(insts)

    def _l1_load_fill(self, req: LoadRequest, state: int, insts: List,
                      home: int, from_memory: bool, t: int) -> None:
        line_addr = line_of(req.addr)
        self._install_l1_fill(req.core, line_addr, state, insts)
        self._complete_load(req, t)
        # Directory unblock (overhead traffic).
        self._send_overhead(
            T.OVH_UNBLOCK, req.core, home, t,
            self._dir_unblock, home, line_addr)

    def _clear_busy(self, entry: MesiL2Line) -> None:
        """End a transition: release the line and replay one held request."""
        entry.busy = False
        if entry.waiters:
            waiter = entry.waiters.pop(0)
            now = self._queue.now
            self._schedule_call(now + 1, waiter, now + 1)

    def _dir_unblock(self, home: int, line_addr: int, _t: int = 0) -> None:
        entry = self.l2[home].lookup(line_addr, touch=False)
        if entry is not None:
            self._clear_busy(entry)

    def _complete_load(self, req: LoadRequest, t: int) -> None:
        core = req.core
        line_addr = line_of(req.addr)
        self._protected[core].discard(line_addr)
        line = self.l1[core].lookup(line_addr, touch=False)
        if line is not None:
            self._profile_load_hit(core, line, req.addr)
        req.on_done(t + 1, req)
        self._wake_line_waiters(core, line_addr, t + 1)

    def _l1_store_grant(self, req: StoreRequest, home: int,
                        acks_needed: int, data_entries, insts,
                        unblock_ctl_only: bool, t: int) -> None:
        """Data/grant arrived at the L1; finish the store transaction."""
        core = req.core
        line_addr = req.line_addr
        if insts is not None:
            self._install_l1_fill(core, line_addr, L1_M, insts)
        else:
            line = self.l1[core].lookup(line_addr, touch=False)
            if line is not None:
                line.state = L1_M
        line = self.l1[core].lookup(line_addr, touch=False)
        # Apply the deferred store words.
        offsets = self._pending_words[core].pop(line_addr, set())
        base = base_word(line_addr)
        for off in sorted(offsets):
            if line is not None:
                self._apply_store_word(core, line, base + off)
        # Ack latency: completion waits for the last invalidation ack; we
        # approximate ack arrival as one max-distance control message.
        self._store_reqs[core].pop(line_addr, None)
        self._last_retire_mem[core] = req.went_to_memory
        self.sbuf[core].retire(line_addr)
        self._protected[core].discard(line_addr)
        # Unblock the directory.
        self._send_overhead(
            T.OVH_UNBLOCK, core, home, t,
            self._dir_unblock, home, line_addr)
        self._wake_line_waiters(core, line_addr, t + 1)
        self._fire_retire_hooks(core, t + 1)

    def _wake_line_waiters(self, core: int, line_addr: int, t: int) -> None:
        waiters = self._load_waiters[core].pop(line_addr, None)
        if waiters:
            queue = self._queue
            now = queue.now
            when = t if t >= now else now
            schedule_call = queue.schedule_call
            for resume in waiters:
                schedule_call(when, resume, t)

    # ------------------------------------------------------------------
    # L2 allocation / eviction / writebacks
    # ------------------------------------------------------------------

    def _reserve_l2(self, home: int, line_addr: int) -> MesiL2Line:
        cache = self.l2[home]
        existing = cache.lookup(line_addr)
        if existing is not None:
            return existing
        # Evict a non-busy victim; if the LRU victim is busy, walk up.
        victim = cache.victim_for(line_addr)
        if victim is not None and (victim.busy or victim.owner is not None
                                   or victim.sharers):
            victim = self._find_l2_victim(home, line_addr)
        if victim is not None:
            cache.remove(victim.line_addr)
            self._evict_l2_line(home, victim)
        line, auto_victim = cache.allocate(line_addr)
        if auto_victim is not None:
            self._evict_l2_line(home, auto_victim)
        return line

    def _find_l2_victim(self, home: int, line_addr: int) -> Optional[MesiL2Line]:
        cache = self.l2[home]
        idx = cache.set_index(line_addr)
        fallback = None
        for candidate in reversed(cache._lru[idx]):
            entry = cache.lookup(candidate, touch=False)
            if entry.busy:
                continue
            if entry.owner is None and not entry.sharers:
                return entry
            if fallback is None:
                fallback = entry
        return fallback   # may have sharers -> recall; None only if all busy

    def _evict_l2_line(self, home: int, entry: MesiL2Line) -> None:
        """Inclusive L2 eviction: recall L1 copies, write back if dirty."""
        ctx = self.ctx
        at = ctx.queue.now
        line_addr = entry.line_addr
        # Requests held back on this line must be replayed: they will
        # re-dispatch against the (now absent) line and miss to memory.
        if entry.waiters:
            waiters, entry.waiters = entry.waiters, []
            schedule_call = self._schedule_call
            for waiter in waiters:
                schedule_call(at + 1, waiter, at + 1)
        # Recall every L1 copy (invalidation + ack overhead); M data comes
        # back as writeback traffic.
        holders = set(entry.sharers)
        if entry.owner is not None:
            holders.add(entry.owner)
        for holder in holders:
            line = self.l1[holder].lookup(line_addr, touch=False)
            self._send_overhead(T.OVH_INVAL, home, holder, at)
            if line is not None and line.state != L1_PENDING:
                if line.state == L1_M:
                    for off, d in enumerate(line.word_dirty):
                        if d:
                            entry.word_dirty[off] = True
                    entry.l2_dirty = True
                    self._send_wb(holder, home, at,
                                  self._wb_l1_flags(line.word_dirty),
                                  T.DEST_L2, self._ignore)
                else:
                    self._send_overhead(T.OVH_ACK, holder, home, at)
                self._invalidate_l1_copy(holder, line)
                self.l1[holder].remove(line_addr)
            else:
                self._send_overhead(T.OVH_ACK, holder, home, at)
        # Profile L2 eviction.
        ctx.l2_prof.on_evict_line(home, base_word(line_addr))
        ctx.mem_prof.drop_copies(entry.mem_inst, invalidated=False)
        if entry.l2_dirty and entry.has_data:
            mc = ctx.mc_tile(line_addr)
            flags = self.policies.writeback.l2_flags(entry.word_dirty)
            self._send_wb(home, mc, at, flags, T.DEST_MEM,
                          self._wb_to_dram, line_addr)

    def _fill_l2_data(self, entry: MesiL2Line, home: int,
                      insts: List) -> None:
        entry.has_data = True
        entry.mem_inst[:] = insts
        self.ctx.mem_prof.install_copies(insts)

    def _dir_dirty_wb(self, line_addr: int, core: int,
                      written: Tuple[int, ...], t: int) -> None:
        """A PUTX with data arrived at the directory."""
        ctx = self.ctx
        home = self._home_tile(line_addr)
        entry = self.l2[home].lookup(line_addr, touch=False)
        if entry is not None:
            base = base_word(line_addr)
            l2_on_write = ctx.l2_prof.on_write
            for off in written:
                entry.word_dirty[off] = True
                l2_on_write(home, base + off)
            entry.l2_dirty = True
            entry.has_data = True
            if entry.owner == core:
                entry.owner = None
                entry.dir_state = DIR_IDLE
            entry.sharers.discard(core)
        # Writeback ack (control, WB category); fire-and-forget, so the
        # mesh never sees it through latency() — count it explicitly to
        # keep the energy-model flit-hop counter ledger-exact.
        hops = ctx.mesh.hops(home, core)
        ctx.ledger.add_wb_control(hops)
        ctx.mesh.count_packet(hops)

    def _dir_clean_wb(self, line_addr: int, core: int, t: int) -> None:
        home = self._home_tile(line_addr)
        entry = self.l2[home].lookup(line_addr, touch=False)
        if entry is not None:
            if entry.owner == core:
                entry.owner = None
                entry.dir_state = DIR_IDLE
            entry.sharers.discard(core)
        self._send_overhead(T.OVH_WB_CTL, home, core, t)

    def _nack(self, major: str, src: int, dst: int, t: int,
              retry: Callable, *args) -> None:
        self.stat_nacks += 1
        self._send_overhead(T.OVH_NACK, src, dst, t, retry, *args)

    # ------------------------------------------------------------------
    # Barrier hook (MESI has no barrier-time protocol work)
    # ------------------------------------------------------------------

    def on_barrier(self, written_regions) -> None:
        """MESI needs no self-invalidation; hardware coherence handles it."""

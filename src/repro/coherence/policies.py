"""Per-flag coherence policies composed by the protocol cores.

Each policy object captures one axis of the paper's protocol ladder, so
a :class:`~repro.common.config.ProtocolConfig` resolves into a
:class:`PolicySet` and the protocol cores (``MesiSystem``,
``DenovoSystem``) consult policies instead of raw feature flags:

* :class:`GranularityPolicy` — the L2's write-miss fill granularity
  (line-grained fetch-on-write vs word-grained write-validate);
* :class:`WritebackPolicy` — which words a writeback payload carries
  (whole line with dirty flags, or the dirty words only);
* :class:`TransferPolicy` — which words a data response gathers: the
  full line, or the communication region's fields (Flex, at caches
  and/or at the memory controller);
* :class:`BypassPolicy` — whether annotated regions' memory responses
  and requests skip the L2 (Bloom-guarded on the request side);
* :class:`MemTransferPolicy` — whether memory responses go straight to
  the requesting L1 or route through the L2 first.

The policies are deliberately tiny and stateless (beyond configuration)
so a new ladder rung is a new flag combination — and occasionally a new
policy class — rather than surgery on a protocol state machine.
"""

from __future__ import annotations

from typing import List

from repro.common.addressing import line_of, words_of_line


class GranularityPolicy:
    """Fill granularity at the L2 on a write miss.

    Line- vs word-granular *coherence* is structural (it selects the
    protocol core class); what remains policy-shaped is whether an L2
    write miss fetches the whole line from memory (baseline
    fetch-on-write) or lets the written words validate the line without
    a fetch (L2 Write-Validate, the DValidateL2 rung).
    """

    __slots__ = ("l2_fetch_on_write",)

    def __init__(self, l2_fetch_on_write: bool) -> None:
        self.l2_fetch_on_write = l2_fetch_on_write


class WritebackPolicy:
    """Which words a writeback message carries.

    ``*_flags`` return the per-word payload flags handed to
    ``SimContext.send_wb``: one entry per word on the wire, True for a
    dirty (Used) word, False for an unmodified (Waste) word.  The
    full-line variants ship the whole line; the dirty-only variants
    ship just the dirty words, shrinking the payload.
    """

    __slots__ = ("l1_dirty_only", "l2_dirty_only")

    def __init__(self, l1_dirty_only: bool, l2_dirty_only: bool) -> None:
        self.l1_dirty_only = l1_dirty_only
        self.l2_dirty_only = l2_dirty_only

    def l1_flags(self, word_dirty: List[bool]) -> List[bool]:
        """Payload flags for an L1 writeback of a line with ``word_dirty``."""
        if self.l1_dirty_only:
            return [True] * sum(1 for d in word_dirty if d)
        return list(word_dirty)

    def l2_flags(self, word_dirty: List[bool]) -> List[bool]:
        """Payload flags for an L2->memory writeback."""
        if self.l2_dirty_only:
            return [True] * sum(1 for d in word_dirty if d)
        return list(word_dirty)


class TransferPolicy:
    """Which words a data response gathers (Flex, paper Section 3.1).

    Without Flex every response is line-granular.  With ``flex_l1`` a
    cache-sourced response carries the communication region's fields
    around the requested word instead; ``flex_l2`` extends the same
    gather to memory responses.
    """

    __slots__ = ("regions", "max_words", "flex_l1", "flex_l2")

    def __init__(self, regions, max_words: int, flex_l1: bool,
                 flex_l2: bool) -> None:
        self.regions = regions
        self.max_words = max_words
        self.flex_l1 = flex_l1
        self.flex_l2 = flex_l2

    def cache_candidates(self, addr: int) -> List[int]:
        """Candidate words for a cache-sourced response around ``addr``."""
        region = self.regions.flex_region_for(addr) if self.flex_l1 else None
        if region is None:
            return list(words_of_line(line_of(addr)))
        return self.region_words(region, addr)

    def memory_region(self, addr: int):
        """The Flex region steering a memory response, or None."""
        return self.regions.flex_region_for(addr) if self.flex_l2 else None

    def region_words(self, region, addr: int) -> List[int]:
        """The region's field words around ``addr`` (requested word first)."""
        words = region.flex_words(addr, self.max_words)
        if addr not in words:
            words = [addr] + words[:self.max_words - 1]
        return words


class BypassPolicy:
    """L2 response/request bypass for annotated regions."""

    __slots__ = ("response_enabled", "request_enabled")

    def __init__(self, response_enabled: bool,
                 request_enabled: bool) -> None:
        self.response_enabled = response_enabled
        self.request_enabled = request_enabled

    def bypasses(self, region) -> bool:
        """True when ``region``'s memory responses skip the L2."""
        return (self.response_enabled and region is not None
                and region.bypass_l2)


class MemTransferPolicy:
    """Routing of memory responses: via the L2, or straight to the L1."""

    __slots__ = ("direct_to_l1",)

    def __init__(self, direct_to_l1: bool) -> None:
        self.direct_to_l1 = direct_to_l1


class PolicySet:
    """The policy objects one protocol core composes."""

    __slots__ = ("granularity", "writeback", "transfer", "bypass",
                 "mem_transfer")

    def __init__(self, granularity: GranularityPolicy,
                 writeback: WritebackPolicy, transfer: TransferPolicy,
                 bypass: BypassPolicy,
                 mem_transfer: MemTransferPolicy) -> None:
        self.granularity = granularity
        self.writeback = writeback
        self.transfer = transfer
        self.bypass = bypass
        self.mem_transfer = mem_transfer


def resolve_policies(proto, regions, config) -> PolicySet:
    """Resolve a :class:`ProtocolConfig`'s flags into policy objects.

    ``regions`` is the (per-run) region table the Flex and bypass
    policies consult; ``config`` supplies message geometry.
    """
    denovo = proto.kind == "denovo"
    return PolicySet(
        granularity=GranularityPolicy(
            l2_fetch_on_write=denovo and not proto.l2_write_validate),
        writeback=WritebackPolicy(
            # DeNovo L1 writebacks are structurally dirty-words-only;
            # the flag below is the MESI-side rung (MDirtyWB).
            l1_dirty_only=proto.dirty_wb_only,
            l2_dirty_only=proto.l2_dirty_wb_only or proto.dirty_wb_only),
        transfer=TransferPolicy(
            regions=regions, max_words=config.max_words_per_message,
            flex_l1=proto.flex_l1, flex_l2=proto.flex_l2),
        bypass=BypassPolicy(
            response_enabled=proto.bypass_l2_response,
            request_enabled=proto.bypass_l2_request),
        mem_transfer=MemTransferPolicy(direct_to_l1=proto.mem_to_l1),
    )

"""Coherence protocols: directory MESI and DeNovo with optimizations."""

from repro.coherence.denovo import DenovoSystem
from repro.coherence.mesi import MesiSystem

__all__ = ["DenovoSystem", "MesiSystem"]

"""Coherence layer: shared kernel, per-flag policies, protocol cores.

The layer is split in three:

* :mod:`repro.coherence.kernel` — :class:`CoherenceKernel`, the shared
  hierarchy machinery every protocol needs (L1/L2 tag+state arrays,
  fill reservation/protection, retire hooks, profiler touchpoints, the
  ``stats()`` protocol);
* :mod:`repro.coherence.policies` — small strategy objects resolved
  from a :class:`~repro.common.config.ProtocolConfig`'s feature flags
  (granularity, writeback filtering, Flex transfer, L2 bypass,
  mem-to-L1 routing);
* the protocol cores — :class:`MesiSystem` (line-granular directory
  MESI) and :class:`DenovoSystem` (word-granular DeNovo), each a
  state machine composing the kernel and its policies.

``PROTOCOL_CORES`` maps a ``ProtocolConfig.kind`` to its core class;
:func:`build_protocol_system` is the factory ``core.system.System``
uses.  A new protocol *rung* normally needs no new core — register a
new ``ProtocolConfig`` (see ``repro.common.registry``) whose flags
resolve to the right policies.  A new protocol *family* registers a
core class here via :func:`register_protocol_core`.
"""

from repro.coherence.denovo import DenovoSystem
from repro.coherence.kernel import CoherenceKernel
from repro.coherence.mesi import MesiSystem
from repro.coherence.policies import (
    BypassPolicy,
    GranularityPolicy,
    MemTransferPolicy,
    PolicySet,
    TransferPolicy,
    WritebackPolicy,
    resolve_policies,
)

#: ProtocolConfig.kind -> protocol-core class.
PROTOCOL_CORES = {
    "mesi": MesiSystem,
    "denovo": DenovoSystem,
}


def register_protocol_core(kind: str, core_cls, replace: bool = False):
    """Register a protocol-core class for a ``ProtocolConfig.kind``."""
    if kind in PROTOCOL_CORES and not replace:
        raise ValueError(f"protocol core for kind {kind!r} already "
                         f"registered; pass replace=True to override")
    PROTOCOL_CORES[kind] = core_cls
    return core_cls


def build_protocol_system(ctx) -> CoherenceKernel:
    """Instantiate the protocol core for ``ctx.proto.kind``."""
    kind = ctx.proto.kind
    try:
        core_cls = PROTOCOL_CORES[kind]
    except KeyError:
        known = ", ".join(PROTOCOL_CORES)
        raise KeyError(f"no protocol core registered for kind {kind!r}; "
                       f"known: {known}") from None
    return core_cls(ctx)


__all__ = [
    "BypassPolicy", "CoherenceKernel", "DenovoSystem", "GranularityPolicy",
    "MemTransferPolicy", "MesiSystem", "PROTOCOL_CORES", "PolicySet",
    "TransferPolicy", "WritebackPolicy", "build_protocol_system",
    "register_protocol_core", "resolve_policies",
]

"""The DeNovo protocol core and the paper's five optimizations.

``DenovoSystem`` is a protocol core on top of
:class:`~repro.coherence.kernel.CoherenceKernel`; the word-granular
coherence state machine lives here and every per-rung behaviour is a
policy object resolved from ``ProtocolConfig``
(:mod:`repro.coherence.policies`).

Baseline DeNovo (Choi et al. [8], plus the thesis's write-combining
extension):

* word-granular coherence: L1 words are Invalid, Valid or Registered
  (owned + dirty); the L2 tracks per-word registration instead of sharer
  lists;
* no invalidation/ack/unblock machinery — stale data is removed by
  *self-invalidation* at barriers, guided by software regions;
* L1 write-validate (a write miss allocates without fetching), L2
  fetch-on-write (an L2 write miss fetches the line from memory);
* dirty-words-only L1->L2 writebacks; non-inclusive L2;
* write-combining table batching word registrations per line (32 entries,
  10,000-cycle timeout, flushed at releases/barriers/evictions).

Optimizations (paper Section 3.1) and the policies they resolve to:

* ``flex_l1`` -> :class:`TransferPolicy` — Flex: cache-sourced responses
  return the communication region's words instead of the whole line;
* ``l2_write_validate`` -> :class:`GranularityPolicy` +
  ``l2_dirty_wb_only`` -> :class:`WritebackPolicy` — DValidateL2;
* ``mem_to_l1`` -> :class:`MemTransferPolicy` — memory responses go to
  the L1 and L2 in parallel, filtered by the L2's dirty-word mask;
* ``flex_l2`` -> :class:`TransferPolicy` — Flex extended to memory: the
  controller fetches only same-DRAM-row lines of the communication
  region and drops non-region words (counted as Excess waste);
* ``bypass_l2_response`` / ``bypass_l2_request`` ->
  :class:`BypassPolicy` — annotated regions' memory responses skip the
  L2 entirely; Bloom-filter-guarded requests go straight from the L1 to
  the memory controller.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.bloom.filters import L1FilterShadow, SliceFilterBank
from repro.cache.sa_cache import CacheLine
from repro.cache.writebuffer import WriteCombineEntry, WriteCombineTable
from repro.coherence.kernel import CoherenceKernel
from repro.common.addressing import (
    WORDS_PER_LINE, base_word, line_of, offset_of, words_of_line)
from repro.core.context import (
    NACK_RETRY_DELAY, LoadRequest, SimContext, StoreRequest)
from repro.network import traffic as T

# L1 per-word states.
W_INVALID = 0
W_VALID = 1
W_REG = 2      # registered: this core owns the latest value

# L2 per-word states.
L2W_INVALID = 0
L2W_VALID = 1
L2W_REG = 2    # some L1 owns the word; L2 data (if any) is stale


class DenovoL1Line(CacheLine):
    __slots__ = ()


class DenovoL2Line(CacheLine):
    __slots__ = ("owners", "in_bloom")

    def __init__(self, line_addr: int) -> None:
        super().__init__(line_addr)
        self.owners: List[Optional[int]] = [None] * WORDS_PER_LINE
        self.in_bloom = False

    def has_dirty_or_reg(self) -> bool:
        return any(self.word_dirty) or any(
            s == L2W_REG for s in self.word_state)

    def dirty_mask_offsets(self) -> List[int]:
        """Words the memory controller must not return from DRAM."""
        return [i for i in range(WORDS_PER_LINE)
                if self.word_dirty[i] or self.word_state[i] == L2W_REG]


class DenovoSystem(CoherenceKernel):
    """All L1s, the shared L2 and the DeNovo logic of one machine."""

    l1_line_cls = DenovoL1Line
    l2_line_cls = DenovoL2Line

    def __init__(self, ctx: SimContext) -> None:
        super().__init__(ctx)
        cfg = ctx.config
        self.wct = [WriteCombineTable(cfg.write_combine_entries,
                                      cfg.write_combine_timeout)
                    for _ in range(cfg.num_tiles)]
        self._outstanding_regs = [0] * cfg.num_tiles
        # MSHR-style coalescing: lines with a fill in flight, mapped to
        # loads waiting for that fill (prevents duplicate memory fetches
        # racing the streamed Flex prefetch responses).
        self._inflight_fills: List[Dict[int, List[Callable[[int], None]]]] = [
            dict() for _ in range(cfg.num_tiles)]
        self._wct_timer_armed = [False] * cfg.num_tiles
        self.stat_registrations = 0
        self.stat_reg_invalidations = 0
        self.stat_nacks = 0
        self.stat_direct_requests = 0
        self.stat_bypass_queries = 0
        self.stat_bloom_copies = 0
        self.stat_self_invalidated_words = 0
        if self.policies.bypass.request_enabled:
            self.slice_blooms = [
                SliceFilterBank(cfg.bloom_filters_per_slice,
                                cfg.bloom_entries, cfg.bloom_hashes,
                                seed=tile + 1)
                for tile in range(cfg.num_tiles)]
            # Every L1 shadows every slice's filters with the same hash
            # seeds, so projections can be unioned bit-for-bit.
            self.l1_blooms = [
                _ShadowArray(cfg, tile)
                for tile in range(cfg.num_tiles)]
        else:
            self.slice_blooms = []
            self.l1_blooms = []

    def stats(self) -> Dict[str, int]:
        return {
            "bloom_copies": self.stat_bloom_copies,
            "bypass_queries": self.stat_bypass_queries,
            "direct_requests": self.stat_direct_requests,
            "nacks": self.stat_nacks,
            "reg_invalidations": self.stat_reg_invalidations,
            "registrations": self.stat_registrations,
            "self_invalidated_words": self.stat_self_invalidated_words,
        }

    def energy_counters(self) -> Dict[str, int]:
        counters = super().energy_counters()
        counters.update(
            bloom_slice_checks=sum(b.stat_checks for b in self.slice_blooms),
            bloom_slice_updates=sum(b.stat_updates for b in self.slice_blooms),
            bloom_shadow_checks=sum(s.stat_checks for s in self.l1_blooms),
            bloom_shadow_inserts=sum(s.stat_inserts for s in self.l1_blooms),
            bloom_shadow_installs=sum(s.stat_installs
                                      for s in self.l1_blooms),
        )
        return counters

    def reset_energy_counters(self) -> None:
        super().reset_energy_counters()
        for bank in self.slice_blooms:
            bank.reset_energy_counters()
        for shadow in self.l1_blooms:
            shadow.reset_energy_counters()

    # ------------------------------------------------------------------
    # Core-facing interface
    # ------------------------------------------------------------------

    def load(self, core: int, addr: int, at: int,
             on_done: Callable[[int, LoadRequest], None]) -> Optional[int]:
        line_addr = line_of(addr)
        off = offset_of(addr)
        line = self.l1[core].lookup(line_addr)
        if line is not None and line.word_state[off] != W_INVALID:
            self._profile_load_hit(core, line, addr)
            return at + 1
        waiters = self._inflight_fills[core].get(line_addr)
        if waiters is not None:
            # A fill for this line is already in flight: wait for it
            # instead of issuing a duplicate request.
            waiters.append(
                lambda t: self._retry_load(core, addr, t, on_done))
            return None
        if line is None and not self._can_reserve(core, line_addr):
            self._retire_hooks[core].append(
                lambda t: self._retry_load(core, addr, t, on_done))
            return None
        request = LoadRequest(core=core, addr=addr, t_issue=at,
                              on_done=on_done)
        if line is None:
            self._protected[core].add(line_addr)
        region = self.ctx.regions.find(addr)
        bypassed = self.policies.bypass.bypasses(region)
        if bypassed and self.policies.bypass.request_enabled:
            self._bypass_request_path(request, at)
        else:
            self._send_req_ctl(
                T.LD, core, self.ctx.home_tile(line_addr), at,
                lambda t: self._l2_gets(request, t))
        return None

    def store(self, core: int, addr: int, at: int) -> bool:
        line_addr = line_of(addr)
        off = offset_of(addr)
        line = self.l1[core].lookup(line_addr)
        if line is None:
            # Write-validate: allocate without fetching.
            line = self._allocate_l1(core, line_addr)
        already_owned = line.word_state[off] == W_REG
        self._apply_store_word(core, line, addr)
        if already_owned:
            return True
        wct = self.wct[core]
        if not wct.has(line_addr) and wct.is_full():
            oldest = wct.oldest()
            wct.pop(oldest.line_addr)
            self._send_registration(core, oldest, at)
        entry = wct.add_store(addr, at)
        if entry.is_full_line:
            wct.pop(line_addr)
            self._send_registration(core, entry, at)
        else:
            self._arm_wct_timer(core)
        return True

    def pending_store_count(self, core: int) -> int:
        return self._outstanding_regs[core] + len(self.wct[core])

    def drain_barrier(self, core: int, at: int,
                      resume: Callable[[int], None]) -> None:
        """Flush the write-combining table, wait for registration acks."""
        for entry in self.wct[core].drain():
            self._send_registration(core, entry, at)
        if self._outstanding_regs[core] == 0:
            resume(at)
            return

        def check(t: int) -> None:
            if self._outstanding_regs[core] == 0:
                resume(t)
            else:
                self._retire_hooks[core].append(check)

        self._retire_hooks[core].append(check)

    def on_barrier(self, written_regions: Set[int]) -> None:
        """Barrier-time work: self-invalidation and Bloom shadow clears."""
        ctx = self.ctx
        for core in range(ctx.config.num_tiles):
            for line in self.l1[core].resident_lines():
                region = ctx.regions.find(base_word(line.line_addr))
                if region is None or region.region_id not in written_regions:
                    continue
                for off in range(WORDS_PER_LINE):
                    if line.word_state[off] == W_VALID:
                        word = base_word(line.line_addr) + off
                        ctx.l1_prof.on_invalidate(core, word)
                        inst = line.mem_inst[off]
                        if inst is not None:
                            ctx.mem_prof.drop_copy(inst, invalidated=True)
                            line.mem_inst[off] = None
                        line.word_state[off] = W_INVALID
                        self.stat_self_invalidated_words += 1
        for shadow in self.l1_blooms:
            shadow.clear()

    def finalize(self) -> None:
        """Flush any write-combining leftovers at end of simulation."""
        now = self.ctx.queue.now
        for core in range(self.ctx.config.num_tiles):
            for entry in self.wct[core].drain():
                self._send_registration(core, entry, now)

    # ------------------------------------------------------------------
    # L1 basics
    # ------------------------------------------------------------------

    def _apply_store_word(self, core: int, line: DenovoL1Line,
                          addr: int) -> None:
        off = offset_of(addr)
        self.ctx.l1_prof.on_write(core, addr)
        self.ctx.mem_prof.on_store_addr(addr)
        inst = line.mem_inst[off]
        if inst is not None:
            # The local copy no longer derives from the memory instance.
            self.ctx.mem_prof.drop_copy(inst, invalidated=False)
            line.mem_inst[off] = None
        line.word_state[off] = W_REG
        line.word_dirty[off] = True

    def _evict_l1_line(self, core: int, line: DenovoL1Line) -> None:
        """Evict an L1 line: profile, then write back dirty words only."""
        ctx = self.ctx
        at = ctx.queue.now
        line_addr = line.line_addr
        for word in words_of_line(line_addr):
            ctx.l1_prof.on_evict(core, word)
        for inst in line.mem_inst:
            if inst is not None:
                ctx.mem_prof.drop_copy(inst, invalidated=False)
        pending = self.wct[core].pop(line_addr)
        dirty_offsets = line.dirty_offsets()
        if not dirty_offsets:
            return
        home = ctx.home_tile(line_addr)
        pending_mask = pending.word_mask if pending is not None else 0
        # Paper: eviction with pending registrations sends two messages —
        # a plain writeback for already-registered words and a combined
        # writeback+register for pending ones; both profiled as WB traffic.
        plain = [o for o in dirty_offsets if not pending_mask >> o & 1]
        combined = [o for o in dirty_offsets if pending_mask >> o & 1]
        for offsets in (plain, combined):
            if not offsets:
                continue
            ctx.send_wb(
                core, home, at, [True] * len(offsets), T.DEST_L2,
                lambda t, offs=tuple(offsets):
                self._l2_accept_wb(core, line_addr, offs, t))
        if self.l1_blooms:
            self.l1_blooms[core].note_writeback(home, line_addr)

    # ------------------------------------------------------------------
    # Registration (store) path
    # ------------------------------------------------------------------

    def _arm_wct_timer(self, core: int) -> None:
        if self._wct_timer_armed[core]:
            return
        deadline = self.wct[core].next_deadline()
        if deadline is None:
            return
        self._wct_timer_armed[core] = True

        def check() -> None:
            self._wct_timer_armed[core] = False
            now = self.ctx.queue.now
            for entry in self.wct[core].expired(now):
                self._send_registration(core, entry, now)
            self._arm_wct_timer(core)

        self.ctx.queue.schedule(max(deadline, self.ctx.queue.now), check)

    def _send_registration(self, core: int, entry: WriteCombineEntry,
                           at: int) -> None:
        """One registration request message for a line's pending words."""
        self._outstanding_regs[core] += 1
        self.stat_registrations += 1
        line_addr = entry.line_addr
        home = self.ctx.home_tile(line_addr)
        mask = entry.word_mask
        self._send_req_ctl(
            T.ST, core, home, max(at, self.ctx.queue.now),
            lambda t: self._l2_register(core, line_addr, mask, t))

    def _l2_register(self, core: int, line_addr: int, mask: int,
                     arrive: int) -> None:
        ctx = self.ctx
        home = ctx.home_tile(line_addr)
        t = ctx.l2_service_time(home, arrive)
        entry = self.l2[home].lookup(line_addr)
        if entry is None:
            entry = self._reserve_l2(home, line_addr)
            if self.policies.granularity.l2_fetch_on_write:
                # Baseline L2 fetch-on-write: a write miss at the L2
                # fetches the whole line from memory (store traffic).
                self._fetch_line_for_write(entry, home, t)
        # A registration that raced the registrant's own eviction must
        # not install stale ownership: keep only words the core still
        # holds registered (the eviction's writeback covers the rest).
        held_line = self.l1[core].lookup(line_addr, touch=False)
        if held_line is None:
            mask = 0
        else:
            for off in range(WORDS_PER_LINE):
                if mask >> off & 1 and held_line.word_state[off] != W_REG:
                    mask &= ~(1 << off)
        if mask == 0:
            ctx.send_resp_ctl(T.ST, home, core, t,
                              lambda tt: self._reg_ack(core, tt))
            return
        base = base_word(line_addr)
        for off in range(WORDS_PER_LINE):
            if not mask >> off & 1:
                continue
            word = base + off
            old_owner = (entry.owners[off]
                         if entry.word_state[off] == L2W_REG else None)
            if old_owner is not None and old_owner != core:
                self.stat_reg_invalidations += 1
                self._invalidate_remote_word(home, old_owner, word, t)
            if entry.word_state[off] == L2W_VALID:
                # The L2's copy is now stale; it dies as Write waste.
                ctx.l2_prof.on_write(home, word)
            entry.word_state[off] = L2W_REG
            entry.owners[off] = core
            entry.word_dirty[off] = False
        if self.slice_blooms and not entry.in_bloom:
            self.slice_blooms[home].insert(line_addr)
            entry.in_bloom = True
        ctx.send_resp_ctl(T.ST, home, core, t,
                          lambda tt: self._reg_ack(core, tt))

    def _reg_ack(self, core: int, t: int) -> None:
        self._outstanding_regs[core] -= 1
        self._fire_retire_hooks(core, t)

    def _invalidate_remote_word(self, home: int, owner: int, word: int,
                                t: int) -> None:
        """Registration displaced an old registrant: invalidate its copy.

        Counted as store request-control traffic (it is required to
        complete the store; DeNovo's only *overhead* messages are NACKs
        and Bloom traffic, per Section 5.1).
        """
        ctx = self.ctx

        def handler(tt: int) -> None:
            line = self.l1[owner].lookup(line_of(word), touch=False)
            if line is None:
                return
            off = offset_of(word)
            if line.word_state[off] != W_INVALID:
                ctx.l1_prof.on_invalidate(owner, word)
                inst = line.mem_inst[off]
                if inst is not None:
                    ctx.mem_prof.drop_copy(inst, invalidated=True)
                    line.mem_inst[off] = None
                line.word_state[off] = W_INVALID
                line.word_dirty[off] = False

        hops = ctx.mesh.hops(home, owner)
        ctx.ledger.add_request_ctl(T.ST, hops)
        arrive = t + ctx.mesh.latency(home, owner, 1, t)
        ctx.queue.schedule(arrive, lambda: handler(arrive))

    def _fetch_line_for_write(self, entry: DenovoL2Line, home: int,
                              t: int) -> None:
        """Baseline L2 fetch-on-write: pull the whole line from memory."""
        ctx = self.ctx
        line_addr = entry.line_addr
        mc = ctx.mc_tile(line_addr)

        def at_mc(arrive: int) -> None:
            def dram_done(tt: int) -> None:
                insts = []
                l2_entries = []
                offsets = []
                for off, word in enumerate(words_of_line(line_addr)):
                    already = entry.word_state[off] != L2W_INVALID
                    l2_entries.append(
                        ctx.l2_prof.on_arrival(home, word, already))
                    insts.append(ctx.mem_prof.fetch(word, already))
                    offsets.append(off)

                def at_l2(t3: int) -> None:
                    for off, inst in zip(offsets, insts):
                        if entry.word_state[off] == L2W_INVALID:
                            entry.word_state[off] = L2W_VALID
                            entry.mem_inst[off] = inst
                            ctx.mem_prof.install_copy(inst)

                ctx.send_data(T.ST, T.DEST_L2, mc, home, tt, l2_entries,
                              at_l2)

            ctx.dram_for(line_addr).read(line_addr, dram_done)

        ctx.send_req_ctl(T.ST, home, mc, t, at_mc)

    # ------------------------------------------------------------------
    # Load path: L2 handling
    # ------------------------------------------------------------------

    def _l2_gets(self, req: LoadRequest, arrive: int) -> None:
        ctx = self.ctx
        addr = req.addr
        line_addr = line_of(addr)
        off = offset_of(addr)
        home = ctx.home_tile(line_addr)
        t = ctx.l2_service_time(home, arrive)
        entry = self.l2[home].lookup(line_addr)

        if (entry is not None and entry.word_state[off] == L2W_REG
                and entry.owners[off] not in (None, req.core)):
            self._forward_to_owner(req, entry, home, t)
            return
        if (entry is not None and entry.word_state[off] == L2W_REG
                and entry.owners[off] == req.core):
            # The requestor itself was the registrant but lost the line;
            # heal: the writeback (if any) made the L2 copy dirty-valid.
            if entry.word_dirty[off]:
                entry.word_state[off] = L2W_VALID
            else:
                entry.word_state[off] = L2W_INVALID
            entry.owners[off] = None
        if entry is not None and entry.word_state[off] == L2W_VALID:
            self._respond_from_l2(req, entry, home, t)
            return
        self._load_miss_to_memory(req, entry, home, t)

    def _respond_from_l2(self, req: LoadRequest, entry: DenovoL2Line,
                         home: int, t: int) -> None:
        """L2 hit: respond with the line's valid words (or Flex subset)."""
        ctx = self.ctx
        words = self._gather_l2_words(req.addr, home)
        l1_entries = []
        payload: List[Tuple[int, object, object]] = []
        for word in words:
            ctx.l2_prof.on_use(home, word)
            wentry = ctx.l1_prof.on_arrival(
                req.core, word, self._l1_has_word(req.core, word))
            l1_entries.append(wentry)
            src_line = self.l2[home].lookup(line_of(word), touch=False)
            inst = (src_line.mem_inst[offset_of(word)]
                    if src_line is not None else None)
            payload.append((word, wentry, inst))
        ctx.send_data(
            T.LD, T.DEST_L1, home, req.core, t, l1_entries,
            lambda tt: self._l1_load_fill(req, payload, tt))

    def _gather_l2_words(self, addr: int, home: int) -> List[int]:
        """Words an L2 response carries: Flex subset or valid line words."""
        ctx = self.ctx
        out = []
        for word in self.policies.transfer.cache_candidates(addr):
            wline = line_of(word)
            if ctx.home_tile(wline) != home:
                continue   # the slice can only gather its own lines
            lentry = self.l2[home].lookup(wline, touch=False)
            if lentry is None:
                continue
            if lentry.word_state[offset_of(word)] == L2W_VALID:
                out.append(word)
        return out

    def _l1_has_word(self, core: int, word: int) -> bool:
        line = self.l1[core].lookup(line_of(word), touch=False)
        return (line is not None
                and line.word_state[offset_of(word)] != W_INVALID)

    def _forward_to_owner(self, req: LoadRequest, entry: DenovoL2Line,
                          home: int, t: int) -> None:
        """Requested word registered to another L1: forward the request."""
        ctx = self.ctx
        owner = entry.owners[offset_of(req.addr)]
        line_addr = line_of(req.addr)

        def at_owner(tt: int) -> None:
            oline = self.l1[owner].lookup(line_addr, touch=False)
            off = offset_of(req.addr)
            if oline is None or oline.word_state[off] == W_INVALID:
                # Stale registration: the owner's eviction writeback and a
                # late in-flight registration raced at the home.  Heal the
                # L2 state (the writeback data is the latest value) so the
                # retry is served from the L2 instead of looping forever.
                home_entry = self.l2[ctx.home_tile(line_addr)].lookup(
                    line_addr, touch=False)
                if (home_entry is not None
                        and home_entry.word_state[off] == L2W_REG
                        and home_entry.owners[off] == owner):
                    home_entry.word_state[off] = L2W_VALID
                    home_entry.word_dirty[off] = True
                    home_entry.owners[off] = None
                self.stat_nacks += 1
                ctx.send_overhead(
                    T.OVH_NACK, owner, req.core, tt,
                    lambda t3: self._retry_gets(req, t3))
                return
            words = self._gather_owner_words(owner, req.addr)
            l1_entries = []
            payload = []
            for word in words:
                wentry = ctx.l1_prof.on_arrival(
                    req.core, word, self._l1_has_word(req.core, word))
                l1_entries.append(wentry)
                src = self.l1[owner].lookup(line_of(word), touch=False)
                inst = (src.mem_inst[offset_of(word)]
                        if src is not None else None)
                payload.append((word, wentry, inst))
            ctx.send_data(
                T.LD, T.DEST_L1, owner, req.core, tt, l1_entries,
                lambda t3: self._l1_load_fill(req, payload, t3))

        ctx.send_req_ctl(T.LD, home, owner, t, at_owner)

    def _gather_owner_words(self, owner: int, addr: int) -> List[int]:
        """Words a cache-to-cache response carries from the owner L1."""
        out = []
        for word in self.policies.transfer.cache_candidates(addr):
            line = self.l1[owner].lookup(line_of(word), touch=False)
            if line is None:
                continue
            if line.word_state[offset_of(word)] != W_INVALID:
                out.append(word)
        return out

    def _retry_gets(self, req: LoadRequest, at: int) -> None:
        req.retries += 1
        line_addr = line_of(req.addr)
        self._send_req_ctl(
            T.LD, req.core, self.ctx.home_tile(line_addr),
            at + NACK_RETRY_DELAY, lambda t: self._l2_gets(req, t))

    # ------------------------------------------------------------------
    # Load path: memory
    # ------------------------------------------------------------------

    def _load_miss_to_memory(self, req: LoadRequest,
                             entry: Optional[DenovoL2Line], home: int,
                             t: int) -> None:
        ctx = self.ctx
        addr = req.addr
        line_addr = line_of(addr)
        region = ctx.regions.find(addr)
        bypassed = self.policies.bypass.bypasses(region)
        req.went_to_memory = True
        mc = ctx.mc_tile(line_addr)
        dirty_offsets = (tuple(entry.dirty_mask_offsets())
                         if entry is not None else ())
        if not bypassed and entry is None:
            entry = self._reserve_l2(home, line_addr)
        fill_l2 = not bypassed

        ctx.send_req_ctl(
            T.LD, home, mc, t,
            lambda tt: self._mc_load(req, home, mc, dirty_offsets,
                                     fill_l2, tt))

    def _bypass_request_path(self, req: LoadRequest, at: int) -> None:
        """L2 Request Bypass: consult the L1 Bloom shadow, maybe go direct."""
        ctx = self.ctx
        core = req.core
        line_addr = line_of(req.addr)
        home = ctx.home_tile(line_addr)
        shadow = self.l1_blooms[core]
        self.stat_bypass_queries += 1
        if not shadow.has_copy(home, line_addr):
            self._fetch_bloom_copy(req, core, home, line_addr, at)
            return
        if shadow.may_contain(home, line_addr):
            # Possibly dirty on-chip: take the normal path through the L2.
            ctx.send_req_ctl(T.LD, core, home, at,
                             lambda t: self._l2_gets(req, t))
            return
        # Provably clean: go straight to the memory controller.
        self.stat_direct_requests += 1
        req.went_to_memory = True
        mc = ctx.mc_tile(line_addr)
        ctx.send_req_ctl(
            T.LD, core, mc, at,
            lambda t: self._mc_load(req, home, mc, (), False, t))

    def _fetch_bloom_copy(self, req: LoadRequest, core: int, home: int,
                          line_addr: int, at: int) -> None:
        """Copy the needed L2 Bloom filter into the L1 shadow (overhead)."""
        ctx = self.ctx
        self.stat_bloom_copies += 1
        filter_index = self.slice_blooms[home].filter_index(line_addr)
        # The 1-bit projection of one filter: entries/8 bytes of payload.
        payload_bytes = ctx.config.bloom_entries // 8
        copy_flits = 1 + -(-payload_bytes // ctx.config.link_bytes)

        def at_l2(t: int) -> None:
            ctx.send_overhead(
                T.OVH_BLOOM, home, core, t,
                lambda tt: install(tt), flits=copy_flits)

        def install(t: int) -> None:
            bits = self.slice_blooms[home].bit_projection(filter_index)
            self.l1_blooms[core].install(home, filter_index, bits)
            self._bypass_request_path(req, t)

        ctx.send_overhead(T.OVH_BLOOM, core, home, at, at_l2)

    def _mc_load(self, req: LoadRequest, home: int, mc: int,
                 dirty_offsets: Tuple[int, ...], fill_l2: bool,
                 arrive: int) -> None:
        """Memory controller handling of a load: fetch, filter, respond."""
        ctx = self.ctx
        req.t_arrive_mc = arrive
        addr = req.addr
        line_addr = line_of(addr)
        dram = ctx.dram_for(line_addr)

        # Which lines to fetch and which words to send.
        transfer = self.policies.transfer
        flex_region = transfer.memory_region(addr)
        if flex_region is not None:
            wanted = transfer.region_words(flex_region, addr)
            lines = []
            for word in wanted:
                wline = line_of(word)
                if wline not in lines and dram.same_row(line_addr, wline):
                    lines.append(wline)
            if line_addr not in lines:
                lines.insert(0, line_addr)
            wanted_set = set(w for w in wanted if line_of(w) in lines)
            # The critical line is open at the controller anyway: harvest
            # the communication-region fields of every element it holds
            # (Flex responses may combine words of different elements;
            # at the L1 some arrive already-present -> Fetch waste).
            wanted_set.update(self._region_fields_on_line(flex_region,
                                                          line_addr))
        else:
            lines = [line_addr]
            wanted_set = set(words_of_line(line_addr))
        masked = {base_word(line_addr) + off for off in dirty_offsets}

        # One response message per fetched line, sent as soon as that
        # line's read completes (the controller streams; waiting for the
        # whole multi-line Flex gather would penalize the critical load).
        # The critical line's response carries the requested word and
        # completes the load; prefetch-line responses just install.
        def respond_line(fetched_line: int, t: int) -> None:
            send_words: List[int] = []
            for word in words_of_line(fetched_line):
                if word in masked:
                    continue
                if word in wanted_set:
                    send_words.append(word)
                elif flex_region is not None:
                    # Read out of DRAM, dropped at the controller.
                    ctx.mem_prof.fetch_excess(word)
            completes = fetched_line == line_addr
            if completes:
                req.t_leave_mc = t
            self._mc_respond(req, home, mc, send_words, fill_l2, t,
                             completes=completes)

        for fetched_line in lines:
            dram.read(fetched_line,
                      lambda t, fl=fetched_line: respond_line(fl, t))

    @staticmethod
    def _region_fields_on_line(region, line_addr: int) -> List[int]:
        """Communication-region field words falling on ``line_addr``."""
        out = []
        flex = region.flex
        for word in words_of_line(line_addr):
            if not region.contains(word):
                continue
            if (word - region.base_word) % flex.stride_words in \
                    flex.field_offsets:
                out.append(word)
        return out

    def _mc_respond(self, req: LoadRequest, home: int, mc: int,
                    words: List[int], fill_l2: bool, t: int,
                    completes: bool = True) -> None:
        ctx = self.ctx
        core = req.core
        if not words:
            if completes:
                # Everything was masked (dirty on-chip): retry via L2.
                self._retry_gets(req, t)
            return
        insts = {}
        for word in words:
            l2_has = self._l2_has_word(word)
            insts[word] = ctx.mem_prof.fetch(word, l2_has)

        # L1 leg (always; baseline routes through the L2 first).
        def send_l1(src: int, at: int) -> None:
            l1_entries = []
            payload = []
            fill_lines = set()
            for word in words:
                wentry = ctx.l1_prof.on_arrival(
                    core, word, self._l1_has_word(core, word))
                l1_entries.append(wentry)
                payload.append((word, wentry, insts[word]))
                fill_lines.add(line_of(word))
            inflight = self._inflight_fills[core]
            for fl in fill_lines:
                inflight.setdefault(fl, [])

            def on_fill(tt: int) -> None:
                self._l1_load_fill(req, payload, tt, completes=completes)
                for fl in fill_lines:
                    for waiter in inflight.pop(fl, []):
                        ctx.queue.schedule(
                            max(tt, ctx.queue.now),
                            lambda w=waiter, t3=tt: w(t3))

            ctx.send_data(T.LD, T.DEST_L1, src, core, at, l1_entries,
                          on_fill)

        def send_l2(at: int, then=None) -> None:
            l2_entries = []
            for word in words:
                already = self._l2_has_word(word)
                l2_entries.append(ctx.l2_prof.on_arrival(
                    ctx.home_tile(line_of(word)), word, already))

            def at_l2(tt: int) -> None:
                self._fill_l2_words(words, insts)
                if then is not None:
                    then(tt)

            ctx.send_data(T.LD, T.DEST_L2, mc, home, at, l2_entries, at_l2)

        if not fill_l2:
            send_l1(mc, t)
        elif self.policies.mem_transfer.direct_to_l1:
            # Parallel transfer to the L1 and the L2.
            send_l1(mc, t)
            send_l2(t)
        else:
            # Baseline: memory -> L2 -> L1.
            send_l2(t, then=lambda tt: send_l1(home, tt))

    def _l2_has_word(self, word: int) -> bool:
        home = self.ctx.home_tile(line_of(word))
        entry = self.l2[home].lookup(line_of(word), touch=False)
        return (entry is not None
                and entry.word_state[offset_of(word)] != L2W_INVALID)

    def _fill_l2_words(self, words: List[int], insts: Dict[int, object]) -> None:
        ctx = self.ctx
        for word in words:
            wline = line_of(word)
            home = ctx.home_tile(wline)
            entry = self.l2[home].lookup(wline)
            if entry is None:
                entry = self._reserve_l2(home, wline)
            off = offset_of(word)
            if entry.word_state[off] == L2W_INVALID:
                entry.word_state[off] = L2W_VALID
                entry.mem_inst[off] = insts[word]
                ctx.mem_prof.install_copy(insts[word])

    # ------------------------------------------------------------------
    # L1 fill and completion
    # ------------------------------------------------------------------

    def _l1_load_fill(self, req: LoadRequest,
                      payload: List[Tuple[int, object, object]],
                      t: int, completes: bool = True) -> None:
        """Install delivered words into the requestor's L1; when this is
        the response carrying the requested word, finish the load."""
        ctx = self.ctx
        core = req.core
        for word, _entry, inst in payload:
            wline = line_of(word)
            line = self.l1[core].lookup(wline, touch=False)
            if line is None:
                if wline == line_of(req.addr):
                    line = self._allocate_l1(core, wline)
                elif self._can_reserve(core, wline):
                    line = self._allocate_l1(core, wline)
                else:
                    continue   # prefetched line has no room; drop it
            off = offset_of(word)
            if line.word_state[off] == W_INVALID:
                line.word_state[off] = W_VALID
                line.mem_inst[off] = inst
                if inst is not None:
                    ctx.mem_prof.install_copy(inst)
        if not completes:
            return
        line_addr = line_of(req.addr)
        self._protected[core].discard(line_addr)
        line = self.l1[core].lookup(line_addr, touch=False)
        if line is None or line.word_state[offset_of(req.addr)] == W_INVALID:
            # The needed word did not arrive (e.g. masked at the memory
            # controller because it was dirty on-chip): retry through L2.
            self._retry_gets(req, t)
            return
        self._profile_load_hit(core, line, req.addr)
        req.on_done(t + 1, req)

    # ------------------------------------------------------------------
    # L2 allocation / writebacks / eviction
    # ------------------------------------------------------------------

    def _reserve_l2(self, home: int, line_addr: int) -> DenovoL2Line:
        cache = self.l2[home]
        existing = cache.lookup(line_addr)
        if existing is not None:
            return existing
        victim = cache.victim_for(line_addr)
        if victim is not None:
            cache.remove(victim.line_addr)
            self._evict_l2_line(home, victim)
        line, auto_victim = cache.allocate(line_addr)
        if auto_victim is not None:
            self._evict_l2_line(home, auto_victim)
        return line

    def _l2_accept_wb(self, core: int, line_addr: int,
                      offsets: Tuple[int, ...], t: int) -> None:
        """Dirty words from an L1 writeback arrive at the home slice."""
        ctx = self.ctx
        home = ctx.home_tile(line_addr)
        entry = self.l2[home].lookup(line_addr)
        if entry is None:
            entry = self._reserve_l2(home, line_addr)
            if self.policies.granularity.l2_fetch_on_write:
                self._fetch_line_for_write(entry, home, t)
        base = base_word(line_addr)
        for off in offsets:
            word = base + off
            if (entry.word_state[off] == L2W_VALID
                    and not entry.word_dirty[off]):
                ctx.l2_prof.on_write(home, word)
            entry.word_state[off] = L2W_VALID
            entry.word_dirty[off] = True
            entry.owners[off] = None
            if entry.mem_inst[off] is not None:
                ctx.mem_prof.drop_copy(entry.mem_inst[off],
                                       invalidated=False)
                entry.mem_inst[off] = None
        if self.slice_blooms and not entry.in_bloom:
            self.slice_blooms[home].insert(line_addr)
            entry.in_bloom = True

    def _evict_l2_line(self, home: int, entry: DenovoL2Line) -> None:
        """Evict an L2 line: recall registered words, write dirty to DRAM."""
        ctx = self.ctx
        at = ctx.queue.now
        line_addr = entry.line_addr
        base = base_word(line_addr)
        # Recall registered words from their owners; the owners write the
        # dirty data straight to memory.
        owners = {entry.owners[off] for off in range(WORDS_PER_LINE)
                  if entry.word_state[off] == L2W_REG
                  and entry.owners[off] is not None}
        for owner in owners:
            ctx.send_overhead(T.OVH_INVAL, home, owner, at)
            oline = self.l1[owner].lookup(line_addr, touch=False)
            if oline is None:
                continue
            recalled = [off for off in range(WORDS_PER_LINE)
                        if entry.owners[off] == owner
                        and oline.word_state[off] == W_REG]
            if recalled:
                mc = ctx.mc_tile(line_addr)
                ctx.send_wb(owner, mc, at, [True] * len(recalled),
                            T.DEST_MEM,
                            lambda t, la=line_addr:
                            ctx.dram_for(la).write(la))
            for off in range(WORDS_PER_LINE):
                if oline.word_state[off] != W_INVALID:
                    word = base + off
                    ctx.l1_prof.on_invalidate(owner, word)
                    inst = oline.mem_inst[off]
                    if inst is not None:
                        ctx.mem_prof.drop_copy(inst, invalidated=True)
                oline.word_state[off] = W_INVALID
                oline.word_dirty[off] = False
                oline.mem_inst[off] = None
            self.wct[owner].pop(line_addr)
        # Profile the L2 copies and write dirty words back.
        for word in words_of_line(line_addr):
            ctx.l2_prof.on_evict(home, word)
        for inst in entry.mem_inst:
            if inst is not None:
                ctx.mem_prof.drop_copy(inst, invalidated=False)
        if entry.any_dirty():
            mc = ctx.mc_tile(line_addr)
            # DValidateL2 rung: only the dirty words travel; baseline
            # ships the whole line and unmodified words die as Waste
            # (Figure 5.1d, Mem Waste).
            flags = self.policies.writeback.l2_flags(entry.word_dirty)
            ctx.send_wb(home, mc, at, flags, T.DEST_MEM,
                        lambda t, la=line_addr: ctx.dram_for(la).write(la))
        if self.slice_blooms and entry.in_bloom:
            self.slice_blooms[home].remove(line_addr)
            entry.in_bloom = False


class _ShadowArray(L1FilterShadow):
    """Per-core shadow of all slices' filters, seeded to match each slice."""

    def __init__(self, cfg, core: int) -> None:
        # Seeds must match SliceFilterBank(seed=tile + 1) per slice; the
        # L1FilterShadow base uses one seed for all slices, so build one
        # shadow per slice seed instead.
        self._cfg = cfg
        self._shadows = [
            L1FilterShadow(1, cfg.bloom_filters_per_slice,
                           cfg.bloom_entries, cfg.bloom_hashes,
                           seed=tile + 1)
            for tile in range(cfg.num_tiles)]

    def has_copy(self, slice_id: int, line_addr: int) -> bool:
        return self._shadows[slice_id].has_copy(0, line_addr)

    def filter_index(self, line_addr: int) -> int:
        raise NotImplementedError("use the slice bank's filter_index")

    def install(self, slice_id: int, filter_index: int, bits) -> None:
        self._shadows[slice_id].install(0, filter_index, bits)

    def note_writeback(self, slice_id: int, line_addr: int) -> None:
        self._shadows[slice_id].note_writeback(0, line_addr)

    def may_contain(self, slice_id: int, line_addr: int) -> bool:
        return self._shadows[slice_id].may_contain(0, line_addr)

    def clear(self) -> None:
        for shadow in self._shadows:
            shadow.clear()

    # Energy counters aggregate over the per-slice shadows (this class
    # never runs the base __init__, so the base counters don't exist).
    @property
    def stat_checks(self) -> int:
        return sum(s.stat_checks for s in self._shadows)

    @property
    def stat_inserts(self) -> int:
        return sum(s.stat_inserts for s in self._shadows)

    @property
    def stat_installs(self) -> int:
        return sum(s.stat_installs for s in self._shadows)

    def reset_energy_counters(self) -> None:
        for shadow in self._shadows:
            shadow.reset_energy_counters()

"""The DeNovo protocol core and the paper's five optimizations.

``DenovoSystem`` is a protocol core on top of
:class:`~repro.coherence.kernel.CoherenceKernel`; the word-granular
coherence state machine lives here and every per-rung behaviour is a
policy object resolved from ``ProtocolConfig``
(:mod:`repro.coherence.policies`).

Baseline DeNovo (Choi et al. [8], plus the thesis's write-combining
extension):

* word-granular coherence: L1 words are Invalid, Valid or Registered
  (owned + dirty); the L2 tracks per-word registration instead of sharer
  lists;
* no invalidation/ack/unblock machinery — stale data is removed by
  *self-invalidation* at barriers, guided by software regions;
* L1 write-validate (a write miss allocates without fetching), L2
  fetch-on-write (an L2 write miss fetches the line from memory);
* dirty-words-only L1->L2 writebacks; non-inclusive L2;
* write-combining table batching word registrations per line (32 entries,
  10,000-cycle timeout, flushed at releases/barriers/evictions).

Optimizations (paper Section 3.1) and the policies they resolve to:

* ``flex_l1`` -> :class:`TransferPolicy` — Flex: cache-sourced responses
  return the communication region's words instead of the whole line;
* ``l2_write_validate`` -> :class:`GranularityPolicy` +
  ``l2_dirty_wb_only`` -> :class:`WritebackPolicy` — DValidateL2;
* ``mem_to_l1`` -> :class:`MemTransferPolicy` — memory responses go to
  the L1 and L2 in parallel, filtered by the L2's dirty-word mask;
* ``flex_l2`` -> :class:`TransferPolicy` — Flex extended to memory: the
  controller fetches only same-DRAM-row lines of the communication
  region and drops non-region words (counted as Excess waste);
* ``bypass_l2_response`` / ``bypass_l2_request`` ->
  :class:`BypassPolicy` — annotated regions' memory responses skip the
  L2 entirely; Bloom-filter-guarded requests go straight from the L1 to
  the memory controller.

Message continuations use the closure-free scheduling convention
(``handler, *args`` with the arrival time appended as the last
argument); the hot load/store/registration/fill paths allocate no
lambdas.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.bloom.filters import L1FilterShadow, SliceFilterBank
from repro.cache.sa_cache import CacheLine
from repro.cache.writebuffer import WriteCombineEntry, WriteCombineTable
from repro.coherence.kernel import CoherenceKernel
from repro.common.addressing import (
    WORDS_PER_LINE, base_word, line_of, offset_of, words_of_line)
from repro.core.context import (
    NACK_RETRY_DELAY, SERVED_L2, SERVED_MEMORY, SERVED_REMOTE_L1,
    LoadRequest, SimContext)
from repro.network import traffic as T

# Hot paths inline line_of/offset_of as ``addr >> 4`` / ``addr & 15``
# (64-byte lines of 4-byte words; pinned in repro.common.addressing).

# L1 per-word states.
W_INVALID = 0
W_VALID = 1
W_REG = 2      # registered: this core owns the latest value

# L2 per-word states.
L2W_INVALID = 0
L2W_VALID = 1
L2W_REG = 2    # some L1 owns the word; L2 data (if any) is stale


class DenovoL1Line(CacheLine):
    __slots__ = ()


class DenovoL2Line(CacheLine):
    __slots__ = ("owners", "in_bloom")

    def __init__(self, line_addr: int) -> None:
        super().__init__(line_addr)
        self.owners: List[Optional[int]] = [None] * WORDS_PER_LINE
        self.in_bloom = False

    def has_dirty_or_reg(self) -> bool:
        return any(self.word_dirty) or any(
            s == L2W_REG for s in self.word_state)

    def dirty_mask_offsets(self) -> List[int]:
        """Words the memory controller must not return from DRAM."""
        return [i for i in range(WORDS_PER_LINE)
                if self.word_dirty[i] or self.word_state[i] == L2W_REG]


class DenovoSystem(CoherenceKernel):
    """All L1s, the shared L2 and the DeNovo logic of one machine."""

    l1_line_cls = DenovoL1Line
    l2_line_cls = DenovoL2Line

    def __init__(self, ctx: SimContext) -> None:
        super().__init__(ctx)
        cfg = ctx.config
        self.wct = [WriteCombineTable(cfg.write_combine_entries,
                                      cfg.write_combine_timeout)
                    for _ in range(cfg.num_tiles)]
        self._outstanding_regs = [0] * cfg.num_tiles
        # MSHR-style coalescing: lines with a fill in flight, mapped to
        # loads waiting for that fill (prevents duplicate memory fetches
        # racing the streamed Flex prefetch responses).
        self._inflight_fills: List[Dict[int, List[Callable[[int], None]]]] = [
            dict() for _ in range(cfg.num_tiles)]
        self._wct_timer_armed = [False] * cfg.num_tiles
        self.stat_registrations = 0
        self.stat_reg_invalidations = 0
        self.stat_nacks = 0
        self.stat_direct_requests = 0
        self.stat_bypass_queries = 0
        self.stat_bloom_copies = 0
        self.stat_self_invalidated_words = 0
        self._bypass_response = self.policies.bypass.response_enabled
        # Non-Flex rungs move whole lines: every response payload sits
        # on the requested line, which unlocks the line-granular fast
        # paths below (identical events, one line resolution per call).
        self._line_granular = not (self.policies.transfer.flex_l1
                                   or self.policies.transfer.flex_l2)
        if self.policies.bypass.request_enabled:
            self.slice_blooms = [
                SliceFilterBank(cfg.bloom_filters_per_slice,
                                cfg.bloom_entries, cfg.bloom_hashes,
                                seed=tile + 1)
                for tile in range(cfg.num_tiles)]
            # Every L1 shadows every slice's filters with the same hash
            # seeds, so projections can be unioned bit-for-bit.
            self.l1_blooms = [
                _ShadowArray(cfg, tile)
                for tile in range(cfg.num_tiles)]
        else:
            self.slice_blooms = []
            self.l1_blooms = []

    def stats(self) -> Dict[str, int]:
        return {
            "bloom_copies": self.stat_bloom_copies,
            "bypass_queries": self.stat_bypass_queries,
            "direct_requests": self.stat_direct_requests,
            "nacks": self.stat_nacks,
            "reg_invalidations": self.stat_reg_invalidations,
            "registrations": self.stat_registrations,
            "self_invalidated_words": self.stat_self_invalidated_words,
        }

    def energy_counters(self) -> Dict[str, int]:
        counters = super().energy_counters()
        counters.update(
            bloom_slice_checks=sum(b.stat_checks for b in self.slice_blooms),
            bloom_slice_updates=sum(b.stat_updates for b in self.slice_blooms),
            bloom_shadow_checks=sum(s.stat_checks for s in self.l1_blooms),
            bloom_shadow_inserts=sum(s.stat_inserts for s in self.l1_blooms),
            bloom_shadow_installs=sum(s.stat_installs
                                      for s in self.l1_blooms),
        )
        return counters

    def reset_energy_counters(self) -> None:
        super().reset_energy_counters()
        for bank in self.slice_blooms:
            bank.reset_energy_counters()
        for shadow in self.l1_blooms:
            shadow.reset_energy_counters()

    def register_metrics(self, hub) -> None:
        super().register_metrics(hub)
        # Pre-create the instruments so the names exist (totalling 0)
        # even on rungs without Bloom filters — energy_counters() always
        # reports these keys, and the hub must reconcile with it.
        for name in ("bloom_slice_checks", "bloom_slice_updates",
                     "bloom_shadow_checks", "bloom_shadow_inserts",
                     "bloom_shadow_installs"):
            hub.counter(name, help="L2-bypass Bloom filter activity")
        for tile, bank in enumerate(self.slice_blooms):
            bank.register_metrics(hub, tile)
        for tile, shadow in enumerate(self.l1_blooms):
            shadow.register_metrics(hub, tile)

    # ------------------------------------------------------------------
    # Core-facing interface
    # ------------------------------------------------------------------

    def load(self, core: int, addr: int, at: int,
             on_done: Callable[[int, LoadRequest], None]) -> Optional[int]:
        line_addr = addr >> 4
        line = self.l1[core].lookup(line_addr)
        if line is not None and line.word_state[addr & 15] != W_INVALID:
            # Hottest path in the protocol: _profile_load_hit inlined.
            ctx = self.ctx
            ctx.l1_prof.on_use(core, addr)
            inst = line.mem_inst[addr & 15]
            if inst is not None:
                ctx.mem_prof.on_load(inst)
            return at + 1
        waiters = self._inflight_fills[core].get(line_addr)
        if waiters is not None:
            # A fill for this line is already in flight: wait for it
            # instead of issuing a duplicate request.
            waiters.append(
                lambda t: self._retry_load(core, addr, t, on_done))
            return None
        if line is None and not self._can_reserve(core, line_addr):
            self._retire_hooks[core].append(
                lambda t: self._retry_load(core, addr, t, on_done))
            return None
        request = LoadRequest(core=core, addr=addr, t_issue=at,
                              on_done=on_done)
        if line is None:
            self._protected[core].add(line_addr)
        # bypasses() is False for every region when the response bypass
        # is off, so only bypass rungs pay the region-table walk here.
        bypassed = (self._bypass_response
                    and self.policies.bypass.bypasses(
                        self.ctx.regions.find(addr)))
        if bypassed and self.policies.bypass.request_enabled:
            self._bypass_request_path(request, at)
        else:
            self._send_req_ctl(
                T.LD, core, self._home_tile(line_addr), at,
                self._l2_gets, request)
        return None

    def store(self, core: int, addr: int, at: int) -> bool:
        line_addr = addr >> 4
        line = self.l1[core].lookup(line_addr)
        if line is None:
            # Write-validate: allocate without fetching.
            line = self._allocate_l1(core, line_addr)
        already_owned = line.word_state[addr & 15] == W_REG
        self._apply_store_word(core, line, addr)
        if already_owned:
            return True
        wct = self.wct[core]
        if not wct.has(line_addr) and wct.is_full():
            oldest = wct.oldest()
            wct.pop(oldest.line_addr)
            self._send_registration(core, oldest, at)
        entry = wct.add_store(addr, at)
        if entry.is_full_line:
            wct.pop(line_addr)
            self._send_registration(core, entry, at)
        else:
            self._arm_wct_timer(core)
        return True

    def pending_store_count(self, core: int) -> int:
        return self._outstanding_regs[core] + len(self.wct[core])

    def drain_barrier(self, core: int, at: int,
                      resume: Callable[[int], None]) -> None:
        """Flush the write-combining table, wait for registration acks."""
        for entry in self.wct[core].drain():
            self._send_registration(core, entry, at)
        if self._outstanding_regs[core] == 0:
            resume(at)
            return

        def check(t: int) -> None:
            if self._outstanding_regs[core] == 0:
                resume(t)
            else:
                self._retire_hooks[core].append(check)

        self._retire_hooks[core].append(check)

    def on_barrier(self, written_regions: Set[int]) -> None:
        """Barrier-time work: self-invalidation and Bloom shadow clears."""
        ctx = self.ctx
        for core in range(ctx.config.num_tiles):
            for line in self.l1[core].resident_lines():
                region = ctx.regions.find(base_word(line.line_addr))
                if region is None or region.region_id not in written_regions:
                    continue
                for off in range(WORDS_PER_LINE):
                    if line.word_state[off] == W_VALID:
                        word = base_word(line.line_addr) + off
                        ctx.l1_prof.on_invalidate(core, word)
                        inst = line.mem_inst[off]
                        if inst is not None:
                            ctx.mem_prof.drop_copy(inst, invalidated=True)
                            line.mem_inst[off] = None
                        line.word_state[off] = W_INVALID
                        self.stat_self_invalidated_words += 1
        for shadow in self.l1_blooms:
            shadow.clear()

    def finalize(self) -> None:
        """Flush any write-combining leftovers at end of simulation."""
        now = self.ctx.queue.now
        for core in range(self.ctx.config.num_tiles):
            for entry in self.wct[core].drain():
                self._send_registration(core, entry, now)

    # ------------------------------------------------------------------
    # L1 basics
    # ------------------------------------------------------------------

    def _apply_store_word(self, core: int, line: DenovoL1Line,
                          addr: int) -> None:
        off = addr & 15
        ctx = self.ctx
        ctx.l1_prof.on_write(core, addr)
        ctx.mem_prof.on_store_addr(addr)
        inst = line.mem_inst[off]
        if inst is not None:
            # The local copy no longer derives from the memory instance.
            ctx.mem_prof.drop_copy(inst, invalidated=False)
            line.mem_inst[off] = None
        line.word_state[off] = W_REG
        line.word_dirty[off] = True

    def _evict_l1_line(self, core: int, line: DenovoL1Line) -> None:
        """Evict an L1 line: profile, then write back dirty words only."""
        ctx = self.ctx
        at = ctx.queue.now
        line_addr = line.line_addr
        ctx.l1_prof.on_evict_line(core, base_word(line_addr))
        ctx.mem_prof.drop_copies(line.mem_inst, invalidated=False)
        pending = self.wct[core].pop(line_addr)
        dirty_offsets = line.dirty_offsets()
        if not dirty_offsets:
            return
        home = self._home_tile(line_addr)
        pending_mask = pending.word_mask if pending is not None else 0
        # Paper: eviction with pending registrations sends two messages —
        # a plain writeback for already-registered words and a combined
        # writeback+register for pending ones; both profiled as WB traffic.
        plain = [o for o in dirty_offsets if not pending_mask >> o & 1]
        combined = [o for o in dirty_offsets if pending_mask >> o & 1]
        for offsets in (plain, combined):
            if not offsets:
                continue
            self._send_wb(
                core, home, at, [True] * len(offsets), T.DEST_L2,
                self._l2_accept_wb, core, line_addr, tuple(offsets))
        if self.l1_blooms:
            self.l1_blooms[core].note_writeback(home, line_addr)

    # ------------------------------------------------------------------
    # Registration (store) path
    # ------------------------------------------------------------------

    def _arm_wct_timer(self, core: int) -> None:
        if self._wct_timer_armed[core]:
            return
        deadline = self.wct[core].next_deadline()
        if deadline is None:
            return
        self._wct_timer_armed[core] = True
        now = self._queue.now
        self._schedule_call(deadline if deadline >= now else now,
                            self._wct_timer_fire, core)

    def _wct_timer_fire(self, core: int) -> None:
        self._wct_timer_armed[core] = False
        now = self.ctx.queue.now
        for entry in self.wct[core].expired(now):
            self._send_registration(core, entry, now)
        self._arm_wct_timer(core)

    def _send_registration(self, core: int, entry: WriteCombineEntry,
                           at: int) -> None:
        """One registration request message for a line's pending words."""
        self._outstanding_regs[core] += 1
        self.stat_registrations += 1
        line_addr = entry.line_addr
        home = self._home_tile(line_addr)
        now = self._queue.now
        self._send_req_ctl(
            T.ST, core, home, at if at >= now else now,
            self._l2_register, core, line_addr, entry.word_mask)

    def _l2_register(self, core: int, line_addr: int, mask: int,
                     arrive: int) -> None:
        ctx = self.ctx
        home = self._home_tile(line_addr)
        t = ctx.l2_service_time(home, arrive)
        entry = self.l2[home].lookup(line_addr)
        if entry is None:
            entry = self._reserve_l2(home, line_addr)
            if self.policies.granularity.l2_fetch_on_write:
                # Baseline L2 fetch-on-write: a write miss at the L2
                # fetches the whole line from memory (store traffic).
                self._fetch_line_for_write(entry, home, t)
        # A registration that raced the registrant's own eviction must
        # not install stale ownership: keep only words the core still
        # holds registered (the eviction's writeback covers the rest).
        held_line = self.l1[core].lookup(line_addr, touch=False)
        if held_line is None:
            mask = 0
        else:
            held_state = held_line.word_state
            pending = mask
            while pending:
                low = pending & -pending
                if held_state[low.bit_length() - 1] != W_REG:
                    mask &= ~low
                pending &= pending - 1
        if mask == 0:
            self._send_resp_ctl(T.ST, home, core, t, self._reg_ack, core)
            return
        base = base_word(line_addr)
        word_state = entry.word_state
        owners = entry.owners
        word_dirty = entry.word_dirty
        l2_on_write = ctx.l2_prof.on_write
        pending = mask
        while pending:
            off = (pending & -pending).bit_length() - 1
            pending &= pending - 1
            word = base + off
            old_owner = (owners[off]
                         if word_state[off] == L2W_REG else None)
            if old_owner is not None and old_owner != core:
                self.stat_reg_invalidations += 1
                self._invalidate_remote_word(home, old_owner, word, t)
            if word_state[off] == L2W_VALID:
                # The L2's copy is now stale; it dies as Write waste.
                l2_on_write(home, word)
            word_state[off] = L2W_REG
            owners[off] = core
            word_dirty[off] = False
        if self.slice_blooms and not entry.in_bloom:
            self.slice_blooms[home].insert(line_addr)
            entry.in_bloom = True
        self._send_resp_ctl(T.ST, home, core, t, self._reg_ack, core)

    def _reg_ack(self, core: int, t: int) -> None:
        self._outstanding_regs[core] -= 1
        self._fire_retire_hooks(core, t)

    def _invalidate_remote_word(self, home: int, owner: int, word: int,
                                t: int) -> None:
        """Registration displaced an old registrant: invalidate its copy.

        Counted as store request-control traffic (it is required to
        complete the store; DeNovo's only *overhead* messages are NACKs
        and Bloom traffic, per Section 5.1).
        """
        ctx = self.ctx
        hops = ctx.mesh.hops(home, owner)
        ctx.ledger.add_request_ctl(T.ST, hops)
        arrive = t + ctx.mesh.latency(home, owner, 1, t)
        ctx.queue.schedule_call(arrive, self._invalidate_word_at_owner,
                                owner, word, arrive)

    def _invalidate_word_at_owner(self, owner: int, word: int,
                                  _tt: int) -> None:
        ctx = self.ctx
        line = self.l1[owner].lookup(line_of(word), touch=False)
        if line is None:
            return
        off = word & 15
        if line.word_state[off] != W_INVALID:
            ctx.l1_prof.on_invalidate(owner, word)
            inst = line.mem_inst[off]
            if inst is not None:
                ctx.mem_prof.drop_copy(inst, invalidated=True)
                line.mem_inst[off] = None
            line.word_state[off] = W_INVALID
            line.word_dirty[off] = False

    def _fetch_line_for_write(self, entry: DenovoL2Line, home: int,
                              t: int) -> None:
        """Baseline L2 fetch-on-write: pull the whole line from memory."""
        mc = self.ctx.mc_tile(entry.line_addr)
        self._send_req_ctl(T.ST, home, mc, t,
                           self._fetch_fw_at_mc, entry, home, mc)

    def _fetch_fw_at_mc(self, entry: DenovoL2Line, home: int, mc: int,
                        _arrive: int) -> None:
        line_addr = entry.line_addr
        self.ctx.dram_for(line_addr).read(
            line_addr, self._fetch_fw_dram_done, entry, home, mc)

    def _fetch_fw_dram_done(self, entry: DenovoL2Line, home: int, mc: int,
                            tt: int) -> None:
        ctx = self.ctx
        line_addr = entry.line_addr
        word_state = entry.word_state
        l2_on_arrival = ctx.l2_prof.on_arrival
        fetch = ctx.mem_prof.fetch
        insts = []
        l2_entries = []
        offsets = []
        for off, word in enumerate(words_of_line(line_addr)):
            already = word_state[off] != L2W_INVALID
            l2_entries.append(l2_on_arrival(home, word, already))
            insts.append(fetch(word, already))
            offsets.append(off)
        self._send_data(T.ST, T.DEST_L2, mc, home, tt, l2_entries,
                        self._fetch_fw_at_l2, entry, offsets, insts)

    def _fetch_fw_at_l2(self, entry: DenovoL2Line, offsets: List[int],
                        insts: List, _t3: int) -> None:
        ctx = self.ctx
        word_state = entry.word_state
        mem_inst = entry.mem_inst
        install = ctx.mem_prof.install_copy
        for off, inst in zip(offsets, insts):
            if word_state[off] == L2W_INVALID:
                word_state[off] = L2W_VALID
                mem_inst[off] = inst
                install(inst)

    # ------------------------------------------------------------------
    # Load path: L2 handling
    # ------------------------------------------------------------------

    def _l2_gets(self, req: LoadRequest, arrive: int) -> None:
        ctx = self.ctx
        addr = req.addr
        line_addr = addr >> 4
        off = addr & 15
        home = self._home_tile(line_addr)
        if req.t_home_arrive is None:
            req.t_home_arrive = arrive
        t = ctx.l2_service_time(home, arrive)
        entry = self.l2[home].lookup(line_addr)

        if entry is not None:
            state = entry.word_state[off]
            if state == L2W_REG:
                owner = entry.owners[off]
                if owner is not None and owner != req.core:
                    self._forward_to_owner(req, entry, home, t)
                    return
                if owner == req.core:
                    # The requestor itself was the registrant but lost the
                    # line; heal: the writeback (if any) made the L2 copy
                    # dirty-valid.
                    if entry.word_dirty[off]:
                        entry.word_state[off] = L2W_VALID
                    else:
                        entry.word_state[off] = L2W_INVALID
                    entry.owners[off] = None
            if entry.word_state[off] == L2W_VALID:
                self._respond_from_l2(req, entry, home, t)
                return
        self._load_miss_to_memory(req, entry, home, t)

    def _respond_from_l2(self, req: LoadRequest, entry: DenovoL2Line,
                         home: int, t: int) -> None:
        """L2 hit: respond with the line's valid words (or Flex subset)."""
        ctx = self.ctx
        words = self._gather_l2_words(req.addr, home)
        core = req.core
        l1 = self.l1[core]
        l2 = self.l2[home]
        n = len(words)
        flags = []
        insts = []
        if not self.policies.transfer.flex_l1:
            # Line-granular fast path: every word is on the requested
            # line, the source line is ``entry`` itself, and the scalar
            # path would re-probe both caches once per delivered word.
            if n:
                l1_line = l1.lookup(req.addr >> 4, False)
                l1.stat_probes += n - 1
                l2.stat_probes += n
                if l1_line is None:
                    flags = [False] * n
                else:
                    state = l1_line.word_state
                    flags = [state[w & 15] != W_INVALID for w in words]
                mem_inst = entry.mem_inst
                insts = [mem_inst[w & 15] for w in words]
        else:
            # Flex gather may span lines: resolve each cache's line once
            # per run of words and batch-charge the skipped probes (the
            # counters stay identical to one lookup per word).
            l1_addr = l2_addr = -1
            l1_line = src_line = None
            l1_probes = l2_probes = 0
            for word in words:
                wline = word >> 4
                if wline == l1_addr:
                    l1_probes += 1
                else:
                    l1_line = l1.lookup(wline, False)
                    l1_addr = wline
                flags.append(l1_line is not None
                             and l1_line.word_state[word & 15]
                             != W_INVALID)
                if wline == l2_addr:
                    l2_probes += 1
                else:
                    src_line = l2.lookup(wline, False)
                    l2_addr = wline
                insts.append(src_line.mem_inst[word & 15]
                             if src_line is not None else None)
            l1.stat_probes += l1_probes
            l2.stat_probes += l2_probes
        ctx.l2_prof.on_use_words(home, words)
        l1_entries = ctx.l1_prof.arrivals_words(core, words, flags)
        payload = list(zip(words, l1_entries, insts))
        req.served_by = SERVED_L2
        req.t_fill_send = t
        self._send_data(
            T.LD, T.DEST_L1, home, core, t, l1_entries,
            self._l1_load_fill, req, payload, True)

    def _gather_l2_words(self, addr: int, home: int) -> List[int]:
        """Words an L2 response carries: Flex subset or valid line words."""
        l2 = self.l2[home]
        if not self.policies.transfer.flex_l1:
            # Line-granular fast path: all candidates are on addr's own
            # line (whose slice is ``home``), one probe per word.
            line_addr = addr >> 4
            lentry = l2.lookup(line_addr, False)
            l2.stat_probes += WORDS_PER_LINE - 1
            if lentry is None:
                return []
            base = line_addr << 4
            state = lentry.word_state
            return [base + off for off in range(WORDS_PER_LINE)
                    if state[off] == L2W_VALID]
        home_tile = self._home_tile
        out = []
        last_addr = -1
        lentry = None
        probes = 0
        for word in self.policies.transfer.cache_candidates(addr):
            wline = word >> 4
            if home_tile(wline) != home:
                continue   # the slice can only gather its own lines
            if wline == last_addr:
                probes += 1
            else:
                lentry = l2.lookup(wline, False)
                last_addr = wline
            if lentry is None:
                continue
            if lentry.word_state[word & 15] == L2W_VALID:
                out.append(word)
        l2.stat_probes += probes
        return out

    def _l1_has_word(self, core: int, word: int) -> bool:
        line = self.l1[core].lookup(word >> 4, touch=False)
        return (line is not None
                and line.word_state[word & 15] != W_INVALID)

    def _forward_to_owner(self, req: LoadRequest, entry: DenovoL2Line,
                          home: int, t: int) -> None:
        """Requested word registered to another L1: forward the request."""
        owner = entry.owners[offset_of(req.addr)]
        self._send_req_ctl(T.LD, home, owner, t,
                           self._fwd_at_owner, req, owner, home)

    def _fwd_at_owner(self, req: LoadRequest, owner: int, home: int,
                      tt: int) -> None:
        ctx = self.ctx
        line_addr = line_of(req.addr)
        oline = self.l1[owner].lookup(line_addr, touch=False)
        off = offset_of(req.addr)
        if oline is None or oline.word_state[off] == W_INVALID:
            # Stale registration: the owner's eviction writeback and a
            # late in-flight registration raced at the home.  Heal the
            # L2 state (the writeback data is the latest value) so the
            # retry is served from the L2 instead of looping forever.
            home_entry = self.l2[self._home_tile(line_addr)].lookup(
                line_addr, touch=False)
            if (home_entry is not None
                    and home_entry.word_state[off] == L2W_REG
                    and home_entry.owners[off] == owner):
                home_entry.word_state[off] = L2W_VALID
                home_entry.word_dirty[off] = True
                home_entry.owners[off] = None
            self.stat_nacks += 1
            self._send_overhead(
                T.OVH_NACK, owner, req.core, tt,
                self._retry_gets, req)
            return
        words = self._gather_owner_words(owner, req.addr)
        core = req.core
        l1_req = self.l1[core]
        l1_owner = self.l1[owner]
        n = len(words)
        flags = []
        insts = []
        if not self.policies.transfer.flex_l1:
            # Line-granular fast path: every word is on the requested
            # line, sourced from ``oline`` resolved above.
            if n:
                req_line = l1_req.lookup(req.addr >> 4, False)
                l1_req.stat_probes += n - 1
                l1_owner.stat_probes += n
                if req_line is None:
                    flags = [False] * n
                else:
                    state = req_line.word_state
                    flags = [state[w & 15] != W_INVALID for w in words]
                mem_inst = oline.mem_inst
                insts = [mem_inst[w & 15] for w in words]
        else:
            req_addr = own_addr = -1
            req_line = src = None
            req_probes = own_probes = 0
            for word in words:
                wline = word >> 4
                if wline == req_addr:
                    req_probes += 1
                else:
                    req_line = l1_req.lookup(wline, False)
                    req_addr = wline
                flags.append(req_line is not None
                             and req_line.word_state[word & 15]
                             != W_INVALID)
                if wline == own_addr:
                    own_probes += 1
                else:
                    src = l1_owner.lookup(wline, False)
                    own_addr = wline
                insts.append(src.mem_inst[word & 15]
                             if src is not None else None)
            l1_req.stat_probes += req_probes
            l1_owner.stat_probes += own_probes
        l1_entries = ctx.l1_prof.arrivals_words(core, words, flags)
        payload = list(zip(words, l1_entries, insts))
        req.served_by = SERVED_REMOTE_L1
        req.t_fill_send = tt
        self._send_data(
            T.LD, T.DEST_L1, owner, core, tt, l1_entries,
            self._l1_load_fill, req, payload, True)

    def _gather_owner_words(self, owner: int, addr: int) -> List[int]:
        """Words a cache-to-cache response carries from the owner L1."""
        l1_owner = self.l1[owner]
        if not self.policies.transfer.flex_l1:
            # Line-granular fast path: all candidates on addr's line.
            line_addr = addr >> 4
            line = l1_owner.lookup(line_addr, False)
            l1_owner.stat_probes += WORDS_PER_LINE - 1
            if line is None:
                return []
            base = line_addr << 4
            state = line.word_state
            return [base + off for off in range(WORDS_PER_LINE)
                    if state[off] != W_INVALID]
        out = []
        last_addr = -1
        line = None
        probes = 0
        for word in self.policies.transfer.cache_candidates(addr):
            wline = word >> 4
            if wline == last_addr:
                probes += 1
            else:
                line = l1_owner.lookup(wline, False)
                last_addr = wline
            if line is None:
                continue
            if line.word_state[word & 15] != W_INVALID:
                out.append(word)
        l1_owner.stat_probes += probes
        return out

    def _retry_gets(self, req: LoadRequest, at: int) -> None:
        req.retries += 1
        line_addr = line_of(req.addr)
        self._send_req_ctl(
            T.LD, req.core, self._home_tile(line_addr),
            at + NACK_RETRY_DELAY, self._l2_gets, req)

    # ------------------------------------------------------------------
    # Load path: memory
    # ------------------------------------------------------------------

    def _load_miss_to_memory(self, req: LoadRequest,
                             entry: Optional[DenovoL2Line], home: int,
                             t: int) -> None:
        ctx = self.ctx
        addr = req.addr
        line_addr = line_of(addr)
        bypassed = (self._bypass_response
                    and self.policies.bypass.bypasses(
                        ctx.regions.find(addr)))
        req.went_to_memory = True
        req.t_home_depart = t
        req.served_by = SERVED_MEMORY
        mc = ctx.mc_tile(line_addr)
        dirty_offsets = (tuple(entry.dirty_mask_offsets())
                         if entry is not None else ())
        if not bypassed and entry is None:
            entry = self._reserve_l2(home, line_addr)
        fill_l2 = not bypassed

        self._send_req_ctl(
            T.LD, home, mc, t,
            self._mc_load, req, home, mc, dirty_offsets, fill_l2)

    def _bypass_request_path(self, req: LoadRequest, at: int) -> None:
        """L2 Request Bypass: consult the L1 Bloom shadow, maybe go direct."""
        ctx = self.ctx
        core = req.core
        line_addr = line_of(req.addr)
        home = self._home_tile(line_addr)
        shadow = self.l1_blooms[core]
        self.stat_bypass_queries += 1
        if not shadow.has_copy(home, line_addr):
            self._fetch_bloom_copy(req, core, home, line_addr, at)
            return
        if shadow.may_contain(home, line_addr):
            # Possibly dirty on-chip: take the normal path through the L2.
            self._send_req_ctl(T.LD, core, home, at,
                               self._l2_gets, req)
            return
        # Provably clean: go straight to the memory controller.
        self.stat_direct_requests += 1
        req.went_to_memory = True
        req.served_by = SERVED_MEMORY
        mc = ctx.mc_tile(line_addr)
        self._send_req_ctl(
            T.LD, core, mc, at,
            self._mc_load, req, home, mc, (), False)

    def _fetch_bloom_copy(self, req: LoadRequest, core: int, home: int,
                          line_addr: int, at: int) -> None:
        """Copy the needed L2 Bloom filter into the L1 shadow (overhead)."""
        ctx = self.ctx
        self.stat_bloom_copies += 1
        filter_index = self.slice_blooms[home].filter_index(line_addr)
        # The 1-bit projection of one filter: entries/8 bytes of payload.
        payload_bytes = ctx.config.bloom_entries // 8
        copy_flits = 1 + -(-payload_bytes // ctx.config.link_bytes)
        self._send_overhead(T.OVH_BLOOM, core, home, at,
                            self._bloom_at_l2, req, core, home,
                            filter_index, copy_flits)

    def _bloom_at_l2(self, req: LoadRequest, core: int, home: int,
                     filter_index: int, copy_flits: int, t: int) -> None:
        self._send_overhead(
            T.OVH_BLOOM, home, core, t,
            self._bloom_install, req, core, home, filter_index,
            flits=copy_flits)

    def _bloom_install(self, req: LoadRequest, core: int, home: int,
                       filter_index: int, tt: int) -> None:
        bits = self.slice_blooms[home].bit_projection(filter_index)
        self.l1_blooms[core].install(home, filter_index, bits)
        self._bypass_request_path(req, tt)

    def _mc_load(self, req: LoadRequest, home: int, mc: int,
                 dirty_offsets: Tuple[int, ...], fill_l2: bool,
                 arrive: int) -> None:
        """Memory controller handling of a load: fetch, filter, respond."""
        ctx = self.ctx
        req.t_arrive_mc = arrive
        addr = req.addr
        line_addr = line_of(addr)
        dram = ctx.dram_for(line_addr)

        # Which lines to fetch and which words to send.
        transfer = self.policies.transfer
        flex_region = transfer.memory_region(addr)
        if flex_region is not None:
            wanted = transfer.region_words(flex_region, addr)
            lines = []
            for word in wanted:
                wline = line_of(word)
                if wline not in lines and dram.same_row(line_addr, wline):
                    lines.append(wline)
            if line_addr not in lines:
                lines.insert(0, line_addr)
            wanted_set = set(w for w in wanted if line_of(w) in lines)
            # The critical line is open at the controller anyway: harvest
            # the communication-region fields of every element it holds
            # (Flex responses may combine words of different elements;
            # at the L1 some arrive already-present -> Fetch waste).
            wanted_set.update(self._region_fields_on_line(flex_region,
                                                          line_addr))
        else:
            lines = [line_addr]
            wanted_set = set(words_of_line(line_addr))
        masked = {base_word(line_addr) + off for off in dirty_offsets}

        # One response message per fetched line, sent as soon as that
        # line's read completes (the controller streams; waiting for the
        # whole multi-line Flex gather would penalize the critical load).
        # The critical line's response carries the requested word and
        # completes the load; prefetch-line responses just install.
        is_flex = flex_region is not None
        for fetched_line in lines:
            dram.read(fetched_line, self._mc_respond_line, req, home, mc,
                      fill_l2, is_flex, wanted_set, masked, line_addr,
                      fetched_line)

    def _mc_respond_line(self, req: LoadRequest, home: int, mc: int,
                         fill_l2: bool, is_flex: bool, wanted_set: Set[int],
                         masked: Set[int], line_addr: int,
                         fetched_line: int, t: int) -> None:
        ctx = self.ctx
        send_words: List[int] = []
        fetch_excess = ctx.mem_prof.fetch_excess
        for word in words_of_line(fetched_line):
            if word in masked:
                continue
            if word in wanted_set:
                send_words.append(word)
            elif is_flex:
                # Read out of DRAM, dropped at the controller.
                fetch_excess(word)
        completes = fetched_line == line_addr
        if completes:
            req.t_leave_mc = t
        self._mc_respond(req, home, mc, send_words, fill_l2, t,
                         completes=completes)

    @staticmethod
    def _region_fields_on_line(region, line_addr: int) -> List[int]:
        """Communication-region field words falling on ``line_addr``."""
        out = []
        flex = region.flex
        for word in words_of_line(line_addr):
            if not region.contains(word):
                continue
            if (word - region.base_word) % flex.stride_words in \
                    flex.field_offsets:
                out.append(word)
        return out

    def _mc_respond(self, req: LoadRequest, home: int, mc: int,
                    words: List[int], fill_l2: bool, t: int,
                    completes: bool = True) -> None:
        ctx = self.ctx
        if not words:
            if completes:
                # Everything was masked (dirty on-chip): retry via L2.
                self._retry_gets(req, t)
            return
        fetch = ctx.mem_prof.fetch
        home_tile = self._home_tile
        insts = {}
        last_addr = -1
        l2_cache = entry = None
        for word in words:
            wline = word >> 4
            if wline == last_addr:
                l2_cache.stat_probes += 1
            else:
                l2_cache = self.l2[home_tile(wline)]
                entry = l2_cache.lookup(wline, False)
                last_addr = wline
            has = (entry is not None
                   and entry.word_state[word & 15] != L2W_INVALID)
            insts[word] = fetch(word, has)

        if not fill_l2:
            self._send_l1_leg(req, words, insts, completes, mc, t)
        elif self.policies.mem_transfer.direct_to_l1:
            # Parallel transfer to the L1 and the L2.
            self._send_l1_leg(req, words, insts, completes, mc, t)
            self._send_l2_leg(req, words, insts, home, mc, completes,
                              False, t)
        else:
            # Baseline: memory -> L2 -> L1.
            self._send_l2_leg(req, words, insts, home, mc, completes,
                              True, t)

    def _send_l1_leg(self, req: LoadRequest, words: List[int], insts: Dict,
                     completes: bool, src: int, at: int) -> None:
        """The L1 leg of a memory response (registers inflight fills)."""
        ctx = self.ctx
        if completes:
            req.t_fill_send = at
        core = req.core
        l1 = self.l1[core]
        fill_lines = set()
        last_addr = -1
        line = None
        probes = 0
        flags = []
        for word in words:
            wline = word >> 4
            if wline == last_addr:
                probes += 1
            else:
                line = l1.lookup(wline, False)
                last_addr = wline
            flags.append(line is not None
                         and line.word_state[word & 15] != W_INVALID)
            fill_lines.add(wline)
        l1.stat_probes += probes
        l1_entries = ctx.l1_prof.arrivals_words(core, words, flags)
        payload = [(word, wentry, insts[word])
                   for word, wentry in zip(words, l1_entries)]
        inflight = self._inflight_fills[core]
        for fl in fill_lines:
            inflight.setdefault(fl, [])
        self._send_data(T.LD, T.DEST_L1, src, core, at, l1_entries,
                        self._on_l1_fill, req, payload, completes,
                        fill_lines)

    def _on_l1_fill(self, req: LoadRequest, payload: List,
                    completes: bool, fill_lines: Set[int],
                    tt: int) -> None:
        self._l1_load_fill(req, payload, completes, tt)
        inflight = self._inflight_fills[req.core]
        queue = self._queue
        now = queue.now
        when = tt if tt >= now else now
        schedule_call = queue.schedule_call
        for fl in fill_lines:
            for waiter in inflight.pop(fl, ()):
                schedule_call(when, waiter, tt)

    def _send_l2_leg(self, req: LoadRequest, words: List[int], insts: Dict,
                     home: int, mc: int, completes: bool,
                     l1_after: bool, at: int) -> None:
        """The L2 leg of a memory response (baseline chains the L1 leg)."""
        ctx = self.ctx
        l2_on_arrival = ctx.l2_prof.on_arrival
        home_tile = self._home_tile
        l2_entries = []
        last_addr = -1
        home_w = -1
        l2_cache = entry = None
        for word in words:
            wline = word >> 4
            if wline == last_addr:
                l2_cache.stat_probes += 1
            else:
                home_w = home_tile(wline)
                l2_cache = self.l2[home_w]
                entry = l2_cache.lookup(wline, False)
                last_addr = wline
            already = (entry is not None
                       and entry.word_state[word & 15] != L2W_INVALID)
            l2_entries.append(l2_on_arrival(home_w, word, already))
        self._send_data(T.LD, T.DEST_L2, mc, home, at, l2_entries,
                        self._on_l2_fill, req, words, insts, home,
                        completes, l1_after)

    def _on_l2_fill(self, req: LoadRequest, words: List[int], insts: Dict,
                    home: int, completes: bool, l1_after: bool,
                    tt: int) -> None:
        self._fill_l2_words(words, insts)
        if l1_after:
            self._send_l1_leg(req, words, insts, completes, home, tt)

    def _l2_has_word(self, word: int) -> bool:
        home = self._home_tile(word >> 4)
        entry = self.l2[home].lookup(word >> 4, touch=False)
        return (entry is not None
                and entry.word_state[word & 15] != L2W_INVALID)

    def _fill_l2_words(self, words: List[int], insts: Dict[int, object]) -> None:
        ctx = self.ctx
        home_tile = self._home_tile
        install = ctx.mem_prof.install_copy
        last_addr = -1
        home = -1
        l2_cache = entry = None
        for word in words:
            wline = word >> 4
            if wline == last_addr:
                # Same line: already resolved and at MRU, so the touch
                # the scalar path would do is a no-op; charge the probe.
                l2_cache.stat_probes += 1
            else:
                home = home_tile(wline)
                l2_cache = self.l2[home]
                entry = l2_cache.lookup(wline)
                last_addr = wline
            if entry is None:
                entry = self._reserve_l2(home, wline)
            off = word & 15
            if entry.word_state[off] == L2W_INVALID:
                entry.word_state[off] = L2W_VALID
                entry.mem_inst[off] = insts[word]
                install(insts[word])

    # ------------------------------------------------------------------
    # L1 fill and completion
    # ------------------------------------------------------------------

    def _l1_load_fill(self, req: LoadRequest,
                      payload: List[Tuple[int, object, object]],
                      completes: bool, t: int) -> None:
        """Install delivered words into the requestor's L1; when this is
        the response carrying the requested word, finish the load."""
        ctx = self.ctx
        core = req.core
        l1 = self.l1[core]
        req_line = req.addr >> 4
        install = ctx.mem_prof.install_copy
        if self._line_granular and payload:
            # Fast path: the whole payload is on the requested line.
            line = l1.lookup(req_line, False)
            l1.stat_probes += len(payload) - 1
            if line is None:
                line = self._allocate_l1(core, req_line)
            word_state = line.word_state
            mem_inst = line.mem_inst
            for word, _entry, inst in payload:
                off = word & 15
                if word_state[off] == W_INVALID:
                    word_state[off] = W_VALID
                    mem_inst[off] = inst
                    if inst is not None:
                        install(inst)
        else:
            last_addr = -1
            line = None
            for word, _entry, inst in payload:
                wline = word >> 4
                if wline == last_addr:
                    l1.stat_probes += 1
                else:
                    line = l1.lookup(wline, False)
                    last_addr = wline
                if line is None:
                    if wline == req_line:
                        line = self._allocate_l1(core, wline)
                    elif self._can_reserve(core, wline):
                        line = self._allocate_l1(core, wline)
                    else:
                        continue   # prefetched line has no room; drop it
                off = word & 15
                if line.word_state[off] == W_INVALID:
                    line.word_state[off] = W_VALID
                    line.mem_inst[off] = inst
                    if inst is not None:
                        install(inst)
        if not completes:
            return
        line_addr = req_line
        self._protected[core].discard(line_addr)
        line = l1.lookup(line_addr, touch=False)
        if line is None or line.word_state[req.addr & 15] == W_INVALID:
            # The needed word did not arrive (e.g. masked at the memory
            # controller because it was dirty on-chip): retry through L2.
            self._retry_gets(req, t)
            return
        self._profile_load_hit(core, line, req.addr)
        req.on_done(t + 1, req)

    # ------------------------------------------------------------------
    # L2 allocation / writebacks / eviction
    # ------------------------------------------------------------------

    def _reserve_l2(self, home: int, line_addr: int) -> DenovoL2Line:
        cache = self.l2[home]
        existing = cache.lookup(line_addr)
        if existing is not None:
            return existing
        victim = cache.victim_for(line_addr)
        if victim is not None:
            cache.remove(victim.line_addr)
            self._evict_l2_line(home, victim)
        line, auto_victim = cache.allocate(line_addr)
        if auto_victim is not None:
            self._evict_l2_line(home, auto_victim)
        return line

    def _l2_accept_wb(self, core: int, line_addr: int,
                      offsets: Tuple[int, ...], t: int) -> None:
        """Dirty words from an L1 writeback arrive at the home slice."""
        ctx = self.ctx
        home = self._home_tile(line_addr)
        entry = self.l2[home].lookup(line_addr)
        if entry is None:
            entry = self._reserve_l2(home, line_addr)
            if self.policies.granularity.l2_fetch_on_write:
                self._fetch_line_for_write(entry, home, t)
        base = base_word(line_addr)
        word_state = entry.word_state
        word_dirty = entry.word_dirty
        owners = entry.owners
        mem_inst = entry.mem_inst
        l2_on_write = ctx.l2_prof.on_write
        mem_drop = ctx.mem_prof.drop_copy
        for off in offsets:
            word = base + off
            if (word_state[off] == L2W_VALID
                    and not word_dirty[off]):
                l2_on_write(home, word)
            word_state[off] = L2W_VALID
            word_dirty[off] = True
            owners[off] = None
            if mem_inst[off] is not None:
                mem_drop(mem_inst[off], invalidated=False)
                mem_inst[off] = None
        if self.slice_blooms and not entry.in_bloom:
            self.slice_blooms[home].insert(line_addr)
            entry.in_bloom = True

    def _evict_l2_line(self, home: int, entry: DenovoL2Line) -> None:
        """Evict an L2 line: recall registered words, write dirty to DRAM."""
        ctx = self.ctx
        at = ctx.queue.now
        line_addr = entry.line_addr
        base = base_word(line_addr)
        # Recall registered words from their owners; the owners write the
        # dirty data straight to memory.
        owners = {entry.owners[off] for off in range(WORDS_PER_LINE)
                  if entry.word_state[off] == L2W_REG
                  and entry.owners[off] is not None}
        for owner in owners:
            self._send_overhead(T.OVH_INVAL, home, owner, at)
            oline = self.l1[owner].lookup(line_addr, touch=False)
            if oline is None:
                continue
            recalled = [off for off in range(WORDS_PER_LINE)
                        if entry.owners[off] == owner
                        and oline.word_state[off] == W_REG]
            if recalled:
                mc = ctx.mc_tile(line_addr)
                self._send_wb(owner, mc, at, [True] * len(recalled),
                              T.DEST_MEM, self._wb_to_dram, line_addr)
            for off in range(WORDS_PER_LINE):
                if oline.word_state[off] != W_INVALID:
                    word = base + off
                    ctx.l1_prof.on_invalidate(owner, word)
                    inst = oline.mem_inst[off]
                    if inst is not None:
                        ctx.mem_prof.drop_copy(inst, invalidated=True)
                oline.word_state[off] = W_INVALID
                oline.word_dirty[off] = False
                oline.mem_inst[off] = None
            self.wct[owner].pop(line_addr)
        # Profile the L2 copies and write dirty words back.
        ctx.l2_prof.on_evict_line(home, base)
        ctx.mem_prof.drop_copies(entry.mem_inst, invalidated=False)
        if entry.any_dirty():
            mc = ctx.mc_tile(line_addr)
            # DValidateL2 rung: only the dirty words travel; baseline
            # ships the whole line and unmodified words die as Waste
            # (Figure 5.1d, Mem Waste).
            flags = self.policies.writeback.l2_flags(entry.word_dirty)
            self._send_wb(home, mc, at, flags, T.DEST_MEM,
                          self._wb_to_dram, line_addr)
        if self.slice_blooms and entry.in_bloom:
            self.slice_blooms[home].remove(line_addr)
            entry.in_bloom = False


class _ShadowArray(L1FilterShadow):
    """Per-core shadow of all slices' filters, seeded to match each slice."""

    def __init__(self, cfg, core: int) -> None:
        # Seeds must match SliceFilterBank(seed=tile + 1) per slice; the
        # L1FilterShadow base uses one seed for all slices, so build one
        # shadow per slice seed instead.
        self._cfg = cfg
        self._shadows = [
            L1FilterShadow(1, cfg.bloom_filters_per_slice,
                           cfg.bloom_entries, cfg.bloom_hashes,
                           seed=tile + 1)
            for tile in range(cfg.num_tiles)]

    def has_copy(self, slice_id: int, line_addr: int) -> bool:
        return self._shadows[slice_id].has_copy(0, line_addr)

    def filter_index(self, line_addr: int) -> int:
        raise NotImplementedError("use the slice bank's filter_index")

    def install(self, slice_id: int, filter_index: int, bits) -> None:
        self._shadows[slice_id].install(0, filter_index, bits)

    def note_writeback(self, slice_id: int, line_addr: int) -> None:
        self._shadows[slice_id].note_writeback(0, line_addr)

    def may_contain(self, slice_id: int, line_addr: int) -> bool:
        return self._shadows[slice_id].may_contain(0, line_addr)

    def clear(self) -> None:
        for shadow in self._shadows:
            shadow.clear()

    # Energy counters aggregate over the per-slice shadows (this class
    # never runs the base __init__, so the base counters don't exist).
    @property
    def stat_checks(self) -> int:
        return sum(s.stat_checks for s in self._shadows)

    @property
    def stat_inserts(self) -> int:
        return sum(s.stat_inserts for s in self._shadows)

    @property
    def stat_installs(self) -> int:
        return sum(s.stat_installs for s in self._shadows)

    def reset_energy_counters(self) -> None:
        for shadow in self._shadows:
            shadow.reset_energy_counters()

"""System, protocol and scaling configuration.

``SystemConfig`` mirrors the paper's Table 4.1.  ``ProtocolConfig`` encodes
the feature flags that distinguish the nine protocol configurations of
Section 3.  ``ScaleConfig`` lets callers pick the paper's full input sizes or
proportionally scaled-down inputs that run quickly in pure Python.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace

from repro.common.addressing import LINE_BYTES, WORD_BYTES, WORDS_PER_LINE
from repro.common.registry import (
    REGISTRY, Registry, paper_ladder, protocol, register_protocol)

#: Machine shapes the model is validated for: square meshes from 2x2
#: (4 tiles) up to 8x8 (64 tiles).  The paper evaluates only 4x4.
MIN_MESH_WIDTH = 2
MAX_MESH_WIDTH = 8

#: Execution engines a run can select.  ``reference`` is the OO
#: coherence kernel (``repro.coherence``); ``compiled`` executes the
#: same protocols through flat transition tables and array-backed state
#: (``repro.engine.compiled``) — bit-identical results, faster.
ENGINES = ("reference", "compiled")

#: Event schedulers a run can select.  ``wheel`` is the bucketed
#: calendar queue (default), ``heap`` the reference binary heap —
#: bit-identical firing orders, pinned by the golden grid under both
#: (see :mod:`repro.engine.events`).
SCHEDULERS = ("heap", "wheel")


@dataclass(frozen=True)
class SystemConfig:
    """Hardware parameters of the simulated tiled CMP (paper Table 4.1).

    The machine *shape* — ``num_tiles``, the mesh and the
    memory-controller placement — is a first-class axis: ``mesh_width``
    is derived from ``num_tiles`` (pass 0, the default, to auto-derive),
    and ``num_mem_controllers`` is validated against the mesh via
    :func:`mc_tile_placement`.  Any square mesh from 2x2 to 8x8 works;
    the paper's machine is the default 16-tile 4x4.
    """

    num_tiles: int = 16
    mesh_width: int = 0            # 0 = derive from num_tiles
    core_ghz: float = 2.0

    l1_kb: int = 32
    l1_assoc: int = 8
    l2_slice_kb: int = 256
    l2_assoc: int = 16
    line_bytes: int = LINE_BYTES
    word_bytes: int = WORD_BYTES

    link_bytes: int = 16           # mesh link width
    link_latency: int = 3          # cycles per hop
    max_data_flits: int = 4        # at most 64B of data per packet

    num_mem_controllers: int = 4   # one per corner tile
    dram_banks: int = 8
    dram_ranks: int = 2

    # DDR3-1066 style timings expressed in 2GHz core cycles (approximate,
    # following DRAMSim2 defaults scaled to the core clock).
    dram_t_rcd: int = 26
    dram_t_rp: int = 26
    dram_t_cl: int = 26
    dram_t_ras: int = 68
    dram_t_burst: int = 15         # data transfer time for a 64B line
    mc_queue_depth: int = 64

    store_buffer_entries: int = 32          # non-blocking writes per core
    write_combine_entries: int = 32         # DeNovo write-combining table
    write_combine_timeout: int = 10_000     # cycles

    barrier_release_cost: int = 50          # barrier communication cycles

    # Bloom filter geometry for "L2 Request Bypass" (paper Section 4.4).
    bloom_entries: int = 512
    bloom_filters_per_slice: int = 32
    bloom_hashes: int = 1

    # Execution engine: "reference" (OO coherence kernel) or "compiled"
    # (flat transition tables + array-backed state).  A first-class
    # sweep axis — it enters every JobSpec/store key, so the result
    # store never conflates engines.
    engine: str = "reference"

    # Event scheduler: "wheel" (bucketed calendar queue) or "heap"
    # (reference binary heap).  Results are bit-identical by contract;
    # the field still enters the config hash so cached cells record
    # exactly what produced them.
    scheduler: str = "wheel"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            known = ", ".join(ENGINES)
            raise ValueError(
                f"unknown engine {self.engine!r}; known engines: {known}")
        if self.scheduler not in SCHEDULERS:
            known = ", ".join(SCHEDULERS)
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"known schedulers: {known}")
        width = self.mesh_width
        if width == 0:
            width = math.isqrt(self.num_tiles)
            object.__setattr__(self, "mesh_width", width)
        if width * width != self.num_tiles:
            raise ValueError("num_tiles must be mesh_width squared")
        if not (MIN_MESH_WIDTH <= width <= MAX_MESH_WIDTH):
            raise ValueError(
                f"mesh_width must be between {MIN_MESH_WIDTH} and "
                f"{MAX_MESH_WIDTH} (got {width}); the model is validated "
                f"for 2x2 through 8x8 meshes")
        # Fails with a clear message when the controller count has no
        # placement on this mesh (e.g. 8 controllers on a 2x2).
        mc_tile_placement(width, self.num_mem_controllers)
        if self.line_bytes % self.word_bytes:
            raise ValueError("line size must be a whole number of words")

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // self.word_bytes

    @property
    def words_per_flit(self) -> int:
        return self.link_bytes // self.word_bytes

    @property
    def l1_lines(self) -> int:
        return self.l1_kb * 1024 // self.line_bytes

    @property
    def l1_sets(self) -> int:
        return self.l1_lines // self.l1_assoc

    @property
    def l2_slice_lines(self) -> int:
        return self.l2_slice_kb * 1024 // self.line_bytes

    @property
    def l2_slice_sets(self) -> int:
        return self.l2_slice_lines // self.l2_assoc

    @property
    def max_words_per_message(self) -> int:
        return self.max_data_flits * self.words_per_flit

    def mc_placement(self) -> tuple:
        """Tile ids hosting this machine's memory controllers."""
        return mc_tile_placement(self.mesh_width, self.num_mem_controllers)


def corner_tiles(mesh_width: int) -> tuple:
    """Tile ids of the four mesh corners.

    The paper's machine places its four memory controllers here; the
    general placement (other controller counts, validation) lives in
    :func:`mc_tile_placement`.
    """
    if mesh_width < 2:
        raise ValueError(
            f"a {mesh_width}x{mesh_width} mesh has no four distinct "
            f"corners; mesh_width must be at least 2")
    last = mesh_width - 1
    return (
        0,
        last,
        mesh_width * last,
        mesh_width * last + last,
    )


def mc_tile_placement(mesh_width: int, num_mem_controllers: int = 4) -> tuple:
    """Tile ids of the memory controllers on a ``mesh_width``-wide mesh.

    Generalizes the paper's corner placement to any square mesh from
    2x2 to 8x8 and controller counts of 1, 2, 4 or 8:

    * 1 — tile 0;
    * 2 — two opposite corners (maximal separation);
    * 4 — the four corners (the paper's 4x4 machine);
    * 8 — the four corners plus the four edge midpoints (needs at
      least a 3x3 mesh for the midpoints to be distinct tiles).

    Raises :class:`ValueError` for any combination with no valid
    placement, so degenerate shapes fail loudly instead of silently
    duplicating controller tiles.
    """
    if mesh_width < 2:
        raise ValueError(
            f"memory-controller placement needs at least a 2x2 mesh, "
            f"got {mesh_width}x{mesh_width}")
    corners = corner_tiles(mesh_width)
    if num_mem_controllers == 1:
        return (0,)
    if num_mem_controllers == 2:
        return (corners[0], corners[3])
    if num_mem_controllers == 4:
        return corners
    if num_mem_controllers == 8:
        if mesh_width < 3:
            raise ValueError(
                "8 memory controllers need at least a 3x3 mesh (the "
                "edge midpoints coincide with corners on a 2x2)")
        last = mesh_width - 1
        mid = mesh_width // 2
        midpoints = (mid,                        # top edge
                     mesh_width * mid,           # left edge
                     mesh_width * mid + last,    # right edge
                     mesh_width * last + mid)    # bottom edge
        return corners + midpoints
    raise ValueError(
        f"num_mem_controllers must be 1, 2, 4 or 8 "
        f"(got {num_mem_controllers})")


@dataclass(frozen=True)
class ProtocolConfig:
    """Feature flags selecting one protocol rung.

    The flags are resolved into policy objects by
    :func:`repro.coherence.policies.resolve_policies`; the protocol cores
    consult the policies, never the raw flags, so a new rung is usually
    just a new flag combination registered via
    :func:`repro.common.registry.register_protocol`.
    """

    name: str
    kind: str                         # "mesi" | "denovo"
    mem_to_l1: bool = False           # Memory Controller to L1 Transfer
    dirty_wb_only: bool = False       # Dirty-words-only writebacks (MESI)
    l2_write_validate: bool = False   # L2 Write-Validate (DeNovo only)
    l2_dirty_wb_only: bool = False    # Dirty-words-only L2->mem writebacks
    flex_l1: bool = False             # Flex for cache-sourced responses
    flex_l2: bool = False             # Flex extended to memory responses
    bypass_l2_response: bool = False  # L2 Response Bypass
    bypass_l2_request: bool = False   # L2 Request Bypass (Bloom filters)

    def __post_init__(self) -> None:
        if self.kind not in ("mesi", "denovo"):
            raise ValueError(f"unknown protocol kind {self.kind!r}")
        if self.kind == "mesi":
            denovo_only = (
                self.l2_write_validate or self.l2_dirty_wb_only
                or self.flex_l1 or self.flex_l2
                or self.bypass_l2_response or self.bypass_l2_request
            )
            if denovo_only:
                raise ValueError("DeNovo-only optimization on a MESI config")
        elif self.dirty_wb_only:
            raise ValueError(
                "dirty_wb_only is a MESI flag; DeNovo writebacks are "
                "always dirty-words-only")
        if self.flex_l2 and not self.flex_l1:
            raise ValueError("flex_l2 requires flex_l1")
        if self.bypass_l2_request and not self.bypass_l2_response:
            raise ValueError("request bypass requires response bypass")

    @property
    def is_denovo(self) -> bool:
        return self.kind == "denovo"

    def enabled_flags(self) -> tuple:
        """Names of the optimization flags this rung turns on."""
        return tuple(f.name for f in fields(self)
                     if f.name not in ("name", "kind")
                     and getattr(self, f.name))


def _mesi(name: str, **flags) -> ProtocolConfig:
    return ProtocolConfig(name=name, kind="mesi", **flags)


def _denovo(name: str, **flags) -> ProtocolConfig:
    return ProtocolConfig(name=name, kind="denovo", **flags)


# The nine protocol configurations of paper Sections 3.2-3.3, registered
# as the ladder in the order they appear on every figure's x-axis.
for _cfg in (
    _mesi("MESI"),
    _mesi("MMemL1", mem_to_l1=True),
    _denovo("DeNovo"),
    _denovo("DFlexL1", flex_l1=True),
    _denovo("DValidateL2", l2_write_validate=True, l2_dirty_wb_only=True),
    _denovo("DMemL1", l2_write_validate=True, l2_dirty_wb_only=True,
            mem_to_l1=True),
    _denovo("DFlexL2", l2_write_validate=True, l2_dirty_wb_only=True,
            mem_to_l1=True, flex_l1=True, flex_l2=True),
    _denovo("DBypL2", l2_write_validate=True, l2_dirty_wb_only=True,
            mem_to_l1=True, flex_l1=True, flex_l2=True,
            bypass_l2_response=True),
    _denovo("DBypFull", l2_write_validate=True, l2_dirty_wb_only=True,
            mem_to_l1=True, flex_l1=True, flex_l2=True,
            bypass_l2_response=True, bypass_l2_request=True),
):
    register_protocol(_cfg, ladder=True)


# Beyond-paper rungs: registered (runnable, listed) but off the paper
# ladder so figure defaults stay paper-shaped.

@register_protocol
def _mdirty_wb() -> ProtocolConfig:
    """MESI sending dirty-words-only writebacks (L1->L2 and L2->mem)."""
    return _mesi("MDirtyWB", dirty_wb_only=True)


@register_protocol
def _dword_hybrid() -> ProtocolConfig:
    """DeNovo with line-granularity L2 write-miss fills (fetch-on-write,
    like the baseline) but word-granularity L2->mem writebacks (like
    DValidateL2): isolates the writeback half of DValidateL2."""
    return _denovo("DWordHybrid", l2_dirty_wb_only=True)


#: Live name -> ProtocolConfig registry view (all rungs, registration
#: order).  New rungs appear here as soon as they are registered.
PROTOCOLS = REGISTRY

#: The paper's nine-rung ladder (every figure's x-axis order).
PROTOCOL_ORDER = paper_ladder()


@dataclass(frozen=True)
class ScaleConfig:
    """Input-size scaling for the six workloads.

    ``factor=1.0`` reproduces the paper's Table 4.2 sizes; the default
    ``SMALL`` scale shrinks each input while preserving the ratios that
    drive the paper's effects (working set vs. L2 size, radix buckets vs.
    L1 lines, struct layouts).
    """

    # The bypass apps' working sets must clearly exceed the (scaled) L2,
    # as the paper's premise requires ("data sets greatly exceeded the
    # size of the L2"): FFT 2x, radix 1.5x, kD-tree 1.4x the 128KB L2.
    name: str = "small"
    lu_matrix: int = 96           # paper: 512 (16x16 blocks kept)
    lu_block: int = 16
    fft_points: int = 16384       # paper: 256K
    radix_keys: int = 24576       # paper: 4M
    radix_buckets: int = 1024     # paper: 1024 (kept: > L1 lines matters)
    barnes_bodies: int = 512      # paper: 16K
    fluid_cells: int = 1024       # paper: simmedium (~100K cells)
    kdtree_triangles: int = 4096  # paper: bunny (~69K triangles)

    @staticmethod
    def paper() -> "ScaleConfig":
        return ScaleConfig(
            name="paper", lu_matrix=512, fft_points=262_144,
            radix_keys=4_000_000, barnes_bodies=16_384,
            fluid_cells=100_000, kdtree_triangles=69_451)

    @staticmethod
    def tiny() -> "ScaleConfig":
        """Very small inputs for unit tests."""
        return ScaleConfig(
            name="tiny", lu_matrix=32, lu_block=16, fft_points=1024,
            radix_keys=2048, radix_buckets=256, barnes_bodies=128,
            fluid_cells=128, kdtree_triangles=256)


@dataclass(frozen=True)
class EnergyModelConfig:
    """Per-event energy cost table for one technology point.

    The post-hoc energy model (:mod:`repro.energy`) multiplies these
    CACTI/McPAT-style costs by the event counters a run records
    (``RunResult.energy_counters``, traffic flit-hops, DRAM commands,
    busy cycles) and adds leakage scaled by execution time.  The values
    are *relative-fidelity* estimates — plausible magnitudes with
    faithful ratios between components — not silicon-validated numbers;
    cross-rung and cross-shape comparisons are meaningful, absolute
    joules are indicative only.

    Dynamic costs are picojoules per event; leakage is milliwatts per
    hardware unit (tile, L2 slice, router, memory controller, DRAM
    channel), multiplied by the unit count of the simulated machine.
    """

    name: str
    process_nm: int

    # Dynamic energy per event (picojoules).
    core_cycle_pj: float          # per busy (non-stalled) core cycle
    l1_probe_pj: float            # per L1 tag-array probe
    l1_word_pj: float             # per word moved into an L1 data array
    l2_probe_pj: float            # per L2 tag-array probe
    l2_word_pj: float             # per word moved into an L2 data array
    bloom_op_pj: float            # per Bloom filter query/update
    router_flit_hop_pj: float     # per flit per router traversal
    link_flit_hop_pj: float       # per flit per link traversal
    mc_request_pj: float          # per memory-controller command
    dram_activate_pj: float       # per row ACTIVATE
    dram_precharge_pj: float      # per row PRECHARGE
    dram_access_pj: float         # per line burst read or written

    # Leakage power per unit (milliwatts), scaled by execution time.
    core_leak_mw: float           # per tile (core logic)
    l1_leak_mw: float             # per tile (L1 arrays)
    l2_leak_mw: float             # per L2 slice
    noc_leak_mw: float            # per router
    mc_leak_mw: float             # per memory controller
    dram_leak_mw: float           # per DRAM channel (background power)

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name in ("name",):
                continue
            value = getattr(self, f.name)
            if not value >= 0:       # also rejects NaN
                raise ValueError(
                    f"energy model {self.name!r}: {f.name} must be a "
                    f"non-negative number (got {value!r})")


#: Named technology presets for the energy model, resolved by the
#: :mod:`repro.energy` subsystem and the ``python -m repro energy`` CLI
#: the same way protocol rungs resolve through the protocol registry.
ENERGY_MODELS = Registry("energy model")

# Two process nodes.  The 22nm point scales dynamic energy by ~0.45x of
# the 45nm point while leakage shrinks only ~0.65x — the classic
# "leakage fraction grows as the node shrinks" trend — so the two
# presets genuinely reorder EDP trade-offs rather than rescaling them.
for _em in (
    EnergyModelConfig(
        name="45nm", process_nm=45,
        core_cycle_pj=18.0,
        l1_probe_pj=2.6, l1_word_pj=4.4,
        l2_probe_pj=6.1, l2_word_pj=9.2,
        bloom_op_pj=0.8,
        router_flit_hop_pj=3.6, link_flit_hop_pj=2.2,
        mc_request_pj=4.1,
        dram_activate_pj=1900.0, dram_precharge_pj=1300.0,
        dram_access_pj=5200.0,
        core_leak_mw=85.0, l1_leak_mw=18.0, l2_leak_mw=46.0,
        noc_leak_mw=12.0, mc_leak_mw=30.0, dram_leak_mw=110.0),
    EnergyModelConfig(
        name="22nm", process_nm=22,
        core_cycle_pj=8.1,
        l1_probe_pj=1.2, l1_word_pj=2.0,
        l2_probe_pj=2.7, l2_word_pj=4.1,
        bloom_op_pj=0.36,
        router_flit_hop_pj=1.6, link_flit_hop_pj=1.0,
        mc_request_pj=1.8,
        dram_activate_pj=1100.0, dram_precharge_pj=760.0,
        dram_access_pj=3000.0,
        core_leak_mw=55.0, l1_leak_mw=12.0, l2_leak_mw=30.0,
        noc_leak_mw=8.0, mc_leak_mw=20.0, dram_leak_mw=72.0),
):
    ENERGY_MODELS.register(_em)

#: Preset used when callers don't pick one.
DEFAULT_ENERGY_MODEL = "45nm"


def energy_model(name: str) -> EnergyModelConfig:
    """Look up a registered energy-model preset by name."""
    return ENERGY_MODELS.get(name)


def registered_energy_models() -> tuple:
    """All registered preset names, in registration order."""
    return ENERGY_MODELS.names()


DEFAULT_SYSTEM = SystemConfig()
DEFAULT_SCALE = ScaleConfig()


def reshape_system(base: SystemConfig, num_tiles: int) -> SystemConfig:
    """Re-shape ``base`` to ``num_tiles`` tiles, preserving capacity ratios.

    The tile count is a sweep axis; the quantity the paper's effects
    hinge on is the ratio between each workload's working set and the
    *total* L2 (bypass only matters when the data set greatly exceeds
    it).  The working set does not change with the tile count, so the
    per-slice L2 capacity is scaled inversely to keep the total as
    close to constant as whole-KB slices allow — exact on the default
    power-of-two axis (4/16/64 tiles), rounded to the nearest KB per
    slice otherwise (e.g. a 64KB total over nine 3x3 slices becomes
    9x7KB = 63KB).  The per-slice Bloom banks shrink/grow with the
    slice.  Per-core resources (L1, store buffers, write-combining
    tables) stay fixed — more tiles genuinely means more aggregate
    private cache, exactly the effect a core-count scaling experiment
    studies.
    """
    if num_tiles == base.num_tiles:
        return base
    if num_tiles < 1:
        raise ValueError(f"num_tiles must be positive (got {num_tiles})")
    total_kb = base.l2_slice_kb * base.num_tiles
    slice_kb = max(1, (2 * total_kb + num_tiles) // (2 * num_tiles))
    filters = max(1, (2 * base.bloom_filters_per_slice * base.num_tiles
                      + num_tiles) // (2 * num_tiles))
    return replace(base, num_tiles=num_tiles, mesh_width=0,
                   l2_slice_kb=slice_kb, bloom_filters_per_slice=filters)


def scaled_system(scale: ScaleConfig, base: SystemConfig = DEFAULT_SYSTEM,
                  num_tiles: "int | None" = None) -> SystemConfig:
    """Shrink cache capacities in step with scaled-down inputs.

    The paper's effects depend on *ratios* between working sets and cache
    capacity (e.g. bypass only matters when the data set greatly exceeds
    the L2).  When inputs are scaled below the paper sizes we shrink the
    caches by a similar factor so those ratios, and hence the figure
    shapes, are preserved.

    ``num_tiles``, when given, additionally re-shapes the machine to
    that tile count via :func:`reshape_system` (total L2 capacity is
    preserved across shapes so the figure-driving ratios survive).
    """
    if scale.name == "paper":
        cfg = base
    elif scale.name == "tiny":
        # Bloom tables shrink with the inputs so filter-copy overhead
        # stays the ~0.5%-of-traffic the paper reports (Section 5.2.4).
        cfg = replace(base, l1_kb=2, l2_slice_kb=4,
                      bloom_entries=128, bloom_filters_per_slice=2)
    else:
        cfg = replace(base, l1_kb=8, l2_slice_kb=8,
                      bloom_entries=256, bloom_filters_per_slice=4)
    if num_tiles is not None:
        cfg = reshape_system(cfg, num_tiles)
    return cfg

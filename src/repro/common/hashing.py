"""Stable content hashing shared by job keys and the result store.

Job keys and cache-file names must be identical across processes and
Python versions, so hashing goes through a canonical JSON serialization
(never ``hash()``, which is salted per process).  Dataclass configs are
flattened to sorted ``(field, value)`` pairs before hashing so field
declaration order never leaks into the key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass

#: Hex digits kept from the sha256 digest; 64 bits is plenty for a grid
#: of at most a few thousand distinct configurations.
KEY_LENGTH = 16


def config_items(dc) -> list:
    """A dataclass instance as deterministically ordered field pairs."""
    if not is_dataclass(dc):
        raise TypeError(f"expected a dataclass instance, got {type(dc)!r}")
    return sorted(asdict(dc).items())


def stable_hash(payload, length: int = KEY_LENGTH) -> str:
    """Short hex digest of a JSON-serializable payload.

    The serialization (default :func:`json.dumps` settings) is part of
    the on-disk cache contract: changing it invalidates every stored
    result, so bump the store's ``GRID_VERSION`` instead if the payload
    shape must change.
    """
    blob = json.dumps(payload)
    return hashlib.sha256(blob.encode()).hexdigest()[:length]

"""Protocol registry: named coherence-protocol configurations.

Every protocol rung — the paper's nine-step ladder and any rung added
later — registers here, and every consumer (``core.system``, the sweep
runner, ``analysis.figures``, the ``python -m repro`` CLI) resolves
names through :func:`protocol` instead of a hard-coded table.  Adding a
rung is therefore one ``register_protocol(...)`` call; nothing else in
the stack needs to learn its name.

Registration order is stable (insertion-ordered) and drives default
listings.  Rungs registered with ``ladder=True`` form the *paper
ladder* — the x-axis of every figure — in registration order; extra
rungs are runnable and listed but excluded from figure defaults.

The registry is intentionally generic: it stores any object with a
``name`` attribute, so it has no import cycle with
:mod:`repro.common.config`, which defines ``ProtocolConfig`` and
performs the actual registrations.
"""

from __future__ import annotations

import difflib
from collections import OrderedDict
from typing import Callable, List, Optional, Tuple, TypeVar, Union

ProtoT = TypeVar("ProtoT")

#: Live name -> config mapping, in registration order.  Exposed (as
#: ``repro.common.config.PROTOCOLS``) for iteration; mutate it only
#: through :func:`register_protocol` / :func:`unregister_protocol`.
REGISTRY: "OrderedDict[str, object]" = OrderedDict()

_LADDER: List[str] = []


def register_protocol(config: Union[ProtoT, Callable[[], ProtoT], None] = None,
                      *, ladder: bool = False,
                      replace: bool = False):
    """Register a protocol configuration under its ``name``.

    Usable three ways::

        register_protocol(ProtocolConfig(name="MESI", ...), ladder=True)

        @register_protocol          # zero-arg factory; returns the config
        def _mdirty_wb():
            return ProtocolConfig(name="MDirtyWB", ...)

        @register_protocol(ladder=True)
        def _mesi(): ...

    Duplicate names are rejected unless ``replace=True`` (which keeps
    the original registration position, so figure ordering is stable
    under re-registration).
    """
    if config is None:
        def decorate(factory):
            return register_protocol(factory, ladder=ladder, replace=replace)
        return decorate
    if callable(config) and not hasattr(config, "name"):
        config = config()
    name = getattr(config, "name", None)
    if not isinstance(name, str) or not name:
        raise TypeError("protocol configs must have a non-empty .name")
    if name in REGISTRY and not replace:
        raise ValueError(f"protocol {name!r} is already registered; "
                         f"pass replace=True to override")
    REGISTRY[name] = config
    if ladder and name not in _LADDER:
        _LADDER.append(name)
    return config


def unregister_protocol(name: str) -> None:
    """Remove a registered protocol (primarily for tests)."""
    REGISTRY.pop(name, None)
    if name in _LADDER:
        _LADDER.remove(name)


def protocol(name: str):
    """Look up a registered protocol configuration by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(REGISTRY)
        hint = ""
        close = suggest(name)
        if close:
            hint = f"; did you mean {' or '.join(close)}?"
        raise KeyError(
            f"unknown protocol {name!r}; known: {known}{hint}") from None


def is_registered(name: str) -> bool:
    return name in REGISTRY


def registered_protocols() -> Tuple[str, ...]:
    """All registered protocol names, in registration order."""
    return tuple(REGISTRY)


def paper_ladder() -> Tuple[str, ...]:
    """The paper's protocol ladder (figure x-axis), in order."""
    return tuple(_LADDER)


def suggest(name: str, n: int = 2) -> List[str]:
    """Near-miss candidates for a misspelled protocol name."""
    matches = difflib.get_close_matches(name, list(REGISTRY), n=n,
                                        cutoff=0.4)
    if not matches:
        lowered = {p.lower(): p for p in REGISTRY}
        exact = lowered.get(name.lower())
        if exact:
            matches = [exact]
    return matches

"""Named-configuration registries (protocol rungs, energy presets).

:class:`Registry` is a small generic building block: an
insertion-ordered ``name -> config`` mapping with duplicate rejection,
near-miss suggestions on failed lookups, and an optional *ladder* — the
subset (in registration order) that forms a display default, like the
paper's nine-rung protocol ladder that is the x-axis of every figure.
It stores any object with a ``name`` attribute, so it has no import
cycle with :mod:`repro.common.config`, which defines the config classes
and performs the actual registrations.

Two registries live in the stack today:

* the **protocol registry** (module-level API below, kept for the many
  existing callers): every coherence rung — the paper ladder and any
  rung added later — registers here, and every consumer
  (``core.system``, the sweep runner, ``analysis.figures``, the
  ``python -m repro`` CLI) resolves names through :func:`protocol`
  instead of a hard-coded table;
* the **energy-model registry**
  (``repro.common.config.ENERGY_MODELS``): named technology presets
  consumed by the :mod:`repro.energy` subsystem and the ``python -m
  repro energy`` CLI.

Adding an entry to either is one ``register(...)`` call; nothing else
in the stack needs to learn its name.
"""

from __future__ import annotations

import difflib
from collections import OrderedDict
from typing import Callable, List, Optional, Tuple, TypeVar, Union

ProtoT = TypeVar("ProtoT")


class Registry:
    """Insertion-ordered ``name -> config`` registry with suggestions.

    ``kind`` names what is registered ("protocol", "energy model") and
    appears in error messages.  ``entries`` is the live mapping —
    exposed for iteration; mutate it only through :meth:`register` /
    :meth:`unregister`.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.entries: "OrderedDict[str, object]" = OrderedDict()
        self._ladder: List[str] = []

    # -- registration ---------------------------------------------------
    def register(self,
                 config: Union[ProtoT, Callable[[], ProtoT], None] = None,
                 *, ladder: bool = False, replace: bool = False):
        """Register a configuration under its ``name``.

        Usable three ways::

            registry.register(Config(name="X", ...), ladder=True)

            @registry.register          # zero-arg factory; returns the config
            def _x():
                return Config(name="X", ...)

            @registry.register(ladder=True)
            def _x(): ...

        Duplicate names are rejected unless ``replace=True`` (which
        keeps the original registration position, so display ordering
        is stable under re-registration).
        """
        if config is None:
            def decorate(factory):
                return self.register(factory, ladder=ladder, replace=replace)
            return decorate
        if callable(config) and not hasattr(config, "name"):
            config = config()
        name = getattr(config, "name", None)
        if not isinstance(name, str) or not name:
            raise TypeError(
                f"{self.kind} configs must have a non-empty .name")
        if name in self.entries and not replace:
            raise ValueError(f"{self.kind} {name!r} is already registered; "
                             f"pass replace=True to override")
        self.entries[name] = config
        if ladder and name not in self._ladder:
            self._ladder.append(name)
        return config

    def unregister(self, name: str) -> None:
        """Remove a registered entry (primarily for tests)."""
        self.entries.pop(name, None)
        if name in self._ladder:
            self._ladder.remove(name)

    # -- lookup ---------------------------------------------------------
    def get(self, name: str):
        """Look up a registered configuration by name."""
        try:
            return self.entries[name]
        except KeyError:
            known = ", ".join(self.entries)
            hint = ""
            close = self.suggest(name)
            if close:
                hint = f"; did you mean {' or '.join(close)}?"
            raise KeyError(
                f"unknown {self.kind} {name!r}; known: {known}{hint}"
            ) from None

    def suggest(self, name: str, n: int = 2) -> List[str]:
        """Near-miss candidates for a misspelled name."""
        matches = difflib.get_close_matches(name, list(self.entries), n=n,
                                            cutoff=0.4)
        if not matches:
            lowered = {p.lower(): p for p in self.entries}
            exact = lowered.get(name.lower())
            if exact:
                matches = [exact]
        return matches

    # -- views ----------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self.entries)

    def ladder(self) -> Tuple[str, ...]:
        """The names registered with ``ladder=True``, in order."""
        return tuple(self._ladder)

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


# ----------------------------------------------------------------------
# The protocol registry (module-level API, predates the Registry class)
# ----------------------------------------------------------------------

#: The coherence-protocol registry instance.
PROTOCOL_REGISTRY = Registry("protocol")

#: Live name -> config mapping, in registration order.  Exposed (as
#: ``repro.common.config.PROTOCOLS``) for iteration; mutate it only
#: through :func:`register_protocol` / :func:`unregister_protocol`.
REGISTRY = PROTOCOL_REGISTRY.entries


def register_protocol(config: Union[ProtoT, Callable[[], ProtoT], None] = None,
                      *, ladder: bool = False,
                      replace: bool = False):
    """Register a protocol configuration under its ``name``.

    See :meth:`Registry.register` for the three usable forms.  Rungs
    registered with ``ladder=True`` form the *paper ladder* — the
    x-axis of every figure — in registration order; extra rungs are
    runnable and listed but excluded from figure defaults.
    """
    return PROTOCOL_REGISTRY.register(config, ladder=ladder, replace=replace)


def unregister_protocol(name: str) -> None:
    """Remove a registered protocol (primarily for tests)."""
    PROTOCOL_REGISTRY.unregister(name)


def protocol(name: str):
    """Look up a registered protocol configuration by name."""
    return PROTOCOL_REGISTRY.get(name)


def is_registered(name: str) -> bool:
    return name in PROTOCOL_REGISTRY


def registered_protocols() -> Tuple[str, ...]:
    """All registered protocol names, in registration order."""
    return PROTOCOL_REGISTRY.names()


def paper_ladder() -> Tuple[str, ...]:
    """The paper's protocol ladder (figure x-axis), in order."""
    return PROTOCOL_REGISTRY.ladder()


def suggest(name: str, n: int = 2) -> List[str]:
    """Near-miss candidates for a misspelled protocol name."""
    return PROTOCOL_REGISTRY.suggest(name, n=n)

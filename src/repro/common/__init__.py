"""Shared configuration, addressing and region machinery."""

from repro.common.addressing import (
    LINE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    base_word,
    line_of,
    offset_of,
    span_lines,
    word_in_line,
    words_of_line,
)
from repro.common.config import (
    DEFAULT_SCALE,
    DEFAULT_SYSTEM,
    PROTOCOL_ORDER,
    PROTOCOLS,
    ProtocolConfig,
    ScaleConfig,
    SystemConfig,
    corner_tiles,
    mc_tile_placement,
    protocol,
    reshape_system,
    scaled_system,
)
from repro.common.regions import (
    FlexPattern,
    Region,
    RegionAllocator,
    RegionTable,
)
from repro.common.registry import (
    paper_ladder,
    register_protocol,
    registered_protocols,
    unregister_protocol,
)

__all__ = [
    "LINE_BYTES", "WORD_BYTES", "WORDS_PER_LINE",
    "base_word", "line_of", "offset_of", "span_lines", "word_in_line",
    "words_of_line",
    "DEFAULT_SCALE", "DEFAULT_SYSTEM", "PROTOCOL_ORDER", "PROTOCOLS",
    "ProtocolConfig", "ScaleConfig", "SystemConfig", "corner_tiles",
    "mc_tile_placement", "protocol", "reshape_system", "scaled_system",
    "paper_ladder", "register_protocol", "registered_protocols",
    "unregister_protocol",
    "FlexPattern", "Region", "RegionAllocator", "RegionTable",
]

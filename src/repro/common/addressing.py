"""Word- and line-granular address arithmetic.

The simulator works on *word addresses* (one word = 4 bytes, matching the
paper's word-level waste accounting).  A cache line is 64 bytes, i.e. 16
words.  All helpers here are pure functions on integers so they can be used
from any subsystem without importing the configuration machinery.
"""

from __future__ import annotations

WORD_BYTES = 4
LINE_BYTES = 64
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES  # 16
LINE_SHIFT = 4  # log2(WORDS_PER_LINE)
OFFSET_MASK = WORDS_PER_LINE - 1


def line_of(word_addr: int) -> int:
    """Return the line number that contains ``word_addr``."""
    return word_addr >> LINE_SHIFT


def offset_of(word_addr: int) -> int:
    """Return the word offset of ``word_addr`` inside its line (0..15)."""
    return word_addr & OFFSET_MASK


def base_word(line_addr: int) -> int:
    """Return the first word address of line ``line_addr``."""
    return line_addr << LINE_SHIFT


def word_in_line(line_addr: int, offset: int) -> int:
    """Return the word address at ``offset`` inside line ``line_addr``."""
    if not 0 <= offset < WORDS_PER_LINE:
        raise ValueError(f"offset {offset} outside line (0..{WORDS_PER_LINE - 1})")
    return (line_addr << LINE_SHIFT) | offset


def words_of_line(line_addr: int):
    """Iterate over the 16 word addresses of line ``line_addr``."""
    base = line_addr << LINE_SHIFT
    return range(base, base + WORDS_PER_LINE)


def bytes_to_words(num_bytes: int) -> int:
    """Number of whole words needed to hold ``num_bytes`` (rounded up)."""
    return -(-num_bytes // WORD_BYTES)


def span_lines(word_addr: int, num_words: int):
    """Return the distinct lines touched by ``num_words`` starting at addr."""
    if num_words <= 0:
        return []
    first = line_of(word_addr)
    last = line_of(word_addr + num_words - 1)
    return list(range(first, last + 1))


def align_up_words(word_addr: int, alignment_words: int) -> int:
    """Round ``word_addr`` up to a multiple of ``alignment_words``."""
    if alignment_words <= 0:
        raise ValueError("alignment must be positive")
    rem = word_addr % alignment_words
    if rem == 0:
        return word_addr
    return word_addr + alignment_words - rem

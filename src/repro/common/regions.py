"""Software region model (DPJ-style annotations).

DeNovo relies on software-supplied *regions*: every load and store carries
the region id of the data it touches.  Regions also carry the two kinds of
annotation the paper's optimizations consume:

* **Flex communication regions** (Section 2): for array-of-struct data, the
  set of word offsets inside each struct element that the current phase
  actually uses.  A Flex-capable responder returns exactly those words
  (possibly spanning cache lines), up to the 64-byte packet payload limit.
* **L2 bypass** (Section 3.1): regions whose data should not be allocated
  in (or, with request bypass, even looked up in) the L2.

``RegionTable`` is the hardware-visible table each cache controller holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.addressing import WORDS_PER_LINE, line_of

#: Sentinel for "no change" in RegionTable.update.
_UNSET = object()


@dataclass(frozen=True)
class FlexPattern:
    """Communication region for an array-of-structs region.

    ``stride_words`` is the size of one struct element in words;
    ``field_offsets`` are the word offsets within an element that the
    current phase uses.  Flex responses gather exactly those words for the
    element containing the missing address (plus, when prefetching, the
    following elements that fit in one packet).
    """

    stride_words: int
    field_offsets: Tuple[int, ...]
    prefetch_elements: int = 0   # extra sequential elements to gather

    def __post_init__(self) -> None:
        if self.stride_words <= 0:
            raise ValueError("stride must be positive")
        bad = [o for o in self.field_offsets if not 0 <= o < self.stride_words]
        if bad:
            raise ValueError(f"field offsets {bad} outside stride")
        if len(set(self.field_offsets)) != len(self.field_offsets):
            raise ValueError("duplicate field offsets")

    def element_index(self, region_offset: int) -> int:
        """Element number containing ``region_offset`` (words from base)."""
        return region_offset // self.stride_words

    def words_for_element(self, region_base: int, element: int) -> List[int]:
        """Word addresses of the used fields of ``element``."""
        elem_base = region_base + element * self.stride_words
        return [elem_base + off for off in self.field_offsets]


@dataclass(frozen=True)
class Region:
    """A contiguous software region of the address space.

    ``base_word`` .. ``base_word + size_words`` (exclusive).  ``bypass_l2``
    marks the region for the L2 response/request bypass optimizations;
    ``flex`` supplies the communication-region pattern when the region is an
    array of structs whose phase uses only some fields.
    """

    region_id: int
    name: str
    base_word: int
    size_words: int
    bypass_l2: bool = False
    flex: Optional[FlexPattern] = None

    def __post_init__(self) -> None:
        if self.size_words <= 0:
            raise ValueError("region must be non-empty")
        if self.base_word < 0:
            raise ValueError("region base must be non-negative")

    @property
    def end_word(self) -> int:
        return self.base_word + self.size_words

    def contains(self, word_addr: int) -> bool:
        return self.base_word <= word_addr < self.end_word

    def flex_words(self, word_addr: int, max_words: int) -> List[int]:
        """Words a Flex response would gather for a miss on ``word_addr``.

        Returns the used fields of the element containing the address,
        then (if the pattern prefetches) fields of subsequent elements,
        truncated to ``max_words`` and clipped to the region bounds.
        """
        if self.flex is None:
            raise ValueError(f"region {self.name} has no flex pattern")
        rel = word_addr - self.base_word
        if rel < 0 or rel >= self.size_words:
            raise ValueError("address outside region")
        first = self.flex.element_index(rel)
        words: List[int] = []
        last_element = (self.size_words - 1) // self.flex.stride_words
        for element in range(first, min(first + 1 + self.flex.prefetch_elements,
                                        last_element + 1)):
            for word in self.flex.words_for_element(self.base_word, element):
                if word >= self.end_word:
                    continue
                words.append(word)
                if len(words) == max_words:
                    return words
        return words


class RegionTable:
    """Region lookup table held by every cache controller.

    Regions may not overlap.  Lookups by address use binary search over the
    sorted region bases; lookups by id are direct.
    """

    def __init__(self, regions: Iterable[Region] = ()) -> None:
        self._by_id: Dict[int, Region] = {}
        self._sorted: List[Region] = []
        for region in regions:
            self.add(region)

    def add(self, region: Region) -> None:
        if region.region_id in self._by_id:
            raise ValueError(f"duplicate region id {region.region_id}")
        for other in self._sorted:
            if (region.base_word < other.end_word
                    and other.base_word < region.end_word):
                raise ValueError(
                    f"region {region.name} overlaps {other.name}")
        self._by_id[region.region_id] = region
        self._sorted.append(region)
        self._sorted.sort(key=lambda r: r.base_word)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(self._sorted)

    def by_id(self, region_id: int) -> Region:
        return self._by_id[region_id]

    def get(self, region_id: int) -> Optional[Region]:
        return self._by_id.get(region_id)

    def find(self, word_addr: int) -> Optional[Region]:
        """Region containing ``word_addr``, or None."""
        lo, hi = 0, len(self._sorted) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            region = self._sorted[mid]
            if word_addr < region.base_word:
                hi = mid - 1
            elif word_addr >= region.end_word:
                lo = mid + 1
            else:
                return region
        return None

    def clone(self) -> "RegionTable":
        """Shallow copy (regions are immutable) for per-run annotation state."""
        out = RegionTable()
        out._by_id = dict(self._by_id)
        out._sorted = list(self._sorted)
        return out

    def update(self, region_id: int, *, flex=_UNSET, bypass_l2=_UNSET) -> Region:
        """Replace a region's software annotations (phase boundary).

        Base address and size are immutable; only the DPJ-style metadata
        (Flex pattern, bypass flag) may change between phases.
        """
        from dataclasses import replace as _replace

        old = self._by_id[region_id]
        changes = {}
        if flex is not _UNSET:
            changes["flex"] = flex
        if bypass_l2 is not _UNSET:
            changes["bypass_l2"] = bypass_l2
        if not changes:
            return old
        new = _replace(old, **changes)
        self._by_id[region_id] = new
        self._sorted[self._sorted.index(old)] = new
        return new

    def should_bypass(self, word_addr: int) -> bool:
        region = self.find(word_addr)
        return region is not None and region.bypass_l2

    def flex_region_for(self, word_addr: int) -> Optional[Region]:
        region = self.find(word_addr)
        if region is not None and region.flex is not None:
            return region
        return None


class RegionAllocator:
    """Sequential allocator that lays regions out line-aligned.

    Workload generators use this to build their address maps; line
    alignment mirrors the paper's aligned data structures (e.g. the
    aligned LU variant that removes false sharing).
    """

    def __init__(self, start_word: int = 0) -> None:
        self._next_word = start_word
        self._next_id = 0
        self.table = RegionTable()

    def alloc(self, name: str, size_words: int, *, bypass_l2: bool = False,
              flex: Optional[FlexPattern] = None,
              align_words: int = WORDS_PER_LINE) -> Region:
        base = self._next_word
        if align_words > 1:
            rem = base % align_words
            if rem:
                base += align_words - rem
        region = Region(
            region_id=self._next_id, name=name, base_word=base,
            size_words=size_words, bypass_l2=bypass_l2, flex=flex)
        self.table.add(region)
        self._next_id += 1
        self._next_word = base + size_words
        return region

    @property
    def high_water_word(self) -> int:
        return self._next_word

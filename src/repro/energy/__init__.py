"""Energy accounting subsystem: counter-driven energy & EDP model.

The simulator records event counters; this package turns any finished
:class:`~repro.core.stats.RunResult` into a per-component energy
breakdown (core, L1, L2, NoC, MC, DRAM) plus derived metrics (total
energy, EDP, ED2P, energy per useful word) under a named technology
preset — no re-simulation required.  See :mod:`repro.energy.model`.
"""

from repro.energy.model import (
    COMPONENT_LABELS,
    COMPONENTS,
    EnergyStats,
    compute_energy,
    resolve_model,
    shaped_config,
)

__all__ = [
    "COMPONENTS", "COMPONENT_LABELS", "EnergyStats",
    "compute_energy", "resolve_model", "shaped_config",
]

"""Counter-driven energy model over finished simulation results.

Energy is accounted **post hoc**: a run records event counters (tag
probes, line installs, Bloom filter activity, per-flit-hop network
traffic, DRAM commands, busy cycles) and this module multiplies them by
the per-event costs of an :class:`~repro.common.config.EnergyModelConfig`
technology preset, adding leakage scaled by execution time.  Nothing
here touches a simulated cycle — deriving energy from a stored
:class:`~repro.core.stats.RunResult` is pure arithmetic, so every
existing sweep result becomes an energy/EDP data point for free.

Conservation properties the audit tests rely on:

* the flit-hops charged to NoC energy are exactly the finalized
  :class:`~repro.network.traffic.TrafficLedger` totals
  (``result.traffic``), split into data and control via
  :func:`repro.network.traffic.split_flit_hops`;
* DRAM energy events are exactly the FR-FCFS model's command counts
  over the measurement window (``energy_counters["dram_*"]``; for
  results predating those counters, the whole-run ``dram_stats``).

Costs are relative-fidelity estimates (see ``EnergyModelConfig``), so
compare rungs, shapes and presets — don't quote absolute joules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.common.config import (
    DEFAULT_ENERGY_MODEL, EnergyModelConfig, SystemConfig, energy_model,
    reshape_system)
from repro.core.stats import RunResult
from repro.network.traffic import split_flit_hops

#: Component order used by every breakdown (figures, tables, report).
COMPONENTS = ("core", "l1", "l2", "noc", "mc", "dram")

COMPONENT_LABELS = {
    "core": "Core",
    "l1": "L1",
    "l2": "L2",
    "noc": "NoC",
    "mc": "MC",
    "dram": "DRAM",
}

_PJ = 1e-12          # picojoules -> joules
_MW = 1e-3           # milliwatts -> watts


@dataclass
class EnergyStats:
    """Energy breakdown of one run under one technology preset.

    ``dynamic`` and ``static`` map each component to joules; ``detail``
    keeps the per-event charge lines (for audits and debugging).
    ``exec_seconds`` is the run's execution time, so the delay-weighted
    metrics (EDP, ED2P) come straight off this object.
    """

    workload: str
    protocol: str
    model: str
    exec_seconds: float
    dynamic: Dict[str, float]
    static: Dict[str, float]
    detail: Dict[str, float] = field(default_factory=dict)
    useful_words: int = 0

    # -- derived metrics -----------------------------------------------
    def component(self, name: str) -> float:
        """Dynamic + leakage energy of one component (joules)."""
        return self.dynamic[name] + self.static[name]

    def components(self) -> Dict[str, float]:
        return {name: self.component(name) for name in COMPONENTS}

    @property
    def total(self) -> float:
        """Total energy (joules)."""
        return sum(self.dynamic.values()) + sum(self.static.values())

    @property
    def edp(self) -> float:
        """Energy-delay product (joule-seconds)."""
        return self.total * self.exec_seconds

    @property
    def ed2p(self) -> float:
        """Energy-delay-squared product (J*s^2)."""
        return self.total * self.exec_seconds ** 2

    @property
    def energy_per_useful_word(self) -> float:
        """Joules per word the cores actually read (L1 Used words)."""
        return self.total / self.useful_words if self.useful_words else 0.0

    def validate(self) -> None:
        """Raise :class:`ValueError` on NaN/negative/non-finite energy."""
        for kind, bucket in (("dynamic", self.dynamic),
                             ("static", self.static)):
            for name, joules in bucket.items():
                if not math.isfinite(joules) or joules < 0:
                    raise ValueError(
                        f"{self.workload} x {self.protocol} [{self.model}]: "
                        f"{kind} {name} energy is {joules!r} (expected a "
                        f"finite non-negative value)")
        if not math.isfinite(self.exec_seconds) or self.exec_seconds < 0:
            raise ValueError(
                f"{self.workload} x {self.protocol} [{self.model}]: "
                f"exec_seconds is {self.exec_seconds!r}")


def resolve_model(model: Union[str, EnergyModelConfig, None]
                  ) -> EnergyModelConfig:
    """Accept a preset name, a config instance, or None (the default)."""
    if model is None:
        model = DEFAULT_ENERGY_MODEL
    if isinstance(model, str):
        return energy_model(model)
    return model


def shaped_config(num_tiles: int,
                  base: Optional[SystemConfig] = None) -> SystemConfig:
    """A machine shape for energy accounting when only tiles are known.

    Energy needs the unit counts (tiles, L2 slices, routers, memory
    controllers) and the clock; when a caller has a ``RunResult`` keyed
    only by tile count (e.g. the scaling figure), re-shaping the default
    machine supplies them.
    """
    base = base if base is not None else SystemConfig()
    return reshape_system(base, num_tiles)


def compute_energy(result: RunResult,
                   model: Union[str, EnergyModelConfig, None] = None,
                   config: Optional[SystemConfig] = None) -> EnergyStats:
    """Derive the energy breakdown of one finished run.

    ``config`` supplies unit counts and the core clock; it defaults to
    the paper's 16-tile machine and only needs to match the run's
    *shape* (tile/controller counts), not its cache sizing.  Results
    predating the energy counters (old cache files) yield zero L1/L2/
    Bloom dynamic energy but still account core, NoC, MC, DRAM and
    leakage, all of which derive from fields every result has.
    """
    em = resolve_model(model)
    cfg = config if config is not None else SystemConfig()
    counters = result.energy_counters
    exec_seconds = result.exec_cycles / (cfg.core_ghz * 1e9)

    detail: Dict[str, float] = {}

    def charge(line: str, events: float, cost_pj: float) -> float:
        joules = events * cost_pj * _PJ
        detail[line] = joules
        return joules

    # Core: busy (non-stalled) cycles summed over all cores.
    dyn_core = charge("core_busy_cycles", result.time.get("busy", 0.0),
                      em.core_cycle_pj)

    # L1 / L2: tag probes + words moved into the data arrays (the waste
    # profiler counts every word that enters a level) + line installs
    # (tag writes, charged at probe cost) + Bloom shadow activity, which
    # physically lives beside the L1s.
    get = counters.get
    dyn_l1 = (
        charge("l1_probes", get("l1_probes", 0), em.l1_probe_pj)
        + charge("l1_installs", get("l1_installs", 0), em.l1_probe_pj)
        + charge("l1_words", result.words_fetched("l1"), em.l1_word_pj)
        + charge("bloom_shadow_ops",
                 get("bloom_shadow_checks", 0)
                 + get("bloom_shadow_inserts", 0)
                 + get("bloom_shadow_installs", 0),
                 em.bloom_op_pj))
    dyn_l2 = (
        charge("l2_probes", get("l2_probes", 0), em.l2_probe_pj)
        + charge("l2_installs", get("l2_installs", 0), em.l2_probe_pj)
        + charge("l2_words", result.words_fetched("l2"), em.l2_word_pj)
        + charge("bloom_slice_ops",
                 get("bloom_slice_checks", 0)
                 + get("bloom_slice_updates", 0),
                 em.bloom_op_pj))

    # NoC: every flit-hop the ledger finalized crosses one link and
    # enters one router.  Charged from ``result.traffic`` so the total
    # reconciles with the traffic figures by construction.
    data_hops, ctl_hops = split_flit_hops(result.traffic)
    flit_hops = data_hops + ctl_hops
    dyn_noc = (charge("noc_data_flit_hops", data_hops,
                      em.router_flit_hop_pj + em.link_flit_hop_pj)
               + charge("noc_ctl_flit_hops", ctl_hops,
                        em.router_flit_hop_pj + em.link_flit_hop_pj))
    detail["noc_flit_hops"] = flit_hops  # events, not joules: audit aid

    # MC + DRAM: the FR-FCFS model's command counts over the
    # measurement window (every other component is window-scoped, so
    # warm-up DRAM traffic must not leak into the breakdown).  Old
    # results without the window counters fall back to the whole-run
    # dram_stats — the best available approximation.
    dram = result.dram_stats
    accesses = (get("dram_reads", dram.get("reads", 0))
                + get("dram_writes", dram.get("writes", 0)))
    dyn_mc = charge("mc_requests", accesses, em.mc_request_pj)
    dyn_dram = (
        charge("dram_activates",
               get("dram_activates", dram.get("activates", 0)),
               em.dram_activate_pj)
        + charge("dram_precharges",
                 get("dram_precharges", dram.get("precharges", 0)),
                 em.dram_precharge_pj)
        + charge("dram_accesses", accesses, em.dram_access_pj))

    dynamic = {"core": dyn_core, "l1": dyn_l1, "l2": dyn_l2,
               "noc": dyn_noc, "mc": dyn_mc, "dram": dyn_dram}

    # Leakage: per-unit power x unit count x execution time.
    tiles = cfg.num_tiles
    mcs = cfg.num_mem_controllers
    static = {
        "core": em.core_leak_mw * tiles * _MW * exec_seconds,
        "l1": em.l1_leak_mw * tiles * _MW * exec_seconds,
        "l2": em.l2_leak_mw * tiles * _MW * exec_seconds,
        "noc": em.noc_leak_mw * tiles * _MW * exec_seconds,
        "mc": em.mc_leak_mw * mcs * _MW * exec_seconds,
        "dram": em.dram_leak_mw * mcs * _MW * exec_seconds,
    }

    stats = EnergyStats(
        workload=result.workload,
        protocol=result.protocol,
        model=em.name,
        exec_seconds=exec_seconds,
        dynamic=dynamic,
        static=static,
        detail=detail,
        useful_words=result.used_words("l1"),
    )
    stats.validate()
    return stats

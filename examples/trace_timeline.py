#!/usr/bin/env python3
"""Observe one run: metrics hub, Chrome trace export, utilization timeline.

Attaches an ``ObsSession`` to a single simulation, then shows the three
faces of the observability subsystem:

* the metrics hub's end-of-run totals (which reconcile exactly with the
  ``RunResult`` energy counters),
* the exported Chrome trace-event JSON (open it in
  https://ui.perfetto.dev to see barrier phases and DRAM bank activity),
* the per-tile link-utilization heat-strip timeline.

Run:  python examples/trace_timeline.py [workload] [protocol] [out.json]
"""

import sys

from repro import ScaleConfig, build_workload, simulate
from repro.analysis.timeline import figure_timeline
from repro.common.config import scaled_system
from repro.obs import ObsSession


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "FFT"
    protocol = sys.argv[2] if len(sys.argv) > 2 else "DeNovo"
    out_path = sys.argv[3] if len(sys.argv) > 3 else "trace.json"

    scale = ScaleConfig.tiny()
    config = scaled_system(scale)
    workload = build_workload(workload_name, scale)

    obs = ObsSession(sample_interval=2000)
    result = simulate(workload, protocol, config, obs=obs)

    print(f"observed run: {result.workload} / {result.protocol} — "
          f"{result.exec_cycles:,} cycles, {result.events:,} events")

    print("\nmetrics hub totals (reconcile with RunResult):")
    for name in ("l1_probes", "l2_probes", "noc_packets", "noc_flit_hops",
                 "dram_reads", "dram_writes", "engine_events"):
        print(f"  {name:<16s} {obs.hub.total(name):>14,.0f}")
    assert obs.hub.total("noc_flit_hops") == result.energy_counters[
        "noc_flit_hops"], "hub must match the energy counters"

    obs.export(out_path)
    print(f"\nChrome trace: {len(obs.trace.events())} events, "
          f"{len(obs.samples)} metric samples -> {out_path}")
    print("(load it in https://ui.perfetto.dev or chrome://tracing)")

    print()
    print(figure_timeline(obs).render())


if __name__ == "__main__":
    main()

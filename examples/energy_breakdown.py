#!/usr/bin/env python3
"""Energy breakdown: walk the protocol ladder and price each rung.

The paper measures network traffic and word-level waste because both
proxy energy; the ``repro.energy`` subsystem closes the loop.  This
example simulates one workload at tiny scale under every rung of the
paper's nine-step ladder, then derives — post hoc, from the recorded
event counters — a per-component energy breakdown (core / L1 / L2 /
NoC / MC / DRAM) and the EDP table under a chosen technology preset.

Run:  python examples/energy_breakdown.py [workload] [preset]
      python examples/energy_breakdown.py radix 22nm
"""

import sys

from repro.analysis.energy import edp_table, figure_energy
from repro.common.config import (
    DEFAULT_ENERGY_MODEL, PROTOCOL_ORDER, ScaleConfig, scaled_system)
from repro.core.simulator import simulate
from repro.workloads import build_workload


def main(argv) -> None:
    workload_name = argv[1] if len(argv) > 1 else "radix"
    preset = argv[2] if len(argv) > 2 else DEFAULT_ENERGY_MODEL
    scale = ScaleConfig.tiny()
    config = scaled_system(scale)
    workload = build_workload(workload_name, scale)
    print(f"simulating {workload_name} x the {len(PROTOCOL_ORDER)}-rung "
          f"ladder (tiny scale), pricing with the {preset} preset...")
    grid = {workload_name: {
        proto: simulate(workload, proto, config)
        for proto in PROTOCOL_ORDER}}
    print()
    print(figure_energy(grid, preset, config).render())
    print()
    print(edp_table(grid, preset, config))
    print()
    # The headline question: does the most aggressive rung save energy
    # on top of the traffic it saves?
    from repro.energy import compute_energy
    base = compute_energy(grid[workload_name]["MESI"], preset, config)
    best = compute_energy(grid[workload_name]["DBypFull"], preset, config)
    print(f"DBypFull vs MESI [{preset}]: "
          f"{1.0 - best.total / base.total:+.1%} total energy, "
          f"{1.0 - best.edp / base.edp:+.1%} EDP, "
          f"{1.0 - best.dynamic['noc'] / base.dynamic['noc']:+.1%} "
          f"NoC dynamic energy")


if __name__ == "__main__":
    main(sys.argv)

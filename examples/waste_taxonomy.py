#!/usr/bin/env python3
"""Drive the waste-classification FSMs directly (paper Section 4.1).

A miniature walk-through of the three profilers on a hand-made event
sequence, showing how each word ends in exactly one category — useful
when extending the taxonomy or adding a new protocol.

Run:  python examples/waste_taxonomy.py
"""

from repro.waste.profiler import (
    CacheLevelProfiler, Category, MemoryProfiler)


def main() -> None:
    l1 = CacheLevelProfiler("L1")
    mem = MemoryProfiler()

    # A line of four words arrives at core 0 from memory.
    insts = [mem.fetch(addr, l2_has_addr=False) for addr in range(4)]
    entries = [l1.on_arrival(0, addr, already_present=False)
               for addr in range(4)]
    for inst in insts:
        mem.install_copy(inst)

    l1.on_use(0, 0)            # word 0: read           -> Used
    mem.on_load(insts[0])
    l1.on_write(0, 1)          # word 1: overwritten    -> Write
    mem.on_store_addr(1)
    l1.on_invalidate(0, 2)     # word 2: invalidated    -> Invalidate
    mem.drop_copy(insts[2], invalidated=True)
    l1.on_evict(0, 3)          # word 3: evicted        -> Evict
    mem.drop_copy(insts[3], invalidated=False)

    mem.fetch(7, l2_has_addr=True)   # refetch of an L2-resident word
    mem.fetch_excess(8)              # dropped at the memory controller

    l1.finalize()
    mem.finalize()

    print("L1 profiler (Figure 4.1):")
    for cat, n in l1.counts().items():
        if n:
            print(f"  {cat.value:12s} {n}")
    print("memory profiler (Figure 4.3):")
    for cat, n in mem.counts().items():
        if n:
            print(f"  {cat.value:12s} {n}")

    assert l1.count(Category.USED) == 1
    assert mem.count(Category.EXCESS) == 1
    print("\nEvery fetched word lands in exactly one category — the "
          "invariant all of Figure 5.3 rests on.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Build a custom workload with software region annotations.

Shows the library's workload API: allocate regions with
DPJ-style annotations (Flex communication regions, L2-bypass flags),
emit per-core traces with the TraceBuilder, and measure how much traffic
each annotation removes on a producer-consumer array-of-structs kernel —
the pattern the paper's Flex optimization targets (Section 2).

The kernel: core 0 fills an array of 16-word particle structs; after a
barrier, the other 15 cores each read only the 4 "position" words of
their slice of particles.  Without Flex every consumer drags whole cache
lines; with Flex the responses carry just the fields the phase uses.

Run:  python examples/custom_workload.py
"""

from repro import ScaleConfig, protocol, simulate
from repro.common.config import scaled_system
from repro.common.regions import FlexPattern, RegionAllocator
from repro.network import traffic as T
from repro.workloads.trace import TraceBuilder

NUM_CORES = 16
PARTICLES = 512
STRIDE = 16                      # one struct = one cache line
POSITION_FIELDS = (0, 1, 2, 3)   # the only fields the read phase uses


def build(flex: bool):
    alloc = RegionAllocator()
    pattern = FlexPattern(STRIDE, POSITION_FIELDS) if flex else None
    particles = alloc.alloc("particles", PARTICLES * STRIDE, flex=pattern)
    tb = TraceBuilder(NUM_CORES, alloc.table)

    # Phase 1: core 0 produces every struct (write-validate territory).
    for p in range(PARTICLES):
        base = particles.base_word + p * STRIDE
        for off in range(STRIDE):
            tb.store(0, base + off)
    tb.barrier()

    # Phase 2: consumers read only the position fields of their slice.
    per_core = PARTICLES // (NUM_CORES - 1)
    for core in range(1, NUM_CORES):
        start = (core - 1) * per_core
        for p in range(start, start + per_core):
            base = particles.base_word + p * STRIDE
            for off in POSITION_FIELDS:
                tb.load(core, base + off)
    tb.barrier()
    return tb.build("custom-aos")


def main() -> None:
    config = scaled_system(ScaleConfig.tiny())
    for proto_name in ("DeNovo", "DFlexL1"):
        workload = build(flex=proto_name != "DeNovo")
        result = simulate(workload, proto_name, config)
        data = (result.traffic_bucket(T.LD, T.RESP_L1_USED)
                + result.traffic_bucket(T.LD, T.RESP_L1_WASTE))
        used = result.traffic_bucket(T.LD, T.RESP_L1_USED)
        print(f"{proto_name:9s} LD data flit-hops: {data:9.1f} "
              f"({used / data:.0%} useful)" if data else proto_name)

    print("\nFlex sends only the 4/16 struct words the consumers read, "
          "so load data traffic drops by roughly 4x and nearly all of "
          "what remains is useful.")


if __name__ == "__main__":
    main()

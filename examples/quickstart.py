#!/usr/bin/env python3
"""Quickstart: simulate one workload under MESI and fully-optimized DeNovo.

Builds the radix-sort workload at a small scale, runs it under the
baseline MESI protocol and under DBypFull (DeNovo with every optimization
of the paper), and prints the traffic and waste comparison — the paper's
headline claim in miniature.

Run:  python examples/quickstart.py
"""

from repro import ScaleConfig, build_workload, simulate
from repro.common.config import scaled_system
from repro.network import traffic as T
from repro.waste.profiler import Category


def describe(result) -> None:
    print(f"\n--- {result.protocol} on {result.workload} ---")
    print(f"execution time : {result.exec_cycles:,} cycles")
    print(f"network traffic: {result.traffic_total():,.0f} flit-hops")
    for major in (T.LD, T.ST, T.WB, T.OVH):
        print(f"  {major:4s}: {result.traffic_major(major):12,.0f}")
    fetched = result.words_fetched("l1")
    used = result.used_words("l1")
    if fetched:
        print(f"L1 words fetched: {fetched:,} ({used / fetched:.1%} used)")
    print(f"waste share of traffic: {result.waste_fraction_of_traffic():.1%}")


def main() -> None:
    scale = ScaleConfig.tiny()          # fast demo; ScaleConfig() is fuller
    config = scaled_system(scale)
    workload = build_workload("radix", scale)
    print(f"workload: radix — {workload.memory_ops():,} memory ops, "
          f"{workload.num_barriers} barriers, 16 cores")

    mesi = simulate(workload, "MESI", config)
    best = simulate(workload, "DBypFull", config)
    describe(mesi)
    describe(best)

    saving = 1 - best.traffic_total() / mesi.traffic_total()
    speedup = 1 - best.exec_cycles / mesi.exec_cycles
    print(f"\nDBypFull vs MESI: {saving:.1%} less traffic, "
          f"{speedup:.1%} faster")
    print("(the paper reports 39.5% less traffic and 10.5% faster on "
          "average across six benchmarks)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sweep the L2-Request-Bypass Bloom filter geometry (paper Section 4.4).

The paper sizes its filters at 512 entries x 32 filters per slice
("idealized ... to show how effective the technique can be") and notes
that a sufficiently low false-positive rate needs ~32KB per L1, "making
it the least desirable of the optimizations".  This example sweeps the
filter geometry on the radix workload and reports, for each size, the
fraction of bypass-eligible requests that actually went straight to
memory and the resulting traffic.

Run:  python examples/bloom_tuning.py
"""

from dataclasses import replace

from repro import ScaleConfig, build_workload, protocol, simulate
from repro.common.config import scaled_system


def main() -> None:
    scale = ScaleConfig.tiny()
    base_config = scaled_system(scale)
    workload = build_workload("radix", scale)
    proto = protocol("DBypFull")

    print(f"{'entries':>8s} {'filters':>8s} {'L1 bytes':>9s} "
          f"{'direct':>7s} {'queries':>8s} {'traffic':>10s}")
    for entries, filters in ((64, 4), (128, 8), (256, 16), (512, 32),
                             (1024, 32)):
        config = replace(base_config, bloom_entries=entries,
                         bloom_filters_per_slice=filters)
        result = simulate(workload, proto, config)
        stats = result.protocol_stats
        queries = max(stats.get("bypass_queries", 0), 1)
        direct = stats.get("direct_requests", 0)
        l1_bytes = entries * filters * 16 // 8   # 1 bit/entry, 16 slices
        print(f"{entries:8d} {filters:8d} {l1_bytes:9d} "
              f"{direct / queries:6.1%} {queries:8d} "
              f"{result.traffic_total():10.0f}")

    print("\nLarger filters mean fewer false positives, so more requests "
          "skip the L2 — at the storage cost the paper calls out.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Core-count scaling: one workload swept across machine shapes.

The paper evaluates its nine protocol rungs on exactly one machine (a
16-tile 4x4 mesh).  With the machine shape a first-class axis, this
example sweeps one workload across tile counts and prints the scaling
table: execution time and network flit-hops per (shape, protocol), with
each cell shown relative to the smallest machine.

Run:  python examples/core_scaling.py [workload] [tiles ...]
      python examples/core_scaling.py radix 4 16
"""

import sys

from repro.analysis.scaling import figure_scaling, run_scaling
from repro.common.config import ScaleConfig


def main(argv) -> None:
    workload = argv[1] if len(argv) > 1 else "radix"
    tiles = tuple(int(a) for a in argv[2:]) or (4, 16)
    protocols = ("MESI", "DeNovo", "DBypFull")
    print(f"sweeping {workload} x {protocols} across "
          f"{', '.join(f'{t} tiles' for t in tiles)} (tiny scale)...")
    shapes = run_scaling(workloads=(workload,), protocols=protocols,
                         tiles=tiles, scale=ScaleConfig.tiny(),
                         use_cache=False)
    print()
    print(figure_scaling(shapes).render())
    print()
    # The paper-style takeaway, now as a function of machine size.
    smallest, largest = min(tiles), max(tiles)
    for t in (smallest, largest):
        protos = shapes[t][workload]
        saving = 1.0 - (protos["DBypFull"].traffic_total()
                        / protos["MESI"].traffic_total())
        print(f"{t:3d} tiles: DBypFull moves {saving:.1%} less traffic "
              f"than MESI")


if __name__ == "__main__":
    main(sys.argv)

#!/usr/bin/env python3
"""Walk every registered protocol rung on one workload.

Reproduces, for a single benchmark, the x-axis of every figure in the
paper — MESI -> MMemL1 -> DeNovo -> DFlexL1 -> DValidateL2 -> DMemL1 ->
DFlexL2 -> DBypL2 -> DBypFull — and then continues through the
beyond-paper rungs in the protocol registry (MDirtyWB, DWordHybrid,
plus anything you register yourself), printing normalized traffic
(split into the paper's LD/ST/WB/overhead categories), execution time,
and the word-level waste taxonomy.

Run:  python examples/protocol_ladder.py [workload]
      (default kD-tree; any of: fluidanimate LU FFT radix barnes kD-tree)
"""

import sys

from repro import (
    ScaleConfig, build_workload, registered_protocols, simulate)
from repro.common.config import scaled_system
from repro.network import traffic as T
from repro.waste.profiler import CATEGORY_ORDER, Category


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "kD-tree"
    scale = ScaleConfig.tiny()
    config = scaled_system(scale)
    workload = build_workload(name, scale)
    print(f"workload: {workload.name} — {workload.description}")
    print(f"{'protocol':12s} {'traffic':>9s} {'LD':>6s} {'ST':>6s} "
          f"{'WB':>6s} {'OVH':>6s} {'exec':>6s}   waste breakdown "
          f"(L1 words)")

    # Registry order: the paper ladder first (MESI leads and is the
    # normalization baseline), then any beyond-paper rungs.
    baseline = None
    for proto in registered_protocols():
        result = simulate(workload, proto, config)
        if baseline is None:
            baseline = result
        norm = 100.0 / baseline.traffic_total()
        exec_norm = 100.0 * result.exec_cycles / baseline.exec_cycles
        majors = " ".join(
            f"{result.traffic_major(m) * norm:6.1f}"
            for m in (T.LD, T.ST, T.WB, T.OVH))
        total_words = max(result.words_fetched("l1"), 1)
        waste = " ".join(
            f"{cat.value[:4]}={100 * result.l1_waste.get(cat, 0) / total_words:.0f}%"
            for cat in CATEGORY_ORDER
            if result.l1_waste.get(cat, 0) and cat is not Category.EXCESS)
        print(f"{proto:12s} {result.traffic_total() * norm:8.1f}% "
              f"{majors} {exec_norm:5.1f}%   {waste}")

    print("\n(all values normalized to the MESI row, as in the paper's "
          "Figures 5.1-5.3)")


if __name__ == "__main__":
    main()

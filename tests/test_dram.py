"""Unit tests for the DDR3 timing model and FR-FCFS controller."""

import pytest

from repro.common.config import SystemConfig
from repro.dram.model import LINES_PER_ROW, DramChannel
from repro.engine.events import EventQueue

CFG = SystemConfig()


def make_channel():
    q = EventQueue()
    return DramChannel(CFG, q), q


class TestAddressMapping:
    def test_same_row_within_row(self):
        ch, _ = make_channel()
        assert ch.same_row(0, 1)
        assert ch.same_row(0, LINES_PER_ROW - 1)

    def test_different_rows(self):
        ch, _ = make_channel()
        assert not ch.same_row(0, LINES_PER_ROW)

    def test_rows_interleave_across_banks(self):
        ch, _ = make_channel()
        banks = {ch.bank_of(row * LINES_PER_ROW)
                 for row in range(CFG.dram_banks * CFG.dram_ranks)}
        assert len(banks) == CFG.dram_banks * CFG.dram_ranks


class TestTiming:
    def test_first_access_pays_activation(self):
        ch, q = make_channel()
        done = []
        ch.read(0, done.append)
        q.run()
        assert done[0] == CFG.dram_t_rcd + CFG.dram_t_cl + CFG.dram_t_burst

    def test_row_hit_is_faster(self):
        ch, q = make_channel()
        times = []
        ch.read(0, times.append)
        q.run()
        ch.read(1, times.append)   # same row: open-page hit
        q.run()
        first = times[0]
        second_latency = times[1] - first
        assert second_latency == CFG.dram_t_cl + CFG.dram_t_burst
        assert ch.row_hits == 1 and ch.row_misses == 1

    def test_row_conflict_pays_precharge(self):
        ch, q = make_channel()
        times = []
        ch.read(0, times.append)
        q.run()
        conflict_line = LINES_PER_ROW * CFG.dram_banks * CFG.dram_ranks
        assert ch.bank_of(conflict_line) == ch.bank_of(0)
        ch.read(conflict_line, times.append)
        q.run()
        latency = times[1] - times[0]
        assert latency == (CFG.dram_t_rp + CFG.dram_t_rcd + CFG.dram_t_cl
                           + CFG.dram_t_burst)

    def test_fr_fcfs_prefers_row_hit(self):
        """A younger row-hit request is served before an older row miss."""
        ch, q = make_channel()
        order = []
        ch.read(0, lambda t: order.append("warm"))
        q.run()
        # Enqueue a row miss (different row, same bank) then a row hit.
        same_bank_other_row = LINES_PER_ROW * CFG.dram_banks * CFG.dram_ranks
        ch.read(same_bank_other_row, lambda t: order.append("miss"))
        ch.read(1, lambda t: order.append("hit"))
        q.run()
        assert order == ["warm", "hit", "miss"]

    def test_writes_counted(self):
        ch, q = make_channel()
        ch.write(0)
        ch.write(LINES_PER_ROW)
        q.run()
        assert ch.writes == 2 and ch.reads == 0

    def test_bank_parallelism(self):
        """Requests to different banks overlap; same bank serializes."""
        ch, q = make_channel()
        same = []
        ch.read(0, same.append)
        conflict = LINES_PER_ROW * CFG.dram_banks * CFG.dram_ranks
        ch.read(conflict, same.append)
        q.run()
        serial_span = max(same)

        ch2, q2 = make_channel()
        par = []
        ch2.read(0, par.append)
        ch2.read(LINES_PER_ROW, par.append)   # different bank
        q2.run()
        parallel_span = max(par)
        assert parallel_span < serial_span

    def test_callbacks_fire_once_per_request(self):
        ch, q = make_channel()
        count = [0]
        for i in range(10):
            ch.read(i * LINES_PER_ROW, lambda t: count.__setitem__(
                0, count[0] + 1))
        q.run()
        assert count[0] == 10
        assert ch.reads == 10

    def test_queue_depth(self):
        ch, q = make_channel()
        ch.read(0, lambda t: None)
        ch.read(1, lambda t: None)
        assert ch.queue_depth == 2
        q.run()
        assert ch.queue_depth == 0

"""Golden bit-identity regression over the tiny-scale paper grid.

``tests/golden/grid_tiny.json`` snapshots the serialized ``RunResult``
of every (workload, protocol) cell of the paper grid at ``tiny`` scale,
captured before the coherence-kernel refactor.  These tests assert the
current code reproduces every cell bit-for-bit — traffic flit-hops,
waste taxonomies, per-bucket times, exec cycles, protocol stats, energy
counters and the event count.

The per-cell event count additionally gets its own dedicated assertion:
the hot-path engine rework (closure-free ``schedule_call``, same-cycle
batch draining) must provably schedule the *identical event stream*,
and an event-count diff localizes an engine regression faster than the
full-dict comparison does.

If a change is *supposed* to alter simulation results, regenerate the
snapshot with ``PYTHONPATH=src python tools/gen_golden_grid.py`` and
explain why in the commit message.
"""

import json
from pathlib import Path
from typing import Dict

import pytest

from repro.common.config import PROTOCOL_ORDER, ScaleConfig, scaled_system
from repro.core.simulator import simulate
from repro.runner.store import result_to_dict
from repro.workloads import WORKLOAD_ORDER, build_workload

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "grid_tiny.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())["grid"]

SCALE = ScaleConfig.tiny()
CONFIG = scaled_system(SCALE)

# Each workload's cells are simulated once and shared by the bit-identity
# and event-count tests (simulation is deterministic, so this is pure
# memoization, not state leakage between tests).
_RESULTS: Dict[str, Dict[str, dict]] = {}


def _grid_results(workload_name: str) -> Dict[str, dict]:
    cells = _RESULTS.get(workload_name)
    if cells is None:
        workload = build_workload(workload_name, SCALE)
        cells = _RESULTS[workload_name] = {
            proto: result_to_dict(simulate(workload, proto, CONFIG))
            for proto in PROTOCOL_ORDER}
    return cells


def test_golden_covers_the_full_paper_grid():
    assert set(GOLDEN) == set(WORKLOAD_ORDER)
    for workload, cells in GOLDEN.items():
        assert set(cells) == set(PROTOCOL_ORDER), workload


@pytest.mark.parametrize("workload_name", WORKLOAD_ORDER)
def test_grid_cells_bit_identical_to_golden(workload_name):
    for proto in PROTOCOL_ORDER:
        result = _grid_results(workload_name)[proto]
        expected = GOLDEN[workload_name][proto]
        assert result == expected, (
            f"{workload_name} x {proto} diverged from the golden result; "
            f"if intentional, regenerate tests/golden/grid_tiny.json with "
            f"tools/gen_golden_grid.py")


@pytest.mark.parametrize("engine", ("reference", "compiled"))
def test_heap_scheduler_reproduces_golden_slice(engine):
    """The heap scheduler must still reproduce the golden cells.

    The golden grid (and the compiled-engine parity suite) run under
    the default wheel scheduler; this slice re-simulates one workload's
    full protocol ladder under ``scheduler="heap"`` with both engines,
    pinning the schedulers to each other through the snapshot.  The
    randomized differential in ``test_events.py`` covers the adversarial
    corner cases cheaply; full-grid heap coverage would only re-pay the
    54-cell cost for the same invariant.
    """
    import dataclasses
    workload_name = "fluidanimate"   # DRAM-heavy: exercises the fused
    workload = build_workload(workload_name, SCALE)     # wakeup path
    config = dataclasses.replace(CONFIG, scheduler="heap", engine=engine)
    for proto in PROTOCOL_ORDER:
        result = result_to_dict(simulate(workload, proto, config))
        assert result == GOLDEN[workload_name][proto], (
            f"{workload_name} x {proto} diverged from the golden result "
            f"under scheduler='heap', engine={engine!r}")


@pytest.mark.parametrize("workload_name", WORKLOAD_ORDER)
def test_grid_cell_event_counts_pinned(workload_name):
    """The engine must schedule the identical event stream per cell."""
    for proto in PROTOCOL_ORDER:
        events = _grid_results(workload_name)[proto]["events"]
        expected = GOLDEN[workload_name][proto]["events"]
        assert events == expected, (
            f"{workload_name} x {proto}: {events} events run, golden "
            f"pinned {expected} — the scheduler is not executing the "
            f"same event stream")

"""Golden bit-identity regression over the tiny-scale paper grid.

``tests/golden/grid_tiny.json`` snapshots the serialized ``RunResult``
of every (workload, protocol) cell of the paper grid at ``tiny`` scale,
captured before the coherence-kernel refactor.  These tests assert the
current code reproduces every cell bit-for-bit — traffic flit-hops,
waste taxonomies, per-bucket times, exec cycles, protocol stats and
even the event count.

If a change is *supposed* to alter simulation results, regenerate the
snapshot with ``PYTHONPATH=src python tools/gen_golden_grid.py`` and
explain why in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.common.config import PROTOCOL_ORDER, ScaleConfig, scaled_system
from repro.core.simulator import simulate
from repro.runner.store import result_to_dict
from repro.workloads import WORKLOAD_ORDER, build_workload

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "grid_tiny.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())["grid"]

SCALE = ScaleConfig.tiny()
CONFIG = scaled_system(SCALE)


def test_golden_covers_the_full_paper_grid():
    assert set(GOLDEN) == set(WORKLOAD_ORDER)
    for workload, cells in GOLDEN.items():
        assert set(cells) == set(PROTOCOL_ORDER), workload


@pytest.mark.parametrize("workload_name", WORKLOAD_ORDER)
def test_grid_cells_bit_identical_to_golden(workload_name):
    workload = build_workload(workload_name, SCALE)
    for proto in PROTOCOL_ORDER:
        result = result_to_dict(simulate(workload, proto, CONFIG))
        expected = GOLDEN[workload_name][proto]
        assert result == expected, (
            f"{workload_name} x {proto} diverged from the golden result; "
            f"if intentional, regenerate tests/golden/grid_tiny.json with "
            f"tools/gen_golden_grid.py")

"""Property-based end-to-end tests: random micro-workloads, invariants.

Hypothesis generates small random multi-core traces; every protocol must
complete them and satisfy the accounting invariants regardless of the
interleaving of loads, stores and barriers.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.config import protocol
from repro.core.system import System
from repro.network import traffic as T
from repro.waste.profiler import Category
from repro.workloads.trace import OP_BARRIER, OP_COMPUTE, OP_LOAD, OP_STORE

from tests.conftest import TINY_SYSTEM, micro_workload

# Addresses spread over 64 lines so evictions and sharing both occur in
# the tiny 1KB L1s.
addr = st.integers(min_value=0, max_value=1023)

op = st.one_of(
    st.tuples(st.just(OP_LOAD), addr),
    st.tuples(st.just(OP_STORE), addr),
    st.tuples(st.just(OP_COMPUTE), st.integers(min_value=1, max_value=20)),
)

core_trace = st.lists(op, min_size=0, max_size=40)

workload_ops = st.dictionaries(
    st.integers(min_value=0, max_value=15), core_trace,
    min_size=1, max_size=4)

SETTINGS = settings(max_examples=12, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def run(per_core_ops, proto):
    w = micro_workload(per_core_ops)
    return System(w, protocol(proto), TINY_SYSTEM).run()


class TestRandomWorkloads:
    @SETTINGS
    @given(workload_ops, st.sampled_from(["MESI", "MMemL1", "DeNovo",
                                          "DValidateL2", "DBypFull"]))
    def test_completes_with_consistent_accounting(self, ops, proto):
        result = run(ops, proto)
        # Simulation completed.
        assert result.exec_cycles > 0
        # No negative counters anywhere.
        for counts in (result.l1_waste, result.l2_waste,
                       result.mem_waste):
            assert all(v >= 0 for v in counts.values())
        for major, buckets in result.traffic.items():
            assert all(v >= -1e-9 for v in buckets.values()), (major,
                                                               buckets)
        # Memory fetches never exceed DRAM reads x line size.
        assert (result.words_fetched("mem")
                <= result.dram_stats["reads"] * 16)

    @SETTINGS
    @given(workload_ops)
    def test_mesi_denovo_agree_on_simulation_termination(self, ops):
        mesi = run(ops, "MESI")
        denovo = run(ops, "DeNovo")
        assert mesi.exec_cycles > 0 and denovo.exec_cycles > 0
        # DeNovo never produces MESI-style overhead messages.
        for key in (T.OVH_UNBLOCK, T.OVH_INVAL, T.OVH_ACK):
            assert denovo.traffic[T.OVH][key] == 0.0

    @SETTINGS
    @given(workload_ops)
    def test_determinism(self, ops):
        a = run(ops, "MESI")
        b = run(ops, "MESI")
        assert a.traffic == b.traffic
        assert a.exec_cycles == b.exec_cycles

    @SETTINGS
    @given(core_trace)
    def test_single_core_no_coherence_waste(self, trace):
        """A single core never suffers Invalidate waste under MESI."""
        result = run({5: trace}, "MESI")
        assert result.l1_waste[Category.INVALIDATE] == 0

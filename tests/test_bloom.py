"""Unit tests for the Bloom filter structures (paper Section 4.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bloom.filters import (
    BloomFilter, CountingBloomFilter, H3Hash, L1FilterShadow,
    SliceFilterBank)

line_addrs = st.integers(min_value=0, max_value=2**34)


def hashes(entries=512, n=1, seed=7):
    return [H3Hash(entries, seed + i) for i in range(n)]


class TestH3Hash:
    def test_deterministic(self):
        h1 = H3Hash(512, seed=3)
        h2 = H3Hash(512, seed=3)
        for key in (0, 1, 12345, 2**30):
            assert h1(key) == h2(key)

    def test_in_range(self):
        h = H3Hash(100, seed=1)
        for key in range(1000):
            assert 0 <= h(key) < 100

    def test_different_seeds_differ(self):
        h1, h2 = H3Hash(512, 1), H3Hash(512, 2)
        diffs = sum(1 for k in range(200) if h1(k) != h2(k))
        assert diffs > 150

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            H3Hash(0, seed=1)


class TestBloomFilter:
    def test_insert_query(self):
        f = BloomFilter(512, hashes())
        f.insert(42)
        assert f.may_contain(42)

    def test_clear(self):
        f = BloomFilter(512, hashes())
        f.insert(42)
        f.clear()
        assert not f.may_contain(42)

    def test_union_bits(self):
        src = CountingBloomFilter(512, hashes())
        src.insert(42)
        dst = BloomFilter(512, hashes())
        dst.union_bits(src.bit_projection())
        assert dst.may_contain(42)

    def test_union_size_mismatch(self):
        f = BloomFilter(512, hashes())
        with pytest.raises(ValueError):
            f.union_bits([0] * 100)

    @settings(max_examples=30)
    @given(st.sets(line_addrs, min_size=1, max_size=100))
    def test_no_false_negatives(self, keys):
        f = BloomFilter(512, hashes())
        for key in keys:
            f.insert(key)
        assert all(f.may_contain(key) for key in keys)


class TestCountingBloomFilter:
    def test_insert_remove(self):
        f = CountingBloomFilter(512, hashes())
        f.insert(42)
        f.remove(42)
        assert not f.may_contain(42)

    def test_counting_survives_shared_removal(self):
        """Two inserts need two removals before the bit clears."""
        f = CountingBloomFilter(512, hashes())
        f.insert(42)
        f.insert(42)
        f.remove(42)
        assert f.may_contain(42)
        f.remove(42)
        assert not f.may_contain(42)

    def test_remove_at_zero_is_safe(self):
        f = CountingBloomFilter(512, hashes())
        f.remove(42)
        assert not f.may_contain(42)

    @settings(max_examples=20)
    @given(st.sets(line_addrs, min_size=2, max_size=60))
    def test_removal_keeps_other_keys(self, keys):
        f = CountingBloomFilter(1024, hashes(1024))
        keys = sorted(keys)
        for key in keys:
            f.insert(key)
        f.remove(keys[0])
        for key in keys[1:]:
            assert f.may_contain(key)


class TestSliceFilterBank:
    def test_tracks_lines(self):
        bank = SliceFilterBank(num_filters=32, entries=512, num_hashes=1,
                               seed=1)
        for line in range(0, 1000, 17):
            bank.insert(line)
        for line in range(0, 1000, 17):
            assert bank.may_contain(line)

    def test_remove(self):
        bank = SliceFilterBank(32, 512, 1, seed=1)
        bank.insert(100)
        bank.remove(100)
        assert not bank.may_contain(100)

    def test_filter_index_stable(self):
        bank = SliceFilterBank(32, 512, 1, seed=1)
        assert bank.filter_index(77) == bank.filter_index(77)
        assert 0 <= bank.filter_index(77) < 32

    def test_false_positive_rate_reasonable(self):
        """512 entries x 32 filters: ~1k inserted lines should leave the
        overwhelming majority of other lines negative."""
        bank = SliceFilterBank(32, 512, 1, seed=3)
        inserted = set(range(0, 4096, 4))
        for line in inserted:
            bank.insert(line)
        probes = [line for line in range(100_000, 110_000)
                  if line not in inserted]
        fp = sum(1 for line in probes if bank.may_contain(line))
        assert fp / len(probes) < 0.15


class TestL1FilterShadow:
    def make_pair(self):
        bank = SliceFilterBank(32, 512, 1, seed=5)
        shadow = L1FilterShadow(num_slices=1, num_filters=32, entries=512,
                                num_hashes=1, seed=5)
        return bank, shadow

    def test_copy_semantics(self):
        bank, shadow = self.make_pair()
        bank.insert(42)
        idx = bank.filter_index(42)
        assert not shadow.has_copy(0, 42)
        shadow.install(0, idx, bank.bit_projection(idx))
        assert shadow.has_copy(0, 42)
        assert shadow.may_contain(0, 42)

    def test_query_before_copy_raises(self):
        _bank, shadow = self.make_pair()
        with pytest.raises(RuntimeError):
            shadow.may_contain(0, 42)

    def test_writeback_inserts_locally(self):
        bank, shadow = self.make_pair()
        idx = bank.filter_index(42)
        shadow.install(0, idx, bank.bit_projection(idx))
        assert not shadow.may_contain(0, 42)
        shadow.note_writeback(0, 42)
        assert shadow.may_contain(0, 42)

    def test_clear_wipes_validity(self):
        bank, shadow = self.make_pair()
        idx = bank.filter_index(42)
        shadow.install(0, idx, bank.bit_projection(idx))
        shadow.clear()
        assert not shadow.has_copy(0, 42)

    def test_shadow_is_conservative_superset(self):
        """After copy + local writebacks, the shadow never misses a line
        the slice bank would report (no false negatives for safety)."""
        bank, shadow = self.make_pair()
        lines = list(range(0, 2000, 13))
        for line in lines:
            bank.insert(line)
        copied = set()
        for line in lines:
            idx = bank.filter_index(line)
            if idx not in copied:
                shadow.install(0, idx, bank.bit_projection(idx))
                copied.add(idx)
        for line in lines:
            assert shadow.may_contain(0, line)

"""Unit tests for the software region model."""

import pytest
from hypothesis import given, strategies as st

from repro.common.regions import (
    FlexPattern, Region, RegionAllocator, RegionTable)


class TestFlexPattern:
    def test_basic(self):
        p = FlexPattern(stride_words=8, field_offsets=(0, 1, 4))
        assert p.element_index(0) == 0
        assert p.element_index(7) == 0
        assert p.element_index(8) == 1

    def test_words_for_element(self):
        p = FlexPattern(stride_words=8, field_offsets=(0, 4))
        assert p.words_for_element(100, 0) == [100, 104]
        assert p.words_for_element(100, 2) == [116, 120]

    def test_rejects_out_of_stride_offsets(self):
        with pytest.raises(ValueError):
            FlexPattern(stride_words=4, field_offsets=(4,))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            FlexPattern(stride_words=4, field_offsets=(1, 1))

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            FlexPattern(stride_words=0, field_offsets=())


class TestRegion:
    def test_contains(self):
        r = Region(0, "r", base_word=64, size_words=32)
        assert r.contains(64) and r.contains(95)
        assert not r.contains(63) and not r.contains(96)

    def test_flex_words_single_element(self):
        flex = FlexPattern(stride_words=8, field_offsets=(0, 3))
        r = Region(0, "r", base_word=0, size_words=64, flex=flex)
        assert r.flex_words(1, max_words=16) == [0, 3]
        assert r.flex_words(9, max_words=16) == [8, 11]

    def test_flex_words_with_prefetch(self):
        flex = FlexPattern(stride_words=4, field_offsets=(0, 1),
                           prefetch_elements=2)
        r = Region(0, "r", base_word=0, size_words=64, flex=flex)
        assert r.flex_words(0, max_words=16) == [0, 1, 4, 5, 8, 9]

    def test_flex_words_truncates_to_packet(self):
        flex = FlexPattern(stride_words=4, field_offsets=(0, 1),
                           prefetch_elements=20)
        r = Region(0, "r", base_word=0, size_words=256, flex=flex)
        assert len(r.flex_words(0, max_words=16)) == 16

    def test_flex_words_clips_to_region_end(self):
        flex = FlexPattern(stride_words=4, field_offsets=(0, 1),
                           prefetch_elements=5)
        r = Region(0, "r", base_word=0, size_words=8, flex=flex)
        assert r.flex_words(4, max_words=16) == [4, 5]

    def test_flex_words_requires_pattern(self):
        r = Region(0, "r", base_word=0, size_words=8)
        with pytest.raises(ValueError):
            r.flex_words(0, 16)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Region(0, "r", base_word=0, size_words=0)


class TestRegionTable:
    def test_find(self):
        t = RegionTable([
            Region(0, "a", 0, 64),
            Region(1, "b", 64, 64),
            Region(2, "c", 256, 64),
        ])
        assert t.find(0).name == "a"
        assert t.find(63).name == "a"
        assert t.find(64).name == "b"
        assert t.find(200) is None
        assert t.find(300).name == "c"

    def test_rejects_overlap(self):
        t = RegionTable([Region(0, "a", 0, 64)])
        with pytest.raises(ValueError):
            t.add(Region(1, "b", 32, 64))

    def test_rejects_duplicate_id(self):
        t = RegionTable([Region(0, "a", 0, 64)])
        with pytest.raises(ValueError):
            t.add(Region(0, "b", 128, 64))

    def test_should_bypass(self):
        t = RegionTable([Region(0, "a", 0, 64, bypass_l2=True),
                         Region(1, "b", 64, 64)])
        assert t.should_bypass(10)
        assert not t.should_bypass(70)
        assert not t.should_bypass(1000)

    def test_update_annotations(self):
        t = RegionTable([Region(0, "a", 0, 64)])
        t.update(0, bypass_l2=True)
        assert t.by_id(0).bypass_l2
        assert t.find(10).bypass_l2
        flex = FlexPattern(4, (0,))
        t.update(0, flex=flex)
        assert t.by_id(0).flex is flex
        assert t.by_id(0).bypass_l2   # earlier update preserved

    def test_clone_isolates_updates(self):
        t = RegionTable([Region(0, "a", 0, 64)])
        c = t.clone()
        c.update(0, bypass_l2=True)
        assert not t.by_id(0).bypass_l2
        assert c.by_id(0).bypass_l2

    @given(st.lists(st.integers(min_value=1, max_value=50),
                    min_size=1, max_size=20))
    def test_find_matches_linear_scan(self, sizes):
        alloc = RegionAllocator()
        for i, size in enumerate(sizes):
            alloc.alloc(f"r{i}", size)
        table = alloc.table
        top = alloc.high_water_word + 32
        for addr in range(0, top, 7):
            expected = next((r for r in table if r.contains(addr)), None)
            assert table.find(addr) is expected


class TestRegionAllocator:
    def test_line_alignment(self):
        alloc = RegionAllocator()
        a = alloc.alloc("a", 10)
        b = alloc.alloc("b", 10)
        assert a.base_word % 16 == 0
        assert b.base_word % 16 == 0
        assert b.base_word >= a.end_word

    def test_sequential_ids(self):
        alloc = RegionAllocator()
        assert alloc.alloc("a", 4).region_id == 0
        assert alloc.alloc("b", 4).region_id == 1

    def test_annotations_pass_through(self):
        alloc = RegionAllocator()
        flex = FlexPattern(4, (0, 1))
        r = alloc.alloc("a", 64, bypass_l2=True, flex=flex)
        assert r.bypass_l2 and r.flex is flex

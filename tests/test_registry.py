"""Unit tests for the protocol registry."""

import pytest

from repro.common.config import PROTOCOL_ORDER, ProtocolConfig, _denovo, _mesi
from repro.common.registry import (
    is_registered, paper_ladder, protocol, register_protocol,
    registered_protocols, suggest, unregister_protocol)


class TestRegistryContents:
    def test_paper_ladder_is_the_nine_rungs_in_figure_order(self):
        assert paper_ladder() == (
            "MESI", "MMemL1", "DeNovo", "DFlexL1", "DValidateL2",
            "DMemL1", "DFlexL2", "DBypL2", "DBypFull")
        assert PROTOCOL_ORDER == paper_ladder()

    def test_beyond_paper_rungs_registered_after_the_ladder(self):
        names = registered_protocols()
        assert names[:9] == paper_ladder()
        assert "MDirtyWB" in names and "DWordHybrid" in names
        assert "MDirtyWB" not in paper_ladder()
        assert "DWordHybrid" not in paper_ladder()

    def test_new_rung_flag_combinations(self):
        mdirty = protocol("MDirtyWB")
        assert mdirty.kind == "mesi" and mdirty.dirty_wb_only
        hybrid = protocol("DWordHybrid")
        assert hybrid.kind == "denovo"
        assert hybrid.l2_dirty_wb_only and not hybrid.l2_write_validate

    def test_order_stable_across_lookups(self):
        assert registered_protocols() == registered_protocols()
        protocol("DBypFull")
        assert registered_protocols()[:9] == paper_ladder()


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_protocol(_mesi("MESI"))

    def test_replace_keeps_position(self):
        before = registered_protocols()
        register_protocol(_mesi("MESI"), replace=True)
        assert registered_protocols() == before

    def test_register_and_unregister_roundtrip(self):
        cfg = _denovo("DTestRung", flex_l1=True)
        try:
            returned = register_protocol(cfg)
            assert returned is cfg
            assert is_registered("DTestRung")
            assert protocol("DTestRung") is cfg
            assert registered_protocols()[-1] == "DTestRung"
            # Not on the paper ladder unless asked.
            assert "DTestRung" not in paper_ladder()
        finally:
            unregister_protocol("DTestRung")
        assert not is_registered("DTestRung")

    def test_decorator_factory_form(self):
        try:
            @register_protocol
            def _factory():
                return _mesi("MDecorated")

            assert is_registered("MDecorated")
            assert protocol("MDecorated").kind == "mesi"
        finally:
            unregister_protocol("MDecorated")

    def test_nameless_object_rejected(self):
        with pytest.raises(TypeError):
            register_protocol(object())


class TestLookup:
    def test_unknown_protocol_raises_keyerror(self):
        with pytest.raises(KeyError):
            protocol("MOESI")

    def test_near_miss_suggestion_in_error(self):
        with pytest.raises(KeyError, match="did you mean"):
            protocol("MESl")

    def test_suggest_finds_close_matches(self):
        assert "MESI" in suggest("MESl")
        assert "DBypFull" in suggest("dbypfull")

    def test_suggest_handles_hopeless_input(self):
        assert suggest("qqqqqqqq") == []


class TestProtocolConfigValidation:
    def test_dirty_wb_only_rejected_on_denovo(self):
        with pytest.raises(ValueError, match="dirty_wb_only"):
            ProtocolConfig(name="bad", kind="denovo", dirty_wb_only=True)

    def test_dirty_wb_only_allowed_on_mesi(self):
        cfg = ProtocolConfig(name="ok", kind="mesi", dirty_wb_only=True)
        assert cfg.enabled_flags() == ("dirty_wb_only",)

"""Tests for the experiment report generator (on a toy grid)."""

import pytest

from repro.analysis import report
from tests.test_experiments import fake_result


@pytest.fixture
def toy_grid():
    protos = ("MESI", "MMemL1", "DeNovo", "DFlexL1", "DValidateL2",
              "DMemL1", "DFlexL2", "DBypL2", "DBypFull")
    grid = {}
    for i, app in enumerate(("fluidanimate", "LU", "FFT", "radix",
                             "barnes", "kD-tree")):
        grid[app] = {}
        for j, proto in enumerate(protos):
            grid[app][proto] = fake_result(
                app, proto, traffic_scale=100 - 5 * j,
                exec_cycles=1000 - 20 * j)
    return grid


class TestReport:
    def test_headline_table_structure(self, toy_grid):
        text = report.headline_table(toy_grid)
        assert "| Metric | Paper | Measured |" in text
        assert "39.5%" in text
        assert text.count("|") > 20

    def test_per_app_table(self, toy_grid):
        text = report.per_app_table(toy_grid)
        for app in ("fluidanimate", "LU", "FFT", "radix", "barnes",
                    "kD-tree"):
            assert app in text

    def test_generate_contains_all_figures(self, toy_grid):
        text = report.generate(toy_grid)
        for fig in ("Figure 5.1a", "Figure 5.1b", "Figure 5.1c",
                    "Figure 5.1d", "Figure 5.2", "Figure 5.3a",
                    "Figure 5.3b", "Figure 5.3c", "Table 4.1",
                    "Table 4.2"):
            assert fig in text, fig

"""Latency & stall attribution tests (repro.obs.attrib).

The load-bearing guarantees:

* **non-perturbation** — a run with attribution enabled returns a
  ``RunResult`` byte-identical to the golden tiny-grid snapshot, on
  every rung of the ladder (the collector only reads observational
  checkpoints; it schedules nothing);
* **conservation** — the three audits hold exactly on every rung:
  lifecycle segments sum to end-to-end latency, per-core
  ``compute + stalls == TimeStats.total()``, and the observed DRAM
  commands reconcile with the channels' ``window_commands()``;
* **engine parity** — every attribution counter (segment sums/counts,
  stall cycles by cause, end-to-end sums, retries) is bit-equal
  between the reference and compiled engines, so a bench record's
  attribution profile speaks for all four timed variants of a cell;
* **delta attribution** — ``repro.bench.attrib_delta`` names the
  buckets that moved between two records and stays tolerant of pre-v5
  records.
"""

import dataclasses
import json
from pathlib import Path
from typing import Dict

import pytest

from repro.bench import attrib_delta
from repro.common.config import PROTOCOL_ORDER, ScaleConfig, scaled_system
from repro.core.simulator import simulate
from repro.obs import AttribCollector, MetricsHub, ObsSession, SEGMENTS
from repro.runner.store import result_to_dict
from repro.workloads import build_workload

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "grid_tiny.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())["grid"]

SCALE = ScaleConfig.tiny()

# One attributed run per rung, shared across the test class (pure
# memoization: simulation is deterministic).
_OBSERVED: Dict[str, tuple] = {}


def _observed(proto: str):
    cell = _OBSERVED.get(proto)
    if cell is None:
        workload = build_workload("radix", SCALE)
        obs = ObsSession(trace=False)
        result = simulate(workload, proto, scaled_system(SCALE), obs=obs)
        cell = _OBSERVED[proto] = (result, obs)
    return cell


@pytest.mark.parametrize("proto", PROTOCOL_ORDER)
def test_attributed_run_stays_golden(proto):
    """Attribution on: the RunResult must still match the golden grid."""
    result, _obs = _observed(proto)
    assert result_to_dict(result) == GOLDEN["radix"][proto], (
        f"radix x {proto} diverged from the golden result with "
        f"attribution enabled; the collector perturbed the simulation")


@pytest.mark.parametrize("proto", PROTOCOL_ORDER)
def test_conservation_audits_pass_every_rung(proto):
    result, obs = _observed(proto)
    audits = obs.attrib.audits()
    assert audits["segments"]["ok"], audits["segments"]
    assert audits["cycles"]["ok"], [c for c in audits["cycles"]["per_core"]
                                    if not c["ok"]]
    assert audits["dram"]["ok"], audits["dram"]
    assert audits["ok"]
    # The accounting is not vacuous: misses were recorded and the
    # cores' stall cycles cover everything busy does not.
    assert audits["segments"]["e2e_cycles"] > 0
    total = sum(c["total"] for c in audits["cycles"]["per_core"])
    busy = sum(c["busy"] for c in audits["cycles"]["per_core"])
    assert total > busy > 0


def test_report_shape_and_stalls_figure():
    result, obs = _observed("MESI")
    profile = obs.attrib.report()
    assert profile["protocol"] == "MESI"
    assert profile["workload"] == "radix"
    assert set(profile["stalls"]["total"]) == {
        "l1_wait", "l2_home", "remote_l1", "dram", "write_buffer",
        "barrier"}
    assert len(profile["stalls"]["per_core"]) == 16
    json.dumps(profile)                  # must be JSON-able as-is
    from repro.analysis.stalls import figure_stalls, report_section
    text = figure_stalls([profile], 16).render()
    assert "stall attribution: radix (16 tiles)" in text
    assert "MESI" in text
    section = report_section([profile], 16)
    assert "## Latency & stall attribution" in section
    assert "pass" in section


# ----------------------------------------------------------------------
# Engine parity of the attribution counters
# ----------------------------------------------------------------------

#: The rungs with fused compiled cores (the ones that re-stamp the
#: checkpoints themselves) plus the full-feature DeNovo rung, which
#: exercises the bypass path through the shared kernel.
PARITY_PROTOS = ("MESI", "DeNovo", "DBypFull")


@pytest.mark.parametrize("proto", PARITY_PROTOS)
def test_attribution_counters_bit_equal_across_engines(proto):
    workload = build_workload("radix", SCALE, seed=12345)
    reference = scaled_system(SCALE)
    compiled = dataclasses.replace(reference, engine="compiled")
    cells = {}
    for label, config in (("reference", reference), ("compiled", compiled)):
        obs = ObsSession(trace=False)
        result = simulate(workload, proto, config, obs=obs)
        cells[label] = (result, obs.attrib)
    ref_result, ref = cells["reference"]
    cmp_result, cmp_ = cells["compiled"]
    # The runs themselves are parity-pinned elsewhere; assert anyway so
    # an attribution diff below is never chasing a simulation diff.
    assert dataclasses.asdict(cmp_result) == dataclasses.asdict(ref_result)
    assert cmp_.segment_totals() == ref.segment_totals(), proto
    assert cmp_.stall_totals() == ref.stall_totals(), proto
    assert cmp_.e2e_count == ref.e2e_count, proto
    assert cmp_.e2e_sum == ref.e2e_sum, proto
    assert cmp_.retries == ref.retries, proto
    assert cmp_.dram_observed == ref.dram_observed, proto
    assert cmp_.dram_queue_wait_sum == ref.dram_queue_wait_sum, proto
    assert cmp_.dram_service_sum == ref.dram_service_sum, proto
    assert (cmp_.nonmonotonic, cmp_.unbalanced) == (0, 0)


# ----------------------------------------------------------------------
# Segment-chain unit behaviour (no simulation)
# ----------------------------------------------------------------------

def _bare_collector() -> AttribCollector:
    return AttribCollector(MetricsHub())


class TestSegmentChain:
    def test_full_memory_chain_sums_to_e2e(self):
        c = _bare_collector()
        c._record("load", 0, t_issue=100, t_done=260, home_arrive=110,
                  home_depart=120, arrive_mc=140, leave_mc=200,
                  fill_send=210, served_by=0, retries=0)
        sums = {seg: c.seg_sum["load"][seg] for seg in SEGMENTS}
        assert sums == {"req_noc": 10, "home": 10, "fwd_owner": 0,
                        "to_mc": 20, "dram": 60, "fill_stage": 10,
                        "fill_noc": 50}
        assert c.e2e_sum["load"] == 160 == sum(sums.values())
        assert c.unbalanced == 0 and c.nonmonotonic == 0

    def test_skipped_checkpoints_fold_into_next_segment(self):
        # An L2 hit: no MC checkpoints; fill_send interval is "home".
        c = _bare_collector()
        c._record("load", 0, t_issue=0, t_done=40, home_arrive=8,
                  home_depart=None, arrive_mc=None, leave_mc=None,
                  fill_send=20, served_by=1, retries=0)
        assert c.seg_sum["load"]["req_noc"] == 8
        assert c.seg_sum["load"]["home"] == 12
        assert c.seg_sum["load"]["fill_noc"] == 20
        assert c.e2e_sum["load"] == 40

    def test_remote_forward_labelled_fwd_owner(self):
        from repro.core.context import SERVED_REMOTE_L1
        c = _bare_collector()
        c._record("load", 0, t_issue=0, t_done=30, home_arrive=5,
                  home_depart=10, arrive_mc=None, leave_mc=None,
                  fill_send=22, served_by=SERVED_REMOTE_L1, retries=1)
        assert c.seg_sum["load"]["fwd_owner"] == 12
        assert c.retries["load"] == 1

    def test_nonmonotonic_checkpoint_counted_not_crashed(self):
        c = _bare_collector()
        c._record("load", 0, t_issue=50, t_done=80, home_arrive=40,
                  home_depart=60, arrive_mc=None, leave_mc=None,
                  fill_send=None, served_by=0, retries=0)
        assert c.nonmonotonic == 1


# ----------------------------------------------------------------------
# Bench-record attribution deltas
# ----------------------------------------------------------------------

def _record_with(profile):
    return {"attrib": {"radix x MESI (16t)": profile}}


class TestAttribDelta:
    PROFILE = {"segments": {"load.dram": 1000, "load.req_noc": 200},
               "stall_cycles": {"barrier": 5000},
               "compute_cycles": 300, "miss_cycles": 1200,
               "misses": 10, "audits_ok": True}

    def test_identical_records_report_host_noise(self):
        delta = attrib_delta(_record_with(self.PROFILE),
                             _record_with(dict(self.PROFILE)))
        assert not delta["changed"]
        assert any("host" in line for line in delta["lines"])

    def test_top_mover_named_with_magnitude(self):
        moved = json.loads(json.dumps(self.PROFILE))
        moved["segments"]["load.dram"] = 2000
        delta = attrib_delta(_record_with(self.PROFILE),
                             _record_with(moved))
        assert delta["changed"]
        mover = next(l for l in delta["lines"] if l.startswith("moved"))
        assert "seg load.dram" in mover
        assert "+100.0%" in mover

    def test_pre_v5_record_tolerated(self):
        delta = attrib_delta({}, _record_with(self.PROFILE))
        assert not delta["changed"]
        assert "pre-v5" in delta["lines"][0]

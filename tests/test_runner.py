"""Tests for the parallel sweep-execution subsystem (repro.runner)."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.analysis import experiments
from repro.common.config import ScaleConfig, SystemConfig, scaled_system
from repro.runner import (
    DEFAULT_SEED, JobSpec, ResultStore, config_key, expand_grid,
    result_to_dict, run_jobs, sweep, sweep_grid)
from repro.runner.cli import main as cli_main

TINY = ScaleConfig.tiny()
TINY_SYSTEM = scaled_system(TINY)


def spec(workload="radix", protocol="MESI", **kwargs):
    return JobSpec(workload=workload, protocol=protocol, scale=TINY,
                   config=TINY_SYSTEM, **kwargs)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path)


@pytest.fixture(scope="module")
def radix_result():
    from repro.runner.pool import execute_job
    result, _elapsed = execute_job(spec())
    return result


# ----------------------------------------------------------------------
# Job specs and keys
# ----------------------------------------------------------------------

class TestJobSpec:
    def test_keys_deterministic(self):
        assert spec().job_key() == spec().job_key()
        assert spec().store_key() == spec().store_key()

    def test_job_key_differs_by_every_axis(self):
        base = spec()
        assert base.job_key() != spec(protocol="DeNovo").job_key()
        assert base.job_key() != spec(workload="LU").job_key()
        assert base.job_key() != spec(seed=7).job_key()
        other_cfg = JobSpec(workload="radix", protocol="MESI", scale=TINY,
                            config=SystemConfig(l1_kb=64))
        assert base.job_key() != other_cfg.job_key()

    def test_store_key_is_pinned(self):
        """Cache keys must never change *silently*.  Pinned literals:
        the GRID_VERSION-8 keys (the event-scheduler axis landed:
        ``SystemConfig.scheduler`` entered the config hash payload,
        deliberately retiring the v7 keys, which predate the field).
        If this fails, the hash payload or serialization changed and
        every stored result silently became unreachable; bump
        GRID_VERSION deliberately and re-pin instead."""
        from repro.common.config import DEFAULT_SCALE, scaled_system
        assert config_key(
            DEFAULT_SCALE,
            scaled_system(DEFAULT_SCALE)) == "d3e5d4b8ec90250d"
        assert spec().store_key() == "cf3759003e50eaa9-t16"

    def test_store_key_includes_non_default_seed(self):
        assert spec(seed=7).store_key() != spec().store_key()
        assert spec(seed=7).store_key().startswith(
            config_key(TINY, TINY_SYSTEM))

    def test_store_key_tags_the_machine_shape(self):
        from repro.common.config import reshape_system
        small = spec()
        big = JobSpec(workload="radix", protocol="MESI", scale=TINY,
                      config=reshape_system(TINY_SYSTEM, 64))
        assert small.store_key().endswith("-t16")
        assert big.store_key().endswith("-t64")
        assert small.config_key() != big.config_key()
        assert small.job_key() != big.job_key()

    def test_workload_name_canonicalized(self):
        assert spec(workload="RADIX").workload == "radix"
        assert spec(workload="RADIX").job_key() == spec().job_key()

    def test_unknown_names_fail_eagerly(self):
        with pytest.raises(KeyError):
            spec(workload="nope")
        with pytest.raises(KeyError):
            spec(protocol="nope")

    def test_expand_grid_workload_major_paper_order(self):
        specs = expand_grid(("LU", "radix"), ("MESI", "DeNovo"), TINY)
        assert [(s.workload, s.protocol) for s in specs] == [
            ("LU", "MESI"), ("LU", "DeNovo"),
            ("radix", "MESI"), ("radix", "DeNovo")]

    def test_expand_grid_tiles_axis_keeps_shapes_adjacent(self):
        """Protocol cells sharing one (workload, shape) trace must be
        adjacent so pool workers reuse the per-shape trace memo."""
        specs = expand_grid(("radix",), ("MESI", "DeNovo"), TINY,
                            tiles=(4, 16))
        assert [(s.workload, s.num_tiles, s.protocol) for s in specs] == [
            ("radix", 4, "MESI"), ("radix", 4, "DeNovo"),
            ("radix", 16, "MESI"), ("radix", 16, "DeNovo")]
        # The 16-tile cells reuse the base config object unchanged.
        assert specs[2].config == TINY_SYSTEM


# ----------------------------------------------------------------------
# Durable result store
# ----------------------------------------------------------------------

class TestResultStore:
    def test_roundtrip(self, store, radix_result):
        store.save(radix_result, "k")
        loaded = store.load("radix", "MESI", "k")
        assert loaded is not None
        assert result_to_dict(loaded) == result_to_dict(radix_result)

    def test_missing_is_none(self, store):
        assert store.load("radix", "MESI", "absent") is None

    def test_corrupt_file_is_none(self, store, radix_result):
        path = store.save(radix_result, "k")
        path.write_text("{definitely not json")
        assert store.load("radix", "MESI", "k") is None

    def test_truncated_file_is_none(self, store, radix_result):
        path = store.save(radix_result, "k")
        blob = path.read_text()
        path.write_text(blob[:len(blob) // 2])
        assert store.load("radix", "MESI", "k") is None

    def test_wrong_schema_version_is_none(self, store, radix_result):
        path = store.save(radix_result, "k")
        envelope = json.loads(path.read_text())
        envelope["schema_version"] = 999
        path.write_text(json.dumps(envelope))
        assert store.load("radix", "MESI", "k") is None

    def test_legacy_bare_payload_still_loads(self, store, radix_result):
        """Files written by the pre-runner analysis.persist module."""
        path = store.path_for("radix", "MESI", "k")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result_to_dict(radix_result)))
        loaded = store.load("radix", "MESI", "k")
        assert loaded is not None
        assert loaded.traffic == radix_result.traffic

    def test_concurrent_writers_never_tear(self, store, radix_result):
        """Many writers racing on one cell: readers always see a whole
        file (atomic rename), never interleaved or partial content."""
        import copy
        errors = []

        def writer(tag):
            mine = copy.deepcopy(radix_result)
            mine.exec_cycles = tag
            for _ in range(10):
                store.save(mine, "race")

        threads = [threading.Thread(target=writer, args=(i + 1,))
                   for i in range(8)]

        def reader():
            for _ in range(40):
                loaded = store.load("radix", "MESI", "race")
                if loaded is not None and loaded.exec_cycles not in range(1, 9):
                    errors.append(loaded.exec_cycles)

        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        final = store.load("radix", "MESI", "race")
        assert final is not None and final.exec_cycles in range(1, 9)
        assert not list(store.directory.glob("*.tmp"))

    def test_clear_and_len(self, store, radix_result):
        store.save(radix_result, "a")
        store.save(radix_result, "b")
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0

    def test_env_var_overrides_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert ResultStore().directory == tmp_path / "elsewhere"


# ----------------------------------------------------------------------
# Sweep execution
# ----------------------------------------------------------------------

class TestSweep:
    SPECS = None  # built lazily: one cheap workload, two protocols

    @classmethod
    def specs(cls):
        if cls.SPECS is None:
            cls.SPECS = expand_grid(("stream",), ("MESI", "DeNovo"), TINY)
        return cls.SPECS

    def test_serial_and_parallel_results_bit_identical(self, store):
        """Acceptance: --jobs N must reproduce the serial path exactly."""
        serial = sweep(self.specs(), jobs=1, store=store, use_cache=False)
        parallel = sweep(self.specs(), jobs=4, store=store, use_cache=False)
        assert [o.spec for o in serial] == [o.spec for o in parallel]
        for a, b in zip(serial, parallel):
            assert result_to_dict(a.result) == result_to_dict(b.result)

    def test_sweep_populates_store_then_serves_from_it(self, store):
        cold = sweep(self.specs(), jobs=1, store=store)
        assert all(not o.from_cache for o in cold)
        assert len(store) == len(self.specs())
        warm = sweep(self.specs(), jobs=1, store=store)
        assert all(o.from_cache for o in warm)
        for a, b in zip(cold, warm):
            assert result_to_dict(a.result) == result_to_dict(b.result)

    def test_corrupt_cache_falls_back_to_resimulation(self, store):
        sweep(self.specs(), jobs=1, store=store)
        victim = self.specs()[0]
        path = store.path_for(victim.workload, victim.protocol,
                              victim.store_key())
        path.write_text("\x00garbage")
        redone = sweep(self.specs(), jobs=1, store=store)
        assert not redone[0].from_cache          # re-simulated
        assert redone[1].from_cache              # untouched cell reused
        # ... and the save repaired the corrupt file.
        assert store.load(victim.workload, victim.protocol,
                          victim.store_key()) is not None

    def test_progress_reports_every_cell_in_completion_order(self, store):
        seen = []
        sweep(self.specs(), jobs=1, store=store, use_cache=False,
              progress=lambda o, done, total: seen.append(
                  (o.spec.label(), done, total)))
        assert [d for _, d, _ in seen] == [1, 2]
        assert all(t == 2 for _, _, t in seen)
        assert {lbl for lbl, _, _ in seen} == {s.label() for s in self.specs()}

    def test_run_jobs_keeps_input_order_under_parallelism(self):
        outcomes = run_jobs(self.specs(), jobs=2)
        assert [o.spec for o in outcomes] == list(self.specs())
        assert all(o.elapsed > 0 and o.attempts >= 1 for o in outcomes)

    def test_sweep_grid_shape(self, store):
        grid = sweep_grid(("stream",), ("MESI", "DeNovo"), TINY,
                          store=store)
        assert list(grid) == ["stream"]
        assert list(grid["stream"]) == ["MESI", "DeNovo"]

    @pytest.mark.skipif((os.cpu_count() or 1) < 2,
                        reason="needs >=2 CPUs to demonstrate speedup")
    def test_parallel_sweep_is_faster(self, store):
        import time
        specs = expand_grid(("radix", "stream"), ("MESI", "DeNovo"), TINY)
        t0 = time.perf_counter()
        sweep(specs, jobs=1, store=store, use_cache=False)
        serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        sweep(specs, jobs=os.cpu_count(), store=store, use_cache=False)
        parallel = time.perf_counter() - t0
        assert parallel < serial


# ----------------------------------------------------------------------
# run_grid delegation and the bounded in-process LRU
# ----------------------------------------------------------------------

class TestForkPrewarm:
    def test_two_workload_sweep_prewarms_both_traces(self, monkeypatch):
        """Fork-time prewarm must count *distinct* memo keys, not
        scanned specs: a workload-major list (every protocol rung of
        workload A before workload B) used to exhaust the scan budget
        on A's duplicate keys and fork workers cold for B."""
        from repro.runner import pool as pool_mod
        monkeypatch.setattr(pool_mod, "_WORKLOAD_MEMO", {})
        # Paper ladder: 9 rungs per workload, > _WORKLOAD_MEMO_MAX (8)
        # specs of radix alone — the shape of the regression.
        specs = expand_grid(["radix", "stream"], None, TINY, TINY_SYSTEM)
        assert len(specs) > pool_mod._WORKLOAD_MEMO_MAX
        built = pool_mod._prewarm_traces(specs)
        assert built == 2
        warmed = {key[0] for key in pool_mod._WORKLOAD_MEMO}
        assert warmed == {"radix", "stream"}

    def test_prewarm_stops_at_memo_capacity(self, monkeypatch):
        from repro.runner import pool as pool_mod
        monkeypatch.setattr(pool_mod, "_WORKLOAD_MEMO", {})
        monkeypatch.setattr(pool_mod, "_WORKLOAD_MEMO_MAX", 1)
        specs = expand_grid(["radix", "stream"], ["MESI"], TINY,
                            TINY_SYSTEM)
        assert pool_mod._prewarm_traces(specs) == 1
        assert len(pool_mod._WORKLOAD_MEMO) == 1

    def test_prewarm_skips_already_memoized(self, monkeypatch):
        from repro.runner import pool as pool_mod
        monkeypatch.setattr(pool_mod, "_WORKLOAD_MEMO", {})
        specs = expand_grid(["radix"], ["MESI", "DeNovo"], TINY,
                            TINY_SYSTEM)
        assert pool_mod._prewarm_traces(specs) == 1
        assert pool_mod._prewarm_traces(specs) == 0


class TestRunGridLRU:
    def test_run_grid_memoizes_and_evicts_lru(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(experiments, "GRID_CACHE_MAX_ENTRIES", 2)
        experiments.clear_cache()
        try:
            combos = [("MESI",), ("DeNovo",), ("MESI", "DeNovo")]
            for protos in combos:
                experiments.run_grid(workloads=("stream",), protocols=protos,
                                     scale=TINY)
            assert len(experiments._GRID_CACHE) == 2
            # Oldest entry evicted: re-running it is a miss (served from
            # disk), the newest is still memoized (same object back).
            newest = experiments.run_grid(workloads=("stream",),
                                          protocols=combos[-1], scale=TINY)
            assert newest is experiments.run_grid(
                workloads=("stream",), protocols=combos[-1], scale=TINY)
        finally:
            experiments.clear_cache()

    def test_run_grid_parallel_matches_serial(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        experiments.clear_cache()
        try:
            serial = experiments.run_grid(
                workloads=("stream",), protocols=("MESI", "DeNovo"),
                scale=TINY, use_cache=False, jobs=1)
            parallel = experiments.run_grid(
                workloads=("stream",), protocols=("MESI", "DeNovo"),
                scale=TINY, use_cache=False, jobs=2)
            for proto in ("MESI", "DeNovo"):
                assert (result_to_dict(serial["stream"][proto])
                        == result_to_dict(parallel["stream"][proto]))
        finally:
            experiments.clear_cache()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCLI:
    def test_sweep_prints_progress_and_persists(self, tmp_path, capsys):
        rc = cli_main(["sweep", "--workloads", "stream",
                       "--protocols", "MESI", "DeNovo",
                       "--scale", "tiny", "--jobs", "2",
                       "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[  1/2]" in out and "[  2/2]" in out
        assert len(ResultStore(tmp_path)) == 2

    def test_sweep_cached_second_run(self, tmp_path, capsys):
        args = ["sweep", "--workloads", "stream", "--protocols", "MESI",
                "--scale", "tiny", "--cache-dir", str(tmp_path)]
        cli_main(args)
        capsys.readouterr()
        cli_main(args)
        assert "cached" in capsys.readouterr().out

    def test_figures_renders_selected_figure(self, tmp_path, capsys):
        rc = cli_main(["figures", "--figures", "5.1a",
                       "--workloads", "stream", "--protocols",
                       "MESI", "DeNovo", "--scale", "tiny",
                       "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 5.1a" in out and "stream" in out

    def test_unknown_workload_is_a_clean_cli_error(self, capsys):
        rc = cli_main(["sweep", "--workloads", "radxi", "--scale", "tiny"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error" in err and "radxi" in err

    def test_unknown_protocol_suggests_near_miss(self, capsys):
        rc = cli_main(["sweep", "--protocols", "MESl", "--scale", "tiny"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "MESl" in err
        assert "did you mean" in err and "MESI" in err

    def test_list_prints_registered_workloads_and_protocols(self, capsys):
        rc = cli_main(["list"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "workloads:" in out and "protocols:" in out
        for workload in ("fluidanimate", "radix", "stream"):
            assert workload in out
        # The paper ladder and the beyond-paper rungs both appear.
        for proto in ("MESI", "DBypFull", "MDirtyWB", "DWordHybrid"):
            assert proto in out
        assert "paper-ladder" in out and "extra" in out

    def test_sweep_runs_beyond_paper_rungs(self, tmp_path, capsys):
        rc = cli_main(["sweep", "--workloads", "stream",
                       "--protocols", "MDirtyWB", "DWordHybrid",
                       "--scale", "tiny", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MDirtyWB" in out and "DWordHybrid" in out
        assert len(ResultStore(tmp_path)) == 2

    def test_sweep_tiles_axis(self, tmp_path, capsys):
        """Acceptance: `sweep --tiles 4,16` runs end-to-end."""
        rc = cli_main(["sweep", "--workloads", "stream",
                       "--protocols", "MESI", "DeNovo",
                       "--tiles", "4,16", "--scale", "tiny",
                       "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 shapes (4,16 tiles)" in out and "= 4 cells" in out
        assert "  4t" in out and " 16t" in out
        assert len(ResultStore(tmp_path)) == 4

    def test_scaling_renders_figure_from_swept_results(self, tmp_path,
                                                       capsys):
        rc = cli_main(["scaling", "--workloads", "stream",
                       "--protocols", "MESI", "DeNovo",
                       "--tiles", "4", "16", "--scale", "tiny",
                       "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Core-count scaling" in out
        assert "Execution time" in out and "flit-hops" in out
        assert "MESI" in out and "DeNovo" in out

    def test_invalid_tiles_value_is_a_clean_cli_error(self, capsys):
        rc = cli_main(["sweep", "--tiles", "15", "--scale", "tiny"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--tiles 15" in err and "mesh_width squared" in err

    def test_figures_reject_multi_shape_tiles(self, capsys):
        rc = cli_main(["figures", "--workloads", "stream",
                       "--protocols", "MESI", "--tiles", "4,16",
                       "--scale", "tiny"])
        assert rc == 2
        assert "one machine shape" in capsys.readouterr().err

    def test_figures_without_mesi_baseline_rejected(self, capsys):
        """Figures normalize to MESI; fail before sweeping, not after."""
        rc = cli_main(["figures", "--workloads", "stream",
                       "--protocols", "DeNovo", "--scale", "tiny"])
        assert rc == 2
        assert "MESI" in capsys.readouterr().err

    def test_clean_cache(self, tmp_path, capsys):
        cli_main(["sweep", "--workloads", "stream", "--protocols", "MESI",
                  "--scale", "tiny", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        rc = cli_main(["clean-cache", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "removed" in capsys.readouterr().out
        assert len(ResultStore(tmp_path)) == 0

    def test_sweep_backend_flag_serial(self, tmp_path, capsys):
        rc = cli_main(["sweep", "--workloads", "stream",
                       "--protocols", "MESI", "--scale", "tiny",
                       "--backend", "serial",
                       "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert len(ResultStore(tmp_path)) == 1

    def test_unknown_backend_suggests_near_miss(self, capsys):
        rc = cli_main(["sweep", "--backend", "seriall", "--scale", "tiny"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "seriall" in err
        assert "did you mean 'serial'" in err

    def test_bind_requires_tcp_backend(self, capsys):
        rc = cli_main(["sweep", "--backend", "pool",
                       "--bind", "127.0.0.1:7421", "--scale", "tiny"])
        assert rc == 2
        assert "requires --backend tcp" in capsys.readouterr().err

    def test_backends_subcommand_prints_matrix(self, capsys):
        rc = cli_main(["backends"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("serial", "pool", "tcp"):
            assert name in out
        assert "bit-identical" in out
        assert "python -m repro worker" in out

    def test_worker_bad_endpoint_is_a_clean_cli_error(self, capsys):
        rc = cli_main(["worker", "--connect", "nonsense"])
        assert rc == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_module_entry_point(self, tmp_path):
        """python -m repro works as an installed-style entry point."""
        import subprocess
        import sys
        env = dict(os.environ,
                   PYTHONPATH="src" + os.pathsep
                              + os.environ.get("PYTHONPATH", ""),
                   REPRO_CACHE_DIR=str(tmp_path))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "sweep",
             "--workloads", "stream", "--protocols", "MESI",
             "--scale", "tiny", "--jobs", "2"],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        assert proc.returncode == 0, proc.stderr
        assert "sweep: 1 workloads x 1 protocols" in proc.stdout

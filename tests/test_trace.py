"""Unit tests for the trace representation and builder."""

import pytest

from repro.common.regions import FlexPattern, Region, RegionTable
from repro.workloads.trace import (
    OP_BARRIER, OP_COMPUTE, OP_LOAD, OP_STORE, RegionUpdate, TraceBuilder,
    Workload)


def table():
    return RegionTable([Region(0, "a", 0, 1024),
                        Region(1, "b", 1024, 1024)])


class TestTraceBuilder:
    def test_ops_recorded_per_core(self):
        tb = TraceBuilder(2, table())
        tb.load(0, 5)
        tb.store(1, 10)
        tb.compute(0, 7)
        assert tb.traces[0] == [(OP_LOAD, 5), (OP_COMPUTE, 7)]
        assert tb.traces[1] == [(OP_STORE, 10)]

    def test_zero_compute_skipped(self):
        tb = TraceBuilder(1, table())
        tb.compute(0, 0)
        assert tb.traces[0] == []

    def test_barrier_applied_to_all_cores(self):
        tb = TraceBuilder(3, table())
        tb.load(0, 5)
        tb.barrier()
        assert all(t[-1] == (OP_BARRIER, 0) for t in tb.traces)

    def test_written_regions_tracked_per_phase(self):
        tb = TraceBuilder(2, table())
        tb.store(0, 5)       # region 0
        tb.barrier()
        tb.store(1, 1030)    # region 1
        tb.barrier()
        tb.load(0, 5)        # loads don't count
        tb.barrier()
        assert tb.phase_written_regions == [
            frozenset({0}), frozenset({1}), frozenset()]

    def test_region_updates_attached_to_barrier(self):
        tb = TraceBuilder(1, table())
        update = RegionUpdate(0, bypass_l2=True)
        tb.barrier(updates=[update])
        tb.barrier()
        assert tb.phase_region_updates == {0: [update]}

    def test_build_appends_final_barrier(self):
        tb = TraceBuilder(2, table())
        tb.load(0, 5)
        w = tb.build("test")
        assert all(t[-1] == (OP_BARRIER, 0) for t in w.traces)
        assert w.num_barriers == 1


class TestWorkload:
    def test_barrier_counts_must_match(self):
        with pytest.raises(ValueError):
            Workload(name="bad", regions=table(),
                     traces=[[(OP_BARRIER, 0)], []])

    def test_written_regions_padded(self):
        w = Workload(name="w", regions=table(),
                     traces=[[(OP_BARRIER, 0), (OP_BARRIER, 0)]],
                     phase_written_regions=[frozenset({0})])
        assert w.written_regions_at(0) == frozenset({0})
        assert w.written_regions_at(1) == frozenset()
        assert w.written_regions_at(99) == frozenset()

    def test_counts(self):
        w = Workload(name="w", regions=table(), traces=[
            [(OP_LOAD, 1), (OP_STORE, 2), (OP_COMPUTE, 5), (OP_BARRIER, 0)],
            [(OP_LOAD, 3), (OP_BARRIER, 0)],
        ])
        assert w.num_cores == 2
        assert w.total_ops() == 6
        assert w.memory_ops() == 3

    def test_updates_at(self):
        update = RegionUpdate(1, flex=FlexPattern(4, (0,)))
        w = Workload(name="w", regions=table(),
                     traces=[[(OP_BARRIER, 0)]],
                     phase_region_updates={0: [update]})
        assert w.updates_at(0) == [update]
        assert w.updates_at(1) == []

"""Unit tests for word/line address arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common import addressing as A


class TestLineMath:
    def test_words_per_line(self):
        assert A.WORDS_PER_LINE == 16
        assert A.LINE_BYTES == 64
        assert A.WORD_BYTES == 4

    def test_line_of_first_line(self):
        for word in range(16):
            assert A.line_of(word) == 0

    def test_line_of_second_line(self):
        assert A.line_of(16) == 1
        assert A.line_of(31) == 1
        assert A.line_of(32) == 2

    def test_offset_of(self):
        assert A.offset_of(0) == 0
        assert A.offset_of(15) == 15
        assert A.offset_of(16) == 0
        assert A.offset_of(100) == 100 % 16

    def test_base_word(self):
        assert A.base_word(0) == 0
        assert A.base_word(3) == 48

    def test_word_in_line(self):
        assert A.word_in_line(2, 5) == 37

    def test_word_in_line_rejects_bad_offset(self):
        with pytest.raises(ValueError):
            A.word_in_line(0, 16)
        with pytest.raises(ValueError):
            A.word_in_line(0, -1)

    def test_words_of_line(self):
        assert list(A.words_of_line(1)) == list(range(16, 32))


class TestSpanAndAlign:
    def test_span_single_line(self):
        assert A.span_lines(0, 16) == [0]

    def test_span_crossing(self):
        assert A.span_lines(10, 10) == [0, 1]

    def test_span_empty(self):
        assert A.span_lines(5, 0) == []

    def test_span_three_lines(self):
        assert A.span_lines(15, 18) == [0, 1, 2]

    def test_bytes_to_words_rounds_up(self):
        assert A.bytes_to_words(1) == 1
        assert A.bytes_to_words(4) == 1
        assert A.bytes_to_words(5) == 2
        assert A.bytes_to_words(64) == 16

    def test_align_up_already_aligned(self):
        assert A.align_up_words(32, 16) == 32

    def test_align_up(self):
        assert A.align_up_words(33, 16) == 48

    def test_align_up_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            A.align_up_words(10, 0)


class TestAddressingProperties:
    @given(st.integers(min_value=0, max_value=2**40))
    def test_line_offset_roundtrip(self, word):
        assert A.base_word(A.line_of(word)) + A.offset_of(word) == word

    @given(st.integers(min_value=0, max_value=2**36))
    def test_words_of_line_contains_base(self, line):
        words = list(A.words_of_line(line))
        assert len(words) == 16
        assert all(A.line_of(w) == line for w in words)

    @given(st.integers(min_value=0, max_value=2**30),
           st.integers(min_value=1, max_value=1000))
    def test_span_lines_covers_all_words(self, start, count):
        span = A.span_lines(start, count)
        assert span[0] == A.line_of(start)
        assert span[-1] == A.line_of(start + count - 1)
        assert span == sorted(set(span))

    @given(st.integers(min_value=0, max_value=2**30),
           st.integers(min_value=1, max_value=256))
    def test_align_up_is_aligned_and_minimal(self, addr, alignment):
        aligned = A.align_up_words(addr, alignment)
        assert aligned % alignment == 0
        assert aligned >= addr
        assert aligned - addr < alignment

"""Unit tests for the mesh topology and latency model."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import SystemConfig
from repro.network.mesh import Mesh

CFG = SystemConfig()
tiles = st.integers(min_value=0, max_value=15)


def make_mesh(contention=False) -> Mesh:
    return Mesh(CFG, model_contention=contention)


class TestTopology:
    def test_coords(self):
        m = make_mesh()
        assert m.coords(0) == (0, 0)
        assert m.coords(3) == (3, 0)
        assert m.coords(4) == (0, 1)
        assert m.coords(15) == (3, 3)

    def test_tile_at_roundtrip(self):
        m = make_mesh()
        for tile in range(16):
            assert m.tile_at(*m.coords(tile)) == tile

    def test_tile_at_rejects_outside(self):
        with pytest.raises(ValueError):
            make_mesh().tile_at(4, 0)

    def test_hops_corners(self):
        m = make_mesh()
        assert m.hops(0, 15) == 6
        assert m.hops(0, 3) == 3
        assert m.hops(0, 0) == 0
        assert m.hops(5, 6) == 1

    @given(tiles, tiles)
    def test_hops_symmetric(self, a, b):
        m = make_mesh()
        assert m.hops(a, b) == m.hops(b, a)

    @given(tiles, tiles, tiles)
    def test_hops_triangle_inequality(self, a, b, c):
        m = make_mesh()
        assert m.hops(a, c) <= m.hops(a, b) + m.hops(b, c)

    @given(tiles, tiles)
    def test_route_length_matches_hops(self, a, b):
        m = make_mesh()
        route = m.route(a, b)
        assert len(route) == m.hops(a, b) + 1
        assert route[0] == a and route[-1] == b

    @given(tiles, tiles)
    def test_route_steps_are_adjacent(self, a, b):
        m = make_mesh()
        route = m.route(a, b)
        for here, there in zip(route, route[1:]):
            hx, hy = m.coords(here)
            tx, ty = m.coords(there)
            assert abs(hx - tx) + abs(hy - ty) == 1


class TestLatency:
    def test_local_delivery(self):
        m = make_mesh()
        assert m.latency(5, 5, 1, now=0) == Mesh.LOCAL_LATENCY

    def test_uncontended_formula(self):
        m = make_mesh(contention=False)
        # 3 hops x 3 cycles + (5 flits - 1) serialization
        assert m.latency(0, 3, 5, now=0) == 3 * 3 + 4

    def test_single_flit(self):
        m = make_mesh(contention=False)
        assert m.latency(0, 1, 1, now=0) == 3

    def test_rejects_zero_flits(self):
        with pytest.raises(ValueError):
            make_mesh().latency(0, 1, 0, now=0)

    def test_contention_adds_queueing(self):
        m = make_mesh(contention=True)
        first = m.latency(0, 3, 4, now=0)
        second = m.latency(0, 3, 4, now=0)   # same links, same instant
        assert second > first

    def test_contention_drains(self):
        m = make_mesh(contention=True)
        m.latency(0, 3, 4, now=0)
        later = m.latency(0, 3, 4, now=1000)
        assert later == make_mesh(contention=False).latency(0, 3, 4, 0)

    def test_disjoint_paths_do_not_interfere(self):
        m = make_mesh(contention=True)
        m.latency(0, 1, 4, now=0)
        other = m.latency(14, 15, 4, now=0)
        assert other == make_mesh(contention=False).latency(14, 15, 4, 0)

    def test_reset_contention(self):
        m = make_mesh(contention=True)
        m.latency(0, 3, 4, now=0)
        m.reset_contention()
        assert m.latency(0, 3, 4, now=0) == \
            make_mesh(contention=False).latency(0, 3, 4, 0)

    @given(tiles, tiles, st.integers(min_value=1, max_value=5))
    def test_latency_at_least_uncontended(self, a, b, flits):
        contended = make_mesh(contention=True)
        floor = make_mesh(contention=False)
        assert (contended.latency(a, b, flits, now=0)
                >= floor.latency(a, b, flits, now=0))

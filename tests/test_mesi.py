"""Protocol-level tests for the MESI implementation.

These drive tiny hand-written traces through the full system and assert
on coherence behaviour, traffic categories and waste classifications.
"""

import pytest

from repro.network import traffic as T
from repro.waste.profiler import Category
from repro.workloads.trace import OP_BARRIER, OP_COMPUTE, OP_LOAD, OP_STORE

from tests.conftest import TINY_SYSTEM, run_micro


class TestLoadPath:
    def test_cold_load_goes_to_memory(self):
        # Line 5 (addr 80) homes at tile 5, remote from core 0.
        result, _sys = run_micro({0: [(OP_LOAD, 80)]})
        assert result.dram_stats["reads"] >= 1
        assert result.traffic_bucket(T.LD, T.REQ_CTL) > 0

    def test_second_load_hits_l1_no_new_traffic(self):
        r1, _ = run_micro({0: [(OP_LOAD, 0)]})
        r2, _ = run_micro({0: [(OP_LOAD, 0), (OP_LOAD, 0), (OP_LOAD, 1)]})
        # Same line: the two extra loads hit in L1 and add no traffic.
        assert r2.traffic_major(T.LD) == r1.traffic_major(T.LD)

    def test_line_granularity_fetch(self):
        """One load brings the whole 16-word line into L1."""
        result, _ = run_micro({0: [(OP_LOAD, 0)]})
        assert result.words_fetched("l1") == 16
        assert result.l1_waste[Category.USED] == 1

    def test_l2_hit_after_remote_fill(self):
        """Core 1 loads a line core 0 already fetched: served from L2
        or via owner forward, not memory."""
        result, _ = run_micro({
            0: [(OP_LOAD, 0), (OP_BARRIER, 0)],
            1: [(OP_BARRIER, 0), (OP_LOAD, 0)],
        })
        assert result.dram_stats["reads"] == 1

    def test_sharers_can_both_hit(self):
        result, sys = run_micro({
            0: [(OP_LOAD, 0), (OP_BARRIER, 0), (OP_LOAD, 0)],
            1: [(OP_BARRIER, 0), (OP_LOAD, 0)],
        })
        assert result.l1_waste[Category.USED] >= 2


class TestEState:
    def test_first_load_grants_exclusive(self):
        _result, sys = run_micro({0: [(OP_LOAD, 0)]})
        assert sys.proto_sys.stat_e_grants >= 1

    def test_silent_e_to_m_upgrade(self):
        """Load then store to the same line: no second request message."""
        r_load, _ = run_micro({0: [(OP_LOAD, 0)]})
        r_both, _ = run_micro({0: [(OP_LOAD, 0), (OP_STORE, 0)]})
        assert r_both.traffic_bucket(T.ST, T.REQ_CTL) == 0
        assert r_both.traffic_major(T.ST) == 0

    def test_second_sharer_gets_shared_not_exclusive(self):
        """After two cores load, a store by one must invalidate the other."""
        result, sys = run_micro({
            0: [(OP_LOAD, 0), (OP_BARRIER, 0), (OP_BARRIER, 0),
                (OP_STORE, 0)],
            1: [(OP_BARRIER, 0), (OP_LOAD, 0), (OP_BARRIER, 0)],
        })
        assert result.traffic_bucket(T.OVH, T.OVH_INVAL) > 0
        assert result.traffic_bucket(T.OVH, T.OVH_ACK) > 0


class TestStorePath:
    def test_store_miss_fetches_line(self):
        """Fetch-on-write: a store miss drags the whole line from memory."""
        result, _ = run_micro({0: [(OP_STORE, 0)]})
        assert result.dram_stats["reads"] >= 1
        assert result.words_fetched("l1") == 16

    def test_store_overwrite_is_write_waste(self):
        """The stored word's fetched copy is Write waste at L1."""
        result, _ = run_micro({0: [(OP_STORE, 0)]})
        assert result.l1_waste[Category.WRITE] == 1

    def test_store_at_memory_level_write_waste(self):
        result, _ = run_micro({0: [(OP_STORE, 0)]})
        assert result.mem_waste[Category.WRITE] >= 1

    def test_upgrade_from_shared(self):
        """Two sharers; one stores -> Upgrade request, no data response."""
        result, sys = run_micro({
            0: [(OP_LOAD, 0), (OP_BARRIER, 0), (OP_BARRIER, 0),
                (OP_STORE, 0)],
            1: [(OP_BARRIER, 0), (OP_LOAD, 0), (OP_BARRIER, 0)],
        })
        assert sys.proto_sys.stat_upgrades >= 1

    def test_nonblocking_stores_merge_same_line(self):
        """Multiple stores to one line need one ownership request."""
        result, _ = run_micro({
            0: [(OP_STORE, 0), (OP_STORE, 1), (OP_STORE, 2)]})
        assert result.traffic_bucket(T.ST, T.REQ_CTL) <= 6  # one GETX hop count

    def test_dirty_writeback_on_eviction(self):
        """Fill more lines than one set holds; dirty victim writes back."""
        # TINY_SYSTEM L1: 1KB, 8-way, 16 lines, 2 sets: even lines map to
        # set 0.  Core 9 writes 9 even lines (homes are remote), evicting
        # a dirty victim.
        ops = [(OP_STORE, i * 32 * 16) for i in range(9)]
        result, _ = run_micro({9: ops})
        assert result.traffic_bucket(T.WB, T.WB_L2_USED) > 0


class TestWritebackAccounting:
    def test_partial_line_store_wb_split(self):
        """Store 4 of 16 words; the L1->L2 writeback moves 4 Used +
        12 Waste words (MESI sends whole lines)."""
        ops = [(OP_STORE, w) for w in range(4)]
        # Evict line 0 from set 0 by storing 8 more even lines.
        for i in range(1, 10):
            ops.append((OP_STORE, i * 32 * 16))
        result, _ = run_micro({9: ops})
        used = result.traffic_bucket(T.WB, T.WB_L2_USED)
        waste = result.traffic_bucket(T.WB, T.WB_L2_WASTE)
        assert used > 0 and waste > 0
        assert waste > used   # 12 clean vs 4 dirty on the first victim


class TestOverheadTraffic:
    def test_unblock_messages_exist(self):
        result, _ = run_micro({9: [(OP_LOAD, 80)]})
        assert result.traffic_bucket(T.OVH, T.OVH_UNBLOCK) > 0

    def test_overhead_nonzero_fraction(self):
        result, _ = run_micro({
            c: [(OP_LOAD, c * 1024 + i) for i in range(0, 64, 16)]
            for c in range(4)})
        assert result.overhead_fraction() > 0


class TestMMemL1:
    def test_load_data_skips_l2_hop_but_fills_l2(self):
        base, _ = run_micro({0: [(OP_LOAD, 0)]}, proto="MESI")
        opt, _ = run_micro({0: [(OP_LOAD, 0)]}, proto="MMemL1")
        # The line still reaches the L2 (inclusive) via unblock+data.
        assert opt.words_fetched("l2") == base.words_fetched("l2") == 16

    def test_store_fill_skips_l2(self):
        """MMemL1: data fetched on a write is not forwarded to the L2."""
        base, _ = run_micro({9: [(OP_STORE, 80)]}, proto="MESI")
        opt, _ = run_micro({9: [(OP_STORE, 80)]}, proto="MMemL1")
        assert base.traffic_bucket(T.ST, T.RESP_L2_USED) + \
            base.traffic_bucket(T.ST, T.RESP_L2_WASTE) > 0
        assert opt.traffic_bucket(T.ST, T.RESP_L2_USED) + \
            opt.traffic_bucket(T.ST, T.RESP_L2_WASTE) == 0

    def test_store_traffic_reduced(self):
        ops = [(OP_STORE, i * 16) for i in range(8)]
        base, _ = run_micro({0: ops}, proto="MESI")
        opt, _ = run_micro({0: ops}, proto="MMemL1")
        assert opt.traffic_major(T.ST) < base.traffic_major(T.ST)


class TestCoherenceCorrectness:
    def test_invalidation_classifies_l1_copy(self):
        """A sharer's copy invalidated before reuse is Invalidate waste."""
        result, _ = run_micro({
            0: [(OP_LOAD, 0), (OP_BARRIER, 0), (OP_BARRIER, 0)],
            1: [(OP_BARRIER, 0), (OP_STORE, 0), (OP_BARRIER, 0)],
        })
        assert result.l1_waste[Category.INVALIDATE] > 0

    def test_owner_forward_supplies_data(self):
        """Dirty line owned by core 0; core 1 load is served cache-to-cache
        without touching DRAM again."""
        result, _ = run_micro({
            0: [(OP_STORE, 0), (OP_BARRIER, 0)],
            1: [(OP_BARRIER, 0), (OP_LOAD, 0)],
        })
        assert result.dram_stats["reads"] == 1

    def test_ping_pong_ownership(self):
        """Alternating writers to one line: each handoff moves the line."""
        result, _ = run_micro({
            0: [(OP_STORE, 0), (OP_BARRIER, 0), (OP_BARRIER, 0),
                (OP_STORE, 0), (OP_BARRIER, 0)],
            1: [(OP_BARRIER, 0), (OP_STORE, 0), (OP_BARRIER, 0),
                (OP_BARRIER, 0)],
        })
        # Three ownership acquisitions, one memory fetch.
        assert result.dram_stats["reads"] == 1
        assert result.traffic_bucket(T.ST, T.REQ_CTL) > 0

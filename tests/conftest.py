"""Shared fixtures and micro-workload helpers for the test suite."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import pytest

from repro.common.config import ProtocolConfig, SystemConfig, protocol
from repro.common.regions import FlexPattern, Region, RegionTable
from repro.core.system import System
from repro.workloads.trace import (
    OP_BARRIER, OP_COMPUTE, OP_LOAD, OP_STORE, Workload)

#: A small machine for protocol unit tests: 16 tiles (required), tiny
#: caches so evictions are easy to trigger.
TINY_SYSTEM = SystemConfig(l1_kb=1, l2_slice_kb=2)


def make_region_table(*regions: Region) -> RegionTable:
    table = RegionTable()
    for region in regions:
        table.add(region)
    return table


def simple_region(size_words: int = 4096, *, bypass_l2: bool = False,
                  flex: Optional[FlexPattern] = None) -> RegionTable:
    """One region covering [0, size_words)."""
    return make_region_table(
        Region(region_id=0, name="data", base_word=0,
               size_words=size_words, bypass_l2=bypass_l2, flex=flex))


def micro_workload(per_core_ops: Dict[int, List[Tuple[int, int]]],
                   regions: Optional[RegionTable] = None,
                   num_cores: int = 16,
                   written_regions: Optional[Sequence[frozenset]] = None,
                   name: str = "micro") -> Workload:
    """Build a Workload from explicit per-core op lists.

    Cores not mentioned get an empty trace; a trailing barrier is added
    everywhere so the phases line up.
    """
    traces: List[List[Tuple[int, int]]] = []
    for core in range(num_cores):
        ops = list(per_core_ops.get(core, []))
        if not ops or ops[-1][0] != OP_BARRIER:
            ops.append((OP_BARRIER, 0))
        traces.append(ops)
    # Pad every core to the same barrier count.
    def count_barriers(ops):
        return sum(1 for kind, _ in ops if kind == OP_BARRIER)

    barriers = max(count_barriers(ops) for ops in traces)
    for ops in traces:
        ops.extend([(OP_BARRIER, 0)] * (barriers - count_barriers(ops)))
    table = regions if regions is not None else simple_region()
    written = (list(written_regions) if written_regions
               else [frozenset({0})] * barriers)
    return Workload(name=name, regions=table, traces=traces,
                    phase_written_regions=written)


def run_micro(per_core_ops, proto="MESI", regions=None,
              config: Optional[SystemConfig] = None,
              written_regions=None):
    """Simulate a micro workload; returns (RunResult, System)."""
    workload = micro_workload(per_core_ops, regions=regions,
                              written_regions=written_regions)
    if isinstance(proto, str):
        proto = protocol(proto)
    system = System(workload, proto,
                    config if config is not None else TINY_SYSTEM)
    result = system.run()
    return result, system


def loads(core_ops: List[Tuple[int, int]], *addrs: int) -> None:
    for addr in addrs:
        core_ops.append((OP_LOAD, addr))


def stores(core_ops: List[Tuple[int, int]], *addrs: int) -> None:
    for addr in addrs:
        core_ops.append((OP_STORE, addr))


@pytest.fixture
def tiny_system() -> SystemConfig:
    return TINY_SYSTEM

"""Unit tests for the store buffer and write-combining table."""

import pytest

from repro.cache.writebuffer import StoreBuffer, WriteCombineTable
from repro.common.addressing import WORDS_PER_LINE


class TestStoreBuffer:
    def test_insert_retire(self):
        sb = StoreBuffer(2)
        sb.insert(10)
        assert sb.has(10) and len(sb) == 1
        sb.retire(10)
        assert not sb.has(10) and len(sb) == 0

    def test_full(self):
        sb = StoreBuffer(2)
        sb.insert(1)
        sb.insert(2)
        assert sb.is_full()
        with pytest.raises(RuntimeError):
            sb.insert(3)

    def test_retire_absent_is_noop(self):
        sb = StoreBuffer(2)
        sb.retire(99)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            StoreBuffer(0)


class TestWriteCombineTable:
    def test_combines_same_line(self):
        wct = WriteCombineTable(capacity=4, timeout=100)
        wct.add_store(16, now=0)   # line 1, offset 0
        wct.add_store(17, now=0)   # line 1, offset 1
        assert len(wct) == 1
        entry = wct.get(1)
        assert entry.offsets() == [0, 1]

    def test_different_lines_different_entries(self):
        wct = WriteCombineTable(4, 100)
        wct.add_store(0, now=0)
        wct.add_store(16, now=0)
        assert len(wct) == 2

    def test_full_line_detection(self):
        wct = WriteCombineTable(4, 100)
        for off in range(WORDS_PER_LINE):
            entry = wct.add_store(32 + off, now=0)
        assert entry.is_full_line

    def test_overflow_requires_flush(self):
        wct = WriteCombineTable(2, 100)
        wct.add_store(0, now=0)
        wct.add_store(16, now=0)
        assert wct.is_full()
        with pytest.raises(RuntimeError):
            wct.add_store(32, now=0)
        # Existing lines still accept words when full.
        wct.add_store(1, now=0)

    def test_oldest(self):
        wct = WriteCombineTable(4, 100)
        wct.add_store(16, now=5)
        wct.add_store(0, now=2)
        assert wct.oldest().line_addr == 0

    def test_expiry(self):
        wct = WriteCombineTable(4, timeout=100)
        wct.add_store(0, now=0)
        wct.add_store(16, now=50)
        assert wct.expired(now=99) == []
        expired = wct.expired(now=100)
        assert [e.line_addr for e in expired] == [0]
        assert len(wct) == 1

    def test_next_deadline(self):
        wct = WriteCombineTable(4, timeout=100)
        assert wct.next_deadline() is None
        wct.add_store(0, now=30)
        wct.add_store(16, now=10)
        assert wct.next_deadline() == 110

    def test_drain(self):
        wct = WriteCombineTable(4, 100)
        wct.add_store(0, now=0)
        wct.add_store(16, now=0)
        drained = wct.drain()
        assert len(drained) == 2 and len(wct) == 0

    def test_pop(self):
        wct = WriteCombineTable(4, 100)
        wct.add_store(0, now=0)
        entry = wct.pop(0)
        assert entry.line_addr == 0
        assert wct.pop(0) is None

    def test_timeout_clock_does_not_reset_on_new_word(self):
        """The paper's 10k-cycle timeout runs from entry creation."""
        wct = WriteCombineTable(4, timeout=100)
        wct.add_store(0, now=0)
        wct.add_store(1, now=90)    # same line, later word
        assert [e.line_addr for e in wct.expired(now=100)] == [0]

"""Unit tests for the discrete-event engine and barrier."""

import random

import pytest

from repro.engine.events import (
    _WHEEL_SIZE, DEFAULT_SCHEDULER, SCHEDULERS, Barrier, EventQueue,
    WheelEventQueue, make_event_queue)


class TestEventQueue:
    def test_runs_in_time_order(self):
        q = EventQueue()
        order = []
        q.schedule(10, lambda: order.append("b"))
        q.schedule(5, lambda: order.append("a"))
        q.schedule(20, lambda: order.append("c"))
        q.run()
        assert order == ["a", "b", "c"]
        assert q.now == 20

    def test_fifo_within_same_cycle(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.schedule(7, lambda i=i: order.append(i))
        q.run()
        assert order == [0, 1, 2, 3, 4]

    def test_after_is_relative(self):
        q = EventQueue()
        seen = []
        q.schedule(10, lambda: q.after(5, lambda: seen.append(q.now)))
        q.run()
        assert seen == [15]

    def test_rejects_past(self):
        q = EventQueue()
        q.schedule(10, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule(5, lambda: None)

    def test_rejects_negative_delay(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.after(-1, lambda: None)

    def test_event_budget_raises(self):
        q = EventQueue()

        def recur():
            q.after(1, recur)

        q.schedule(0, recur)
        with pytest.raises(RuntimeError, match="livelock"):
            q.run(max_events=100)

    def test_events_scheduled_during_run(self):
        q = EventQueue()
        log = []

        def first():
            log.append(("first", q.now))
            q.schedule(q.now + 3, lambda: log.append(("second", q.now)))

        q.schedule(2, first)
        q.run()
        assert log == [("first", 2), ("second", 5)]

    def test_counters(self):
        q = EventQueue()
        q.schedule(0, lambda: None)
        q.schedule(1, lambda: None)
        assert q.pending == 2
        q.run()
        assert q.pending == 0
        assert q.events_run == 2


class TestScheduleCall:
    """The allocation-light fast path: bound method + args, no lambda."""

    def test_args_passed_through(self):
        q = EventQueue()
        seen = []
        q.schedule_call(3, lambda a, b: seen.append((a, b, q.now)), 1, 2)
        q.run()
        assert seen == [(1, 2, 3)]

    def test_interleaved_with_legacy_schedule_keeps_seq_order(self):
        # Both entry points share one seq counter, so same-cycle events
        # fire in overall scheduling order regardless of which API was
        # used — the determinism contract of the engine rework.
        q = EventQueue()
        order = []
        q.schedule(5, lambda: order.append("legacy0"))
        q.schedule_call(5, order.append, "fast1")
        q.schedule(5, lambda: order.append("legacy2"))
        q.schedule_call(5, order.append, "fast3")
        q.run()
        assert order == ["legacy0", "fast1", "legacy2", "fast3"]

    def test_same_cycle_fifo(self):
        q = EventQueue()
        order = []
        for i in range(8):
            q.schedule_call(2, order.append, i)
        q.run()
        assert order == list(range(8))

    def test_events_scheduled_during_same_cycle_drain(self):
        # The same-cycle batch drain must still honour events that a
        # callback schedules for the *current* cycle.
        q = EventQueue()
        order = []

        def first():
            order.append("first")
            q.schedule_call(q.now, order.append, "nested-same-cycle")

        q.schedule_call(4, first)
        q.schedule_call(4, order.append, "second")
        q.run()
        assert order == ["first", "second", "nested-same-cycle"]

    def test_rejects_past(self):
        q = EventQueue()
        q.schedule_call(4, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule_call(1, lambda: None)

    def test_budget_exhaustion(self):
        q = EventQueue()

        def recur(t):
            q.schedule_call(t + 1, recur, t + 1)

        q.schedule_call(0, recur, 0)
        with pytest.raises(RuntimeError, match="livelock"):
            q.run(max_events=50)
        assert q.events_run == 50

    def test_budget_spans_multiple_runs(self):
        # max_events bounds the *total* events executed on the queue,
        # exactly as before the engine rework.
        q = EventQueue()
        q.schedule_call(0, lambda: None)
        q.run(max_events=10)
        assert q.events_run == 1
        for i in range(12):
            q.schedule_call(q.now + 1 + i, lambda: None)
        with pytest.raises(RuntimeError, match="livelock"):
            q.run(max_events=10)
        assert q.events_run == 10

    def test_unbounded_run_has_no_budget(self):
        q = EventQueue()
        hits = []
        for i in range(100):
            q.schedule_call(i, hits.append, i)
        q.run()   # max_events=None: the unbounded path
        assert len(hits) == 100
        assert q.events_run == 100


class TestSchedulerFactory:
    def test_known_schedulers(self):
        assert isinstance(make_event_queue("heap"), EventQueue)
        assert isinstance(make_event_queue("wheel"), WheelEventQueue)
        assert set(SCHEDULERS) == {"heap", "wheel"}
        assert DEFAULT_SCHEDULER in SCHEDULERS

    def test_unknown_scheduler_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_event_queue("fifo")


def _run_script(q, seed, initial=40, max_rearms=400):
    """Drive ``q`` with a seeded, self-rearming event script.

    Returns the complete firing log ``[(label, cycle), ...]``.  The
    RNG is consumed inside callbacks, so two queue implementations
    produce identical logs *iff* they fire events in the same order —
    any divergence (ordering, timing, lost or duplicated events)
    derails the logs immediately.  Delay classes cover the wheel's
    interesting regimes: same-cycle re-arms, short in-window hops,
    window-edge delays, and far-future overflow entries (several
    window wraps out).
    """
    rng = random.Random(seed)
    log = []
    rearms = [0]

    def fire(label):
        log.append((label, q.now))
        if rearms[0] >= max_rearms:
            return
        roll = rng.random()
        if roll < 0.2:
            delay = 0                                    # same cycle
        elif roll < 0.5:
            delay = rng.randrange(1, 8)                  # short hop
        elif roll < 0.7:
            delay = rng.randrange(8, _WHEEL_SIZE)        # in-window
        elif roll < 0.85:
            delay = _WHEEL_SIZE + rng.randrange(0, 3)    # window edge
        else:
            delay = rng.randrange(_WHEEL_SIZE,           # deep overflow
                                  4 * _WHEEL_SIZE)
        rearms[0] += 1
        q.schedule_call(q.now + delay, fire, f"{label}.{rearms[0]}")

    for i in range(initial):
        q.schedule_call(rng.randrange(0, 3 * _WHEEL_SIZE), fire, f"e{i}")
    q.run()
    return log


class TestWheelMatchesHeap:
    """Differential determinism: the wheel must reproduce the heap's
    exact firing order on adversarial schedules (the golden grid pins
    the real workloads; this pins the corner cases)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_schedules_fire_identically(self, seed):
        heap_log = _run_script(EventQueue(), seed)
        wheel_log = _run_script(WheelEventQueue(), seed)
        assert len(heap_log) > 100
        assert wheel_log == heap_log

    def test_same_cycle_rearm_chain(self):
        # A callback re-arming at the *current* cycle repeatedly, with
        # unrelated same-cycle events interleaved: the wheel's
        # detached-bucket drain must match the heap's seq order.
        def drive(q):
            log = []

            def chain(depth):
                log.append((f"chain{depth}", q.now))
                if depth < 5:
                    q.schedule_call(q.now, chain, depth + 1)

            q.schedule_call(3, chain, 0)
            for i in range(3):
                q.schedule_call(3, lambda i=i: log.append((f"flat{i}",
                                                           q.now)))
            q.run()
            return log

        assert drive(WheelEventQueue()) == drive(EventQueue())

    def test_overflow_promotion_keeps_seq_order(self):
        # Two far-future events for one cycle scheduled out of seq
        # order relative to an in-window event for the same cycle once
        # the window advances: promotion must preserve (when, seq).
        def drive(q):
            log = []
            target = 2 * _WHEEL_SIZE + 17
            q.schedule_call(target, log.append, "overflow-a")

            def mid():
                # Now in-window for target (scheduled later => later seq).
                q.schedule_call(target, log.append, "in-window-b")

            q.schedule_call(target - _WHEEL_SIZE + 1, mid)
            q.schedule_call(target, log.append, "overflow-c")
            q.run()
            return log

        expected = drive(EventQueue())
        assert drive(WheelEventQueue()) == expected
        # Seq order: a and c were scheduled before the run (seqs 0, 2),
        # b only from inside mid() (seq 3) — so c fires before b.
        assert expected == ["overflow-a", "overflow-c", "in-window-b"]

    def test_exception_consumes_only_fired_events(self):
        # A raising callback counts as consumed; unfired same-cycle
        # events must survive for a later run() on both schedulers.
        def drive(q):
            log = []

            def boom():
                log.append("boom")
                raise RuntimeError("handler bug")

            for i in range(2):
                q.schedule_call(5, lambda i=i: log.append(f"pre{i}"))
            q.schedule_call(5, boom)
            for i in range(2):
                q.schedule_call(5, lambda i=i: log.append(f"post{i}"))
            with pytest.raises(RuntimeError, match="handler bug"):
                q.run()
            survivors = q.pending
            q.run()
            return log, survivors, q.pending, q.events_run

        assert drive(WheelEventQueue()) == drive(EventQueue())

    def test_budget_mid_bucket_preserves_remainder(self):
        def drive(q):
            log = []
            for i in range(6):
                q.schedule_call(2, log.append, i)
            with pytest.raises(RuntimeError, match="livelock"):
                q.run(max_events=4)
            budgeted = list(log)
            q.run()
            return budgeted, log, q.events_run

        assert drive(WheelEventQueue()) == drive(EventQueue())


class TestWheelEventQueue:
    """Wheel-specific edges not reachable through the shared tests."""

    def test_far_future_event_lands_exactly(self):
        q = WheelEventQueue()
        seen = []
        when = 10 * _WHEEL_SIZE + 123
        q.schedule_call(when, lambda: seen.append(q.now))
        assert q.pending == 1
        q.run()
        assert seen == [when]
        assert q.pending == 0

    def test_window_boundary_goes_to_overflow_and_back(self):
        q = WheelEventQueue()
        seen = []
        q.schedule_call(0, lambda: q.schedule_call(
            _WHEEL_SIZE, lambda: seen.append(q.now)))   # == now+SIZE
        q.run()
        assert seen == [_WHEEL_SIZE]

    def test_rejects_past_in_window(self):
        q = WheelEventQueue()
        q.schedule_call(10, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule_call(9, lambda: None)

    def test_pending_is_exact_during_drain(self):
        # PhaseSampler-style self-rearm: the tick sees pending==0 when
        # it is the last live event, even mid-bucket.
        q = WheelEventQueue()
        observed = []

        def tick():
            observed.append(q.pending)

        q.schedule_call(4, tick)
        q.schedule_call(4, tick)
        q.run()
        assert observed == [1, 0]


class TestBarrier:
    def test_releases_all_at_same_time(self):
        q = EventQueue()
        b = Barrier(q, participants=3, release_cost=10)
        released = []
        q.schedule(0, lambda: b.arrive(0, lambda t: released.append((0, t))))
        q.schedule(5, lambda: b.arrive(1, lambda t: released.append((1, t))))
        q.schedule(9, lambda: b.arrive(2, lambda t: released.append((2, t))))
        q.run()
        assert len(released) == 3
        times = {t for _c, t in released}
        assert times == {19}   # last arrival (9) + release cost (10)

    def test_waits_for_all(self):
        q = EventQueue()
        b = Barrier(q, participants=2)
        released = []
        q.schedule(0, lambda: b.arrive(0, lambda t: released.append(0)))
        q.run()
        assert released == []
        assert b.waiting_count == 1

    def test_multiple_rounds(self):
        q = EventQueue()
        b = Barrier(q, participants=2, release_cost=1)
        log = []

        def round_two(core):
            def resume(t):
                log.append((core, "r2", t))
            return resume

        def round_one(core):
            def resume(t):
                log.append((core, "r1", t))
                b.arrive(core, round_two(core))
            return resume

        q.schedule(0, lambda: b.arrive(0, round_one(0)))
        q.schedule(0, lambda: b.arrive(1, round_one(1)))
        q.run()
        assert b.barriers_passed == 2
        assert [entry[1] for entry in log].count("r1") == 2
        assert [entry[1] for entry in log].count("r2") == 2

    def test_release_hooks_run_once_per_barrier(self):
        q = EventQueue()
        b = Barrier(q, participants=2, release_cost=1)
        hook_calls = []
        b.on_release(lambda: hook_calls.append(q.now))
        q.schedule(0, lambda: b.arrive(0, lambda t: None))
        q.schedule(4, lambda: b.arrive(1, lambda t: None))
        q.run()
        assert hook_calls == [5]

    def test_rejects_zero_participants(self):
        with pytest.raises(ValueError):
            Barrier(EventQueue(), participants=0)

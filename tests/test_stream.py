"""Tests for the opt-in `stream` synthetic microbenchmark."""

import pytest

from repro.common.config import ScaleConfig, scaled_system
from repro.core.simulator import simulate
from repro.workloads import (
    GENERATORS, WORKLOAD_ORDER, build_workload, canonical_workload)
from repro.workloads.stream import StreamGenerator, WORDS_BY_SCALE
from repro.workloads.trace import OP_LOAD, OP_STORE

SCALE = ScaleConfig.tiny()


@pytest.fixture(scope="module")
def workload():
    return build_workload("stream", SCALE)


class TestRegistration:
    def test_registered_but_not_in_paper_order(self):
        assert GENERATORS["stream"] is StreamGenerator
        assert "stream" not in WORKLOAD_ORDER

    def test_case_insensitive_lookup(self):
        assert canonical_workload("STREAM") == "stream"


class TestPattern:
    def test_write_only_no_loads(self, workload):
        kinds = {k for t in workload.traces for k, _ in t}
        assert OP_STORE in kinds
        assert OP_LOAD not in kinds

    def test_no_sharing_between_cores(self, workload):
        """Uniform streaming writes: every word touched by exactly one
        core, and each core's slice is contiguous."""
        owners = {}
        for core, trace in enumerate(workload.traces):
            for kind, addr in trace:
                if kind == OP_STORE:
                    assert owners.setdefault(addr, core) == core
        # Two ping-pong buffers, each fully written once per pass.
        assert len(owners) == 2 * WORDS_BY_SCALE["tiny"]

    def test_every_core_writes(self, workload):
        for core, trace in enumerate(workload.traces):
            stores = sum(1 for k, _ in trace if k == OP_STORE)
            assert stores > 0, f"core {core} idle"

    def test_deterministic(self):
        a = build_workload("stream", SCALE)
        b = build_workload("stream", SCALE)
        assert a.traces == b.traces

    def test_words_override(self):
        w = StreamGenerator(SCALE, words=512).build()
        stores = {addr for t in w.traces for k, addr in t if k == OP_STORE}
        assert len(stores) == 2 * 512

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            StreamGenerator(SCALE, iterations=0)

    def test_single_iteration_is_measured_not_warmup(self):
        """With one iteration there is nothing to warm: the run must
        still produce non-zero measured traffic."""
        w = StreamGenerator(SCALE, iterations=1).build()
        assert w.warmup_barriers == 0
        result = simulate(w, "MESI", scaled_system(SCALE))
        assert result.traffic_total() > 0


class TestSimulation:
    def test_simulates_under_mesi_and_denovo(self, workload):
        config = scaled_system(SCALE)
        mesi = simulate(workload, "MESI", config)
        denovo = simulate(workload, "DBypFull", config)
        assert mesi.traffic_total() > 0
        assert denovo.traffic_total() > 0
        # The pure fetch-on-write stress case: the optimized DeNovo
        # stack moves far less traffic than write-allocate MESI.
        assert denovo.traffic_total() < mesi.traffic_total()

"""Tests for the experiment runner and aggregate metrics."""

import pytest

from repro.analysis import persist
from repro.analysis.experiments import (
    average_exec_time_reduction, average_traffic_reduction, clear_cache,
    exec_time_reduction, run_grid, traffic_reduction)
from repro.common.config import ScaleConfig, scaled_system
from repro.core.stats import RunResult


def fake_result(workload, protocol, traffic_scale, exec_cycles):
    from repro.network import traffic as T
    from repro.waste.profiler import Category
    traffic = {
        T.LD: {b: 0.0 for b in T.LDST_BUCKETS},
        T.ST: {b: 0.0 for b in T.LDST_BUCKETS},
        T.WB: {b: 0.0 for b in T.WB_BUCKETS},
        T.OVH: {b: 0.0 for b in T.OVH_BUCKETS},
    }
    traffic[T.LD][T.REQ_CTL] = traffic_scale
    return RunResult(
        workload=workload, protocol=protocol, traffic=traffic,
        l1_waste={c: 0 for c in Category},
        l2_waste={c: 0 for c in Category},
        mem_waste={c: 0 for c in Category},
        time={b: 0.0 for b in ("busy", "onchip", "to_mc", "mem",
                               "from_mc", "sync")},
        exec_cycles=exec_cycles, events=1)


@pytest.fixture
def toy_grid():
    return {
        "app1": {"MESI": fake_result("app1", "MESI", 100, 1000),
                 "DBypFull": fake_result("app1", "DBypFull", 60, 900)},
        "app2": {"MESI": fake_result("app2", "MESI", 200, 2000),
                 "DBypFull": fake_result("app2", "DBypFull", 100, 1600)},
    }


class TestAggregates:
    def test_traffic_reduction_per_workload(self, toy_grid):
        red = traffic_reduction(toy_grid, "DBypFull", "MESI")
        assert red["app1"] == pytest.approx(0.4)
        assert red["app2"] == pytest.approx(0.5)

    def test_average_traffic_reduction(self, toy_grid):
        assert average_traffic_reduction(
            toy_grid, "DBypFull", "MESI") == pytest.approx(0.45)

    def test_exec_time_reduction(self, toy_grid):
        red = exec_time_reduction(toy_grid, "DBypFull", "MESI")
        assert red["app1"] == pytest.approx(0.1)
        assert red["app2"] == pytest.approx(0.2)
        assert average_exec_time_reduction(
            toy_grid, "DBypFull", "MESI") == pytest.approx(0.15)

    def test_reduction_of_baseline_is_zero(self, toy_grid):
        assert average_traffic_reduction(
            toy_grid, "MESI", "MESI") == pytest.approx(0.0)


class TestRunGrid:
    def test_grid_runs_and_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        scale = ScaleConfig.tiny()
        grid = run_grid(workloads=("LU",), protocols=("MESI", "DeNovo"),
                        scale=scale)
        assert set(grid) == {"LU"}
        assert set(grid["LU"]) == {"MESI", "DeNovo"}
        # Cached on disk, under the runner's shape-tagged store key.
        from repro.runner import JobSpec
        key = JobSpec(workload="LU", protocol="MESI", scale=scale,
                      config=scaled_system(scale)).store_key()
        assert key.startswith(persist.config_key(scale,
                                                 scaled_system(scale)))
        assert persist.load_result("LU", "MESI", key) is not None
        # Second call is served from cache (no simulation): just verify
        # it returns equal numbers.
        clear_cache()
        again = run_grid(workloads=("LU",), protocols=("MESI", "DeNovo"),
                         scale=scale)
        assert (again["LU"]["MESI"].traffic
                == grid["LU"]["MESI"].traffic)
        clear_cache()

"""Tests for result serialization and the disk cache."""

import importlib
import warnings

import pytest

with warnings.catch_warnings():
    # The compat shim's DeprecationWarning is covered explicitly below.
    warnings.simplefilter("ignore", DeprecationWarning)
    from repro.analysis import persist
from repro.common.config import ScaleConfig, SystemConfig, scaled_system
from repro.core.simulator import simulate
from repro.workloads import build_workload
from repro.waste.profiler import Category


@pytest.fixture(scope="module")
def result():
    scale = ScaleConfig.tiny()
    w = build_workload("radix", scale)
    return simulate(w, "MESI", scaled_system(scale))


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, result):
        data = persist.result_to_dict(result)
        back = persist.result_from_dict(data)
        assert back.workload == result.workload
        assert back.protocol == result.protocol
        assert back.traffic == result.traffic
        assert back.l1_waste == result.l1_waste
        assert back.l2_waste == result.l2_waste
        assert back.mem_waste == result.mem_waste
        assert back.time == result.time
        assert back.exec_cycles == result.exec_cycles
        assert back.dram_stats == result.dram_stats

    def test_waste_keys_are_categories(self, result):
        back = persist.result_from_dict(persist.result_to_dict(result))
        assert all(isinstance(k, Category) for k in back.l1_waste)

    def test_save_and_load(self, result, tmp_path):
        key = "deadbeef"
        persist.save_result(result, key, directory=tmp_path)
        loaded = persist.load_result(result.workload, result.protocol,
                                     key, directory=tmp_path)
        assert loaded is not None
        assert loaded.traffic == result.traffic

    def test_load_missing_returns_none(self, tmp_path):
        assert persist.load_result("x", "y", "z", directory=tmp_path) is None

    def test_load_corrupt_returns_none(self, result, tmp_path):
        key = "cafe"
        path = persist.save_result(result, key, directory=tmp_path)
        path.write_text("{not json")
        assert persist.load_result(result.workload, result.protocol, key,
                                   directory=tmp_path) is None


class TestDeprecation:
    def test_import_emits_deprecation_warning(self):
        """The shim warns on import so callers migrate to runner.store."""
        with pytest.warns(DeprecationWarning,
                          match="repro.analysis.persist is deprecated"):
            importlib.reload(persist)

    def test_shim_still_delegates_after_reload(self, result, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            importlib.reload(persist)
        persist.save_result(result, "dep", directory=tmp_path)
        assert persist.load_result(result.workload, result.protocol,
                                   "dep", directory=tmp_path) is not None


class TestConfigKey:
    def test_stable(self):
        a = persist.config_key(ScaleConfig(), SystemConfig())
        b = persist.config_key(ScaleConfig(), SystemConfig())
        assert a == b

    def test_differs_by_scale(self):
        a = persist.config_key(ScaleConfig(), SystemConfig())
        b = persist.config_key(ScaleConfig.tiny(), SystemConfig())
        assert a != b

    def test_differs_by_system(self):
        a = persist.config_key(ScaleConfig(), SystemConfig())
        b = persist.config_key(ScaleConfig(), SystemConfig(l1_kb=64))
        assert a != b

"""Tests for the in-order core model and execution-time attribution."""

import pytest

from repro.common.config import protocol
from repro.core.system import System
from repro.workloads.trace import OP_BARRIER, OP_COMPUTE, OP_LOAD, OP_STORE

from tests.conftest import TINY_SYSTEM, micro_workload


def run_system(per_core_ops, proto="MESI"):
    w = micro_workload(per_core_ops)
    system = System(w, protocol(proto), TINY_SYSTEM)
    result = system.run()
    return result, system


class TestBusyTime:
    def test_compute_counts_as_busy(self):
        result, sys = run_system({0: [(OP_COMPUTE, 500)]})
        assert sys.cores[0].time.busy >= 500

    def test_each_memory_op_costs_one_busy_cycle(self):
        ops = [(OP_LOAD, 80)] + [(OP_COMPUTE, 10)]
        result, sys = run_system({0: ops})
        # 1 (load issue) + 10 (compute) = 11 busy cycles on core 0.
        assert sys.cores[0].time.busy == 11


class TestStallAttribution:
    def test_memory_load_attributed_to_mc_buckets(self):
        _result, sys = run_system({9: [(OP_LOAD, 80)]})
        t = sys.cores[9].time
        assert t.to_mc > 0 and t.mem > 0 and t.from_mc > 0
        assert t.onchip == 0

    def test_onchip_hit_attributed_to_onchip(self):
        # Core 1 warms the line; after the barrier core 9's load is an
        # on-chip hit (L2 or cache-to-cache).
        _result, sys = run_system({
            1: [(OP_LOAD, 80), (OP_BARRIER, 0)],
            9: [(OP_BARRIER, 0), (OP_LOAD, 80)],
        })
        t = sys.cores[9].time
        assert t.onchip > 0
        assert t.mem == 0

    def test_sync_counted_for_early_arrivals(self):
        _result, sys = run_system({
            0: [(OP_BARRIER, 0)],
            1: [(OP_COMPUTE, 2000), (OP_BARRIER, 0)],
        })
        # Core 0 waits ~2000 cycles for core 1.
        assert sys.cores[0].time.sync >= 1500
        assert sys.cores[1].time.sync < 500


class TestCompletion:
    def test_all_cores_finish(self):
        result, sys = run_system({c: [(OP_LOAD, 80 + 16 * c)]
                                  for c in range(16)})
        assert all(core.finished for core in sys.cores)
        assert result.exec_cycles == max(c.finish_time for c in sys.cores)

    def test_exec_cycles_positive_even_for_empty_cores(self):
        result, _sys = run_system({0: [(OP_COMPUTE, 10)]})
        assert result.exec_cycles > 0

    def test_per_core_attribution_bounded_by_wall_clock(self):
        result, sys = run_system({
            c: [(OP_LOAD, 80 + 16 * c), (OP_STORE, 80 + 16 * c),
                (OP_COMPUTE, 50)]
            for c in range(16)})
        for core in sys.cores:
            # Allow small double-count slack (load issue cycle overlaps
            # the first stall cycle).
            assert core.time.total() <= core.finish_time * 1.10 + 16
